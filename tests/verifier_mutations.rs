//! Mutation tests: the verifiers must *reject* corrupted artifacts — a
//! verifier that accepts everything proves nothing.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet::core::{check_interference, solve_tree_unit, RaiseEvent, SolverConfig};
use treenet::decomp::{LayeredDecomposition, Strategy, TreeDecomposition};
use treenet::graph::{Tree, VertexId};
use treenet::model::workload::TreeWorkload;
use treenet::model::{InstanceId, Solution};

#[test]
fn tree_decomposition_verifier_rejects_wrong_parents() {
    // A decomposition of the 5-path with vertex 4 hung under vertex 0
    // violates LCA closure (path 3~4 misses LCA_H(3,4)).
    let tree = Tree::line(5);
    let parent = vec![
        None,
        Some(VertexId(0)),
        Some(VertexId(1)),
        Some(VertexId(2)),
        Some(VertexId(0)),
    ];
    let h = TreeDecomposition::from_parents(&tree, parent);
    assert!(h.verify(&tree).is_err());
}

#[test]
fn layered_verifier_rejects_shuffled_groups() {
    // Swap the group ordering (process shallow captures first): overlapping
    // pairs across groups lose the critical-edge guarantee.
    let p = TreeWorkload::new(16, 20)
        .with_networks(1)
        .generate(&mut SmallRng::seed_from_u64(3));
    let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
    let max_group = layers.num_groups() as u32;
    // Rebuild with inverted group indices and *empty-ish* critical sets:
    // keep only the first critical edge of each instance.
    let group: Vec<u32> = p
        .instances()
        .map(|d| max_group + 1 - layers.group_of(d.id))
        .collect();
    let critical: Vec<Vec<treenet::graph::EdgeId>> = p
        .instances()
        .map(|d| layers.critical_of(d.id).iter().copied().take(1).collect())
        .collect();
    let mutated = LayeredDecomposition::from_parts_for_tests(group, critical);
    // The original verifies; the mutation must not (on workloads with
    // real cross-group overlap, which this seed has).
    assert!(layers.verify(&p).is_ok());
    assert!(
        mutated.verify(&p).is_err(),
        "mutated decomposition accepted"
    );
}

#[test]
fn interference_checker_rejects_fabricated_traces() {
    let p = TreeWorkload::new(12, 14)
        .with_networks(1)
        .generate(&mut SmallRng::seed_from_u64(5));
    let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
    // Find an overlapping pair and fabricate a trace raising them in an
    // order that skips the critical edges: claim the *later-group* one
    // was raised first with an empty-critical mutation — simplest: build
    // a trace where d1's critical edges never intersect path(d2). We
    // fabricate by swapping roles of a known-overlapping pair where only
    // one direction satisfies the property.
    let mut found = None;
    'outer: for a in p.instances() {
        for b in p.instances() {
            if a.id != b.id && a.overlaps(b) {
                let a_covers_b = layers.critical_of(a.id).iter().any(|&e| b.active_on(e));
                let b_covers_a = layers.critical_of(b.id).iter().any(|&e| a.active_on(e));
                if a_covers_b && !b_covers_a {
                    found = Some((b.id, a.id)); // raising b first violates
                    break 'outer;
                }
            }
        }
    }
    if let Some((first, second)) = found {
        let trace = vec![
            RaiseEvent {
                instance: first,
                delta: 1.0,
                at: (1, 1, 0),
            },
            RaiseEvent {
                instance: second,
                delta: 1.0,
                at: (1, 1, 1),
            },
        ];
        assert_eq!(
            check_interference(&p, &layers, &trace),
            Some((first, second))
        );
    }
    // Regardless: the real trace from a real run passes.
    let out = solve_tree_unit(&p, &SolverConfig::default().with_trace(true)).unwrap();
    assert_eq!(
        check_interference(&p, &layers, out.trace.as_ref().unwrap()),
        None
    );
}

#[test]
fn solution_verifier_rejects_all_corruptions() {
    let p = TreeWorkload::new(10, 12)
        .with_networks(1)
        .generate(&mut SmallRng::seed_from_u64(8));
    // Everything at once: guaranteed overlaps on one shared network.
    let all: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
    let everything = Solution::new(all);
    assert!(everything.verify(&p).is_err());
    // Unknown instance id.
    let bogus = Solution::new(vec![InstanceId(10_000)]);
    assert!(bogus.verify(&p).is_err());
}

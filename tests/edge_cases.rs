//! Edge cases every public entry point must survive: empty problems,
//! degenerate parameters, single instances, saturated workloads.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet::baseline::{exact_max_profit, greedy_profit, GreedyOrder};
use treenet::core::{
    solve_line_unit, solve_sequential_tree, solve_tree_arbitrary, solve_tree_unit, SolverConfig,
};
use treenet::graph::{Tree, VertexId};
use treenet::model::workload::TreeWorkload;
use treenet::model::{Demand, ProblemBuilder, Solution};

fn empty_problem() -> treenet::model::Problem {
    let mut b = ProblemBuilder::new();
    b.add_network(Tree::line(4)).unwrap();
    b.build().unwrap()
}

#[test]
fn zero_demand_problem_everywhere() {
    let p = empty_problem();
    assert_eq!(p.demand_count(), 0);
    assert_eq!(p.instance_count(), 0);
    let out = solve_tree_unit(&p, &SolverConfig::default()).unwrap();
    assert!(out.solution.is_empty());
    assert_eq!(out.lambda, 1.0);
    assert_eq!(out.certified_ratio(&p), 1.0);
    let out = solve_line_unit(&p, &SolverConfig::default()).unwrap();
    assert!(out.solution.is_empty());
    let combined = solve_tree_arbitrary(&p, &SolverConfig::default()).unwrap();
    assert!(combined.solution.is_empty());
    let seq = solve_sequential_tree(&p);
    assert!(seq.solution.is_empty());
    assert!(greedy_profit(&p, GreedyOrder::Profit).is_empty());
    assert!(exact_max_profit(&p, 100).unwrap().is_empty());
    assert!(Solution::empty().verify(&p).is_ok());
}

#[test]
fn extreme_epsilons() {
    let p = TreeWorkload::new(10, 8).generate(&mut SmallRng::seed_from_u64(1));
    // Very loose: one stage per epoch.
    let loose = solve_tree_unit(&p, &SolverConfig::default().with_epsilon(0.9)).unwrap();
    loose.solution.verify(&p).unwrap();
    assert!(loose.lambda >= 0.1 - 1e-9);
    // Very tight: λ within 1% of 1.
    let tight = solve_tree_unit(&p, &SolverConfig::default().with_epsilon(0.01)).unwrap();
    tight.solution.verify(&p).unwrap();
    assert!(tight.lambda >= 0.99 - 1e-9);
    // Tight costs more stages.
    assert!(tight.stats.stages > loose.stats.stages);
}

#[test]
fn two_vertex_network() {
    // The smallest legal network: one edge.
    let mut b = ProblemBuilder::new();
    let t = b.add_network(Tree::line(2)).unwrap();
    for i in 0..3 {
        b.add_demand(Demand::pair(VertexId(0), VertexId(1), (i + 1) as f64), &[t])
            .unwrap();
    }
    let p = b.build().unwrap();
    let out = solve_tree_unit(&p, &SolverConfig::default()).unwrap();
    out.solution.verify(&p).unwrap();
    // Only one of the three all-conflicting demands fits; the certified
    // bound still holds and OPT = 3 is within it.
    assert_eq!(out.solution.len(), 1);
    assert!(out.opt_upper_bound() + 1e-9 >= 3.0);
}

#[test]
fn fully_saturated_clique_workload() {
    // Every demand wants the same full-length route.
    let mut b = ProblemBuilder::new();
    let t = b.add_network(Tree::line(6)).unwrap();
    for i in 0..10 {
        b.add_demand(Demand::pair(VertexId(0), VertexId(5), 1.0 + i as f64), &[t])
            .unwrap();
    }
    let p = b.build().unwrap();
    let out = solve_tree_unit(&p, &SolverConfig::default()).unwrap();
    out.solution.verify(&p).unwrap();
    assert_eq!(out.solution.len(), 1);
    // The second phase must keep the most profitable raised demand or a
    // successor — certified ratio stays within 7/(1-ε).
    assert!(out.certified_ratio(&p) <= 7.0 / 0.9 + 1e-6);
    let opt = exact_max_profit(&p, 10_000).unwrap();
    assert_eq!(opt.profit(&p), 10.0);
    assert!(opt.profit(&p) / out.profit(&p) <= 7.0 / 0.9);
}

#[test]
fn identical_profits_break_ties_deterministically() {
    let mut b = ProblemBuilder::new();
    let t = b.add_network(Tree::line(8)).unwrap();
    for s in 0..4 {
        b.add_demand(Demand::pair(VertexId(s), VertexId(s + 4), 1.0), &[t])
            .unwrap();
    }
    let p = b.build().unwrap();
    let a = solve_tree_unit(&p, &SolverConfig::default().with_seed(5)).unwrap();
    let b2 = solve_tree_unit(&p, &SolverConfig::default().with_seed(5)).unwrap();
    assert_eq!(a.solution, b2.solution);
    a.solution.verify(&p).unwrap();
}

#[test]
fn star_network_hub_contention() {
    // A star: every path crosses the hub, so paths between distinct leaf
    // pairs still only conflict when they share an edge (spoke).
    let star = Tree::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
    let mut b = ProblemBuilder::new();
    let t = b.add_network(star).unwrap();
    b.add_demand(Demand::pair(VertexId(1), VertexId(2), 3.0), &[t])
        .unwrap();
    b.add_demand(Demand::pair(VertexId(3), VertexId(4), 2.0), &[t])
        .unwrap();
    b.add_demand(Demand::pair(VertexId(1), VertexId(5), 1.0), &[t])
        .unwrap();
    let p = b.build().unwrap();
    let out = solve_tree_unit(&p, &SolverConfig::default()).unwrap();
    out.solution.verify(&p).unwrap();
    // Demands 0 and 1 are spoke-disjoint; 2 shares spoke 0-1 with 0.
    assert!(out.solution.len() >= 2);
    let opt = exact_max_profit(&p, 10_000).unwrap();
    assert_eq!(opt.profit(&p), 5.0);
}

//! Integration: the message-passing scheduler reproduces the logical one
//! across problem shapes, and its communication metrics respect the
//! paper's model (single-hop messages of O(M) bits).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet::core::{solve_tree_unit, SolverConfig};
use treenet::dist::{run_distributed_tree_unit, DistConfig};
use treenet::model::workload::TreeWorkload;

#[test]
fn distributed_equals_logical_across_shapes() {
    use treenet::graph::generators::TreeFamily;
    for family in [TreeFamily::Path, TreeFamily::Star, TreeFamily::Uniform] {
        let p = TreeWorkload::new(9, 7)
            .with_networks(2)
            .with_family(family)
            .with_profit_ratio(4.0)
            .generate(&mut SmallRng::seed_from_u64(17));
        let cfg = SolverConfig::default().with_epsilon(0.35).with_seed(17);
        let logical = solve_tree_unit(&p, &cfg).unwrap();
        let distributed = run_distributed_tree_unit(&p, &DistConfig::from(&cfg)).unwrap();
        assert!(!distributed.luby_incomplete);
        assert!(!distributed.final_unsatisfied);
        assert_eq!(logical.solution, distributed.solution, "{}", family.name());
        distributed.solution.verify(&p).unwrap();
    }
}

#[test]
fn distributed_round_count_follows_fixed_schedule() {
    let p = TreeWorkload::new(8, 6)
        .with_networks(2)
        .with_profit_ratio(4.0)
        .generate(&mut SmallRng::seed_from_u64(3));
    let cfg = DistConfig {
        epsilon: 0.4,
        ..DistConfig::default()
    };
    let out = run_distributed_tree_unit(&p, &cfg).unwrap();
    // Engine rounds = schedule length + drain (≤ 2 extra rounds).
    assert!(out.metrics.rounds >= out.schedule.total_rounds());
    assert!(out.metrics.rounds <= out.schedule.total_rounds() + 2);
    // λ reached the (1-ε) target.
    assert!(out.lambda >= 1.0 - 0.4 - 1e-9);
}

#[test]
fn solo_processor_runs_clean() {
    // m = 1: no neighbors, no messages, still correct.
    let mut b = treenet::model::ProblemBuilder::new();
    let t = b.add_network(treenet::graph::Tree::line(5)).unwrap();
    b.add_demand(
        treenet::model::Demand::pair(
            treenet::graph::VertexId(1),
            treenet::graph::VertexId(4),
            3.0,
        ),
        &[t],
    )
    .unwrap();
    let p = b.build().unwrap();
    let out = run_distributed_tree_unit(&p, &DistConfig::default()).unwrap();
    assert_eq!(out.solution.len(), 1);
    assert_eq!(out.metrics.messages, 0);
}

//! Integration: the message-passing scheduler reproduces the logical one
//! across problem shapes, and its communication metrics respect the
//! paper's model (single-hop messages of O(M) bits).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet::core::{solve_auto, solve_line_unit, solve_tree_unit, SolverConfig};
use treenet::dist::{
    run_distributed_auto, run_distributed_line_unit, run_distributed_tree_unit, DistConfig,
};
use treenet::model::workload::{HeightMode, LineWorkload, TreeWorkload};

#[test]
fn distributed_equals_logical_across_shapes() {
    use treenet::graph::generators::TreeFamily;
    for family in [TreeFamily::Path, TreeFamily::Star, TreeFamily::Uniform] {
        let p = TreeWorkload::new(9, 7)
            .with_networks(2)
            .with_family(family)
            .with_profit_ratio(4.0)
            .generate(&mut SmallRng::seed_from_u64(17));
        let cfg = SolverConfig::default().with_epsilon(0.35).with_seed(17);
        let logical = solve_tree_unit(&p, &cfg).unwrap();
        let distributed = run_distributed_tree_unit(&p, &DistConfig::from(&cfg)).unwrap();
        assert!(!distributed.final_unsatisfied);
        assert_eq!(logical.solution, distributed.solution, "{}", family.name());
        distributed.solution.verify(&p).unwrap();
    }
}

#[test]
fn distributed_line_runner_equals_logical() {
    let p = LineWorkload::new(36, 14)
        .with_resources(2)
        .with_window_slack(3)
        .with_len_range(1, 9)
        .generate(&mut SmallRng::seed_from_u64(7));
    let cfg = SolverConfig::default().with_epsilon(0.3).with_seed(7);
    let logical = solve_line_unit(&p, &cfg).unwrap();
    let distributed = run_distributed_line_unit(&p, &DistConfig::from(&cfg)).unwrap();
    assert_eq!(logical.solution, distributed.solution);
    assert_eq!(logical.lambda.to_bits(), distributed.lambda.to_bits());
    assert_eq!(
        distributed.schedule.total_rounds(),
        logical.stats.comm_rounds
    );
    distributed.solution.verify(&p).unwrap();
}

#[test]
fn distributed_auto_matches_logical_dispatch() {
    let mut rng = SmallRng::seed_from_u64(5);
    let problems = [
        LineWorkload::new(24, 10).generate(&mut rng),
        LineWorkload::new(24, 10)
            .with_heights(HeightMode::Uniform { hmin: 0.3 })
            .generate(&mut rng),
        TreeWorkload::new(10, 8).with_networks(2).generate(&mut rng),
    ];
    for (i, p) in problems.iter().enumerate() {
        let cfg = SolverConfig::default()
            .with_epsilon(0.3)
            .with_seed(i as u64);
        let logical = solve_auto(p, &cfg).unwrap();
        let distributed = run_distributed_auto(p, &DistConfig::from(&cfg)).unwrap();
        assert_eq!(logical.choice, distributed.choice, "case {i}");
        assert_eq!(logical.solution, distributed.solution, "case {i}");
        assert_eq!(
            logical.lambda.to_bits(),
            distributed.lambda.to_bits(),
            "case {i}"
        );
    }
}

#[test]
fn distributed_round_count_follows_fixed_schedule() {
    let p = TreeWorkload::new(8, 6)
        .with_networks(2)
        .with_profit_ratio(4.0)
        .generate(&mut SmallRng::seed_from_u64(3));
    let cfg = DistConfig {
        epsilon: 0.4,
        ..DistConfig::default()
    };
    let out = run_distributed_tree_unit(&p, &cfg).unwrap();
    // Engine rounds = compute schedule + in-network control sweeps +
    // exactly one setup round.
    assert_eq!(
        out.metrics.rounds,
        out.schedule.total_rounds() + out.schedule.control_rounds() + 1
    );
    // λ reached the (1-ε) target.
    assert!(out.lambda >= 1.0 - 0.4 - 1e-9);
}

#[test]
fn solo_processor_runs_clean() {
    // m = 1: no neighbors, no messages, still correct.
    let mut b = treenet::model::ProblemBuilder::new();
    let t = b.add_network(treenet::graph::Tree::line(5)).unwrap();
    b.add_demand(
        treenet::model::Demand::pair(
            treenet::graph::VertexId(1),
            treenet::graph::VertexId(4),
            3.0,
        ),
        &[t],
    )
    .unwrap();
    let p = b.build().unwrap();
    let out = run_distributed_tree_unit(&p, &DistConfig::default()).unwrap();
    assert_eq!(out.solution.len(), 1);
    assert_eq!(out.metrics.messages, 0);
}

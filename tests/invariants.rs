//! Cross-crate invariant tests: the framework's proof obligations hold on
//! randomized workloads for every decomposition strategy and raise rule.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet::core::{check_interference, run_two_phase, FrameworkConfig, RaiseRule, SolverConfig};
use treenet::decomp::{LayeredDecomposition, Strategy};
use treenet::model::workload::{HeightMode, LineWorkload, TreeWorkload};
use treenet::model::InstanceId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lemma 3.1's accounting identity val(α,β) ≤ (Δ+1)·p(S) holds for
    /// every strategy on trees, with the interference property verified
    /// on the trace.
    #[test]
    fn lemma_3_1_accounting(seed in 0u64..500, strat in 0usize..3) {
        let strategy = Strategy::ALL[strat];
        let p = TreeWorkload::new(12, 10)
            .with_networks(2)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let layers = LayeredDecomposition::for_trees(&p, strategy);
        let all: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
        let cfg = FrameworkConfig {
            xi: treenet::core::unit_xi(layers.delta()),
            seed,
            record_trace: true,
            ..FrameworkConfig::default()
        };
        let out = run_two_phase(&p, &layers, RaiseRule::Unit, &cfg, &all).unwrap();
        prop_assert!(out.solution.verify(&p).is_ok());
        prop_assert!(out.dual.value() <= (layers.delta() as f64 + 1.0) * out.profit(&p) + 1e-6);
        prop_assert_eq!(check_interference(&p, &layers, out.trace.as_ref().unwrap()), None);
    }

    /// Same identity for the narrow rule on lines: val ≤ (2Δ²+1)·p(S).
    #[test]
    fn lemma_6_1_accounting(seed in 0u64..500) {
        let p = LineWorkload::new(24, 12)
            .with_resources(2)
            .with_len_range(1, 6)
            .with_heights(HeightMode::Uniform { hmin: 0.1 })
            .generate(&mut SmallRng::seed_from_u64(seed));
        let narrow: Vec<InstanceId> = p
            .instances()
            .filter(|d| p.height_of(d.id) <= 0.5)
            .map(|d| d.id)
            .collect();
        prop_assume!(!narrow.is_empty());
        let layers = LayeredDecomposition::for_lines(&p);
        let hmin = narrow.iter().map(|&d| p.height_of(d)).fold(0.5, f64::min);
        let cfg = FrameworkConfig {
            xi: treenet::core::narrow_xi(layers.delta(), hmin),
            seed,
            record_trace: true,
            ..FrameworkConfig::default()
        };
        let out = run_two_phase(&p, &layers, RaiseRule::Narrow, &cfg, &narrow).unwrap();
        prop_assert!(out.solution.verify(&p).is_ok());
        let cap = 2.0 * (layers.delta() as f64).powi(2) + 1.0;
        prop_assert!(out.dual.value() <= cap * out.profit(&p) + 1e-6);
        prop_assert_eq!(check_interference(&p, &layers, out.trace.as_ref().unwrap()), None);
    }

    /// Stack/solution consistency: every selected instance was raised, and
    /// every raised instance either entered the solution or conflicts with
    /// a later-raised selected one (the phase-2 guarantee behind Lemma
    /// 3.1's inequality (3)).
    #[test]
    fn phase_two_successor_property(seed in 0u64..300) {
        let p = TreeWorkload::new(12, 10)
            .with_networks(2)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let out =
            treenet::core::solve_tree_unit(&p, &SolverConfig::default().with_seed(seed)).unwrap();
        let raised_order: Vec<InstanceId> =
            out.stack.iter().flat_map(|entry| entry.instances.iter().copied()).collect();
        // Selected ⊆ raised.
        for &d in out.solution.selected() {
            prop_assert!(raised_order.contains(&d));
        }
        // Every raised instance has itself-or-a-successor in S.
        for (i, &d) in raised_order.iter().enumerate() {
            let ok = out.solution.contains(d)
                || raised_order[i..].iter().any(|&later| {
                    out.solution.contains(later) && p.conflicting(d, later)
                });
            prop_assert!(ok, "raised {d} has no successor in S");
        }
    }
}

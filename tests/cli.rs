//! End-to-end tests of the `treenet` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_treenet"))
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("treenet-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_solve_decompose_pipeline() {
    let dir = tempdir();
    let spec = dir.join("tree.json");
    let out = bin()
        .args([
            "generate", "--kind", "tree", "--n", "12", "--m", "14", "--seed", "5",
        ])
        .arg(&spec)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(spec.exists());

    let out = bin()
        .args(["solve", "--algorithm", "tree-unit"])
        .arg(&spec)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("certificate:"), "{stdout}");
    assert!(stdout.contains("VALID"));

    let out = bin()
        .args(["solve", "--algorithm", "sequential"])
        .arg(&spec)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("certified ratio"));

    let out = bin()
        .args(["decompose", "--strategy", "ideal"])
        .arg(&spec)
        .output()
        .unwrap();
    assert!(out.status.success());
    let dot = String::from_utf8_lossy(&out.stdout);
    assert!(dot.contains("digraph decomposition"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("pivot size"));
}

#[test]
fn line_workloads_and_ps_baseline() {
    let dir = tempdir();
    let spec = dir.join("line.json");
    let out = bin()
        .args([
            "generate", "--kind", "line", "--n", "24", "--m", "10", "--seed", "2",
        ])
        .arg(&spec)
        .output()
        .unwrap();
    assert!(out.status.success());
    for algo in ["line-unit", "line-arbitrary", "ps-line"] {
        let out = bin()
            .args(["solve", "--algorithm", algo])
            .arg(&spec)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("certified"),
            "{algo}"
        );
    }
}

#[test]
fn helpful_errors() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    // Missing file.
    let out = bin()
        .args(["solve", "/nonexistent/x.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Bad flag value.
    let out = bin()
        .args(["generate", "--n", "not-a-number", "/tmp/x.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad value"));
    // Flag without value.
    let out = bin().args(["generate", "--n"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn mixed_heights_route_to_arbitrary_solver() {
    let dir = tempdir();
    let spec = dir.join("mixed.json");
    let out = bin()
        .args([
            "generate",
            "--kind",
            "tree",
            "--n",
            "10",
            "--m",
            "12",
            "--heights",
            "mixed",
            "--seed",
            "4",
        ])
        .arg(&spec)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["solve", "--algorithm", "tree-arbitrary"])
        .arg(&spec)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

//! End-to-end integration tests spanning every crate: fixtures →
//! workloads → solvers → verifiers → exact references.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet::baseline::{
    exact_max_profit, greedy_profit, ps_line_unit, weighted_interval_dp, GreedyOrder, PsConfig,
};
use treenet::core::{
    solve_line_arbitrary, solve_line_unit, solve_sequential_tree, solve_tree_arbitrary,
    solve_tree_unit, SolverConfig,
};
use treenet::model::fixtures::{figure1, figure2};
use treenet::model::workload::{HeightMode, LineWorkload, TreeWorkload};

#[test]
fn figure1_pipeline() {
    let (p, _) = figure1();
    // Every algorithm that accepts heights must return feasible solutions
    // within its bound; exact OPT = 11 ({B, C}).
    let opt = exact_max_profit(&p, 1_000_000).unwrap();
    assert_eq!(opt.profit(&p), 11.0);
    let ours = solve_line_arbitrary(&p, &SolverConfig::default()).unwrap();
    ours.solution.verify(&p).unwrap();
    assert!(ours.profit(&p) > 0.0);
    assert!(opt.profit(&p) / ours.profit(&p) <= 23.0 / 0.9);
}

#[test]
fn figure2_pipeline() {
    let (p, _) = figure2();
    let opt = exact_max_profit(&p, 1_000_000).unwrap();
    assert_eq!(opt.profit(&p), 4.0);
    let combined = solve_tree_arbitrary(&p, &SolverConfig::default()).unwrap();
    combined.solution.verify(&p).unwrap();
    assert!(opt.profit(&p) / combined.profit(&p).max(1e-9) <= 80.0 / 0.9 + 1e-6);
}

#[test]
fn tree_unit_certified_against_exact_optimum() {
    // Theorem 5.3's guarantee is against the true OPT — check it, not
    // just the dual bound.
    for seed in 0..6u64 {
        let p = TreeWorkload::new(14, 10)
            .with_networks(2)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let out = solve_tree_unit(&p, &SolverConfig::default().with_seed(seed)).unwrap();
        out.solution.verify(&p).unwrap();
        let opt = exact_max_profit(&p, 20_000_000).unwrap();
        let ratio = opt.profit(&p) / out.profit(&p).max(1e-9);
        assert!(
            ratio <= 7.0 / 0.9 + 1e-6,
            "seed {seed}: exact ratio {ratio}"
        );
        // The dual bound really does upper-bound OPT (weak duality).
        assert!(
            out.opt_upper_bound() + 1e-6 >= opt.profit(&p),
            "seed {seed}"
        );
    }
}

#[test]
fn line_unit_certified_against_dp_optimum() {
    for seed in 0..6u64 {
        let p = LineWorkload::new(40, 16)
            .with_resources(1)
            .with_window_slack(0)
            .with_len_range(1, 10)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let out = solve_line_unit(&p, &SolverConfig::default().with_seed(seed)).unwrap();
        let opt = weighted_interval_dp(&p).unwrap();
        let ratio = opt.profit(&p) / out.profit(&p).max(1e-9);
        assert!(ratio <= 4.0 / 0.9 + 1e-6, "seed {seed}: {ratio}");
        assert!(out.opt_upper_bound() + 1e-6 >= opt.profit(&p));
        // PS also stays within its (weaker) bound.
        let ps = ps_line_unit(
            &p,
            &PsConfig {
                seed,
                ..PsConfig::default()
            },
        );
        let ps_ratio = opt.profit(&p) / ps.profit(&p).max(1e-9);
        assert!(ps_ratio <= 4.0 * 5.1 + 1e-6, "seed {seed}: PS {ps_ratio}");
    }
}

#[test]
fn our_certified_bound_beats_ps_substantially() {
    // The paper's factor-5 improvement shows up as certified bounds ~5×
    // tighter on average.
    let mut ours_total = 0.0;
    let mut ps_total = 0.0;
    for seed in 0..8u64 {
        let p = LineWorkload::new(40, 30)
            .with_resources(2)
            .with_len_range(1, 10)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let ours = solve_line_unit(&p, &SolverConfig::default().with_seed(seed)).unwrap();
        let ps = ps_line_unit(
            &p,
            &PsConfig {
                seed,
                ..PsConfig::default()
            },
        );
        ours_total += ours.certified_ratio(&p);
        ps_total += ps.certified_ratio(&p);
    }
    assert!(
        ps_total > 2.0 * ours_total,
        "expected a large certified-bound gap, got ours {ours_total} vs PS {ps_total}"
    );
}

#[test]
fn arbitrary_height_stack() {
    for seed in 0..4u64 {
        let p = TreeWorkload::new(16, 18)
            .with_networks(2)
            .with_heights(HeightMode::Bimodal {
                narrow_frac: 0.5,
                hmin: 0.15,
            })
            .generate(&mut SmallRng::seed_from_u64(seed));
        let combined = solve_tree_arbitrary(&p, &SolverConfig::default().with_seed(seed)).unwrap();
        combined.solution.verify(&p).unwrap();
        let seq = solve_sequential_tree(&p);
        seq.solution.verify(&p).unwrap();
        let greedy = greedy_profit(&p, GreedyOrder::Density);
        greedy.verify(&p).unwrap();
    }
}

#[test]
fn all_solvers_handle_single_demand() {
    // Degenerate but legal: one demand, one network.
    let mut b = treenet::model::ProblemBuilder::new();
    let t = b.add_network(treenet::graph::Tree::line(4)).unwrap();
    b.add_demand(
        treenet::model::Demand::pair(
            treenet::graph::VertexId(0),
            treenet::graph::VertexId(3),
            2.0,
        ),
        &[t],
    )
    .unwrap();
    let p = b.build().unwrap();
    let out = solve_tree_unit(&p, &SolverConfig::default()).unwrap();
    assert_eq!(out.solution.len(), 1);
    assert_eq!(out.profit(&p), 2.0);
    let seq = solve_sequential_tree(&p);
    assert_eq!(seq.profit(&p), 2.0);
    let line = solve_line_unit(&p, &SolverConfig::default()).unwrap();
    assert_eq!(line.profit(&p), 2.0);
}

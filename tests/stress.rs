//! Scale tests: moderate sizes run in the default suite; the large ones
//! are `#[ignore]`d (run with `cargo test --release -- --ignored`).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet::core::{solve_line_unit, solve_sequential_tree, solve_tree_unit, SolverConfig};
use treenet::model::workload::{LineWorkload, TreeWorkload};

#[test]
fn moderate_tree_instance() {
    // n = 200 vertices, 400 demands, 4 networks: a realistic mid-size run.
    let p = TreeWorkload::new(200, 400)
        .with_networks(4)
        .with_profit_ratio(32.0)
        .generate(&mut SmallRng::seed_from_u64(1));
    let out = solve_tree_unit(&p, &SolverConfig::default()).unwrap();
    out.solution.verify(&p).unwrap();
    assert!(out.lambda >= 0.9 - 1e-9);
    assert!(out.certified_ratio(&p) <= 7.0 / 0.9 + 1e-6);
    // Epoch count stays logarithmic.
    assert!(out.stats.epochs as f64 <= 2.0 * (200f64).log2().ceil() + 1.0);
}

#[test]
fn moderate_line_instance() {
    let p = LineWorkload::new(300, 500)
        .with_resources(4)
        .with_window_slack(4)
        .with_len_range(1, 40)
        .generate(&mut SmallRng::seed_from_u64(2));
    let out = solve_line_unit(&p, &SolverConfig::default()).unwrap();
    out.solution.verify(&p).unwrap();
    assert!(out.delta <= 3);
    assert!(out.certified_ratio(&p) <= 4.0 / 0.9 + 1e-6);
}

#[test]
#[ignore = "large: ~n=2048, run with --ignored in release"]
fn large_tree_instance() {
    let p = TreeWorkload::new(2048, 4096)
        .with_networks(3)
        .with_profit_ratio(64.0)
        .generate(&mut SmallRng::seed_from_u64(3));
    let out = solve_tree_unit(&p, &SolverConfig::default()).unwrap();
    out.solution.verify(&p).unwrap();
    assert!(out.lambda >= 0.9 - 1e-9);
    assert!(out.stats.epochs as f64 <= 2.0 * (2048f64).log2().ceil() + 1.0);
    let seq = solve_sequential_tree(&p);
    seq.solution.verify(&p).unwrap();
}

#[test]
#[ignore = "large: dense windows, run with --ignored in release"]
fn large_line_instance() {
    let p = LineWorkload::new(1000, 2000)
        .with_resources(4)
        .with_window_slack(8)
        .with_len_range(1, 100)
        .generate(&mut SmallRng::seed_from_u64(4));
    let out = solve_line_unit(&p, &SolverConfig::default()).unwrap();
    out.solution.verify(&p).unwrap();
    assert!(out.certified_ratio(&p) <= 4.0 / 0.9 + 1e-6);
}

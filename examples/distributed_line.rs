//! Distributed line scheduling: run the paper's Section-7 algorithms as
//! real message passing over a synchronous network simulation, and check
//! that the execution reproduces the logical solvers bit-for-bit.
//!
//! A line-network models a shared resource over time: timeslot `i` is
//! edge `i`, and a window demand ⟨release, deadline, processing⟩ asks for
//! `processing` consecutive slots anywhere inside its window. Two
//! machines (networks) serve jobs of mixed bandwidth (height), so the
//! wide/narrow split of Theorem 7.2 kicks in.
//!
//! ```sh
//! cargo run --example distributed_line
//! ```

use treenet::core::{solve_auto, AutoChoice, SolverConfig};
use treenet::dist::{run_distributed_auto, DistAutoRun, DistConfig};
use treenet::graph::Tree;
use treenet::model::{Demand, ProblemBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two machines with 16 timeslots each (a canonical line network has
    // one edge per slot).
    let mut builder = ProblemBuilder::new();
    let fast = builder.add_network(Tree::line(17))?;
    let slow = builder.add_network(Tree::line(17))?;

    // Jobs: windows with processing times, profits and bandwidths.
    // Heights ≤ 1/2 go through the narrow rule, > 1/2 through the unit
    // rule; the per-network combiner keeps the better half per machine.
    builder.add_demand(Demand::window(0, 7, 4, 8.0), &[fast, slow])?;
    builder.add_demand(Demand::window(2, 9, 3, 5.0).with_height(0.4), &[fast])?;
    builder.add_demand(Demand::window(4, 15, 6, 9.0), &[fast, slow])?;
    builder.add_demand(Demand::window(6, 12, 2, 3.0).with_height(0.25), &[slow])?;
    builder.add_demand(
        Demand::window(10, 15, 4, 6.0).with_height(0.5),
        &[fast, slow],
    )?;
    builder.add_demand(Demand::window(0, 5, 2, 2.5), &[slow])?;
    let problem = builder.build()?;

    println!(
        "problem: {} machines x 16 slots, {} jobs, {} demand instances",
        problem.network_count(),
        problem.demand_count(),
        problem.instance_count(),
    );

    // The distributed run: one protocol node per job, single-hop O(M)-bit
    // messages, the Section-7 length-class layering (Δ ≤ 3).
    let config = SolverConfig::default().with_epsilon(0.1).with_seed(42);
    let distributed = run_distributed_auto(&problem, &DistConfig::from(&config))?;
    assert_eq!(distributed.choice, AutoChoice::LineArbitrary);

    let DistAutoRun::Split(split) = &distributed.run else {
        unreachable!("mixed heights dispatch to the wide/narrow split");
    };
    println!(
        "wide half:   {} steps, {} compute rounds, λ = {:.4}",
        split.wide.schedule.num_steps(),
        split.wide.schedule.total_rounds(),
        split.wide.lambda,
    );
    println!(
        "narrow half: {} steps, {} compute rounds, λ = {:.4}",
        split.narrow.schedule.num_steps(),
        split.narrow.schedule.total_rounds(),
        split.narrow.lambda,
    );
    println!(
        "shared engine: {} rounds ({} in-network control sweeps), {} messages",
        split.metrics.rounds,
        split.wide.schedule.sweeps + split.narrow.schedule.sweeps,
        split.metrics.messages,
    );
    println!(
        "max message size: {} bits (one demand descriptor — the paper's O(M))",
        split.metrics.max_message_bits,
    );

    // The message-passing execution equals the logical Theorem-7.2 run
    // exactly: same scheduled jobs, bit-identical λ.
    let logical = solve_auto(&problem, &config)?;
    assert_eq!(logical.choice, distributed.choice);
    assert_eq!(logical.solution, distributed.solution);
    assert_eq!(logical.lambda.to_bits(), distributed.lambda.to_bits());
    distributed.solution.verify(&problem)?;

    println!(
        "\nscheduled jobs (instance ids): {:?}",
        distributed.solution.selected()
    );
    println!(
        "profit {:.1} of {:.1} total; distributed == logical, λ bit-identical ✓",
        distributed.solution.profit(&problem),
        problem.total_profit(),
    );
    Ok(())
}

//! Decomposition explorer: builds all three tree decompositions of
//! Section 4 for the paper's example tree (Figure 6) and prints their
//! structure, pivot sets, and the capture node / critical edges of the
//! running-example demand ⟨4, 13⟩ — reproducing the discussion around
//! Figures 3 and 6.
//!
//! ```sh
//! cargo run --example decomposition_explorer
//! ```

use treenet::decomp::{capture_node, critical_edges, Strategy};
use treenet::graph::{RootedTree, VertexId};
use treenet::model::fixtures::{figure6_tree, paper_vertex};

fn label(v: VertexId) -> u32 {
    v.0 + 1 // paper labels are 1-based
}

fn main() {
    let tree = figure6_tree();
    let rooted = RootedTree::new(&tree, VertexId(0));
    println!("the paper's Figure-6 tree ({} vertices):", tree.len());
    for (e, (u, v)) in tree.edges() {
        print!("  {}-{}", label(u), label(v));
        if e.0 % 5 == 4 {
            println!();
        }
    }
    println!("\n");

    // The running example: demand ⟨4, 13⟩ routes 4-2-5-8-13.
    let path = rooted.path(paper_vertex(4), paper_vertex(13));
    let labels: Vec<String> = path
        .vertices()
        .iter()
        .map(|&v| label(v).to_string())
        .collect();
    println!("demand ⟨4, 13⟩ routes along {}", labels.join("-"));

    for strategy in Strategy::ALL {
        let h = strategy.build(&tree);
        h.verify(&tree).expect("valid decomposition");
        println!("\n=== {} decomposition ===", strategy.name());
        println!("depth = {}, pivot size θ = {}", h.depth(), h.pivot_size());

        // Print H as an indented tree.
        fn dump(h: &treenet::decomp::TreeDecomposition, z: VertexId, indent: usize) {
            let pivots: Vec<String> = h.pivot(z).iter().map(|&u| label(u).to_string()).collect();
            println!(
                "{}{}  χ = {{{}}}",
                "  ".repeat(indent),
                label(z),
                pivots.join(", ")
            );
            for &c in h.children(z) {
                dump(h, c, indent + 1);
            }
        }
        dump(&h, h.root(), 1);

        let mu = capture_node(&h, &path);
        let pi = critical_edges(&h, &rooted, &path);
        let pi_str: Vec<String> = pi
            .iter()
            .map(|&e| {
                let (u, v) = tree.endpoints(e);
                format!("⟨{},{}⟩", label(u), label(v))
            })
            .collect();
        println!(
            "⟨4,13⟩ captured at µ = {}, critical edges π = {{{}}} (|π| = {} ≤ 2(θ+1) = {})",
            label(mu),
            pi_str.join(", "),
            pi.len(),
            2 * (h.pivot_size() + 1)
        );
    }

    println!(
        "\nthe trade-off of Section 4: root-fixing = ⟨deep, θ=1⟩, balancing = \
         ⟨log n, θ up to log n⟩, ideal = ⟨2 log n, θ ≤ 2⟩ — only the ideal \
         decomposition gives both a polylogarithmic epoch count and constant Δ."
    );
}

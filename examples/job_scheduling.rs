//! Job scheduling with release times and deadlines on shared machines —
//! the line-networks-with-windows setting of Section 7.
//!
//! The timeline is a line-network (timeslot `i` = edge `i`); each machine
//! is one resource; a job has a window `[release, deadline]`, a
//! processing time, a profit, and a capacity share (height) — e.g. the
//! fraction of the machine's memory it pins. The scheduler picks jobs,
//! machines and start times, keeping every machine within capacity at
//! every timeslot.
//!
//! ```sh
//! cargo run --example job_scheduling
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treenet::baseline::{barnoy_line_arbitrary, ps_line_arbitrary, PsConfig};
use treenet::core::{solve_line_arbitrary, SolverConfig};
use treenet::graph::Tree;
use treenet::model::{Demand, ProblemBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(99);
    let horizon = 48usize; // timeslots (e.g. half-hour slots over a day)
    let machines = 3;
    let jobs = 60;

    let mut builder = ProblemBuilder::new();
    let pool: Vec<_> = (0..machines)
        .map(|_| builder.add_network(Tree::line(horizon + 1)))
        .collect::<Result<_, _>>()?;

    for _ in 0..jobs {
        let processing = rng.gen_range(2..10u32);
        let slack = rng.gen_range(0..8u32);
        let window = (processing + slack).min(horizon as u32);
        let release = rng.gen_range(0..=(horizon as u32 - window));
        let deadline = release + window - 1;
        let profit = rng.gen_range(1.0..20.0f64);
        // A third of the jobs are heavyweight (wide), the rest share.
        let height = if rng.gen_bool(0.33) {
            rng.gen_range(0.6..1.0)
        } else {
            rng.gen_range(0.15..0.5)
        };
        // Jobs can run on a random subset of machines.
        let mut eligible: Vec<_> = pool.iter().copied().filter(|_| rng.gen_bool(0.6)).collect();
        if eligible.is_empty() {
            eligible.push(pool[rng.gen_range(0..pool.len())]);
        }
        builder.add_demand(
            Demand::window(release, deadline, processing, profit).with_height(height),
            &eligible,
        )?;
    }
    let problem = builder.build()?;
    println!(
        "scheduling {jobs} windowed jobs on {machines} machines over {horizon} slots \
         ({} start-time instances)",
        problem.instance_count()
    );

    // Ours: (23+ε)-approximation (Theorem 7.2) vs the PS-style baseline.
    let ours = solve_line_arbitrary(&problem, &SolverConfig::default().with_seed(5))?;
    ours.solution.verify(&problem)?;
    let (ps_solution, ps_wide, ps_narrow) = ps_line_arbitrary(&problem, &PsConfig::default());
    ps_solution.verify(&problem)?;

    println!("\nours (Theorem 7.2):");
    println!(
        "  scheduled {} jobs, profit {:.1}",
        ours.solution.len(),
        ours.profit(&problem)
    );
    println!(
        "  certified ratio {:.3} (bound 23/(1-ε) = {:.2})",
        ours.certified_ratio(&problem),
        23.0 / 0.9
    );
    println!(
        "  wide sub-run: {} jobs; narrow sub-run: {} jobs",
        ours.wide.solution.len(),
        ours.narrow.solution.len()
    );

    let ps_bound = ps_wide.opt_upper_bound() + ps_narrow.opt_upper_bound();
    let ps_profit = ps_solution.profit(&problem);
    println!("\nPanconesi–Sozio style baseline (distributed, single-stage):");
    println!(
        "  scheduled {} jobs, profit {:.1}",
        ps_solution.len(),
        ps_profit
    );
    println!("  certified ratio {:.3}", ps_bound / ps_profit.max(1e-9));

    // The sequential state of the art the paper starts from: Bar-Noy et
    // al.'s 5-approximation — tightest certificate, but inherently serial.
    let (bn_solution, bn_wide, bn_narrow) = barnoy_line_arbitrary(&problem);
    bn_solution.verify(&problem)?;
    let bn_bound = bn_wide.opt_upper_bound() + bn_narrow.opt_upper_bound();
    let bn_profit = bn_solution.profit(&problem);
    println!("\nBar-Noy et al. baseline (sequential 5-approx):");
    println!(
        "  scheduled {} jobs, profit {:.1}",
        bn_solution.len(),
        bn_profit
    );
    println!(
        "  certified ratio {:.3} after {} serialized raises",
        bn_bound / bn_profit.max(1e-9),
        bn_wide.raises + bn_narrow.raises
    );

    // Print a small Gantt-like view of machine 0 under our solution.
    println!("\nmachine 0 occupancy (our solution, '#' ≥ 80% load, '+' ≥ 40%, '.' busy):");
    let mut load = vec![0.0f64; horizon];
    for &d in ours.solution.selected() {
        let inst = problem.instance(d);
        if inst.network == pool[0] {
            for &e in inst.path.edges() {
                load[e.index()] += problem.height_of(d);
            }
        }
    }
    let row: String = load
        .iter()
        .map(|&l| {
            if l >= 0.8 {
                '#'
            } else if l >= 0.4 {
                '+'
            } else if l > 0.0 {
                '.'
            } else {
                ' '
            }
        })
        .collect();
    println!("  |{row}|");
    Ok(())
}

//! Bandwidth allocation on an aggregation tree — the arbitrary height
//! case of Section 6.
//!
//! A datacenter aggregation network is a tree; tenants request a
//! bandwidth share (height ∈ (0,1]) between two hosts, over one of
//! several redundant fabric planes (tree-networks). The scheduler admits
//! a max-profit subset subject to every link's capacity, using the
//! wide/narrow split and the per-plane combiner of Theorem 6.3, and
//! cross-checks against the exact optimum.
//!
//! ```sh
//! cargo run --example bandwidth_allocation
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treenet::baseline::exact_max_profit;
use treenet::core::{solve_tree_arbitrary, SolverConfig};
use treenet::graph::generators::TreeFamily;
use treenet::model::{Demand, HeightClass, ProblemBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(314);
    let hosts = 24;
    let planes = 2;
    let flows = 14; // small enough for the exact reference

    let mut builder = ProblemBuilder::new();
    let fabric: Vec<_> = (0..planes)
        .map(|_| builder.add_network(TreeFamily::BalancedBinary.generate(hosts, &mut rng)))
        .collect::<Result<_, _>>()?;

    for _ in 0..flows {
        let u = rng.gen_range(0..hosts as u32);
        let mut v = rng.gen_range(0..hosts as u32 - 1);
        if v >= u {
            v += 1;
        }
        let value = rng.gen_range(1.0..10.0f64);
        // Elephants want most of a link; mice share.
        let share = if rng.gen_bool(0.4) {
            rng.gen_range(0.55..0.95)
        } else {
            rng.gen_range(0.1..0.5)
        };
        builder.add_demand(
            Demand::pair(u.into(), v.into(), value).with_height(share),
            &fabric,
        )?;
    }
    let problem = builder.build()?;
    let wide = problem
        .demands()
        .filter(|&a| problem.demand(a).height_class() == HeightClass::Wide)
        .count();
    println!(
        "{} flows ({} elephants, {} mice) over {} fabric planes of {} hosts",
        flows,
        wide,
        flows - wide,
        planes,
        hosts
    );

    let outcome = solve_tree_arbitrary(&problem, &SolverConfig::default().with_seed(11))?;
    outcome.solution.verify(&problem)?;
    println!(
        "\nadmitted {} flows, value {:.2}",
        outcome.solution.len(),
        outcome.profit(&problem)
    );
    println!(
        "  wide sub-solution: {:.2}; narrow sub-solution: {:.2}; combined: {:.2}",
        outcome.wide.solution.profit(&problem),
        outcome.narrow.solution.profit(&problem),
        outcome.profit(&problem),
    );
    println!(
        "certified ratio {:.3} (Theorem 6.3 bound: 80/(1-ε) = {:.1})",
        outcome.certified_ratio(&problem),
        80.0 / 0.9
    );

    match exact_max_profit(&problem, 50_000_000) {
        Ok(opt) => {
            let ratio = opt.profit(&problem) / outcome.profit(&problem).max(1e-9);
            println!(
                "exact optimum {:.2} → true ratio {:.3} (far below the worst-case bound)",
                opt.profit(&problem),
                ratio
            );
        }
        Err(e) => println!("exact reference skipped: {e}"),
    }

    // Show the per-plane choice the combiner made.
    for (i, &plane) in fabric.iter().enumerate() {
        let from_wide = outcome
            .solution
            .selected()
            .iter()
            .filter(|&&d| {
                problem.instance(d).network == plane
                    && problem.demand(problem.instance(d).demand).height_class()
                        == HeightClass::Wide
            })
            .count();
        let total = outcome
            .solution
            .selected()
            .iter()
            .filter(|&&d| problem.instance(d).network == plane)
            .count();
        println!(
            "plane {i}: {total} flows admitted ({from_wide} wide / {} narrow)",
            total - from_wide
        );
    }
    Ok(())
}

//! Wavelength routing in an optical access network — the scenario the
//! paper's introduction motivates: processors compete for exclusive
//! routes/channels.
//!
//! A passive optical network has a physical fiber tree; each WDM
//! wavelength is an independent tree-network over the same sites. A
//! lightpath request ⟨u, v⟩ needs exclusive use of its wavelength on
//! every fiber segment along the route (the unit height case: two
//! lightpaths on one wavelength must be edge-disjoint). Not every
//! transceiver is tunable to every wavelength — that is the paper's
//! accessibility relation `Acc(P)`.
//!
//! ```sh
//! cargo run --example wavelength_routing
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treenet::baseline::{greedy_profit, GreedyOrder};
use treenet::core::{solve_sequential_tree, solve_tree_unit, SolverConfig};
use treenet::graph::generators::TreeFamily;
use treenet::model::{Demand, ProblemBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(2026);
    let sites = 48; // splitters/ONUs in the fiber plant
    let wavelengths = 4;
    let requests = 80;

    // The same physical tree carries every wavelength.
    let fiber = TreeFamily::Caterpillar.generate(sites, &mut rng);
    let mut builder = ProblemBuilder::new();
    let lambdas: Vec<_> = (0..wavelengths)
        .map(|_| builder.add_network(fiber.clone()))
        .collect::<Result<_, _>>()?;

    // Lightpath requests with revenue; each transceiver tunes to a random
    // subset of wavelengths.
    for _ in 0..requests {
        let u = rng.gen_range(0..sites as u32);
        let mut v = rng.gen_range(0..sites as u32 - 1);
        if v >= u {
            v += 1;
        }
        let revenue = rng.gen_range(1.0..16.0f64);
        let mut tunable: Vec<_> = lambdas
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.5))
            .collect();
        if tunable.is_empty() {
            tunable.push(lambdas[rng.gen_range(0..lambdas.len())]);
        }
        builder.add_demand(Demand::pair(u.into(), v.into(), revenue), &tunable)?;
    }
    let problem = builder.build()?;
    println!(
        "PON: {sites} sites, {wavelengths} wavelengths, {requests} lightpath requests \
         ({} schedulable instances)",
        problem.instance_count()
    );

    // Distributed (7+ε)-approximation vs the sequential 3-approximation
    // vs revenue-greedy.
    let distributed = solve_tree_unit(&problem, &SolverConfig::default().with_seed(7))?;
    distributed.solution.verify(&problem)?;
    let sequential = solve_sequential_tree(&problem);
    sequential.solution.verify(&problem)?;
    let greedy = greedy_profit(&problem, GreedyOrder::Profit);

    let total: f64 = problem.total_profit();
    println!(
        "\n{:<28}{:>10}{:>12}{:>16}",
        "algorithm", "revenue", "requests", "certified ratio"
    );
    println!(
        "{:<28}{:>10.1}{:>12}{:>16.3}",
        "distributed (7+eps)",
        distributed.profit(&problem),
        distributed.solution.len(),
        distributed.certified_ratio(&problem),
    );
    println!(
        "{:<28}{:>10.1}{:>12}{:>16.3}",
        "sequential (3-approx)",
        sequential.profit(&problem),
        sequential.solution.len(),
        sequential.certified_ratio(&problem),
    );
    println!(
        "{:<28}{:>10.1}{:>12}{:>16}",
        "revenue-greedy",
        greedy.profit(&problem),
        greedy.len(),
        "-",
    );
    println!("\ntotal offered revenue: {total:.1}");
    println!(
        "distributed run used {} communication rounds ({} MIS iterations) — \
         polylogarithmic, while the sequential algorithm performed {} strictly \
         serialized raises.",
        distributed.stats.comm_rounds, distributed.stats.mis_rounds, sequential.raises,
    );
    Ok(())
}

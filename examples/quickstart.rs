//! Quickstart: build a small tree-network instance, run the distributed
//! (7+ε)-approximation scheduler (Theorem 5.3), and inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use treenet::core::{solve_tree_unit, SolverConfig};
use treenet::graph::{Tree, VertexId};
use treenet::model::{Demand, ProblemBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two tree-networks over the same 8 vertices: a path and a star-ish
    // tree. Think of them as two independent channels over the same sites.
    let mut builder = ProblemBuilder::new();
    let path = builder.add_network(Tree::line(8))?;
    let star = builder.add_network(Tree::from_edges(
        8,
        &[(0, 1), (0, 2), (0, 3), (3, 4), (3, 5), (5, 6), (5, 7)],
    )?)?;

    // Five processors, each owning one demand ⟨u, v⟩ with a profit.
    // Access sets differ: some processors can use both channels.
    builder.add_demand(Demand::pair(VertexId(0), VertexId(4), 5.0), &[path, star])?;
    builder.add_demand(Demand::pair(VertexId(2), VertexId(6), 4.0), &[path])?;
    builder.add_demand(Demand::pair(VertexId(1), VertexId(7), 3.0), &[star])?;
    builder.add_demand(Demand::pair(VertexId(5), VertexId(7), 2.0), &[path, star])?;
    builder.add_demand(Demand::pair(VertexId(0), VertexId(2), 1.5), &[star])?;
    let problem = builder.build()?;

    println!(
        "problem: n = {} vertices, r = {} networks, m = {} demands, |D| = {} instances",
        problem.vertex_count(),
        problem.network_count(),
        problem.demand_count(),
        problem.instance_count(),
    );

    // Run the scheduler: ε = 0.1 targets (1-ε)-satisfied duals and a
    // certified factor of at most 7/(1-ε).
    let config = SolverConfig::default().with_epsilon(0.1).with_seed(42);
    let outcome = solve_tree_unit(&problem, &config)?;
    outcome.solution.verify(&problem)?;

    println!("\nselected instances:");
    for &d in outcome.solution.selected() {
        let inst = problem.instance(d);
        let path_str: Vec<String> = inst
            .path
            .vertices()
            .iter()
            .map(|v| v.0.to_string())
            .collect();
        println!(
            "  demand {} on {}: route {} (profit {})",
            inst.demand,
            inst.network,
            path_str.join("-"),
            problem.profit_of(d),
        );
    }

    println!("\nprofit p(S)            = {:.2}", outcome.profit(&problem));
    println!("dual bound on OPT      = {:.2}", outcome.opt_upper_bound());
    println!(
        "certified approx ratio = {:.3}  (Theorem 5.3 guarantees ≤ {:.3})",
        outcome.certified_ratio(&problem),
        7.0 / 0.9,
    );
    println!(
        "rounds: {} epochs, {} stages, {} steps, {} Luby iterations (~{} comm rounds)",
        outcome.stats.epochs,
        outcome.stats.stages,
        outcome.stats.steps,
        outcome.stats.mis_rounds,
        outcome.stats.comm_rounds,
    );
    Ok(())
}

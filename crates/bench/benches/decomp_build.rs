//! Criterion bench: building the three tree decompositions (Section 4)
//! across sizes — the preprocessing cost of the scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_decomp::Strategy;
use treenet_graph::generators::random_tree;

fn bench_decompositions(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomp_build");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        let tree = random_tree(n, &mut SmallRng::seed_from_u64(7));
        for strategy in Strategy::ALL {
            group.bench_with_input(BenchmarkId::new(strategy.name(), n), &tree, |b, tree| {
                b.iter(|| std::hint::black_box(strategy.build(tree)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_decompositions);
criterion_main!(benches);

//! Criterion bench: ours vs Panconesi–Sozio vs greedy vs exact DP on the
//! same line workloads — the cost side of the T1 comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_baseline::{greedy_profit, ps_line_unit, weighted_interval_dp, GreedyOrder, PsConfig};
use treenet_core::{solve_line_unit, SolverConfig};
use treenet_model::workload::LineWorkload;
use treenet_model::Problem;

fn workload(m: usize, resources: usize) -> Problem {
    LineWorkload::new(48, m)
        .with_resources(resources)
        .with_len_range(1, 12)
        .generate(&mut SmallRng::seed_from_u64(11))
}

fn bench_line_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("line_solvers");
    group.sample_size(10);
    for m in [40usize, 120] {
        let p = workload(m, 2);
        group.bench_with_input(BenchmarkId::new("ours", m), &p, |b, p| {
            b.iter(|| solve_line_unit(p, &SolverConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ps", m), &p, |b, p| {
            b.iter(|| ps_line_unit(p, &PsConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("greedy", m), &p, |b, p| {
            b.iter(|| greedy_profit(p, GreedyOrder::Density))
        });
        let single = workload(m, 1);
        group.bench_with_input(BenchmarkId::new("exact_dp_r1", m), &single, |b, p| {
            b.iter(|| weighted_interval_dp(p).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_line_solvers);
criterion_main!(benches);

//! Criterion bench: end-to-end scheduler runs — the tree/line solvers of
//! Theorems 5.3/6.3/7.1/7.2 and the sequential Appendix-A algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_core::{
    solve_line_unit, solve_sequential_tree, solve_tree_arbitrary, solve_tree_unit, SolverConfig,
};
use treenet_model::workload::{HeightMode, LineWorkload, TreeWorkload};

fn bench_tree_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_unit");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let p = TreeWorkload::new(n, 2 * n)
            .with_networks(3)
            .generate(&mut SmallRng::seed_from_u64(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve_tree_unit(p, &SolverConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_tree_arbitrary(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_arbitrary");
    group.sample_size(10);
    for n in [32usize, 64] {
        let p = TreeWorkload::new(n, 2 * n)
            .with_networks(2)
            .with_heights(HeightMode::Bimodal {
                narrow_frac: 0.5,
                hmin: 0.25,
            })
            .generate(&mut SmallRng::seed_from_u64(2));
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve_tree_arbitrary(p, &SolverConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_line_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("line_unit");
    group.sample_size(10);
    for m in [40usize, 80, 160] {
        let p = LineWorkload::new(64, m)
            .with_resources(3)
            .with_window_slack(3)
            .with_len_range(1, 16)
            .generate(&mut SmallRng::seed_from_u64(3));
        group.bench_with_input(BenchmarkId::from_parameter(m), &p, |b, p| {
            b.iter(|| solve_line_unit(p, &SolverConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_tree");
    group.sample_size(10);
    for n in [64usize, 256] {
        let p = TreeWorkload::new(n, 2 * n)
            .with_networks(3)
            .generate(&mut SmallRng::seed_from_u64(4));
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve_sequential_tree(p))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tree_unit,
    bench_tree_arbitrary,
    bench_line_unit,
    bench_sequential
);
criterion_main!(benches);

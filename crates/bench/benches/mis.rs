//! Criterion bench: Luby MIS on conflict graphs (the `Time(MIS)` factor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_mis::{greedy_mis, luby_mis};
use treenet_model::conflict::ConflictGraph;
use treenet_model::workload::TreeWorkload;
use treenet_model::InstanceId;

fn conflict_adj(n: usize, seed: u64) -> (Vec<Vec<u32>>, Vec<u64>) {
    let p = TreeWorkload::new(n, 2 * n)
        .with_networks(3)
        .generate(&mut SmallRng::seed_from_u64(seed));
    let ids: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
    let g = ConflictGraph::build(&p, &ids);
    let adj = (0..g.len()).map(|v| g.neighbors(v).to_vec()).collect();
    let keys = (0..g.len() as u64).collect();
    (adj, keys)
}

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        let (adj, keys) = conflict_adj(n, 5);
        group.bench_with_input(
            BenchmarkId::new("luby", n),
            &(adj.clone(), keys),
            |b, (adj, keys)| b.iter(|| luby_mis(adj, keys, 9, 0)),
        );
        group.bench_with_input(BenchmarkId::new("greedy", n), &adj, |b, adj| {
            b.iter(|| greedy_mis(adj))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mis);
criterion_main!(benches);

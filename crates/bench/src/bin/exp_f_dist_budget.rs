//! **Experiment F-dist-budget** — the round/message-budget regression
//! gate for the message-passing schedulers: runs every distributed
//! runner (in-network control plane) over a fixed, fully deterministic
//! scenario grid, records engine rounds / messages / bits / max message
//! size plus the serial reference rounds (the wall-clock win of the
//! merged wide/narrow execution), and writes `BENCH_dist_rounds.json`.
//!
//! With `--baseline <path>` the bin compares against a committed
//! baseline and **exits non-zero** when
//!
//! * a scenario's rounds or messages regress by more than 10%, or
//! * any message exceeds the paper's `O(M)`-bit bound (one demand
//!   descriptor), or
//! * a baseline scenario disappeared from the run.
//!
//! Independent of any baseline, the flagship mixed scenario
//! (`auto-mixed-24x10`) must keep its engine rounds within
//! [`CONTROL_CEILING`]× of the driver-counted serial reference — the
//! amortized control plane's headline claim, enforced on the PR smoke
//! lane where the committed baseline is not regenerated.
//!
//! The `O(M)` check is two-sided and registry-driven: the static bit
//! table in `crates/lint/protocol_registry.toml` (the same file
//! `treenet-lint` cross-checks against the `DistMsg` source) must
//! declare no width over the descriptor bound, and the largest message
//! actually observed must stay within the largest declared width — so
//! the static table and this runtime gate can never drift apart.
//!
//! Flags (shared across the dist bench bins via
//! `treenet_bench::DistArgs`): `--smoke` runs the reduced grid,
//! `--scenarios a,b` filters by name substring, `--out <path>` picks the
//! output file.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use treenet_bench::{DistArgs, Table};
use treenet_dist::{
    descriptor_bits, run_distributed_auto, run_distributed_auto_reference,
    run_distributed_line_arbitrary, run_distributed_line_arbitrary_reference,
    run_distributed_line_unit, run_distributed_line_unit_reference, run_distributed_tree_arbitrary,
    run_distributed_tree_arbitrary_reference, run_distributed_tree_unit,
    run_distributed_tree_unit_reference, DistAutoRun, DistConfig,
};
use treenet_lint::{Registry, REGISTRY_REL_PATH};
use treenet_model::workload::{HeightMode, LineWorkload, TreeWorkload};
use treenet_model::Problem;
use treenet_netsim::Metrics;

/// Schema tag checked on read-back (bump on layout changes).
const SCHEMA: &str = "treenet-bench/dist-budget/v2";

/// Allowed relative regression before the gate fails.
const TOLERANCE: f64 = 0.10;

/// Control-plane ceiling for [`CONTROL_CEILING_SCENARIO`]: in-network
/// engine rounds must stay within this factor of the serial reference
/// (with amortized sweeps and the overlapped prologue the typical ratio
/// is 2–3×; the per-step legacy sweeps sat at ~37×).
const CONTROL_CEILING: f64 = 5.0;
const CONTROL_CEILING_SCENARIO: &str = "auto-mixed-24x10";

/// Thread count of the parallel leg of the huge scenarios' speedup
/// measurement (the acceptance target is ≥ [`SPEEDUP_MIN`]× vs 1
/// thread).
const SPEEDUP_THREADS: usize = 8;

/// Required huge-grid speedup at [`SPEEDUP_THREADS`] threads — enforced
/// only on hosts that actually have that many CPUs (the measurement is
/// meaningless on the 2–4-vCPU CI runners; there it is recorded, not
/// gated).
const SPEEDUP_MIN: f64 = 3.0;

#[derive(Copy, Clone, Debug)]
enum Runner {
    TreeUnit,
    TreeArbitrary,
    LineUnit,
    LineArbitrary,
    Auto,
}

struct Scenario {
    name: &'static str,
    runner: Runner,
    /// Whether the smoke grid includes this scenario.
    smoke: bool,
    /// Huge (pod-structured, `m = 10⁵` processors) scenarios run the
    /// 1-vs-[`SPEEDUP_THREADS`]-thread speedup measurement in full mode.
    huge: bool,
}

const GRID: &[Scenario] = &[
    Scenario {
        name: "tree-unit-10x8",
        runner: Runner::TreeUnit,
        smoke: true,
        huge: false,
    },
    Scenario {
        name: "tree-arbitrary-10x8",
        runner: Runner::TreeArbitrary,
        smoke: true,
        huge: false,
    },
    Scenario {
        name: "line-unit-30x12",
        runner: Runner::LineUnit,
        smoke: true,
        huge: false,
    },
    Scenario {
        name: "line-arbitrary-30x12",
        runner: Runner::LineArbitrary,
        smoke: true,
        huge: false,
    },
    Scenario {
        name: "auto-mixed-24x10",
        runner: Runner::Auto,
        smoke: true,
        huge: false,
    },
    Scenario {
        name: "tree-unit-16x14",
        runner: Runner::TreeUnit,
        smoke: false,
        huge: false,
    },
    Scenario {
        name: "line-unit-48x24",
        runner: Runner::LineUnit,
        smoke: false,
        huge: false,
    },
    Scenario {
        name: "line-arbitrary-48x24",
        runner: Runner::LineArbitrary,
        smoke: false,
        huge: false,
    },
    // The huge pod grid: 10⁵ processors split into independent pods, so
    // the communication graph shards by connected component. tree-huge
    // is smoke-selectable for the CI scale-smoke step
    // (`--smoke --scenarios tree-huge --threads N`); the PR budget gate
    // excludes the huge grid via an explicit `--scenarios` list.
    Scenario {
        name: "tree-huge-100k",
        runner: Runner::TreeUnit,
        smoke: true,
        huge: true,
    },
    Scenario {
        name: "line-huge-100k",
        runner: Runner::LineUnit,
        smoke: false,
        huge: true,
    },
];

fn problem_for(s: &Scenario) -> Problem {
    let mut rng = SmallRng::seed_from_u64(0xd157_b0d6);
    match s.name {
        "tree-unit-10x8" => TreeWorkload::new(10, 8)
            .with_networks(2)
            .with_profit_ratio(4.0)
            .generate(&mut rng),
        "tree-arbitrary-10x8" => TreeWorkload::new(10, 8)
            .with_networks(2)
            .with_heights(HeightMode::Bimodal {
                narrow_frac: 0.5,
                hmin: 0.25,
            })
            .generate(&mut rng),
        "line-unit-30x12" => LineWorkload::new(30, 12)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(1, 8)
            .generate(&mut rng),
        "line-arbitrary-30x12" => LineWorkload::new(30, 12)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(1, 8)
            .with_heights(HeightMode::Bimodal {
                narrow_frac: 0.5,
                hmin: 0.2,
            })
            .generate(&mut rng),
        "auto-mixed-24x10" => LineWorkload::new(24, 10)
            .with_heights(HeightMode::Uniform { hmin: 0.25 })
            .generate(&mut rng),
        "tree-unit-16x14" => TreeWorkload::new(16, 14)
            .with_networks(2)
            .with_profit_ratio(8.0)
            .generate(&mut rng),
        "line-unit-48x24" => LineWorkload::new(48, 24)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(1, 8)
            .generate(&mut rng),
        "line-arbitrary-48x24" => LineWorkload::new(48, 24)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(1, 8)
            .with_heights(HeightMode::Bimodal {
                narrow_frac: 0.5,
                hmin: 0.2,
            })
            .generate(&mut rng),
        "tree-huge-100k" => TreeWorkload::new(24, 100_000)
            .with_networks(1)
            .with_pods(2500)
            .with_profit_ratio(4.0)
            .generate(&mut rng),
        "line-huge-100k" => LineWorkload::new(30, 100_000)
            .with_resources(1)
            .with_pods(2500)
            .with_window_slack(0)
            .with_len_range(1, 8)
            .generate(&mut rng),
        other => unreachable!("unknown scenario {other}"),
    }
}

/// Per-scenario measurements as persisted to `BENCH_dist_rounds.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ScenarioReport {
    name: String,
    /// Engine rounds of the in-network run (setup + compute + control
    /// [+ combiner]).
    rounds: u64,
    /// Total messages delivered.
    messages: u64,
    /// Total delivered bits.
    bits: u64,
    /// Largest single message, in bits.
    max_message_bits: u64,
    /// The paper's `O(M)` bound for this problem (one demand descriptor
    /// over all networks).
    bound_bits: u64,
    /// Engine rounds of the driver-counted serial reference — the
    /// baseline the merged wide/narrow execution beats on wall-clock.
    reference_rounds: u64,
    /// Wall-clock of the recorded in-network run, milliseconds.
    wall_ms: f64,
    /// Engine worker threads of the recorded run.
    threads: u64,
    /// Huge scenarios in full mode: single-thread wall-clock of the
    /// speedup measurement (`None` elsewhere).
    wall_ms_1t: Option<f64>,
    /// Huge scenarios in full mode: `wall_ms_1t / wall_ms` at
    /// [`SPEEDUP_THREADS`] threads (`None` elsewhere).
    speedup: Option<f64>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct BudgetReport {
    schema: String,
    mode: String,
    scenarios: Vec<ScenarioReport>,
}

/// One in-network execution: its metrics, λ (bit pattern — the
/// cross-thread identity witness) and wall-clock.
struct RunMeasure {
    metrics: Metrics,
    lambda_bits: u64,
    wall_ms: f64,
}

fn config_with(threads: usize) -> DistConfig {
    DistConfig {
        epsilon: 0.3,
        seed: 0x7ee5,
        threads,
        ..DistConfig::default()
    }
}

fn run_in_network(s: &Scenario, problem: &Problem, threads: usize) -> RunMeasure {
    let config = config_with(threads);
    let start = std::time::Instant::now();
    let (metrics, lambda) = match s.runner {
        Runner::TreeUnit => {
            let out = run_distributed_tree_unit(problem, &config).unwrap();
            (out.metrics, out.lambda)
        }
        Runner::TreeArbitrary => {
            let out = run_distributed_tree_arbitrary(problem, &config).unwrap();
            (out.metrics, out.lambda())
        }
        Runner::LineUnit => {
            let out = run_distributed_line_unit(problem, &config).unwrap();
            (out.metrics, out.lambda)
        }
        Runner::LineArbitrary => {
            let out = run_distributed_line_arbitrary(problem, &config).unwrap();
            (out.metrics, out.lambda())
        }
        Runner::Auto => {
            let out = run_distributed_auto(problem, &config).unwrap();
            match &out.run {
                DistAutoRun::Single(out) => (out.metrics, out.lambda),
                DistAutoRun::Split(out) => (out.metrics, out.lambda()),
            }
        }
    };
    RunMeasure {
        metrics,
        lambda_bits: lambda.to_bits(),
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
    }
}

fn reference_rounds_for(s: &Scenario, problem: &Problem, threads: usize) -> u64 {
    let config = config_with(threads);
    let auto_metrics = |run: &DistAutoRun| -> Metrics {
        match run {
            DistAutoRun::Single(out) => out.metrics,
            DistAutoRun::Split(out) => out.metrics,
        }
    };
    match s.runner {
        Runner::TreeUnit => {
            run_distributed_tree_unit_reference(problem, &config)
                .unwrap()
                .metrics
                .rounds
        }
        Runner::TreeArbitrary => {
            run_distributed_tree_arbitrary_reference(problem, &config)
                .unwrap()
                .metrics
                .rounds
        }
        Runner::LineUnit => {
            run_distributed_line_unit_reference(problem, &config)
                .unwrap()
                .metrics
                .rounds
        }
        Runner::LineArbitrary => {
            run_distributed_line_arbitrary_reference(problem, &config)
                .unwrap()
                .metrics
                .rounds
        }
        Runner::Auto => {
            auto_metrics(
                &run_distributed_auto_reference(problem, &config)
                    .unwrap()
                    .run,
            )
            .rounds
        }
    }
}

fn run_scenario(s: &Scenario, requested_threads: Option<usize>) -> ScenarioReport {
    let problem = problem_for(s);
    let (measure, threads, wall_ms_1t, speedup) = match requested_threads {
        // Explicit `--threads k`: one run at k (the CI scale-smoke path).
        Some(k) => (run_in_network(s, &problem, k), k, None, None),
        None if s.huge => {
            // Full mode, huge grid: the 1-vs-SPEEDUP_THREADS speedup
            // measurement with the cross-thread identity assert.
            let serial = run_in_network(s, &problem, 1);
            let parallel = run_in_network(s, &problem, SPEEDUP_THREADS);
            assert_eq!(
                serial.metrics, parallel.metrics,
                "{}: metrics differ across thread counts",
                s.name
            );
            assert_eq!(
                serial.lambda_bits, parallel.lambda_bits,
                "{}: lambda differs across thread counts",
                s.name
            );
            let speedup = serial.wall_ms / parallel.wall_ms;
            (
                parallel,
                SPEEDUP_THREADS,
                Some(serial.wall_ms),
                Some(speedup),
            )
        }
        None => (run_in_network(s, &problem, 1), 1, None, None),
    };
    let reference_rounds = reference_rounds_for(s, &problem, threads);
    ScenarioReport {
        name: s.name.to_string(),
        rounds: measure.metrics.rounds,
        messages: measure.metrics.messages,
        bits: measure.metrics.bits,
        max_message_bits: measure.metrics.max_message_bits,
        bound_bits: descriptor_bits(problem.network_count()),
        reference_rounds,
        wall_ms: measure.wall_ms,
        threads: threads as u64,
        wall_ms_1t,
        speedup,
    }
}

/// Loads the protocol registry the lint enforces, so this gate prices
/// its bound off the same committed table. Tries the workspace-relative
/// path first (CI runs from the root), then the source-tree location.
fn load_registry() -> Registry {
    let local = std::path::Path::new(REGISTRY_REL_PATH);
    let fallback = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../crates/lint/protocol_registry.toml");
    let path = if local.is_file() {
        local
    } else {
        fallback.as_path()
    };
    match Registry::load(path) {
        Ok(registry) => registry,
        Err(e) => {
            eprintln!("cannot load {REGISTRY_REL_PATH}: {e}");
            std::process::exit(1);
        }
    }
}

/// The gate: every scenario within the O(M)-bit bound — both the
/// registry's static widths and the observed traffic — and no >10%
/// regression in rounds or messages against the baseline. Returns the
/// failures as human-readable lines.
fn gate(current: &[ScenarioReport], baseline: &BudgetReport, registry: &Registry) -> Vec<String> {
    let mut failures = Vec::new();
    for row in current {
        // Static side: no declared width may exceed the paper's O(M)
        // descriptor bound for this problem.
        let declared_max = registry.max_message_bits(row.bound_bits);
        if declared_max > row.bound_bits {
            failures.push(format!(
                "{}: {REGISTRY_REL_PATH} declares a {declared_max}-bit message, over the \
                 O(M) bound of {} bits",
                row.name, row.bound_bits
            ));
        }
        // Runtime side: observed traffic within the declared widths
        // (and hence, given the static check, within O(M)).
        if row.max_message_bits > declared_max {
            failures.push(format!(
                "{}: observed message of {} bits exceeds the largest registry-declared \
                 width of {declared_max} bits",
                row.name, row.max_message_bits
            ));
        }
        if row.max_message_bits > row.bound_bits {
            failures.push(format!(
                "{}: message of {} bits exceeds the O(M) bound of {} bits",
                row.name, row.max_message_bits, row.bound_bits
            ));
        }
    }
    for old in &baseline.scenarios {
        let Some(new) = current.iter().find(|r| r.name == old.name) else {
            failures.push(format!("{}: scenario missing from this run", old.name));
            continue;
        };
        let budget = |label: &str, was: u64, now: u64| -> Option<String> {
            let limit = (was as f64 * (1.0 + TOLERANCE)).ceil() as u64;
            (now > limit).then(|| {
                format!(
                    "{}: {label} regressed {was} -> {now} (> {:.0}% budget, limit {limit})",
                    old.name,
                    TOLERANCE * 100.0
                )
            })
        };
        failures.extend(budget("rounds", old.rounds, new.rounds));
        failures.extend(budget("messages", old.messages, new.messages));
    }
    failures
}

fn validate_json(path: &str) -> Result<BudgetReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report: BudgetReport =
        serde_json::from_str(&text).map_err(|e| format!("malformed {path}: {e}"))?;
    if report.schema != SCHEMA {
        return Err(format!(
            "schema tag mismatch in {path}: {} != {SCHEMA}",
            report.schema
        ));
    }
    if report.scenarios.is_empty() {
        return Err(format!("{path} contains no scenarios"));
    }
    Ok(report)
}

fn main() {
    let args = DistArgs::from_env();
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_dist_rounds.json".to_string());

    let scenarios: Vec<&Scenario> = GRID
        .iter()
        .filter(|s| (!args.smoke || s.smoke) && args.selects(s.name))
        .collect();
    assert!(
        !scenarios.is_empty(),
        "--scenarios filtered out every scenario"
    );

    let mut table = Table::new(
        "F-dist-budget — round/message budgets of the in-network runners",
        &[
            "scenario",
            "rounds",
            "reference rounds",
            "messages",
            "kbits",
            "max msg [bits]",
            "O(M) bound",
            "threads",
            "wall [ms]",
            "speedup",
        ],
    );
    let mut rows = Vec::new();
    for s in &scenarios {
        let row = run_scenario(s, args.threads);
        table.row(&[
            row.name.clone(),
            row.rounds.to_string(),
            row.reference_rounds.to_string(),
            row.messages.to_string(),
            format!("{:.1}", row.bits as f64 / 1000.0),
            row.max_message_bits.to_string(),
            row.bound_bits.to_string(),
            row.threads.to_string(),
            format!("{:.1}", row.wall_ms),
            row.speedup
                .map_or_else(|| "-".to_string(), |x| format!("{x:.2}x")),
        ]);
        rows.push(row);
    }
    table.print();

    // The control-plane ceiling: baseline-independent, so the PR smoke
    // lane enforces it even though it never regenerates the baseline.
    for row in &rows {
        if row.name == CONTROL_CEILING_SCENARIO
            && row.rounds as f64 > CONTROL_CEILING * row.reference_rounds as f64
        {
            eprintln!(
                "CONTROL GATE: {}: {} engine rounds exceed {CONTROL_CEILING}x the serial \
                 reference ({})",
                row.name, row.rounds, row.reference_rounds
            );
            std::process::exit(1);
        }
    }

    // The huge-grid speedup target is a hardware claim: enforce it only
    // where the hardware exists (≥ SPEEDUP_THREADS CPUs); elsewhere the
    // measurement is recorded in the report for post-mortem reading.
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    for row in &rows {
        if let Some(speedup) = row.speedup {
            if cpus >= SPEEDUP_THREADS && speedup < SPEEDUP_MIN {
                eprintln!(
                    "SCALE GATE: {}: {speedup:.2}x speedup at {SPEEDUP_THREADS} threads \
                     (< {SPEEDUP_MIN}x) on a {cpus}-CPU host",
                    row.name
                );
                std::process::exit(1);
            }
            println!(
                "{}: {speedup:.2}x at {SPEEDUP_THREADS} threads ({} CPUs visible{})",
                row.name,
                cpus,
                if cpus < SPEEDUP_THREADS {
                    "; below the gate threshold, recorded only"
                } else {
                    ""
                }
            );
        }
    }

    let report = BudgetReport {
        schema: SCHEMA.to_string(),
        mode: if args.smoke { "smoke" } else { "full" }.to_string(),
        scenarios: rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).expect("write BENCH_dist_rounds.json");
    println!("wrote {out_path}");

    let read_back = match validate_json(&out_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{out_path} failed validation: {e}");
            std::process::exit(1);
        }
    };

    let registry = load_registry();

    if let Some(baseline_path) = &args.baseline {
        let baseline = match validate_json(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("baseline failed validation: {e}");
                std::process::exit(1);
            }
        };
        // Gate the baseline scenarios this invocation *requested* —
        // filtered by the flags, never by what the run happened to
        // produce, so a baseline scenario that silently vanished from
        // the grid still fails a full run as "missing from this run".
        let gated: Vec<ScenarioReport> = baseline
            .scenarios
            .iter()
            .filter(|s| args.selects(&s.name))
            .filter(|s| !args.smoke || GRID.iter().any(|g| g.name == s.name && g.smoke))
            .cloned()
            .collect();
        assert!(
            !gated.is_empty(),
            "no overlap between the run and the baseline"
        );
        let failures = gate(
            &read_back.scenarios,
            &BudgetReport {
                scenarios: gated,
                ..baseline
            },
            &registry,
        );
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("BUDGET GATE: {f}");
            }
            std::process::exit(1);
        }
        println!(
            "budget gate passed: {} scenario(s) within {:.0}% of the baseline, all messages \
             within the O(M)-bit bound",
            read_back.scenarios.len(),
            TOLERANCE * 100.0
        );
    } else {
        // Even without a baseline, the O(M)-bit bound is non-negotiable.
        let failures = gate(
            &read_back.scenarios,
            &BudgetReport {
                schema: SCHEMA.to_string(),
                mode: "empty".to_string(),
                scenarios: Vec::new(),
            },
            &registry,
        );
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("BUDGET GATE: {f}");
            }
            std::process::exit(1);
        }
    }
}

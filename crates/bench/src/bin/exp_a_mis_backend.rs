//! **Ablation A-MIS** — the pluggable `Time(MIS)` factor: Luby's
//! randomized algorithm vs the deterministic local-minimum rule inside
//! the full scheduler. Both yield valid MIS's (so the approximation
//! guarantee is identical); they differ in round behaviour — Luby is
//! `O(log N)` whp, the deterministic rule can serialize along decreasing
//! key chains — and in reproducibility (the deterministic backend is
//! seed-independent).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_bench::report::f3;
use treenet_bench::stats::summarize;
use treenet_bench::{seeds, Scale, Table};
use treenet_core::{solve_tree_unit, SolverConfig};
use treenet_mis::MisBackend;
use treenet_model::workload::TreeWorkload;

fn main() {
    let scale = Scale::from_env();
    let runs = seeds(scale.pick(5, 15));
    let ns: Vec<usize> = scale.pick(vec![32, 128], vec![32, 128, 512]);
    let mut table = Table::new(
        "A-MIS — scheduler behaviour under each MIS backend (tree unit, m = 2n)",
        &[
            "n",
            "backend",
            "MIS iters (mean)",
            "comm rounds (mean)",
            "certified mean",
            "λ min",
        ],
    );
    for &n in &ns {
        for backend in [MisBackend::Luby, MisBackend::DeterministicGreedy] {
            let mut iters = Vec::new();
            let mut rounds = Vec::new();
            let mut cert = Vec::new();
            let mut lam = 1.0f64;
            for &seed in &runs {
                let p = TreeWorkload::new(n, 2 * n)
                    .with_networks(2)
                    .generate(&mut SmallRng::seed_from_u64(seed));
                let out = solve_tree_unit(
                    &p,
                    &SolverConfig::default()
                        .with_seed(seed)
                        .with_mis_backend(backend),
                )
                .unwrap();
                out.solution.verify(&p).unwrap();
                iters.push(out.stats.mis_rounds as f64);
                rounds.push(out.stats.comm_rounds as f64);
                cert.push(out.certified_ratio(&p));
                lam = lam.min(out.lambda);
            }
            table.row(&[
                n.to_string(),
                backend.name().into(),
                f3(summarize(&iters).mean),
                f3(summarize(&rounds).mean),
                f3(summarize(&cert).mean),
                f3(lam),
            ]);
            assert!(lam >= 0.9 - 1e-9, "λ target holds under {}", backend.name());
            assert!(summarize(&cert).max <= 7.0 / lam + 1e-6);
        }
    }
    table.print();
    println!(
        "both backends satisfy Theorem 5.3 (the guarantee only needs *some* MIS); the \
         backend choice trades rounds for determinism, exactly the paper's \
         Luby-vs-deterministic discussion."
    );
}

//! **Experiment F-lambda** — the paper's second technical contribution
//! (Section 5, Remark): the multi-stage schedule reaches slackness
//! `λ = 1-ε` where Panconesi–Sozio's single-stage drop-out stalls at
//! `λ ≈ 1/(5+ε)` — a 5× gap in the certified bound, which is exactly the
//! factor-5 ratio improvement on line networks (20+ε → 4+ε).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_baseline::{ps_line_unit, PsConfig};
use treenet_bench::report::f3;
use treenet_bench::stats::summarize;
use treenet_bench::{seeds, Scale, Table};
use treenet_core::{solve_line_unit, SolverConfig};
use treenet_model::workload::LineWorkload;

fn main() {
    let scale = Scale::from_env();
    let runs = seeds(scale.pick(6, 25));
    let eps = 0.1;
    let mut ours_lambda = Vec::new();
    let mut ps_lambda = Vec::new();
    let mut ours_cert = Vec::new();
    let mut ps_cert = Vec::new();
    for &seed in &runs {
        let p = LineWorkload::new(48, 40)
            .with_resources(3)
            .with_window_slack(2)
            .with_len_range(1, 12)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let ours = solve_line_unit(
            &p,
            &SolverConfig::default().with_epsilon(eps).with_seed(seed),
        )
        .unwrap();
        let ps = ps_line_unit(
            &p,
            &PsConfig {
                epsilon: eps,
                seed,
                ..PsConfig::default()
            },
        );
        ours_lambda.push(ours.lambda);
        ps_lambda.push(ps.lambda);
        ours_cert.push(ours.certified_ratio(&p));
        ps_cert.push(ps.certified_ratio(&p));
    }
    let mut table = Table::new(
        "F-lambda — measured slackness λ and certified ratios (line unit, ε = 0.1)",
        &[
            "algorithm",
            "target λ",
            "λ min",
            "λ mean",
            "certified ratio mean",
            "certified ratio max",
        ],
    );
    let o = summarize(&ours_lambda);
    let p = summarize(&ps_lambda);
    table.row(&[
        "ours (multi-stage)".into(),
        f3(1.0 - eps),
        f3(o.min),
        f3(o.mean),
        f3(summarize(&ours_cert).mean),
        f3(summarize(&ours_cert).max),
    ]);
    table.row(&[
        "PS (single-stage)".into(),
        f3(1.0 / (5.0 + eps)),
        f3(p.min),
        f3(p.mean),
        f3(summarize(&ps_cert).mean),
        f3(summarize(&ps_cert).max),
    ]);
    table.print();
    assert!(o.min >= 1.0 - eps - 1e-9, "our λ must reach 1-ε");
    assert!(p.min >= 1.0 / (5.0 + eps) - 1e-9, "PS λ must reach 1/(5+ε)");
    let gap = o.min / p.min;
    println!(
        "slackness gap λ_ours/λ_PS = {} (the paper's ~5× improvement; PS λ can exceed \
         its floor when few conflicts bite)",
        f3(gap)
    );
}

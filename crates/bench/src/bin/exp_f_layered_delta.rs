//! **Experiment F-delta** — Lemma 4.3 and Section 7: layered
//! decompositions achieve `Δ ≤ 6` with `O(log n)` groups on trees (via
//! the ideal decomposition) and `Δ ≤ 3` with `⌈log(Lmax/Lmin)⌉+1` groups
//! on lines; the defining property is verified exhaustively.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_bench::{seeds, Scale, Table};
use treenet_decomp::{ideal_depth_bound, LayeredDecomposition, Strategy};
use treenet_model::workload::{LineWorkload, TreeWorkload};

fn main() {
    let scale = Scale::from_env();
    let runs = seeds(scale.pick(4, 12));
    let mut table = Table::new(
        "F-delta — layered decomposition parameters",
        &[
            "setting",
            "n / slots",
            "Δ (max)",
            "Δ bound",
            "groups (max)",
            "groups bound",
            "property",
        ],
    );

    for &n in &scale.pick(vec![16, 64, 256], vec![16, 64, 256, 1024]) {
        let mut delta = 0usize;
        let mut groups = 0usize;
        let mut verified = true;
        for &seed in &runs {
            let p = TreeWorkload::new(n, n)
                .with_networks(3)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
            delta = delta.max(layers.delta());
            groups = groups.max(layers.num_groups());
            if n <= 64 {
                verified &= layers.verify(&p).is_ok();
            }
        }
        table.row(&[
            "tree (ideal)".into(),
            n.to_string(),
            delta.to_string(),
            "6".into(),
            groups.to_string(),
            ideal_depth_bound(n).to_string(),
            if verified {
                "ok".into()
            } else {
                "VIOLATED".into()
            },
        ]);
        assert!(delta <= 6 && verified);
        assert!(groups as u32 <= ideal_depth_bound(n));
    }

    for &slots in &scale.pick(vec![32, 128], vec![32, 128, 512]) {
        let mut delta = 0usize;
        let mut groups = 0usize;
        let mut bound = 0usize;
        let mut verified = true;
        for &seed in &runs {
            let p = LineWorkload::new(slots, slots)
                .with_resources(3)
                .with_window_slack(3)
                .with_len_range(1, (slots / 3) as u32)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let layers = LayeredDecomposition::for_lines(&p);
            delta = delta.max(layers.delta());
            groups = groups.max(layers.num_groups());
            let (lmin, lmax) = p.length_bounds();
            bound = bound.max((lmax as f64 / lmin as f64).log2().floor() as usize + 1);
            if slots <= 64 {
                verified &= layers.verify(&p).is_ok();
            }
        }
        table.row(&[
            "line (length classes)".into(),
            slots.to_string(),
            delta.to_string(),
            "3".into(),
            groups.to_string(),
            bound.to_string(),
            if verified {
                "ok".into()
            } else {
                "VIOLATED".into()
            },
        ]);
        assert!(delta <= 3 && groups <= bound && verified);
    }
    table.print();
    println!("Lemma 4.3 (Δ = 6, trees) and Section 7 (Δ = 3, lines) reproduced.");
}

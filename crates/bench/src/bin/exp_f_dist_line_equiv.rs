//! **Experiment F-dist-line** — Section 7 as a real message-passing
//! computation: the distributed line runners reproduce the logical
//! Theorem-7.1/7.2 schedulers exactly (same solutions, bit-identical λ
//! for both the unit run and each half of the wide/narrow split), with
//! every message bounded by one demand descriptor (the paper's `O(M)`
//! bits) and the engine spending exactly one setup round on top of the
//! shared schedule accounting.
//!
//! `--smoke` (or `EXP_SCALE=small`) runs the reduced grid — used by CI.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_bench::report::f3;
use treenet_bench::{seeds, Scale, Table};
use treenet_core::{solve_line_arbitrary, solve_line_unit, SolverConfig};
use treenet_dist::{
    descriptor_bits, run_distributed_line_arbitrary, run_distributed_line_unit, DistConfig,
    DistOutcome,
};
use treenet_model::workload::{HeightMode, LineWorkload};
use treenet_model::Problem;

/// Checks the per-run invariants every distributed outcome must satisfy:
/// `O(M)`-bit messages (one demand descriptor, via the crate's single
/// definition) and the exact +1 setup-round relation.
fn check_run(problem: &Problem, out: &DistOutcome) -> bool {
    out.metrics.max_message_bits <= descriptor_bits(problem.network_count())
        && out.metrics.rounds == out.schedule.total_rounds() + 1
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Small
    } else {
        Scale::from_env()
    };
    let runs = seeds(scale.pick(3, 8));
    let sizes: Vec<(usize, usize)> = scale.pick(
        vec![(24, 10), (30, 14)],
        vec![(24, 10), (30, 14), (48, 24), (64, 36)],
    );
    let mut table = Table::new(
        "F-dist-line — message-passing vs logical execution (Theorems 7.1/7.2, ε = 0.3)",
        &[
            "slots",
            "m",
            "seed",
            "case",
            "solutions equal",
            "λ equal (bitwise)",
            "rounds",
            "messages",
            "max msg [bits]",
        ],
    );
    let mut all_equal = true;
    for &(slots, m) in &sizes {
        for &seed in &runs {
            let cfg = SolverConfig::default().with_epsilon(0.3).with_seed(seed);

            // Theorem 7.1: unit heights with windows.
            let p = LineWorkload::new(slots, m)
                .with_resources(2)
                .with_window_slack(3)
                .with_len_range(1, 8)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let logical = solve_line_unit(&p, &cfg).unwrap();
            let distributed = run_distributed_line_unit(&p, &DistConfig::from(&cfg)).unwrap();
            let sol_eq = logical.solution == distributed.solution;
            let lam_eq = logical.lambda.to_bits() == distributed.lambda.to_bits();
            all_equal &= sol_eq && lam_eq && check_run(&p, &distributed);
            table.row(&[
                slots.to_string(),
                m.to_string(),
                seed.to_string(),
                "unit (7.1)".into(),
                sol_eq.to_string(),
                lam_eq.to_string(),
                distributed.metrics.rounds.to_string(),
                distributed.metrics.messages.to_string(),
                distributed.metrics.max_message_bits.to_string(),
            ]);

            // Theorem 7.2: mixed heights through the wide/narrow split.
            let p = LineWorkload::new(slots, m)
                .with_resources(2)
                .with_window_slack(2)
                .with_len_range(1, 8)
                .with_heights(HeightMode::Bimodal {
                    narrow_frac: 0.5,
                    hmin: 0.2,
                })
                .generate(&mut SmallRng::seed_from_u64(seed));
            let logical = solve_line_arbitrary(&p, &cfg).unwrap();
            let distributed = run_distributed_line_arbitrary(&p, &DistConfig::from(&cfg)).unwrap();
            let sol_eq = logical.solution == distributed.solution;
            let lam_eq = logical.wide.lambda.to_bits() == distributed.wide.lambda.to_bits()
                && logical.narrow.lambda.to_bits() == distributed.narrow.lambda.to_bits();
            all_equal &= sol_eq
                && lam_eq
                && check_run(&p, &distributed.wide)
                && check_run(&p, &distributed.narrow);
            let rounds = distributed.wide.metrics.rounds + distributed.narrow.metrics.rounds;
            let messages = distributed.wide.metrics.messages + distributed.narrow.metrics.messages;
            let max_bits = distributed
                .wide
                .metrics
                .max_message_bits
                .max(distributed.narrow.metrics.max_message_bits);
            table.row(&[
                slots.to_string(),
                m.to_string(),
                seed.to_string(),
                "arbitrary (7.2)".into(),
                sol_eq.to_string(),
                lam_eq.to_string(),
                rounds.to_string(),
                messages.to_string(),
                max_bits.to_string(),
            ]);
        }
    }
    table.print();
    assert!(
        all_equal,
        "distributed line execution diverged from the logical one"
    );
    println!(
        "every run: identical solutions, bit-identical λ, max message size at one \
         demand descriptor (the paper's O(M) bits), engine rounds = schedule + 1. \
         λ achieved: {}.",
        f3(1.0 - 0.3)
    );
}

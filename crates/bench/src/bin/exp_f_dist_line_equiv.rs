//! **Experiment F-dist-line** — Section 7 as a real message-passing
//! computation: the distributed line runners reproduce the logical
//! Theorem-7.1/7.2 schedulers exactly (same solutions, bit-identical λ
//! for both the unit run and each half of the wide/narrow split), with
//! every message bounded by one demand descriptor (the paper's `O(M)`
//! bits) and the engine round count following the documented
//! setup + compute + in-network-control relation exactly.
//!
//! Scenarios are named `unit-<slots>x<m>` / `arb-<slots>x<m>`;
//! `--scenarios` (shared across the dist bench bins via
//! `treenet_bench::DistArgs`) selects by substring, and `--smoke` (or
//! `EXP_SCALE=small`) runs the reduced grid — used by CI.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_bench::report::f3;
use treenet_bench::{seeds, DistArgs, Scale, Table};
use treenet_core::{solve_line_arbitrary, solve_line_unit, SolverConfig};
use treenet_dist::{
    descriptor_bits, run_distributed_line_arbitrary, run_distributed_line_unit, DistConfig,
    DistOutcome, COMBINE_ROUNDS,
};
use treenet_model::workload::{HeightMode, LineWorkload};
use treenet_model::Problem;

/// Checks the per-run invariants every solo distributed outcome must
/// satisfy: `O(M)`-bit messages (one demand descriptor, via the crate's
/// single definition) and the exact engine-round relation — one setup
/// round plus the compute schedule plus the control stalls (the rounds
/// spent idling on an in-flight echo sweep or the BFS prologue; the
/// sweeps themselves ride the data rounds).
fn check_solo(problem: &Problem, out: &DistOutcome) -> bool {
    out.metrics.max_message_bits <= descriptor_bits(problem.network_count())
        && out.metrics.rounds == out.schedule.engine_rounds() + 1
}

fn main() {
    let args = DistArgs::from_env();
    let scale = if args.smoke {
        Scale::Small
    } else {
        Scale::from_env()
    };
    let runs = seeds(scale.pick(3, 8));
    let sizes: Vec<(usize, usize)> = scale.pick(
        vec![(24, 10), (30, 14)],
        vec![(24, 10), (30, 14), (48, 24), (64, 36)],
    );
    let mut table = Table::new(
        "F-dist-line — message-passing vs logical execution (Theorems 7.1/7.2, ε = 0.3)",
        &[
            "scenario",
            "seed",
            "solutions equal",
            "λ equal (bitwise)",
            "rounds",
            "control rounds",
            "messages",
            "max msg [bits]",
        ],
    );
    let mut all_equal = true;
    let mut ran_any = false;
    for &(slots, m) in &sizes {
        for &seed in &runs {
            let cfg = SolverConfig::default().with_epsilon(0.3).with_seed(seed);

            // Theorem 7.1: unit heights with windows.
            let name = format!("unit-{slots}x{m}");
            if args.selects(&name) {
                ran_any = true;
                let p = LineWorkload::new(slots, m)
                    .with_resources(2)
                    .with_window_slack(3)
                    .with_len_range(1, 8)
                    .generate(&mut SmallRng::seed_from_u64(seed));
                let logical = solve_line_unit(&p, &cfg).unwrap();
                let distributed = run_distributed_line_unit(&p, &DistConfig::from(&cfg)).unwrap();
                let sol_eq = logical.solution == distributed.solution;
                let lam_eq = logical.lambda.to_bits() == distributed.lambda.to_bits();
                all_equal &= sol_eq && lam_eq && check_solo(&p, &distributed);
                table.row(&[
                    name,
                    seed.to_string(),
                    sol_eq.to_string(),
                    lam_eq.to_string(),
                    distributed.metrics.rounds.to_string(),
                    distributed.schedule.control_rounds().to_string(),
                    distributed.metrics.messages.to_string(),
                    distributed.metrics.max_message_bits.to_string(),
                ]);
            }

            // Theorem 7.2: mixed heights through the merged wide/narrow
            // split with the in-network combiner.
            let name = format!("arb-{slots}x{m}");
            if args.selects(&name) {
                ran_any = true;
                let p = LineWorkload::new(slots, m)
                    .with_resources(2)
                    .with_window_slack(2)
                    .with_len_range(1, 8)
                    .with_heights(HeightMode::Bimodal {
                        narrow_frac: 0.5,
                        hmin: 0.2,
                    })
                    .generate(&mut SmallRng::seed_from_u64(seed));
                let logical = solve_line_arbitrary(&p, &cfg).unwrap();
                let distributed =
                    run_distributed_line_arbitrary(&p, &DistConfig::from(&cfg)).unwrap();
                let sol_eq = logical.solution == distributed.solution;
                let lam_eq = logical.wide.lambda.to_bits() == distributed.wide.lambda.to_bits()
                    && logical.narrow.lambda.to_bits() == distributed.narrow.lambda.to_bits();
                // Merged engine: max of the halves, one setup round, the
                // three combiner rounds.
                let control = distributed.wide.schedule.control_rounds()
                    + distributed.narrow.schedule.control_rounds();
                let rounds_ok = distributed.metrics.rounds
                    == distributed
                        .wide
                        .schedule
                        .engine_rounds()
                        .max(distributed.narrow.schedule.engine_rounds())
                        + 1
                        + COMBINE_ROUNDS;
                all_equal &= sol_eq
                    && lam_eq
                    && rounds_ok
                    && distributed.metrics.max_message_bits <= descriptor_bits(p.network_count());
                table.row(&[
                    name,
                    seed.to_string(),
                    sol_eq.to_string(),
                    lam_eq.to_string(),
                    distributed.metrics.rounds.to_string(),
                    control.to_string(),
                    distributed.metrics.messages.to_string(),
                    distributed.metrics.max_message_bits.to_string(),
                ]);
            }
        }
    }
    table.print();
    assert!(ran_any, "--scenarios filtered out every scenario");
    assert!(
        all_equal,
        "distributed line execution diverged from the logical one"
    );
    println!(
        "every run: identical solutions, bit-identical λ, max message size at one \
         demand descriptor (the paper's O(M) bits), engine rounds = setup + compute \
         + in-network control (+ combiner for splits), exactly. λ achieved: {}.",
        f3(1.0 - 0.3)
    );
}

//! **Experiment F-rounds-eps** — Theorem 5.3: the stage count per epoch
//! is exactly `⌈log_ξ ε⌉` (ξ = 14/15), so rounds grow as `log(1/ε)`
//! while the certified approximation factor approaches `Δ+1 = 7`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_bench::report::{f2, f3};
use treenet_bench::stats::summarize;
use treenet_bench::{seeds, Scale, Table};
use treenet_core::{solve_tree_unit, stages_for, SolverConfig};
use treenet_model::workload::TreeWorkload;

fn main() {
    let scale = Scale::from_env();
    let epsilons: Vec<f64> = scale.pick(
        vec![0.5, 0.3, 0.1, 0.05],
        vec![0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01],
    );
    let runs = seeds(scale.pick(3, 10));
    let xi = 14.0 / 15.0;
    let mut table = Table::new(
        "F-rounds-eps — rounds and certified ratio vs ε (tree unit, n = 32, m = 64)",
        &[
            "ε",
            "stages/epoch = ceil(log_ξ ε)",
            "λ (min)",
            "certified ratio (max)",
            "7/(1-ε)",
            "comm rounds (mean)",
        ],
    );
    for &eps in &epsilons {
        let mut lambdas = Vec::new();
        let mut ratios = Vec::new();
        let mut rounds = Vec::new();
        for &seed in &runs {
            let p = TreeWorkload::new(32, 64)
                .with_networks(3)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = solve_tree_unit(
                &p,
                &SolverConfig::default().with_epsilon(eps).with_seed(seed),
            )
            .unwrap();
            lambdas.push(out.lambda);
            ratios.push(out.certified_ratio(&p));
            rounds.push(out.stats.comm_rounds as f64);
        }
        let bound = 7.0 / (1.0 - eps);
        table.row(&[
            f3(eps),
            stages_for(eps, xi).to_string(),
            f3(summarize(&lambdas).min),
            f3(summarize(&ratios).max),
            f3(bound),
            f2(summarize(&rounds).mean),
        ]);
        assert!(summarize(&lambdas).min >= 1.0 - eps - 1e-9);
        assert!(summarize(&ratios).max <= bound + 1e-6);
    }
    table.print();
    println!("stage count follows ceil(log_ξ ε) exactly; rounds grow ∝ log(1/ε).");
}

//! **Experiment F-decomp** — Section 4's trade-off table and Lemma 4.1:
//!
//! | decomposition | depth | pivot θ |
//! |---|---|---|
//! | root-fixing | up to n | 1 |
//! | balancing | ⌈log n⌉+1 | up to ⌈log n⌉ |
//! | ideal | ≤ 2⌈log n⌉+1 | **≤ 2** |
//!
//! Measured across tree families and sizes; every decomposition is also
//! verified against both defining properties.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_bench::{seeds, Scale, Table};
use treenet_decomp::{ideal_depth_bound, Strategy};
use treenet_graph::generators::TreeFamily;

fn main() {
    let scale = Scale::from_env();
    let ns: Vec<usize> = scale.pick(vec![16, 64, 256], vec![16, 64, 256, 1024, 4096, 8192]);
    let runs = seeds(scale.pick(2, 5));
    let families = [
        TreeFamily::Path,
        TreeFamily::Star,
        TreeFamily::Caterpillar,
        TreeFamily::Uniform,
    ];
    let mut table = Table::new(
        "F-decomp — tree-decomposition parameters (max over families × seeds)",
        &[
            "n",
            "strategy",
            "depth (max)",
            "pivot θ (max)",
            "depth bound",
            "θ bound",
        ],
    );
    for &n in &ns {
        for strategy in Strategy::ALL {
            let mut depth_max = 0u32;
            let mut pivot_max = 0usize;
            for &family in &families {
                for &seed in &runs {
                    let tree = family.generate(n, &mut SmallRng::seed_from_u64(seed));
                    let h = strategy.build(&tree);
                    depth_max = depth_max.max(h.depth());
                    pivot_max = pivot_max.max(h.pivot_size());
                    if n <= 64 {
                        h.verify(&tree).expect("valid decomposition");
                    }
                }
            }
            let log2n = (n as f64).log2().ceil() as u32;
            let (depth_bound, pivot_bound) = match strategy {
                Strategy::RootFixing => (n as u32, 1),
                Strategy::Balancing => (log2n + 1, log2n as usize),
                Strategy::Ideal => (ideal_depth_bound(n), 2),
            };
            table.row(&[
                n.to_string(),
                strategy.name().into(),
                depth_max.to_string(),
                pivot_max.to_string(),
                depth_bound.to_string(),
                pivot_bound.to_string(),
            ]);
            assert!(
                depth_max <= depth_bound,
                "{} depth bound at n={n}",
                strategy.name()
            );
            assert!(
                pivot_max <= pivot_bound,
                "{} pivot bound at n={n}",
                strategy.name()
            );
        }
    }
    table.print();
    println!("Lemma 4.1 reproduced: ideal = ⟨O(log n), θ ≤ 2⟩ on every family.");
}

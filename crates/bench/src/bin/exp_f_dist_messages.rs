//! **Experiment F-dist-messages** — message complexity of the
//! message-passing scheduler: the paper bounds the *size* of each message
//! by `O(M)` bits (one demand descriptor); this experiment measures how
//! total message count and traffic scale with the number of processors
//! and how the maximum message size stays flat.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_bench::report::f2;
use treenet_bench::stats::summarize;
use treenet_bench::{seeds, Scale, Table};
use treenet_dist::{run_distributed_tree_unit, DistConfig};
use treenet_model::workload::TreeWorkload;

fn main() {
    let scale = Scale::from_env();
    let runs = seeds(scale.pick(3, 6));
    let ms: Vec<usize> = scale.pick(vec![4, 8, 16], vec![4, 8, 16, 32, 48]);
    let mut table = Table::new(
        "F-dist-messages — distributed traffic vs processor count (tree unit, n = 10, ε = 0.3)",
        &[
            "m",
            "rounds",
            "messages (mean)",
            "kbits (mean)",
            "max msg [bits]",
            "msgs/processor/round",
        ],
    );
    for &m in &ms {
        let mut rounds = Vec::new();
        let mut msgs = Vec::new();
        let mut bits = Vec::new();
        let mut max_bits = 0u64;
        for &seed in &runs {
            let p = TreeWorkload::new(10, m)
                .with_networks(2)
                .with_profit_ratio(4.0)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = run_distributed_tree_unit(
                &p,
                &DistConfig {
                    epsilon: 0.3,
                    seed,
                    ..DistConfig::default()
                },
            )
            .unwrap();
            assert!(!out.final_unsatisfied);
            out.solution.verify(&p).unwrap();
            rounds.push(out.metrics.rounds as f64);
            msgs.push(out.metrics.messages as f64);
            bits.push(out.metrics.bits as f64 / 1000.0);
            max_bits = max_bits.max(out.metrics.max_message_bits);
        }
        let r = summarize(&rounds);
        let mm = summarize(&msgs);
        table.row(&[
            m.to_string(),
            f2(r.mean),
            f2(mm.mean),
            f2(summarize(&bits).mean),
            max_bits.to_string(),
            f2(mm.mean / (m as f64 * r.mean)),
        ]);
        // O(M) bits: one demand descriptor regardless of m.
        let descriptor_bound = treenet_dist::descriptor_bits(2);
        assert!(
            max_bits <= descriptor_bound,
            "message size grew with m: {max_bits} > {descriptor_bound}"
        );
    }
    table.print();
    println!(
        "max message size is flat (one demand descriptor = the paper's O(M) bits); \
         per-processor-per-round traffic stays bounded by the neighborhood size, so \
         total traffic grows with m while the schedule length does not."
    );
}

//! **Ablation A-strategy** — why the ideal tree decomposition matters
//! (the design choice DESIGN.md calls out): run the full tree-network
//! scheduler with each of the three decompositions and observe the
//! trade-off the paper describes in Section 4:
//!
//! * root-fixing: `θ = 1` → small `Δ` (≤ 4, better ratio constant) but up
//!   to `n` epochs → linear round blow-up;
//! * balancing: `O(log n)` epochs but `θ` up to `log n` → `Δ` grows, the
//!   certified ratio constant degrades with `n`;
//! * ideal: `O(log n)` epochs *and* `Δ ≤ 6` — the only column where both
//!   the rounds and the guarantee stay bounded.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_bench::report::f3;
use treenet_bench::stats::summarize;
use treenet_bench::{seeds, Scale, Table};
use treenet_core::{solve_tree_unit, SolverConfig};
use treenet_decomp::Strategy;
use treenet_model::workload::TreeWorkload;

fn main() {
    let scale = Scale::from_env();
    let runs = seeds(scale.pick(3, 10));
    let ns: Vec<usize> = scale.pick(vec![32, 128], vec![32, 128, 512]);
    let mut table = Table::new(
        "A-strategy — the scheduler under each tree decomposition (unit height, m = 2n)",
        &[
            "n",
            "strategy",
            "Δ",
            "epochs (mean)",
            "comm rounds (mean)",
            "guarantee (Δ+1)/λ",
            "certified (mean)",
        ],
    );
    for &n in &ns {
        for strategy in Strategy::ALL {
            let mut epochs = Vec::new();
            let mut rounds = Vec::new();
            let mut certified = Vec::new();
            let mut delta = 0usize;
            let mut lambda_min = 1.0f64;
            for &seed in &runs {
                let p = TreeWorkload::new(n, 2 * n)
                    .with_networks(2)
                    .generate(&mut SmallRng::seed_from_u64(seed));
                let out = solve_tree_unit(
                    &p,
                    &SolverConfig::default()
                        .with_strategy(strategy)
                        .with_seed(seed),
                )
                .unwrap();
                out.solution.verify(&p).unwrap();
                epochs.push(out.stats.epochs as f64);
                rounds.push(out.stats.comm_rounds as f64);
                certified.push(out.certified_ratio(&p));
                delta = delta.max(out.delta);
                lambda_min = lambda_min.min(out.lambda);
            }
            let guarantee = (delta as f64 + 1.0) / lambda_min;
            table.row(&[
                n.to_string(),
                strategy.name().into(),
                delta.to_string(),
                f3(summarize(&epochs).mean),
                f3(summarize(&rounds).mean),
                f3(guarantee),
                f3(summarize(&certified).mean),
            ]);
            assert!(summarize(&certified).max <= guarantee + 1e-6);
        }
    }
    table.print();
    println!(
        "the ablation reproduces Section 4's trade-off: root-fixing keeps Δ small but \
         inflates epochs (rounds ∝ depth, up to n), while the log-depth strategies \
         keep epochs ~log n. On random trees the balancing pivot happens to stay \
         small; F-decomp shows it growing past 2 (up to Θ(log n) worst case), which \
         is exactly the degradation the ideal decomposition's θ ≤ 2 rules out."
    );
}

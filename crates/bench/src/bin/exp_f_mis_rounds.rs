//! **Experiment F-MIS** — the `Time(MIS)` factor: Luby's algorithm
//! finishes in `O(log N)` iterations on conflict graphs drawn from real
//! scheduling workloads (and on Erdős–Rényi controls).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treenet_bench::report::f2;
use treenet_bench::stats::{correlation, summarize};
use treenet_bench::{seeds, Scale, Table};
use treenet_mis::{luby_mis, verify_mis};
use treenet_model::conflict::ConflictGraph;
use treenet_model::workload::TreeWorkload;
use treenet_model::InstanceId;

fn erdos_renyi(n: usize, p: f64, rng: &mut SmallRng) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); n];
    for a in 0..n {
        for b in a + 1..n {
            if rng.gen_bool(p) {
                adj[a].push(b as u32);
                adj[b].push(a as u32);
            }
        }
    }
    adj
}

fn main() {
    let scale = Scale::from_env();
    let runs = seeds(scale.pick(5, 20));
    let mut table = Table::new(
        "F-MIS — Luby iterations vs graph size",
        &[
            "graph",
            "N",
            "avg degree",
            "Luby iters mean",
            "Luby iters max",
            "4·log2 N",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();

    // Conflict graphs from scheduling workloads.
    for &n in &scale.pick(vec![16, 64, 256], vec![16, 64, 256, 1024]) {
        let mut iters = Vec::new();
        let mut degs = Vec::new();
        let mut size = 0usize;
        for &seed in &runs {
            let p = TreeWorkload::new(n, 2 * n)
                .with_networks(3)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let ids: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
            let g = ConflictGraph::build(&p, &ids);
            size = g.len();
            degs.push(2.0 * g.edge_count() as f64 / g.len().max(1) as f64);
            let adj: Vec<Vec<u32>> = (0..g.len()).map(|v| g.neighbors(v).to_vec()).collect();
            let keys: Vec<u64> = (0..g.len() as u64).collect();
            let out = luby_mis(&adj, &keys, seed, 1);
            assert!(verify_mis(&adj, &out.mis));
            iters.push(out.rounds as f64);
        }
        let s = summarize(&iters);
        let bound = 4.0 * (size.max(2) as f64).log2();
        table.row(&[
            "conflict graph".into(),
            size.to_string(),
            f2(summarize(&degs).mean),
            f2(s.mean),
            f2(s.max),
            f2(bound),
        ]);
        xs.push((size.max(2) as f64).log2());
        ys.push(s.mean);
        assert!(s.max <= bound, "Luby exceeded 4 log2 N at N = {size}");
    }

    // Erdős–Rényi controls.
    for &n in &scale.pick(vec![64, 512], vec![64, 512, 4096]) {
        let mut iters = Vec::new();
        for &seed in &runs {
            let mut rng = SmallRng::seed_from_u64(seed);
            let adj = erdos_renyi(n, (8.0 / n as f64).min(0.5), &mut rng);
            let keys: Vec<u64> = (0..n as u64).collect();
            let out = luby_mis(&adj, &keys, seed, 2);
            assert!(verify_mis(&adj, &out.mis));
            iters.push(out.rounds as f64);
        }
        let s = summarize(&iters);
        table.row(&[
            "Erdős–Rényi (deg≈8)".into(),
            n.to_string(),
            "8.00".into(),
            f2(s.mean),
            f2(s.max),
            f2(4.0 * (n as f64).log2()),
        ]);
    }
    table.print();
    let corr = correlation(&xs, &ys);
    println!("correlation(Luby iterations, log2 N) = {corr:.3} — the O(log N) Time(MIS) factor.");
}

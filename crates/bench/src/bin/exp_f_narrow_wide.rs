//! **Experiment F-narrow-wide** — Theorem 6.3: the arbitrary-height tree
//! scheduler (wide→unit + narrow→modified-raising + per-network combine)
//! stays within the certified (80+ε) bound, and its stage count grows as
//! `O(1/hmin)` (the `ξ = c/(c+hmin)` schedule).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_bench::report::{f2, f3};
use treenet_bench::stats::summarize;
use treenet_bench::{seeds, Scale, Table};
use treenet_core::{narrow_xi, solve_tree_arbitrary, stages_for, SolverConfig};
use treenet_model::workload::{HeightMode, TreeWorkload};

fn main() {
    let scale = Scale::from_env();
    let runs = seeds(scale.pick(4, 12));
    let hmins: Vec<f64> = scale.pick(
        vec![0.5, 0.25, 0.125],
        vec![0.5, 0.25, 0.125, 0.0625, 0.03125],
    );
    let eps = 0.1;
    let mut table = Table::new(
        "F-narrow-wide — arbitrary heights on trees (n = 24, m = 30, ε = 0.1)",
        &[
            "hmin",
            "stages/epoch (ξ=c/(c+hmin))",
            "certified ratio mean",
            "certified ratio max",
            "80/(1-ε)",
            "combine gain mean [%]",
        ],
    );
    for &hmin in &hmins {
        let stages = stages_for(eps, narrow_xi(6, hmin));
        let mut ratios = Vec::new();
        let mut gain = Vec::new();
        for &seed in &runs {
            let p = TreeWorkload::new(24, 30)
                .with_networks(2)
                .with_heights(HeightMode::Bimodal {
                    narrow_frac: 0.6,
                    hmin,
                })
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = solve_tree_arbitrary(
                &p,
                &SolverConfig::default().with_epsilon(eps).with_seed(seed),
            )
            .unwrap();
            out.solution.verify(&p).unwrap();
            ratios.push(out.certified_ratio(&p));
            let best_side = out.wide.profit(&p).max(out.narrow.profit(&p));
            if best_side > 0.0 {
                gain.push(100.0 * (out.profit(&p) / best_side - 1.0));
            }
        }
        let bound = 80.0 / (1.0 - eps);
        let r = summarize(&ratios);
        table.row(&[
            f3(hmin),
            stages.to_string(),
            f3(r.mean),
            f3(r.max),
            f3(bound),
            f2(summarize(&gain).mean),
        ]);
        assert!(
            r.max <= bound + 1e-6,
            "Theorem 6.3 bound violated at hmin = {hmin}"
        );
    }
    table.print();
    println!(
        "stages/epoch doubles as hmin halves (the O(1/hmin) factor of Theorem 6.3); \
         the certified ratio stays far below 80/(1-ε)."
    );
}

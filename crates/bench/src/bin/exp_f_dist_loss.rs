//! **Experiment F-dist-loss** — fault tolerance of the message-passing
//! schedulers: runs the distributed runners over lossy links (seeded
//! Bernoulli drop rates `p ∈ {0, 0.01, 0.05, 0.2}`, recovered by
//! `treenet-netsim`'s reliable-delivery sublayer) and charts the
//! round/message inflation against the lossless baseline. The bin
//! **asserts** the reliability contract and exits non-zero on any
//! violation:
//!
//! * at every `p`, solutions, λ (`to_bits()`-exact) and schedules equal
//!   the lossless run — the sublayer is invisible to the protocol;
//! * the logical traffic (`messages`, `bits`) is identical at every
//!   `p`; overhead lives only in `retransmits`/`acks`/`dup_suppressed`;
//! * recovery-slot inflation respects the shared windowed bound
//!   `treenet_core::retransmit_round_bound(dropped, delayed, window)`;
//! * with the sliding-window ARQ, the heavy `p = 0.2` end inflates
//!   rounds by **less than 1.6×** in every scenario (the pipelined
//!   window keeps most losses off the critical path);
//! * `p = 0` is a byte-identical passthrough, cross-checked — when
//!   `--baseline <BENCH_dist_rounds.json>` is given — against the
//!   committed budget baseline's exact rounds/messages.
//!
//! Every row records the ARQ `window` it ran under (schema
//! `dist-loss/v2`), so the committed numbers are reproducible knob for
//! knob.
//!
//! Writes `BENCH_dist_loss.json`. Flags (shared via
//! `treenet_bench::DistArgs`): `--smoke` runs the reduced grid,
//! `--scenarios a,b` filters by name, `--out <path>` picks the output
//! file, `--baseline <path>` enables the p=0 budget cross-check.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use treenet_bench::{DistArgs, Table};
use treenet_core::retransmit_round_bound;
use treenet_dist::{
    run_distributed_auto, run_distributed_line_arbitrary, run_distributed_line_unit,
    run_distributed_tree_arbitrary, run_distributed_tree_unit, DistAutoRun, DistConfig,
};
use treenet_model::workload::{HeightMode, LineWorkload, TreeWorkload};
use treenet_model::{Problem, Solution};
use treenet_netsim::{LossModel, Metrics, DEFAULT_ARQ_WINDOW};

/// Schema tag checked on read-back (bump on layout changes).
const SCHEMA: &str = "treenet-bench/dist-loss/v2";

/// The loss grid. `0.0` is the passthrough row every other row inflates
/// against.
const LOSS_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.2];

/// Seed of the loss RNG stream (independent of the protocol seed).
const LOSS_SEED: u64 = 0x10ff;

#[derive(Copy, Clone, Debug)]
enum Runner {
    TreeUnit,
    TreeArbitrary,
    LineUnit,
    LineArbitrary,
    Auto,
}

struct Scenario {
    name: &'static str,
    runner: Runner,
    smoke: bool,
}

/// The same deterministic scenarios (names, workloads, protocol config)
/// as `exp_f_dist_budget`, so the `--baseline` cross-check can match
/// rows of the committed `BENCH_dist_rounds.json` by name.
const GRID: &[Scenario] = &[
    Scenario {
        name: "tree-unit-10x8",
        runner: Runner::TreeUnit,
        smoke: true,
    },
    Scenario {
        name: "tree-arbitrary-10x8",
        runner: Runner::TreeArbitrary,
        smoke: true,
    },
    Scenario {
        name: "line-unit-30x12",
        runner: Runner::LineUnit,
        smoke: true,
    },
    Scenario {
        name: "line-arbitrary-30x12",
        runner: Runner::LineArbitrary,
        smoke: true,
    },
    Scenario {
        name: "auto-mixed-24x10",
        runner: Runner::Auto,
        smoke: true,
    },
    Scenario {
        name: "line-unit-48x24",
        runner: Runner::LineUnit,
        smoke: false,
    },
    Scenario {
        name: "line-arbitrary-48x24",
        runner: Runner::LineArbitrary,
        smoke: false,
    },
];

fn problem_for(s: &Scenario) -> Problem {
    let mut rng = SmallRng::seed_from_u64(0xd157_b0d6);
    match s.name {
        "tree-unit-10x8" => TreeWorkload::new(10, 8)
            .with_networks(2)
            .with_profit_ratio(4.0)
            .generate(&mut rng),
        "tree-arbitrary-10x8" => TreeWorkload::new(10, 8)
            .with_networks(2)
            .with_heights(HeightMode::Bimodal {
                narrow_frac: 0.5,
                hmin: 0.25,
            })
            .generate(&mut rng),
        "line-unit-30x12" => LineWorkload::new(30, 12)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(1, 8)
            .generate(&mut rng),
        "line-arbitrary-30x12" => LineWorkload::new(30, 12)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(1, 8)
            .with_heights(HeightMode::Bimodal {
                narrow_frac: 0.5,
                hmin: 0.2,
            })
            .generate(&mut rng),
        "auto-mixed-24x10" => LineWorkload::new(24, 10)
            .with_heights(HeightMode::Uniform { hmin: 0.25 })
            .generate(&mut rng),
        "line-unit-48x24" => LineWorkload::new(48, 24)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(1, 8)
            .generate(&mut rng),
        "line-arbitrary-48x24" => LineWorkload::new(48, 24)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(1, 8)
            .with_heights(HeightMode::Bimodal {
                narrow_frac: 0.5,
                hmin: 0.2,
            })
            .generate(&mut rng),
        other => unreachable!("unknown scenario {other}"),
    }
}

fn run_once(s: &Scenario, problem: &Problem, loss: Option<LossModel>) -> (Solution, u64, Metrics) {
    let config = DistConfig {
        epsilon: 0.3,
        seed: 0x7ee5,
        loss,
        ..DistConfig::default()
    };
    match s.runner {
        Runner::TreeUnit => {
            let out = run_distributed_tree_unit(problem, &config).unwrap();
            (out.solution, out.lambda.to_bits(), out.metrics)
        }
        Runner::TreeArbitrary => {
            let out = run_distributed_tree_arbitrary(problem, &config).unwrap();
            (out.solution.clone(), out.lambda().to_bits(), out.metrics)
        }
        Runner::LineUnit => {
            let out = run_distributed_line_unit(problem, &config).unwrap();
            (out.solution, out.lambda.to_bits(), out.metrics)
        }
        Runner::LineArbitrary => {
            let out = run_distributed_line_arbitrary(problem, &config).unwrap();
            (out.solution.clone(), out.lambda().to_bits(), out.metrics)
        }
        Runner::Auto => {
            let out = run_distributed_auto(problem, &config).unwrap();
            let metrics = match &out.run {
                DistAutoRun::Single(run) => run.metrics,
                DistAutoRun::Split(run) => run.metrics,
            };
            (out.solution, out.lambda.to_bits(), metrics)
        }
    }
}

/// One (scenario, p) measurement as persisted to `BENCH_dist_loss.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct LossReport {
    name: String,
    /// Bernoulli drop rate of this row.
    p: f64,
    /// Engine rounds, recovery slots included.
    rounds: u64,
    /// Recovery slots alone (`rounds - retransmit_rounds` is the
    /// logical, loss-independent round count).
    retransmit_rounds: u64,
    /// Logical protocol messages (loss-independent by construction).
    messages: u64,
    /// Data retransmissions sent by the reliable layer.
    retransmits: u64,
    /// Standalone cumulative acks sent by the reliable layer.
    acks: u64,
    /// Duplicate deliveries suppressed.
    dup_suppressed: u64,
    /// Transmissions the loss process dropped (data + acks).
    dropped: u64,
    /// The sliding-window ARQ window this row ran under
    /// (`DistConfig::arq_window`; 1 degenerates to stop-and-wait).
    window: u32,
    /// Round inflation vs the p=0 row of the same scenario.
    round_inflation: f64,
    /// Message overhead vs the logical traffic:
    /// `(retransmits + acks) / messages`.
    message_overhead: f64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct LossGridReport {
    schema: String,
    mode: String,
    scenarios: Vec<LossReport>,
}

/// The subset of `BENCH_dist_rounds.json` the p=0 cross-check needs.
#[derive(Clone, Debug, Deserialize)]
struct BudgetScenario {
    name: String,
    rounds: u64,
    messages: u64,
}

#[derive(Clone, Debug, Deserialize)]
struct BudgetBaseline {
    schema: String,
    scenarios: Vec<BudgetScenario>,
}

fn validate_json(path: &str) -> Result<LossGridReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report: LossGridReport =
        serde_json::from_str(&text).map_err(|e| format!("malformed {path}: {e}"))?;
    if report.schema != SCHEMA {
        return Err(format!(
            "schema tag mismatch in {path}: {} != {SCHEMA}",
            report.schema
        ));
    }
    if report.scenarios.is_empty() {
        return Err(format!("{path} contains no scenarios"));
    }
    Ok(report)
}

fn main() {
    let args = DistArgs::from_env();
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_dist_loss.json".to_string());

    let scenarios: Vec<&Scenario> = GRID
        .iter()
        .filter(|s| (!args.smoke || s.smoke) && args.selects(s.name))
        .collect();
    assert!(
        !scenarios.is_empty(),
        "--scenarios filtered out every scenario"
    );

    let baseline: Option<BudgetBaseline> = args.baseline.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let b: BudgetBaseline = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("malformed baseline {path}: {e}"));
        assert_eq!(
            b.schema, "treenet-bench/dist-budget/v2",
            "--baseline expects the budget-gate baseline"
        );
        b
    });

    let mut table = Table::new(
        "F-dist-loss — round/message inflation of the reliable layer vs loss rate",
        &[
            "scenario",
            "p",
            "rounds",
            "recovery",
            "messages",
            "retransmits",
            "acks",
            "dups",
            "round x",
            "msg overhead",
        ],
    );
    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for s in &scenarios {
        let problem = problem_for(s);
        // The lossless reference every p-row must reproduce exactly.
        let (ref_solution, ref_lambda, ref_metrics) = run_once(s, &problem, None);

        for &p in &LOSS_RATES {
            let (solution, lambda, metrics) =
                run_once(s, &problem, Some(LossModel::bernoulli(p, LOSS_SEED)));
            if solution != ref_solution {
                failures.push(format!("{} p={p}: solution diverged", s.name));
            }
            if lambda != ref_lambda {
                failures.push(format!("{} p={p}: λ bits diverged", s.name));
            }
            if (metrics.messages, metrics.bits) != (ref_metrics.messages, ref_metrics.bits) {
                failures.push(format!(
                    "{} p={p}: logical traffic diverged ({} vs {} msgs)",
                    s.name, metrics.messages, ref_metrics.messages
                ));
            }
            if metrics.rounds != ref_metrics.rounds + metrics.retransmit_rounds {
                failures.push(format!(
                    "{} p={p}: rounds {} != lossless {} + recovery {}",
                    s.name, metrics.rounds, ref_metrics.rounds, metrics.retransmit_rounds
                ));
            }
            let bound =
                retransmit_round_bound(metrics.dropped, metrics.delayed, DEFAULT_ARQ_WINDOW as u64);
            if metrics.retransmit_rounds > bound {
                failures.push(format!(
                    "{} p={p}: {} recovery slots exceed the bound {bound}",
                    s.name, metrics.retransmit_rounds
                ));
            }
            if p == 0.0 {
                // Byte-identical passthrough...
                if metrics != ref_metrics {
                    failures.push(format!("{}: p=0 is not a passthrough", s.name));
                }
                // ...and exact agreement with the committed budget
                // baseline, proving the layer changed nothing at p=0. A
                // scenario the baseline does not know is a hard failure
                // — a silently skipped comparison would make the
                // passthrough claim vacuous (same policy as the budget
                // gate's "missing from this run").
                if let Some(b) = &baseline {
                    match b.scenarios.iter().find(|r| r.name == s.name) {
                        None => failures.push(format!(
                            "{}: scenario missing from the budget baseline — nothing to \
                             prove the p=0 passthrough against",
                            s.name
                        )),
                        Some(row) => {
                            if (row.rounds, row.messages) != (metrics.rounds, metrics.messages) {
                                failures.push(format!(
                                    "{}: p=0 rounds/messages {}/{} differ from the committed \
                                     baseline {}/{}",
                                    s.name,
                                    metrics.rounds,
                                    metrics.messages,
                                    row.rounds,
                                    row.messages
                                ));
                            }
                        }
                    }
                }
            }
            let round_inflation = metrics.rounds as f64 / ref_metrics.rounds.max(1) as f64;
            // The headline fault-tolerance number: even the heavy end of
            // the grid must stay under 1.6× — the windowed ARQ keeps
            // most recovery off the critical path.
            if p >= 0.2 && round_inflation >= 1.6 {
                failures.push(format!(
                    "{} p={p}: round inflation {round_inflation:.2}x breaches the 1.6x ceiling",
                    s.name
                ));
            }
            let message_overhead =
                (metrics.retransmits + metrics.acks) as f64 / ref_metrics.messages.max(1) as f64;
            table.row(&[
                s.name.to_string(),
                format!("{p}"),
                metrics.rounds.to_string(),
                metrics.retransmit_rounds.to_string(),
                metrics.messages.to_string(),
                metrics.retransmits.to_string(),
                metrics.acks.to_string(),
                metrics.dup_suppressed.to_string(),
                format!("{round_inflation:.2}"),
                format!("{message_overhead:.2}"),
            ]);
            rows.push(LossReport {
                name: s.name.to_string(),
                p,
                rounds: metrics.rounds,
                retransmit_rounds: metrics.retransmit_rounds,
                messages: metrics.messages,
                retransmits: metrics.retransmits,
                acks: metrics.acks,
                dup_suppressed: metrics.dup_suppressed,
                dropped: metrics.dropped,
                window: DEFAULT_ARQ_WINDOW,
                round_inflation,
                message_overhead,
            });
        }
    }
    table.print();

    let report = LossGridReport {
        schema: SCHEMA.to_string(),
        mode: if args.smoke { "smoke" } else { "full" }.to_string(),
        scenarios: rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).expect("write BENCH_dist_loss.json");
    println!("wrote {out_path}");

    if let Err(e) = validate_json(&out_path) {
        eprintln!("{out_path} failed validation: {e}");
        std::process::exit(1);
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("LOSS GATE: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "loss gate passed: {} scenario(s) × {} loss rates bit-identical to the lossless \
         runs, recovery within the retransmit-round bound{}",
        scenarios.len(),
        LOSS_RATES.len(),
        if baseline.is_some() {
            ", p=0 exactly matching the committed budget baseline"
        } else {
            ""
        }
    );
}

//! **Experiment F-vs-PS** — head-to-head realized profit against the
//! Panconesi–Sozio baseline on identical line workloads (plus the greedy
//! heuristic and, where tractable, the exact optimum). The paper
//! guarantees a 5× better *bound*; this experiment shows where the
//! realized solutions land as contention grows.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_baseline::{exact_max_profit, greedy_profit, ps_line_unit, GreedyOrder, PsConfig};
use treenet_bench::report::f3;
use treenet_bench::stats::summarize;
use treenet_bench::{seeds, Scale, Table};
use treenet_core::{solve_line_unit, SolverConfig};
use treenet_model::workload::LineWorkload;

fn main() {
    let scale = Scale::from_env();
    let runs = seeds(scale.pick(5, 20));
    let ms: Vec<usize> = scale.pick(vec![10, 20, 40], vec![10, 20, 40, 80, 160]);
    let mut table = Table::new(
        "F-vs-PS — realized profit, normalized to the exact optimum where available (line unit, slots = 40, r = 2)",
        &["m (demands)", "ours/OPT mean", "PS/OPT mean", "greedy/OPT mean", "ours/PS mean", "ours wins [%]"],
    );
    for &m in &ms {
        let mut ours_ratio = Vec::new();
        let mut ps_ratio = Vec::new();
        let mut greedy_ratio = Vec::new();
        let mut head_to_head = Vec::new();
        let mut wins = 0usize;
        for &seed in &runs {
            let p = LineWorkload::new(40, m)
                .with_resources(2)
                .with_window_slack(2)
                .with_len_range(1, 10)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let ours = solve_line_unit(&p, &SolverConfig::default().with_seed(seed)).unwrap();
            let ps = ps_line_unit(
                &p,
                &PsConfig {
                    seed,
                    ..PsConfig::default()
                },
            );
            let greedy = greedy_profit(&p, GreedyOrder::Density);
            let po = ours.profit(&p);
            let pp = ps.profit(&p);
            let pg = greedy.profit(&p);
            head_to_head.push(if pp > 0.0 { po / pp } else { 1.0 });
            if po >= pp - 1e-9 {
                wins += 1;
            }
            if m <= 20 {
                if let Ok(opt) = exact_max_profit(&p, 50_000_000) {
                    let popt = opt.profit(&p);
                    ours_ratio.push(po / popt);
                    ps_ratio.push(pp / popt);
                    greedy_ratio.push(pg / popt);
                }
            }
        }
        let fmt = |v: &Vec<f64>| {
            if v.is_empty() {
                "-".to_string()
            } else {
                f3(summarize(v).mean)
            }
        };
        table.row(&[
            m.to_string(),
            fmt(&ours_ratio),
            fmt(&ps_ratio),
            fmt(&greedy_ratio),
            f3(summarize(&head_to_head).mean),
            format!("{}", 100 * wins / runs.len()),
        ]);
    }
    table.print();
    println!(
        "Both primal-dual algorithms realize near-optimal profit on these workloads; \
         the paper's improvement is in the *guarantee* (certified bound — see F-lambda), \
         with ours ahead or tied on most head-to-head runs."
    );
}

//! **Experiment F-rounds-profits** — Theorem 5.3 / Lemma 5.1: no stage
//! ever takes more than `1 + log₂(pmax/pmin)` steps (the kill-chain
//! bound).
//!
//! Two parts:
//!
//! 1. *Random workloads*: the bound holds with lots of slack — random
//!    profits rarely build long kill chains, so the step count stays flat
//!    (the bound is worst-case, not typical-case).
//! 2. *Adversarial clique*: identical intervals with profits `1, 2, 4, …`
//!    — the shape behind the kill-chain argument. Even here the realized
//!    step count stays far below the bound: one raise of a high-profit
//!    instance contributes `3δ = (3/4)·p` to every clique member's LHS,
//!    satisfying all smaller demands at once, and Luby's randomized MIS
//!    picks large instances early. Lemma 5.1 is a worst-case ceiling;
//!    the experiment certifies it is never exceeded while showing the
//!    typical cost is O(1) steps per stage.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_bench::report::f2;
use treenet_bench::stats::summarize;
use treenet_bench::{seeds, Scale, Table};
use treenet_core::{solve_line_unit, solve_tree_unit, SolverConfig};
use treenet_graph::{Tree, VertexId};
use treenet_model::workload::TreeWorkload;
use treenet_model::{Demand, Problem, ProblemBuilder};

/// `k` identical unit-height intervals over one shared slot with profits
/// `2^0 … 2^(k-1)`: a conflict clique realizing the Lemma 5.1 kill chain.
fn adversarial_clique(k: usize) -> Problem {
    let mut b = ProblemBuilder::new();
    let t = b.add_network(Tree::line(8)).expect("line");
    for i in 0..k {
        b.add_demand(
            Demand::pair(VertexId(2), VertexId(5), (1u64 << i) as f64),
            &[t],
        )
        .expect("demand");
    }
    b.build().expect("clique problem")
}

fn main() {
    let scale = Scale::from_env();
    let runs = seeds(scale.pick(3, 10));

    // Part 1: random workloads — verify the bound.
    let ratios: Vec<f64> = scale.pick(
        vec![1.0, 4.0, 16.0, 64.0, 256.0],
        vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0],
    );
    let mut table = Table::new(
        "F-rounds-profits (random) — Lemma 5.1 bound on random tree workloads (n = 32, m = 64)",
        &[
            "pmax/pmin",
            "Lemma 5.1 bound",
            "max steps/stage",
            "steps (mean)",
            "comm rounds (mean)",
        ],
    );
    for &ratio in &ratios {
        let mut max_stage = Vec::new();
        let mut steps = Vec::new();
        let mut rounds = Vec::new();
        for &seed in &runs {
            let p = TreeWorkload::new(32, 64)
                .with_networks(3)
                .with_profit_ratio(ratio)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = solve_tree_unit(&p, &SolverConfig::default().with_seed(seed)).unwrap();
            max_stage.push(out.stats.max_steps_in_stage as f64);
            steps.push(out.stats.steps as f64);
            rounds.push(out.stats.comm_rounds as f64);
        }
        let bound = 2.0 + ratio.log2().max(0.0);
        table.row(&[
            f2(ratio),
            f2(bound),
            f2(summarize(&max_stage).max),
            f2(summarize(&steps).mean),
            f2(summarize(&rounds).mean),
        ]);
        assert!(
            summarize(&max_stage).max <= bound,
            "Lemma 5.1 step bound violated at ratio {ratio}"
        );
    }
    table.print();
    println!(
        "random profits rarely build kill chains: steps/stage stays ~2 while the \
         bound grows — Lemma 5.1 is a worst-case bound.\n"
    );

    // Part 2: adversarial clique — realize the kill chain.
    let mut table = Table::new(
        "F-rounds-profits (adversarial) — doubling-profit clique (k demands, pmax/pmin = 2^(k-1))",
        &[
            "k",
            "log2(pmax/pmin)",
            "Lemma 5.1 bound",
            "max steps/stage",
            "total steps",
            "within bound",
        ],
    );
    let ks: Vec<usize> = scale.pick(vec![2, 4, 8, 12], vec![2, 4, 6, 8, 10, 12, 14, 16]);
    for &k in &ks {
        // Max over seeds: the MIS choice is randomized, so probe several.
        let mut worst = 0.0f64;
        let mut total = 0u64;
        for &seed in &runs {
            let p = adversarial_clique(k);
            let out = solve_line_unit(&p, &SolverConfig::default().with_seed(seed)).unwrap();
            out.solution.verify(&p).unwrap();
            worst = worst.max(out.stats.max_steps_in_stage as f64);
            total = total.max(out.stats.steps);
        }
        let logr = (k - 1) as f64;
        let bound = 2.0 + logr;
        table.row(&[
            k.to_string(),
            f2(logr),
            f2(bound),
            f2(worst),
            total.to_string(),
            if worst <= bound {
                "yes".into()
            } else {
                "VIOLATED".to_string()
            },
        ]);
        assert!(
            worst <= bound,
            "Lemma 5.1 violated on the adversarial clique k={k}"
        );
    }
    table.print();
    println!(
        "Lemma 5.1 certified on both families; realized steps/stage stay O(1) because a \
         single high-profit raise satisfies every smaller clique member at once — the \
         log(pmax/pmin) ceiling is a worst-case guarantee, not typical behaviour."
    );
}

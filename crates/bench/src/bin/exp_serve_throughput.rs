//! **Experiment serve-throughput** — sustained throughput and re-solve
//! latency of the online scheduling service: boots a `treenet-serve`
//! [`Server`] over a pod-structured workload with 10⁴–10⁶ queued
//! demands, drives a seeded open-loop submit/withdraw stream through the
//! wire protocol, and compares the warm per-delta re-solve latency
//! against the cold from-scratch solve. Runs both server modes:
//! unit-height and capacitated (`hmin = 0.25`, bimodal narrow/wide
//! heights on every demand and on the delta stream). Writes
//! `BENCH_serve.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p treenet-bench --bin exp_serve_throughput             # 1e4 + 1e5
//! cargo run --release -p treenet-bench --bin exp_serve_throughput -- --smoke  # 1e4 only
//! cargo run --release -p treenet-bench --bin exp_serve_throughput -- --scenarios serve-1e6
//! ```
//!
//! Hard gates (exit non-zero):
//!
//! * every scenario's final `check` must be **bit-identical** to the
//!   from-scratch oracle;
//! * at ≥10⁵ queued demands, the warm median re-solve must be at least
//!   **5×** faster than the cold solve — in *both* modes: the
//!   capacitated 10⁵ row holds the same line as the unit one;
//! * the emitted JSON must re-read through the typed schema.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use treenet_bench::report::f2;
use treenet_bench::{DistArgs, Table};
use treenet_core::SolverConfig;
use treenet_model::workload::{HeightMode, TreeWorkload};
use treenet_serve::{OpenLoop, Request, Server};

/// Schema tag checked by the smoke validation (bump on layout changes).
const SCHEMA: &str = "treenet-bench/serve/v2";

/// Height floor served by capacitated scenarios.
const HMIN: f64 = 0.25;

/// Queued-demand count at which the ≥5× warm-vs-cold gate binds.
const GATE_DEMANDS: u64 = 100_000;

/// Required warm-vs-cold median speedup at the gate size.
const GATE_SPEEDUP: f64 = 5.0;

/// Which server mode a scenario boots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Rule {
    /// Unit heights everywhere; the engine runs the unit raise rule.
    Unit,
    /// Bimodal narrow/wide heights over an `hmin = 0.25` floor; the
    /// engine composes a wide unit-rule run with a narrow narrow-rule
    /// run per component.
    Capacitated,
}

impl Rule {
    fn name(self) -> &'static str {
        match self {
            Rule::Unit => "unit",
            Rule::Capacitated => "capacitated",
        }
    }
}

struct Scenario {
    name: &'static str,
    rule: Rule,
    /// Vertices per tree-network.
    n: usize,
    /// Bootstrap (queued) demand count.
    m: usize,
    /// Independent pods of 2 networks each; demands never cross pods.
    pods: usize,
    epsilon: f64,
    /// Open-loop requests to time after bootstrap.
    deltas: usize,
    /// Cold from-scratch solves to sample (median is reported).
    cold_samples: usize,
    smoke: bool,
    /// Whether the scenario runs without being named in `--scenarios`
    /// (the 10⁶ row is nightly-only: ~minutes of cold solves).
    default_run: bool,
}

const GRID: &[Scenario] = &[
    Scenario {
        name: "serve-1e4",
        rule: Rule::Unit,
        n: 24,
        m: 10_000,
        pods: 250,
        epsilon: 0.3,
        deltas: 120,
        cold_samples: 3,
        smoke: true,
        default_run: true,
    },
    Scenario {
        name: "serve-cap-1e4",
        rule: Rule::Capacitated,
        n: 24,
        m: 10_000,
        pods: 250,
        epsilon: 0.3,
        deltas: 120,
        cold_samples: 3,
        smoke: true,
        default_run: true,
    },
    Scenario {
        name: "serve-1e5",
        rule: Rule::Unit,
        n: 24,
        m: 100_000,
        pods: 2500,
        epsilon: 0.3,
        deltas: 120,
        cold_samples: 3,
        smoke: false,
        default_run: true,
    },
    Scenario {
        name: "serve-cap-1e5",
        rule: Rule::Capacitated,
        n: 24,
        m: 100_000,
        pods: 2500,
        epsilon: 0.3,
        deltas: 120,
        cold_samples: 3,
        smoke: false,
        default_run: true,
    },
    Scenario {
        name: "serve-1e6",
        rule: Rule::Unit,
        n: 24,
        m: 1_000_000,
        pods: 4000,
        epsilon: 0.3,
        deltas: 60,
        cold_samples: 1,
        smoke: false,
        default_run: false,
    },
];

/// Per-scenario measurements as persisted to `BENCH_serve.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ScenarioReport {
    scenario: String,
    rule: String,
    demands: u64,
    instances: u64,
    pods: u64,
    networks: u64,
    epsilon: f64,
    /// Open-loop requests timed (each = one mutation + one resolve).
    deltas: u64,
    /// First warm resolve after bootstrap: every component solves once.
    bootstrap_resolve_ms: f64,
    warm_p50_us: f64,
    warm_p90_us: f64,
    warm_p99_us: f64,
    cold_median_us: f64,
    /// `cold_median_us / warm_p50_us`.
    speedup: f64,
    /// Wire-level requests per second over the timed delta stream.
    requests_per_sec: f64,
    /// Final warm state bit-identical to the from-scratch oracle.
    identical: bool,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct ServeReport {
    schema: String,
    mode: String,
    gate_demands: u64,
    gate_speedup: f64,
    scenarios: Vec<ScenarioReport>,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    assert!(!sorted_us.is_empty());
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn run_scenario(s: &Scenario) -> ScenarioReport {
    let heights = match s.rule {
        Rule::Unit => HeightMode::Unit,
        Rule::Capacitated => HeightMode::Bimodal {
            narrow_frac: 0.5,
            hmin: HMIN,
        },
    };
    let problem = TreeWorkload::new(s.n, s.m)
        .with_networks(2)
        .with_pods(s.pods)
        .with_profit_ratio(8.0)
        .with_heights(heights)
        .generate(&mut SmallRng::seed_from_u64(0x5eed_ba5e));
    let instances = problem.instance_count() as u64;
    let networks = problem.network_count() as u64;
    let vertices = problem.vertex_count() as u32;
    let mut config = SolverConfig::default().with_epsilon(s.epsilon);
    if s.rule == Rule::Capacitated {
        config = config.with_hmin(HMIN);
    }
    let mut server = Server::new(problem, &config).expect("workload admits");

    // Bootstrap: the first warm resolve pays for every component once —
    // the cost a cold client sees before the warm regime begins.
    let t0 = Instant::now();
    let resp = server.apply(&Request::Resolve);
    let bootstrap_resolve_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(resp["ok"], true, "bootstrap resolve failed: {resp:?}");

    // Cold baseline: the from-scratch oracle over all live instances
    // (`reference_solve` covers both modes; in capacitated mode it
    // composes the wide and narrow reference runs like the engine does).
    let mut cold_us = Vec::with_capacity(s.cold_samples);
    for _ in 0..s.cold_samples {
        let t0 = Instant::now();
        server.engine().reference_solve().expect("reference solve");
        cold_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    cold_us.sort_by(f64::total_cmp);
    let cold_median_us = percentile(&cold_us, 50.0);

    // Warm regime: a seeded open-loop submit/withdraw stream through the
    // wire protocol, resolving after every mutation. Timing includes the
    // JSON round-trip — this is what a client experiences per request.
    let mut generator = OpenLoop::new(17, vertices, networks as u32).with_id_floor(s.m as u64);
    if s.rule == Rule::Capacitated {
        generator = generator.with_heights(HMIN, 50);
    }
    let resolve_line = r#"{"op":"resolve"}"#;
    let mut warm_us = Vec::with_capacity(s.deltas);
    let mut total_secs = 0.0;
    for _ in 0..s.deltas {
        let line = generator.next_request().to_json();
        let t0 = Instant::now();
        let mutation = server.handle_line(&line);
        let resolve = server.handle_line(resolve_line);
        let elapsed = t0.elapsed().as_secs_f64();
        total_secs += elapsed;
        warm_us.push(elapsed * 1e6);
        assert!(mutation.contains(r#""ok":true"#), "{line} -> {mutation}");
        assert!(resolve.contains(r#""ok":true"#), "{resolve}");
    }
    warm_us.sort_by(f64::total_cmp);
    let warm_p50_us = percentile(&warm_us, 50.0);

    // Bit-identity: the whole exercise only counts if the warm state
    // still equals the from-scratch oracle after the delta storm.
    let check = server.apply(&Request::Check);
    let identical = check["identical"] == true;

    ScenarioReport {
        scenario: s.name.to_string(),
        rule: s.rule.name().to_string(),
        demands: s.m as u64,
        instances,
        pods: s.pods as u64,
        networks,
        epsilon: s.epsilon,
        deltas: s.deltas as u64,
        bootstrap_resolve_ms,
        warm_p50_us,
        warm_p90_us: percentile(&warm_us, 90.0),
        warm_p99_us: percentile(&warm_us, 99.0),
        cold_median_us,
        speedup: cold_median_us / warm_p50_us,
        requests_per_sec: (2 * s.deltas) as f64 / total_secs,
        identical,
    }
}

/// Re-reads the emitted file through the typed schema; any shape drift
/// (missing field, wrong type, bad tag) fails loudly.
fn validate_json(path: &str) -> Result<ServeReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report: ServeReport =
        serde_json::from_str(&text).map_err(|e| format!("malformed {path}: {e}"))?;
    if report.schema != SCHEMA {
        return Err(format!(
            "schema tag mismatch in {path}: {} != {SCHEMA}",
            report.schema
        ));
    }
    if report.scenarios.is_empty() {
        return Err(format!("{path} contains no scenarios"));
    }
    for s in &report.scenarios {
        if !matches!(s.rule.as_str(), "unit" | "capacitated") {
            return Err(format!(
                "{path}: scenario {} has unknown rule `{}`",
                s.scenario, s.rule
            ));
        }
        if !s.identical {
            return Err(format!("{path}: scenario {} diverged", s.scenario));
        }
        if !(s.speedup.is_finite() && s.speedup > 0.0) {
            return Err(format!("{path}: scenario {} has bad speedup", s.scenario));
        }
        if s.demands >= report.gate_demands && s.speedup < report.gate_speedup {
            return Err(format!(
                "{path}: scenario {} speedup {:.2}x below the {:.0}x gate",
                s.scenario, s.speedup, report.gate_speedup
            ));
        }
    }
    Ok(report)
}

fn main() {
    let args = DistArgs::from_env();
    let smoke = args.smoke;
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let named = |name: &str| {
        args.scenarios
            .as_ref()
            .is_some_and(|list| list.iter().any(|s| s == name))
    };
    let scenarios: Vec<&Scenario> = GRID
        .iter()
        .filter(|s| {
            if smoke {
                return s.smoke && args.selects(s.name);
            }
            if !s.default_run {
                return named(s.name);
            }
            args.selects(s.name)
        })
        .collect();
    assert!(
        !scenarios.is_empty(),
        "--scenarios filtered out every scenario"
    );

    let mut table = Table::new(
        "serve-throughput — warm re-solve vs cold solve over the wire protocol",
        &[
            "scenario",
            "rule",
            "demands",
            "instances",
            "pods",
            "deltas",
            "boot [ms]",
            "warm p50 [µs]",
            "warm p90 [µs]",
            "warm p99 [µs]",
            "cold med [µs]",
            "speedup",
            "req/s",
            "identical",
        ],
    );
    let mut rows = Vec::new();
    for s in &scenarios {
        let row = run_scenario(s);
        table.row(&[
            row.scenario.clone(),
            row.rule.clone(),
            row.demands.to_string(),
            row.instances.to_string(),
            row.pods.to_string(),
            row.deltas.to_string(),
            f2(row.bootstrap_resolve_ms),
            f2(row.warm_p50_us),
            f2(row.warm_p90_us),
            f2(row.warm_p99_us),
            f2(row.cold_median_us),
            format!("{:.1}x", row.speedup),
            f2(row.requests_per_sec),
            row.identical.to_string(),
        ]);
        rows.push(row);
    }
    table.print();

    let report = ServeReport {
        schema: SCHEMA.to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        gate_demands: GATE_DEMANDS,
        gate_speedup: GATE_SPEEDUP,
        scenarios: rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");

    match validate_json(&out_path) {
        Ok(read_back) => {
            for s in &read_back.scenarios {
                println!(
                    "{}: warm p50 {:.0}µs vs cold {:.0}µs = {:.1}x, {:.0} req/s, identical={}",
                    s.scenario,
                    s.warm_p50_us,
                    s.cold_median_us,
                    s.speedup,
                    s.requests_per_sec,
                    s.identical
                );
            }
        }
        Err(e) => {
            eprintln!("{out_path} failed validation: {e}");
            std::process::exit(1);
        }
    }
}

//! **Experiment F-rounds-n** — Theorem 5.3: with ε and pmax/pmin fixed,
//! the number of communication rounds of the tree-network scheduler grows
//! as `O(Time(MIS) · log n)`. We sweep `n` geometrically and report the
//! epoch count (≤ 2⌈log n⌉+1 by Lemma 4.1), steps, Luby iterations and
//! the derived communication rounds; the fitted slope of rounds against
//! `log₂ n` should dominate the growth (correlation near 1).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_bench::report::{f2, f3};
use treenet_bench::stats::{correlation, summarize};
use treenet_bench::{seeds, Scale, Table};
use treenet_core::{solve_tree_unit, SolverConfig};
use treenet_model::workload::TreeWorkload;

fn main() {
    let scale = Scale::from_env();
    let ns: Vec<usize> = scale.pick(
        vec![16, 32, 64, 128, 256],
        vec![16, 32, 64, 128, 256, 512, 1024],
    );
    let runs = seeds(scale.pick(3, 10));
    let mut table = Table::new(
        "F-rounds-n — round complexity vs n (tree unit, ε = 0.1, pmax/pmin = 8, m = 2n demands)",
        &[
            "n",
            "2*ceil(log2 n)+1",
            "epochs (mean)",
            "steps (mean)",
            "MIS iters (mean)",
            "comm rounds (mean)",
            "rounds/log2(n)",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &ns {
        let mut epochs = Vec::new();
        let mut steps = Vec::new();
        let mut mis = Vec::new();
        let mut rounds = Vec::new();
        for &seed in &runs {
            let p = TreeWorkload::new(n, 2 * n)
                .with_networks(3)
                .with_profit_ratio(8.0)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = solve_tree_unit(&p, &SolverConfig::default().with_seed(seed)).unwrap();
            out.solution.verify(&p).unwrap();
            epochs.push(out.stats.epochs as f64);
            steps.push(out.stats.steps as f64);
            mis.push(out.stats.mis_rounds as f64);
            rounds.push(out.stats.comm_rounds as f64);
        }
        let log2n = (n as f64).log2();
        let bound = 2.0 * log2n.ceil() + 1.0;
        let r = summarize(&rounds);
        table.row(&[
            n.to_string(),
            f2(bound),
            f2(summarize(&epochs).mean),
            f2(summarize(&steps).mean),
            f2(summarize(&mis).mean),
            f2(r.mean),
            f2(r.mean / log2n),
        ]);
        assert!(
            summarize(&epochs).max <= bound,
            "epoch count exceeded the Lemma 4.1 depth bound at n = {n}"
        );
        xs.push(log2n);
        ys.push(r.mean);
    }
    table.print();
    let corr = correlation(&xs, &ys);
    println!("correlation(comm rounds, log2 n) = {}", f3(corr));
    assert!(corr > 0.9, "rounds should track log n");
}

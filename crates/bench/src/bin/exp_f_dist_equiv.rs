//! **Experiment F-dist** — Section 5, "Distributed Implementation": the
//! message-passing execution reproduces the logical scheduler exactly
//! (same solution, bit-identical duals), with `O(M)`-bit messages, over a
//! real synchronous network simulation.
//!
//! Scenarios are named `tree-unit-<n>x<m>`; `--scenarios` (shared across
//! the dist bench bins via `treenet_bench::DistArgs`) selects by
//! substring and `--smoke` forces the reduced grid.
//!
//! The CI determinism job runs this bin twice — `--threads 1` and
//! `--threads 4`, both with `--shuffle <seed>` — and diffs the files
//! written by `--out` byte-for-byte: every run's full solution, schedule
//! and λ bit pattern, so any thread-count-dependent divergence of the
//! sharded engine fails the lane.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_bench::report::f3;
use treenet_bench::{seeds, DistArgs, Scale, Table};
use treenet_core::{solve_tree_unit, SolverConfig};
use treenet_dist::{run_distributed_tree_unit, DistConfig};
use treenet_model::workload::TreeWorkload;

fn main() {
    let args = DistArgs::from_env();
    let scale = if args.smoke {
        Scale::Small
    } else {
        Scale::from_env()
    };
    let runs = seeds(scale.pick(3, 8));
    let sizes: Vec<(usize, usize)> = scale.pick(
        vec![(8, 6), (12, 10)],
        vec![(8, 6), (12, 10), (16, 14), (24, 20)],
    );
    let mut table = Table::new(
        "F-dist — message-passing vs logical execution (tree unit, ε = 0.3)",
        &[
            "n",
            "m",
            "seed",
            "solutions equal",
            "λ equal (bitwise)",
            "rounds",
            "messages",
            "max msg [bits]",
        ],
    );
    let mut all_equal = true;
    let mut ran_any = false;
    let mut emitted = String::new();
    for &(n, m) in &sizes {
        if !args.selects(&format!("tree-unit-{n}x{m}")) {
            continue;
        }
        ran_any = true;
        for &seed in &runs {
            let p = TreeWorkload::new(n, m)
                .with_networks(2)
                .with_profit_ratio(4.0)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let cfg = SolverConfig::default().with_epsilon(0.3).with_seed(seed);
            let logical = solve_tree_unit(&p, &cfg).unwrap();
            let mut dist_cfg = DistConfig::from(&cfg);
            if let Some(threads) = args.threads {
                dist_cfg.threads = threads;
            }
            if let Some(shuffle_seed) = args.shuffle {
                dist_cfg.shuffle_delivery = Some(shuffle_seed);
            }
            let distributed = run_distributed_tree_unit(&p, &dist_cfg).unwrap();
            assert!(!distributed.final_unsatisfied);
            let sol_eq = logical.solution == distributed.solution;
            let lam_eq = logical.lambda.to_bits() == distributed.lambda.to_bits();
            all_equal &= sol_eq && lam_eq;
            if args.out.is_some() {
                // Everything the run decided, in a stable text form, so
                // two invocations at different thread counts can be
                // compared byte-for-byte.
                emitted.push_str(&format!(
                    "tree-unit-{n}x{m} seed={seed} lambda_bits={:016x} rounds={} messages={} \
                     bits={} solution={:?} schedule={:?}\n",
                    distributed.lambda.to_bits(),
                    distributed.metrics.rounds,
                    distributed.metrics.messages,
                    distributed.metrics.bits,
                    distributed.solution,
                    distributed.schedule,
                ));
            }
            table.row(&[
                n.to_string(),
                m.to_string(),
                seed.to_string(),
                sol_eq.to_string(),
                lam_eq.to_string(),
                distributed.metrics.rounds.to_string(),
                distributed.metrics.messages.to_string(),
                distributed.metrics.max_message_bits.to_string(),
            ]);
        }
    }
    table.print();
    assert!(ran_any, "--scenarios filtered out every scenario");
    if let Some(out) = &args.out {
        std::fs::write(out, emitted).expect("write --out file");
        println!("wrote {out}");
    }
    assert!(
        all_equal,
        "distributed execution diverged from the logical one"
    );
    println!(
        "every run: identical solutions and bit-identical duals; max message size \
         stays at one demand descriptor (the paper's O(M) bits). λ achieved: {}.",
        f3(1.0 - 0.3)
    );
}

//! **Experiment perf-phase1** — the repo's performance baseline for the
//! incremental phase-1 engine: times end-to-end `run_two_phase` solves
//! against the preserved from-scratch reference
//! (`run_two_phase_reference`) across a tree/line × rule × size × ε
//! scenario grid (unit, narrow, and capacitated raise rules), asserts
//! the engines stay bit-identical while the clock runs, and writes the
//! results to `BENCH_phase1.json` (schema `phase1/v2`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p treenet-bench --bin exp_perf_phase1            # full grid
//! cargo run --release -p treenet-bench --bin exp_perf_phase1 -- --smoke
//! cargo run --release -p treenet-bench --bin exp_perf_phase1 -- --out path.json
//! ```
//!
//! `--smoke` runs only the small scenarios and then re-reads the emitted
//! JSON through the typed schema, exiting non-zero if it is malformed —
//! the CI guard keeping the bench trajectory alive on every PR.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use treenet_bench::report::f2;
use treenet_bench::{DistArgs, Table};
use treenet_core::{
    narrow_xi, run_two_phase, run_two_phase_reference, unit_xi, FrameworkConfig, Outcome, RaiseRule,
};
use treenet_decomp::{LayeredDecomposition, Strategy};
use treenet_model::workload::{HeightMode, LineWorkload, TreeWorkload};
use treenet_model::{HeightClass, InstanceId, Problem};

/// Schema tag checked by the smoke validation (bump on layout changes).
const SCHEMA: &str = "treenet-bench/phase1/v2";

/// Narrow-height floor of the narrow/capacitated scenarios.
const HMIN: f64 = 0.25;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Family {
    Tree,
    Line,
}

impl Family {
    fn name(self) -> &'static str {
        match self {
            Family::Tree => "tree",
            Family::Line => "line",
        }
    }
}

/// Which raise rule a scenario times. `Capacitated` times the wide
/// (unit-rule) and narrow (narrow-rule) runs of the height-class split
/// back to back — the exact composition the combined solvers and the
/// capacitated `DeltaEngine` execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Rule {
    Unit,
    Narrow,
    Capacitated,
}

impl Rule {
    fn name(self) -> &'static str {
        match self {
            Rule::Unit => "unit",
            Rule::Narrow => "narrow",
            Rule::Capacitated => "capacitated",
        }
    }

    fn heights(self) -> HeightMode {
        match self {
            Rule::Unit => HeightMode::Unit,
            Rule::Narrow => HeightMode::Bimodal {
                narrow_frac: 1.0,
                hmin: HMIN,
            },
            Rule::Capacitated => HeightMode::Bimodal {
                narrow_frac: 0.5,
                hmin: HMIN,
            },
        }
    }
}

/// One point of the scenario grid.
struct Scenario {
    name: &'static str,
    family: Family,
    rule: Rule,
    n: usize,
    m: usize,
    epsilon: f64,
    /// Whether the smoke grid includes this scenario.
    smoke: bool,
    /// Pod count of the huge scenarios (`0` = flat sampling): demands
    /// are confined to independent pods of 2 networks each, the regime
    /// the sharded netsim engine scales to.
    pods: usize,
}

/// The grid: both network families, three sizes, two slackness targets.
/// Ordered by cost; the last entry is "the largest scenario" the
/// ≥5×-speedup goal refers to.
const GRID: &[Scenario] = &[
    Scenario {
        name: "tree-small-e3",
        family: Family::Tree,
        rule: Rule::Unit,
        n: 16,
        m: 14,
        epsilon: 0.3,
        smoke: true,
        pods: 0,
    },
    Scenario {
        name: "line-small-e3",
        family: Family::Line,
        rule: Rule::Unit,
        n: 32,
        m: 20,
        epsilon: 0.3,
        smoke: true,
        pods: 0,
    },
    Scenario {
        name: "tree-small-e1",
        family: Family::Tree,
        rule: Rule::Unit,
        n: 16,
        m: 14,
        epsilon: 0.1,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "line-small-e1",
        family: Family::Line,
        rule: Rule::Unit,
        n: 32,
        m: 20,
        epsilon: 0.1,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "tree-mid-e3",
        family: Family::Tree,
        rule: Rule::Unit,
        n: 48,
        m: 120,
        epsilon: 0.3,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "line-mid-e3",
        family: Family::Line,
        rule: Rule::Unit,
        n: 96,
        m: 120,
        epsilon: 0.3,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "tree-mid-e1",
        family: Family::Tree,
        rule: Rule::Unit,
        n: 48,
        m: 120,
        epsilon: 0.1,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "line-mid-e1",
        family: Family::Line,
        rule: Rule::Unit,
        n: 96,
        m: 120,
        epsilon: 0.1,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "line-large-e1",
        family: Family::Line,
        rule: Rule::Unit,
        n: 160,
        m: 320,
        epsilon: 0.1,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "tree-large-e1",
        family: Family::Tree,
        rule: Rule::Unit,
        n: 96,
        m: 400,
        epsilon: 0.1,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "line-xl-e1",
        family: Family::Line,
        rule: Rule::Unit,
        n: 320,
        m: 1200,
        epsilon: 0.1,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "tree-xl-e1",
        family: Family::Tree,
        rule: Rule::Unit,
        n: 192,
        m: 1600,
        epsilon: 0.1,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "line-xxl-e1",
        family: Family::Line,
        rule: Rule::Unit,
        n: 640,
        m: 4800,
        epsilon: 0.1,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "tree-xxl-e1",
        family: Family::Tree,
        rule: Rule::Unit,
        n: 384,
        m: 6400,
        epsilon: 0.1,
        smoke: false,
        pods: 0,
    },
    // The huge pod grid (10⁵ demands in 2500 independent pods): the
    // problem scale the sharded netsim engine simulates; here the
    // central engines chew through it to keep the phase-1 trajectory
    // honest at that size.
    Scenario {
        name: "line-huge-e3",
        family: Family::Line,
        rule: Rule::Unit,
        n: 30,
        m: 100_000,
        epsilon: 0.3,
        smoke: false,
        pods: 2500,
    },
    Scenario {
        name: "tree-huge-e3",
        family: Family::Tree,
        rule: Rule::Unit,
        n: 24,
        m: 100_000,
        epsilon: 0.3,
        smoke: false,
        pods: 2500,
    },
    // Narrow and capacitated rows: the same families under the
    // arbitrary-height machinery (all-narrow, and the wide/narrow
    // split timed back to back).
    Scenario {
        name: "tree-narrow-small-e3",
        family: Family::Tree,
        rule: Rule::Narrow,
        n: 16,
        m: 14,
        epsilon: 0.3,
        smoke: true,
        pods: 0,
    },
    Scenario {
        name: "line-narrow-small-e3",
        family: Family::Line,
        rule: Rule::Narrow,
        n: 32,
        m: 20,
        epsilon: 0.3,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "line-cap-small-e3",
        family: Family::Line,
        rule: Rule::Capacitated,
        n: 32,
        m: 20,
        epsilon: 0.3,
        smoke: true,
        pods: 0,
    },
    Scenario {
        name: "tree-cap-small-e3",
        family: Family::Tree,
        rule: Rule::Capacitated,
        n: 16,
        m: 14,
        epsilon: 0.3,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "tree-narrow-mid-e3",
        family: Family::Tree,
        rule: Rule::Narrow,
        n: 48,
        m: 120,
        epsilon: 0.3,
        smoke: false,
        pods: 0,
    },
    Scenario {
        name: "line-cap-mid-e3",
        family: Family::Line,
        rule: Rule::Capacitated,
        n: 96,
        m: 120,
        epsilon: 0.3,
        smoke: false,
        pods: 0,
    },
    // Pod-structured huge capacitated rows: the serve-path workload
    // shape (many independent pods, mixed heights) at netsim scale.
    Scenario {
        name: "line-cap-huge-e3",
        family: Family::Line,
        rule: Rule::Capacitated,
        n: 30,
        m: 100_000,
        epsilon: 0.3,
        smoke: false,
        pods: 2500,
    },
    Scenario {
        name: "tree-cap-huge-e3",
        family: Family::Tree,
        rule: Rule::Capacitated,
        n: 24,
        m: 100_000,
        epsilon: 0.3,
        smoke: false,
        pods: 2500,
    },
];

/// Per-scenario measurements as persisted to `BENCH_phase1.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ScenarioReport {
    name: String,
    family: String,
    rule: String,
    n: u64,
    m: u64,
    epsilon: f64,
    instances: u64,
    steps: u64,
    reference_ms: f64,
    incremental_ms: f64,
    speedup: f64,
}

/// The file-level report.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Phase1Report {
    schema: String,
    mode: String,
    repeats: u64,
    scenarios: Vec<ScenarioReport>,
    /// The last — and, in full mode, most expensive — scenario of the
    /// executed grid. The ≥5× headline number refers to the largest
    /// *flat* scenario (`tree-xxl-e1`); the huge pod rows that follow it
    /// trade depth-per-pod for breadth, where the incremental engine's
    /// edge is structurally smaller.
    final_scenario: String,
    final_speedup: f64,
}

fn problem_for(s: &Scenario) -> Problem {
    let mut rng = SmallRng::seed_from_u64(0x5eed_ba5e);
    match s.family {
        Family::Tree => TreeWorkload::new(s.n, s.m)
            .with_networks(2)
            .with_pods(s.pods)
            .with_profit_ratio(8.0)
            .with_heights(s.rule.heights())
            .generate(&mut rng),
        Family::Line => LineWorkload::new(s.n, s.m)
            .with_resources(2)
            .with_pods(s.pods)
            .with_window_slack(2)
            .with_len_range(2, (s.n as u32 / 8).max(3))
            .with_heights(s.rule.heights())
            .generate(&mut rng),
    }
}

fn layers_for(problem: &Problem, family: Family) -> LayeredDecomposition {
    match family {
        Family::Tree => LayeredDecomposition::for_trees(problem, Strategy::Ideal),
        Family::Line => LayeredDecomposition::for_lines(problem),
    }
}

/// Repeats beyond which a sub-millisecond scenario stops re-running.
/// High enough that even a ~5µs micro scenario accumulates well over
/// [`MIN_TOTAL_MS`] of samples before the cap binds — with only a few
/// hundred reps the min is still hostage to scheduler noise.
const MAX_REPEATS: u32 = 20_000;

/// Accumulated wall time after which the timing loop is satisfied, ms.
const MIN_TOTAL_MS: f64 = 20.0;

/// Best-of-N wall time in milliseconds, plus the last outcome. Runs at
/// least `min_repeats` times and keeps repeating until the accumulated
/// time crosses [`MIN_TOTAL_MS`] (capped at [`MAX_REPEATS`]), so
/// microsecond-scale scenarios are timed over hundreds of runs instead
/// of a noise-dominated handful, while second-scale scenarios stop at
/// `min_repeats`.
fn time_best<T>(min_repeats: u32, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut last = None;
    for rep in 0..MAX_REPEATS {
        let t0 = Instant::now();
        let outcome = run();
        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
        best = best.min(elapsed);
        total += elapsed;
        last = Some(outcome);
        if rep + 1 >= min_repeats && total >= MIN_TOTAL_MS {
            break;
        }
    }
    (best, last.expect("min_repeats >= 1"))
}

/// How many framework runs a scenario requires: one for the unit and narrow
/// rules, two for the capacitated rule (a wide unit-rule run plus a
/// narrow narrow-rule run over the height-class split, mirroring the
/// paper's composition).
fn runs_for(
    s: &Scenario,
    problem: &Problem,
    delta: usize,
) -> Vec<(RaiseRule, FrameworkConfig, Vec<InstanceId>)> {
    let config = |xi: f64| FrameworkConfig {
        epsilon: s.epsilon,
        xi,
        seed: 0x7ee5,
        ..FrameworkConfig::default()
    };
    let all: Vec<InstanceId> = problem.instances().map(|d| d.id).collect();
    match s.rule {
        Rule::Unit => vec![(RaiseRule::Unit, config(unit_xi(delta)), all)],
        Rule::Narrow => vec![(RaiseRule::Narrow, config(narrow_xi(delta, HMIN)), all)],
        Rule::Capacitated => {
            let (mut wide, mut narrow) = (Vec::new(), Vec::new());
            for &d in &all {
                match problem.demand(problem.instance(d).demand).height_class() {
                    HeightClass::Wide => wide.push(d),
                    HeightClass::Narrow => narrow.push(d),
                }
            }
            vec![
                (RaiseRule::Unit, config(unit_xi(delta)), wide),
                (RaiseRule::Narrow, config(narrow_xi(delta, HMIN)), narrow),
            ]
        }
    }
}

fn run_scenario(s: &Scenario, repeats: u32) -> ScenarioReport {
    let problem = problem_for(s);
    let layers = layers_for(&problem, s.family);
    let runs = runs_for(s, &problem, layers.delta());
    let (reference_ms, oracles) = time_best(repeats, || -> Vec<Outcome> {
        runs.iter()
            .map(|(rule, config, participants)| {
                run_two_phase_reference(&problem, &layers, *rule, config, participants)
                    .expect("reference run")
            })
            .collect()
    });
    let (incremental_ms, fasts) = time_best(repeats, || -> Vec<Outcome> {
        runs.iter()
            .map(|(rule, config, participants)| {
                run_two_phase(&problem, &layers, *rule, config, participants)
                    .expect("incremental run")
            })
            .collect()
    });
    // The clock only counts if the engines stay bit-identical, run by
    // run (for capacitated scenarios: the wide and the narrow run).
    for (fast, oracle) in fasts.iter().zip(oracles.iter()) {
        assert_eq!(
            fast.solution, oracle.solution,
            "{}: solutions diverged",
            s.name
        );
        assert_eq!(fast.stack, oracle.stack, "{}: stacks diverged", s.name);
        assert_eq!(fast.stats, oracle.stats, "{}: stats diverged", s.name);
        assert_eq!(
            fast.lambda.to_bits(),
            oracle.lambda.to_bits(),
            "{}: λ diverged",
            s.name
        );
    }
    ScenarioReport {
        name: s.name.to_string(),
        family: s.family.name().to_string(),
        rule: s.rule.name().to_string(),
        n: s.n as u64,
        m: s.m as u64,
        epsilon: s.epsilon,
        instances: problem.instance_count() as u64,
        steps: fasts.iter().map(|f| f.stats.steps).sum(),
        reference_ms,
        incremental_ms,
        speedup: reference_ms / incremental_ms,
    }
}

/// Re-reads the emitted file through the typed schema; any shape drift
/// (missing field, wrong type, bad tag) fails loudly.
fn validate_json(path: &str) -> Result<Phase1Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report: Phase1Report =
        serde_json::from_str(&text).map_err(|e| format!("malformed {path}: {e}"))?;
    if report.schema != SCHEMA {
        return Err(format!(
            "schema tag mismatch in {path}: {} != {SCHEMA}",
            report.schema
        ));
    }
    if report.scenarios.is_empty() {
        return Err(format!("{path} contains no scenarios"));
    }
    for s in &report.scenarios {
        if !matches!(s.rule.as_str(), "unit" | "narrow" | "capacitated") {
            return Err(format!(
                "{path}: scenario {} has unknown rule `{}`",
                s.name, s.rule
            ));
        }
        if !(s.speedup.is_finite() && s.speedup > 0.0) {
            return Err(format!("{path}: scenario {} has bad speedup", s.name));
        }
        if s.reference_ms < 0.0 || s.incremental_ms < 0.0 {
            return Err(format!("{path}: scenario {} has negative timing", s.name));
        }
        // The headline claim is "never slower than from scratch"; a
        // single-repeat smoke run is too noisy to hold that line, but a
        // full run must.
        if report.mode == "full" && s.speedup < 1.0 {
            return Err(format!(
                "{path}: scenario {} regressed below 1.0x ({:.2}x)",
                s.name, s.speedup
            ));
        }
    }
    Ok(report)
}

fn main() {
    let args = DistArgs::from_env();
    let smoke = args.smoke;
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_phase1.json".to_string());

    let repeats: u32 = if smoke { 1 } else { 3 };
    let scenarios: Vec<&Scenario> = GRID
        .iter()
        .filter(|s| (!smoke || s.smoke) && args.selects(s.name))
        .collect();
    assert!(
        !scenarios.is_empty(),
        "--scenarios filtered out every scenario"
    );

    let mut table = Table::new(
        "perf-phase1 — incremental engine vs from-scratch reference",
        &[
            "scenario",
            "family",
            "rule",
            "n",
            "m",
            "eps",
            "instances",
            "steps",
            "reference [ms]",
            "incremental [ms]",
            "speedup",
        ],
    );
    let mut rows = Vec::new();
    for s in &scenarios {
        let row = run_scenario(s, repeats);
        table.row(&[
            row.name.clone(),
            row.family.clone(),
            row.rule.clone(),
            row.n.to_string(),
            row.m.to_string(),
            format!("{}", row.epsilon),
            row.instances.to_string(),
            row.steps.to_string(),
            f2(row.reference_ms),
            f2(row.incremental_ms),
            format!("{:.2}x", row.speedup),
        ]);
        rows.push(row);
    }
    table.print();

    let last = rows.last().expect("grid is non-empty");
    let report = Phase1Report {
        schema: SCHEMA.to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        repeats: repeats as u64,
        final_scenario: last.name.clone(),
        final_speedup: last.speedup,
        scenarios: rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).expect("write BENCH_phase1.json");
    println!("wrote {out_path}");

    match validate_json(&out_path) {
        Ok(read_back) => println!(
            "schema ok ({} scenarios); final {} scenario {}: {:.2}x speedup",
            read_back.scenarios.len(),
            read_back.mode,
            read_back.final_scenario,
            read_back.final_speedup
        ),
        Err(e) => {
            eprintln!("BENCH_phase1.json failed validation: {e}");
            std::process::exit(1);
        }
    }
}

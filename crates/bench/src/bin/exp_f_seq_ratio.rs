//! **Experiment F-seq** — Appendix A: the sequential algorithm is a
//! certified 3-approximation on multiple tree-networks and a
//! 2-approximation on a single tree; against exact OPT the realized
//! ratios are far better. Also demonstrates the Θ(n) iteration count
//! (one instance per iteration) that motivates the distributed version.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_baseline::exact_max_profit;
use treenet_bench::report::f3;
use treenet_bench::stats::summarize;
use treenet_bench::{seeds, Scale, Table};
use treenet_core::solve_sequential_tree;
use treenet_model::workload::TreeWorkload;

fn main() {
    let scale = Scale::from_env();
    let runs = seeds(scale.pick(6, 25));
    let mut table = Table::new(
        "F-seq — sequential Appendix-A algorithm (n = 20, m = 12)",
        &[
            "networks r",
            "guarantee",
            "certified mean",
            "certified max",
            "OPT/profit mean",
            "OPT/profit max",
            "raises mean",
        ],
    );
    for &r in &[1usize, 2, 4] {
        let mut certified = Vec::new();
        let mut vs_opt = Vec::new();
        let mut raises = Vec::new();
        for &seed in &runs {
            let p = TreeWorkload::new(20, 12)
                .with_networks(r)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = solve_sequential_tree(&p);
            out.solution.verify(&p).unwrap();
            certified.push(out.certified_ratio(&p));
            raises.push(out.raises as f64);
            if let Ok(opt) = exact_max_profit(&p, 20_000_000) {
                let po = opt.profit(&p);
                let ps = out.profit(&p);
                vs_opt.push(if ps > 0.0 { po / ps } else { 1.0 });
            }
        }
        let guarantee = if r == 1 { 2.0 } else { 3.0 };
        let c = summarize(&certified);
        let o = summarize(&vs_opt);
        table.row(&[
            r.to_string(),
            f3(guarantee),
            f3(c.mean),
            f3(c.max),
            f3(o.mean),
            f3(o.max),
            f3(summarize(&raises).mean),
        ]);
        assert!(
            c.max <= guarantee + 1e-6,
            "Appendix A bound violated at r = {r}"
        );
        assert!(
            o.max <= guarantee + 1e-6,
            "exact ratio exceeded the guarantee at r = {r}"
        );
    }
    table.print();
    println!(
        "certified ≤ 3 (≤ 2 for r = 1) on every run; the number of raises grows with \
         the instance count — the Θ(n) sequential bottleneck the distributed \
         algorithm removes."
    );
}

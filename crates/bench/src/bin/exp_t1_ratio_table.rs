//! **Experiment T1 — the approximation-ratio table** (the paper's headline
//! comparison, Section 1):
//!
//! | setting | prior work | this paper |
//! |---|---|---|
//! | line, unit height | PS (20+ε) | (4+ε) |
//! | line, arbitrary height | PS (55+ε) | (23+ε) |
//! | tree, unit height | — | (7+ε) |
//! | tree, arbitrary height | — | (80+ε) |
//! | tree, sequential | 3 (2 for r = 1) | — |
//!
//! For each row we measure, over seeded random workloads: the certified
//! a-posteriori ratio (dual bound / achieved profit), the exact ratio
//! against branch-and-bound OPT (small instances), and check both stay
//! below the theorem's guarantee.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_baseline::{
    barnoy_line_arbitrary, barnoy_line_unit, exact_max_profit, ps_line_arbitrary, ps_line_unit,
    PsConfig,
};
use treenet_bench::report::f3;
use treenet_bench::{seeds, Scale, Table};
use treenet_core::{
    solve_line_arbitrary, solve_line_unit, solve_sequential_tree, solve_tree_arbitrary,
    solve_tree_unit, SolverConfig,
};
use treenet_model::workload::{HeightMode, LineWorkload, TreeWorkload};
use treenet_model::Problem;

struct Row {
    setting: &'static str,
    algorithm: &'static str,
    guarantee: f64,
    certified: Vec<f64>,
    vs_opt: Vec<f64>,
}

fn vs_opt(problem: &Problem, profit: f64) -> Option<f64> {
    exact_max_profit(problem, 40_000_000).ok().map(|opt| {
        let po = opt.profit(problem);
        if profit > 0.0 {
            po / profit
        } else if po == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    })
}

/// One seed's worth of measurements, run on a worker thread (the exact
/// solvers dominate the cost).
struct SeedResult {
    /// (row index, certified ratio, optional vs-OPT ratio).
    entries: Vec<(usize, f64, Option<f64>)>,
}

fn main() {
    let scale = Scale::from_env();
    let eps = 0.1;
    let runs = seeds(scale.pick(5, 20));
    let cfg = SolverConfig::default().with_epsilon(eps);
    let mut rows: Vec<Row> = vec![
        Row {
            setting: "line unit",
            algorithm: "ours (4+eps)",
            guarantee: 4.0 / (1.0 - eps),
            certified: vec![],
            vs_opt: vec![],
        },
        Row {
            setting: "line unit",
            algorithm: "PS (20+eps)",
            guarantee: 4.0 * (5.0 + eps),
            certified: vec![],
            vs_opt: vec![],
        },
        Row {
            setting: "line arbitrary",
            algorithm: "ours (23+eps)",
            guarantee: 23.0 / (1.0 - eps),
            certified: vec![],
            vs_opt: vec![],
        },
        Row {
            setting: "line arbitrary",
            algorithm: "PS-style (55+eps)",
            guarantee: 55.0,
            certified: vec![],
            vs_opt: vec![],
        },
        Row {
            setting: "line unit (sequential)",
            algorithm: "Bar-Noy et al. (2)",
            guarantee: 2.0,
            certified: vec![],
            vs_opt: vec![],
        },
        Row {
            setting: "line arbitrary (sequential)",
            algorithm: "Bar-Noy et al. (5)",
            guarantee: 5.0,
            certified: vec![],
            vs_opt: vec![],
        },
        Row {
            setting: "tree unit",
            algorithm: "ours (7+eps)",
            guarantee: 7.0 / (1.0 - eps),
            certified: vec![],
            vs_opt: vec![],
        },
        Row {
            setting: "tree arbitrary",
            algorithm: "ours (80+eps)",
            guarantee: 80.0 / (1.0 - eps),
            certified: vec![],
            vs_opt: vec![],
        },
        Row {
            setting: "tree sequential",
            algorithm: "Appendix A (3)",
            guarantee: 3.0,
            certified: vec![],
            vs_opt: vec![],
        },
        Row {
            setting: "single-tree sequential",
            algorithm: "Appendix A (2)",
            guarantee: 2.0,
            certified: vec![],
            vs_opt: vec![],
        },
    ];

    // One worker per seed: exact branch-and-bound dominates, so spread it.
    let results: Vec<SeedResult> = treenet_bench::parallel_map(runs.clone(), |seed| {
        let mut entries: Vec<(usize, f64, Option<f64>)> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        // Lines (unit).
        let lp = LineWorkload::new(40, 14)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(1, 10)
            .generate(&mut rng);
        let ours = solve_line_unit(&lp, &cfg.clone().with_seed(seed)).unwrap();
        ours.solution.verify(&lp).unwrap();
        entries.push((0, ours.certified_ratio(&lp), vs_opt(&lp, ours.profit(&lp))));
        let ps = ps_line_unit(
            &lp,
            &PsConfig {
                seed,
                ..PsConfig::default()
            },
        );
        ps.solution.verify(&lp).unwrap();
        entries.push((1, ps.certified_ratio(&lp), vs_opt(&lp, ps.profit(&lp))));

        // Lines (arbitrary heights).
        let la = LineWorkload::new(36, 12)
            .with_resources(2)
            .with_len_range(1, 8)
            .with_heights(HeightMode::Bimodal {
                narrow_frac: 0.5,
                hmin: 0.2,
            })
            .generate(&mut rng);
        let ours = solve_line_arbitrary(&la, &cfg.clone().with_seed(seed)).unwrap();
        ours.solution.verify(&la).unwrap();
        entries.push((2, ours.certified_ratio(&la), vs_opt(&la, ours.profit(&la))));
        let (ps_sol, ps_w, ps_n) = ps_line_arbitrary(
            &la,
            &PsConfig {
                seed,
                ..PsConfig::default()
            },
        );
        ps_sol.verify(&la).unwrap();
        let ps_bound = ps_w.opt_upper_bound() + ps_n.opt_upper_bound();
        let ps_profit = ps_sol.profit(&la);
        entries.push((
            3,
            if ps_profit > 0.0 {
                ps_bound / ps_profit
            } else {
                1.0
            },
            vs_opt(&la, ps_profit),
        ));

        // Sequential Bar-Noy baselines on the same line workloads.
        let bn = barnoy_line_unit(&lp);
        bn.solution.verify(&lp).unwrap();
        entries.push((4, bn.certified_ratio(&lp), vs_opt(&lp, bn.profit(&lp))));
        let (bn_sol, bn_w, bn_n) = barnoy_line_arbitrary(&la);
        bn_sol.verify(&la).unwrap();
        let bn_bound = bn_w.opt_upper_bound() + bn_n.opt_upper_bound();
        let bn_profit = bn_sol.profit(&la);
        entries.push((
            5,
            if bn_profit > 0.0 {
                bn_bound / bn_profit
            } else {
                1.0
            },
            vs_opt(&la, bn_profit),
        ));

        // Trees (unit).
        let tp = TreeWorkload::new(24, 12)
            .with_networks(2)
            .generate(&mut rng);
        let ours = solve_tree_unit(&tp, &cfg.clone().with_seed(seed)).unwrap();
        ours.solution.verify(&tp).unwrap();
        entries.push((6, ours.certified_ratio(&tp), vs_opt(&tp, ours.profit(&tp))));

        // Trees (arbitrary heights).
        let ta = TreeWorkload::new(20, 11)
            .with_networks(2)
            .with_heights(HeightMode::Bimodal {
                narrow_frac: 0.5,
                hmin: 0.2,
            })
            .generate(&mut rng);
        let ours = solve_tree_arbitrary(&ta, &cfg.clone().with_seed(seed)).unwrap();
        ours.solution.verify(&ta).unwrap();
        entries.push((7, ours.certified_ratio(&ta), vs_opt(&ta, ours.profit(&ta))));

        // Sequential (multi-tree and single-tree).
        let seq = solve_sequential_tree(&tp);
        seq.solution.verify(&tp).unwrap();
        entries.push((8, seq.certified_ratio(&tp), vs_opt(&tp, seq.profit(&tp))));
        let single = TreeWorkload::new(20, 10)
            .with_networks(1)
            .generate(&mut rng);
        let seq1 = solve_sequential_tree(&single);
        seq1.solution.verify(&single).unwrap();
        entries.push((
            9,
            seq1.certified_ratio(&single),
            vs_opt(&single, seq1.profit(&single)),
        ));
        SeedResult { entries }
    });
    for result in results {
        for (idx, certified, opt) in result.entries {
            rows[idx].certified.push(certified);
            if let Some(r) = opt {
                rows[idx].vs_opt.push(r);
            }
        }
    }

    let mut table = Table::new(
        "T1 — approximation ratios (certified = dual bound / profit; vs-OPT = exact optimum / profit)",
        &["setting", "algorithm", "guarantee", "certified mean", "certified max", "vs-OPT mean", "vs-OPT max", "within bound"],
    );
    for row in &rows {
        let cert = treenet_bench::stats::summarize(&row.certified);
        let opt = if row.vs_opt.is_empty() {
            None
        } else {
            Some(treenet_bench::stats::summarize(&row.vs_opt))
        };
        let ok =
            cert.max <= row.guarantee + 1e-6 && opt.is_none_or(|o| o.max <= row.guarantee + 1e-6);
        table.row(&[
            row.setting.into(),
            row.algorithm.into(),
            f3(row.guarantee),
            f3(cert.mean),
            f3(cert.max),
            opt.map_or("-".into(), |o| f3(o.mean)),
            opt.map_or("-".into(), |o| f3(o.max)),
            if ok { "yes".into() } else { "VIOLATED".into() },
        ]);
        assert!(
            ok,
            "{} / {}: guarantee violated",
            row.setting, row.algorithm
        );
    }
    table.print();
    println!("runs per row: {}", runs.len());
}

//! **Ablation A-stage** — isolating the paper's second contribution: the
//! multi-stage schedule (λ = 1-ε) vs the single-stage PS drop-out
//! (λ = 1/(5+ε)) *on the same ideal tree decomposition*. The only
//! difference between the two columns is the stage discipline, so the
//! certified-ratio gap is exactly what the `(20+ε) → (7+ε)`-style
//! improvement buys — at the price of a `log(1/ε)` factor more rounds.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_baseline::{single_stage_two_phase, PsConfig};
use treenet_bench::report::f3;
use treenet_bench::stats::summarize;
use treenet_bench::{seeds, Scale, Table};
use treenet_core::{solve_tree_unit, RaiseRule, SolverConfig};
use treenet_decomp::{LayeredDecomposition, Strategy};
use treenet_model::workload::TreeWorkload;
use treenet_model::InstanceId;

fn main() {
    let scale = Scale::from_env();
    let runs = seeds(scale.pick(6, 20));
    let mut multi_lambda = Vec::new();
    let mut multi_cert = Vec::new();
    let mut multi_steps = Vec::new();
    let mut single_lambda = Vec::new();
    let mut single_cert = Vec::new();
    let mut single_steps = Vec::new();
    for &seed in &runs {
        let p = TreeWorkload::new(32, 64)
            .with_networks(2)
            .generate(&mut SmallRng::seed_from_u64(seed));
        // Multi-stage (ours).
        let ours = solve_tree_unit(&p, &SolverConfig::default().with_seed(seed)).unwrap();
        multi_lambda.push(ours.lambda);
        multi_cert.push(ours.certified_ratio(&p));
        multi_steps.push(ours.stats.steps as f64);
        // Single-stage PS discipline on the same ideal decomposition.
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        let all: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
        let ps = single_stage_two_phase(
            &p,
            &layers,
            RaiseRule::Unit,
            &PsConfig {
                seed,
                ..PsConfig::default()
            },
            &all,
        );
        ps.solution.verify(&p).unwrap();
        single_lambda.push(ps.lambda);
        single_cert.push(ps.certified_ratio(&p));
        single_steps.push(ps.steps as f64);
    }
    let mut table = Table::new(
        "A-stage — multi-stage vs single-stage on the SAME ideal decomposition (tree unit, n = 32, m = 64)",
        &["discipline", "λ min", "certified mean", "certified max", "steps mean"],
    );
    table.row(&[
        "multi-stage (ours, ξ=14/15)".into(),
        f3(summarize(&multi_lambda).min),
        f3(summarize(&multi_cert).mean),
        f3(summarize(&multi_cert).max),
        f3(summarize(&multi_steps).mean),
    ]);
    table.row(&[
        "single-stage (PS drop-out)".into(),
        f3(summarize(&single_lambda).min),
        f3(summarize(&single_cert).mean),
        f3(summarize(&single_cert).max),
        f3(summarize(&single_steps).mean),
    ]);
    table.print();
    let gap = summarize(&single_cert).mean / summarize(&multi_cert).mean;
    println!(
        "certified-bound gap (single/multi) = {} — the multi-stage refinement alone",
        f3(gap)
    );
    assert!(summarize(&multi_lambda).min >= 0.9 - 1e-9);
    assert!(
        gap > 1.5,
        "multi-stage should certify substantially tighter"
    );
}

//! Summary statistics for experiment sweeps.

/// Summary of a sample: mean, min, max.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarizes a non-empty sample.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn summarize(sample: &[f64]) -> Summary {
    assert!(!sample.is_empty(), "cannot summarize an empty sample");
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &x in sample {
        min = min.min(x);
        max = max.max(x);
        sum += x;
    }
    Summary {
        mean: sum / sample.len() as f64,
        min,
        max,
    }
}

/// Least-squares slope of `y` against `x` — used to check claimed
/// scalings (e.g. rounds vs `log n`).
///
/// # Panics
///
/// Panics unless both slices have the same length ≥ 2.
pub fn slope(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2, "need at least two points for a slope");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let var: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
    cov / var
}

/// Pearson correlation of two equal-length samples.
///
/// # Panics
///
/// Panics unless both slices have the same length ≥ 2.
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2);
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
    let vy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = summarize(&[]);
    }

    #[test]
    fn slope_of_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        assert!((slope(&x, &y) - 2.0).abs() < 1e-12);
        assert!((correlation(&x, &y) - 1.0).abs() < 1e-12);
    }
}

//! Markdown table rendering and JSON persistence for experiment output.

use serde::Serialize;
use std::fmt::Write as _;

/// A simple aligned markdown table builder.
///
/// # Example
///
/// ```
/// use treenet_bench::Table;
///
/// let mut t = Table::new("demo", &["n", "value"]);
/// t.row(&["8".into(), "1.25".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("| n "));
/// assert!(rendered.contains("1.25"));
/// ```
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for i in 0..cols {
                let _ = write!(line, " {:<width$} |", cells[i], width = widths[i]);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders and prints to stdout; when the `EXP_JSON` environment
    /// variable is set, additionally persists the table as JSON under
    /// `target/experiments/<slug>.json` for downstream tooling.
    pub fn print(&self) {
        println!("{}", self.render());
        if std::env::var("EXP_JSON").is_ok() {
            if let Err(e) = self.save_json() {
                eprintln!("warning: could not persist experiment JSON: {e}");
            }
        }
    }

    /// Serializes the table to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tables are always serializable")
    }

    /// Writes the JSON form under `target/experiments/`, slugging the
    /// title.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_json(&self) -> std::io::Result<std::path::PathBuf> {
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect::<String>()
            .split('-')
            .filter(|s| !s.is_empty())
            .take(8)
            .collect::<Vec<_>>()
            .join("-");
        let dir = std::path::Path::new("target").join("experiments");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{slug}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("t", &["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let r = t.render();
        assert!(r.contains("### t"));
        assert!(r.contains("| a   | long-header |"));
        assert!(r.contains("| 333 | 4           |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new("t", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.2), "1.20");
    }

    #[test]
    fn json_round_trips() {
        let mut t = Table::new("json demo", &["k", "v"]);
        t.row(&["a".into(), "1".into()]);
        let json = t.to_json();
        assert!(json.contains("json demo"));
        let back: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(back["rows"][0][1], "1");
    }
}

//! Experiment harness: regenerates every quantitative claim of the paper.
//!
//! The paper is a theory paper — its "tables and figures" are the
//! approximation-ratio statements (the implicit comparison table of
//! Section 1) and the round-complexity bounds of Theorems 5.3/6.3/7.1/7.2
//! and Lemmas 4.1/4.3/5.1. Each claim maps to one binary in `src/bin`
//! (see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
//! paper-vs-measured outcomes):
//!
//! | binary | claim |
//! |---|---|
//! | `exp_t1_ratio_table` | the ratio table: PS 20/55 vs ours 4/23 (lines), 7/80 (trees), 3 & 2 (sequential) |
//! | `exp_f_rounds_vs_n` | rounds scale as `O(log n)` (Thm 5.3) |
//! | `exp_f_rounds_vs_profits` | rounds ∝ `log(pmax/pmin)`; Lemma 5.1 step bound |
//! | `exp_f_rounds_vs_eps` | rounds ∝ `log(1/ε)` |
//! | `exp_f_decomp_params` | decomposition trade-offs `⟨n,1⟩`, `⟨log n, log n⟩`, `⟨2 log n, 2⟩` (Lemma 4.1) |
//! | `exp_f_layered_delta` | `Δ ≤ 6` trees / `Δ ≤ 3` lines (Lemma 4.3, Sec. 7) |
//! | `exp_f_lambda` | slackness `λ = 1-ε` vs PS `1/(5+ε)` |
//! | `exp_f_vs_ps_profit` | realized-profit comparison vs PS on identical inputs |
//! | `exp_f_narrow_wide` | the (80+ε) combiner; rounds ∝ `1/hmin` (Thm 6.3) |
//! | `exp_f_mis_rounds` | Luby `Time(MIS) = O(log N)` |
//! | `exp_f_dist_equiv` | message-passing ≡ logical; `O(M)`-bit messages |
//! | `exp_f_dist_line_equiv` | message-passing ≡ logical on lines (Thms 7.1/7.2); `O(M)`-bit messages, exact setup/compute/control round relation |
//! | `exp_f_dist_budget` | round/message budgets of the in-network runners; CI regression gate vs `BENCH_dist_rounds.json` |
//! | `exp_f_seq_ratio` | sequential 3- and 2-approximations (Appendix A) |
//! | `exp_perf_phase1` | incremental phase-1 engine vs from-scratch reference; writes `BENCH_phase1.json` |
//!
//! Running `cargo run --release -p treenet-bench --bin <name>` prints a
//! markdown table; `EXP_SCALE=small|full` adjusts sizes (default small).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod report;
pub mod stats;

pub use cli::DistArgs;
pub use report::Table;

/// Experiment scale, from the `EXP_SCALE` environment variable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Fast smoke-scale runs (CI-friendly, default).
    Small,
    /// The full sweeps recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Reads `EXP_SCALE` (`small`/`full`; default small).
    pub fn from_env() -> Self {
        match std::env::var("EXP_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Small,
        }
    }

    /// Picks between the small and full variant of a parameter.
    pub fn pick<T>(self, small: T, full: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// Seeds used across experiments (deterministic sweeps).
pub fn seeds(count: usize) -> Vec<u64> {
    (0..count as u64).map(|i| 0x5eed_0000 + i).collect()
}

/// Runs `f` over `items` on scoped worker threads (one per item, capped
/// by the machine), preserving input order — used by the heavier
/// experiments to spread exact-solver work across cores. Results are
/// deterministic because every work item carries its own seed.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    let n = items.len();
    let work: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|item| std::sync::Mutex::new(Some(item)))
        .collect();
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Each index is claimed exactly once, so the mutex-per-slot
                // accesses below are contention-free.
                let item = work[i]
                    .lock()
                    .expect("work lock")
                    .take()
                    .expect("item unclaimed");
                let out = f(item);
                *slots[i].lock().expect("slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_small() {
        // Cannot set env vars safely in parallel tests; just check pick.
        assert_eq!(Scale::Small.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
        assert_eq!(seeds(3).len(), 3);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100u64).collect(), |x| x * 2);
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }
}

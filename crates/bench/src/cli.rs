//! Shared command-line flags of the distributed bench bins
//! (`exp_f_dist_*`): one parser, so `--smoke`, `--scenarios`, `--out`
//! and `--baseline` behave identically everywhere and CI smoke steps can
//! select scenarios by name instead of re-running a bin's whole grid.

/// Parsed flags shared by the dist bench bins.
#[derive(Clone, Debug, Default)]
pub struct DistArgs {
    /// `--smoke`: run the reduced CI grid.
    pub smoke: bool,
    /// `--out <path>`: where to write the JSON report (bins define their
    /// own default).
    pub out: Option<String>,
    /// `--baseline <path>`: compare against a committed baseline report
    /// and exit non-zero on regression.
    pub baseline: Option<String>,
    /// `--scenarios a,b,c`: only run scenarios whose name contains one of
    /// the comma-separated needles (case-sensitive substring match).
    pub scenarios: Option<Vec<String>>,
    /// `--threads <k>`: engine worker threads for the sharded executor
    /// (bins define their own default, typically 1). Results are
    /// bit-identical at any value; only wall-clock changes.
    pub threads: Option<usize>,
    /// `--shuffle <seed>`: turn on adversarial delivery shuffling with
    /// this seed (used by the CI determinism job to stress inbox-order
    /// independence while diffing thread counts).
    pub shuffle: Option<u64>,
}

impl DistArgs {
    /// Parses `std::env::args().skip(1)`-style argument lists.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) when a flag that takes a value is
    /// missing its value — these bins are developer/CI tools, failing
    /// loudly beats guessing.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let value_of = |flag: &str| -> Option<String> {
            args.iter().position(|a| a == flag).map(|i| {
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("{flag} requires a value"))
                    .clone()
            })
        };
        DistArgs {
            smoke: args.iter().any(|a| a == "--smoke"),
            out: value_of("--out"),
            baseline: value_of("--baseline"),
            scenarios: value_of("--scenarios").map(|list| {
                list.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            }),
            threads: value_of("--threads").map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--threads expects a positive integer, got `{v}`"))
            }),
            shuffle: value_of("--shuffle").map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--shuffle expects a u64 seed, got `{v}`"))
            }),
        }
    }

    /// Reads the process arguments.
    pub fn from_env() -> Self {
        DistArgs::parse(std::env::args().skip(1))
    }

    /// Whether scenario `name` passes the `--scenarios` filter (no filter
    /// selects everything).
    pub fn selects(&self, name: &str) -> bool {
        match &self.scenarios {
            None => true,
            Some(needles) => needles.iter().any(|n| name.contains(n.as_str())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> DistArgs {
        DistArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--smoke",
            "--out",
            "x.json",
            "--baseline",
            "b.json",
            "--scenarios",
            "line-unit, tree",
            "--threads",
            "8",
            "--shuffle",
            "42",
        ]);
        assert!(a.smoke);
        assert_eq!(a.out.as_deref(), Some("x.json"));
        assert_eq!(a.baseline.as_deref(), Some("b.json"));
        assert!(a.selects("line-unit-24"));
        assert!(a.selects("tree-arbitrary"));
        assert!(!a.selects("auto-mixed"));
        assert_eq!(a.threads, Some(8));
        assert_eq!(a.shuffle, Some(42));
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn bad_threads_panics() {
        let _ = parse(&["--threads", "lots"]);
    }

    #[test]
    fn no_filter_selects_everything() {
        let a = parse(&[]);
        assert!(!a.smoke);
        assert!(a.selects("anything"));
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn missing_value_panics() {
        let _ = parse(&["--scenarios"]);
    }
}

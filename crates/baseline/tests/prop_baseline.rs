//! Property tests for the baselines: every solver is feasible and honors
//! its certified bound on randomized workloads; the exact solvers agree
//! with each other and dominate every heuristic.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_baseline::{
    barnoy_line_arbitrary, barnoy_line_unit, exact_max_profit, greedy_profit, ps_line_unit,
    weighted_interval_dp, GreedyOrder, PsConfig,
};
use treenet_model::workload::{HeightMode, LineWorkload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PS and Bar-Noy both produce feasible solutions within their
    /// certified bounds; Bar-Noy's certificate is the tighter one.
    #[test]
    fn line_baselines_bounded(seed in 0u64..2000, slack in 0u32..4) {
        let p = LineWorkload::new(32, 18)
            .with_resources(2)
            .with_window_slack(slack)
            .with_len_range(1, 8)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let ps = ps_line_unit(&p, &PsConfig { seed, ..PsConfig::default() });
        prop_assert!(ps.solution.verify(&p).is_ok());
        prop_assert!(ps.certified_ratio(&p) <= 4.0 * 5.1 + 1e-6);
        let bn = barnoy_line_unit(&p);
        prop_assert!(bn.solution.verify(&p).is_ok());
        prop_assert!(bn.certified_ratio(&p) <= 2.0 + 1e-9);
    }

    /// Exact branch-and-bound dominates every heuristic and both
    /// baselines (it is, after all, exact).
    #[test]
    fn exact_dominates_everything(seed in 0u64..1000) {
        let p = LineWorkload::new(24, 10)
            .with_resources(2)
            .with_len_range(1, 6)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let opt = exact_max_profit(&p, 10_000_000).unwrap();
        prop_assert!(opt.verify(&p).is_ok());
        let po = opt.profit(&p);
        for order in [GreedyOrder::Profit, GreedyOrder::Density, GreedyOrder::Shortest] {
            prop_assert!(po + 1e-9 >= greedy_profit(&p, order).profit(&p));
        }
        prop_assert!(po + 1e-9 >= ps_line_unit(&p, &PsConfig::default()).profit(&p));
        prop_assert!(po + 1e-9 >= barnoy_line_unit(&p).profit(&p));
    }

    /// On single-resource unit-height fixed intervals, the DP and the
    /// branch-and-bound compute the same optimum, and Bar-Noy's realized
    /// solution is within its factor 2 of it.
    #[test]
    fn dp_bb_agree_and_barnoy_within_two(seed in 0u64..1000) {
        let p = LineWorkload::new(28, 12)
            .with_resources(1)
            .with_window_slack(0)
            .with_len_range(1, 7)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let dp = weighted_interval_dp(&p).unwrap();
        let bb = exact_max_profit(&p, 10_000_000).unwrap();
        prop_assert!((dp.profit(&p) - bb.profit(&p)).abs() < 1e-9);
        let bn = barnoy_line_unit(&p);
        prop_assert!(dp.profit(&p) <= 2.0 * bn.profit(&p) + 1e-9);
    }

    /// The arbitrary-height Bar-Noy combination stays feasible and within
    /// its certified factor 5 on mixed workloads.
    #[test]
    fn barnoy_arbitrary_bounded(seed in 0u64..1000) {
        let p = LineWorkload::new(24, 14)
            .with_resources(2)
            .with_len_range(1, 6)
            .with_heights(HeightMode::Bimodal { narrow_frac: 0.5, hmin: 0.15 })
            .generate(&mut SmallRng::seed_from_u64(seed));
        let (combined, wide, narrow) = barnoy_line_arbitrary(&p);
        prop_assert!(combined.verify(&p).is_ok());
        let profit = combined.profit(&p);
        prop_assume!(profit > 0.0);
        let bound = wide.opt_upper_bound() + narrow.opt_upper_bound();
        prop_assert!(bound / profit <= 5.0 + 1e-9);
    }
}

//! The Panconesi–Sozio line-network scheduler ([15, 16] in the paper),
//! reformulated in the two-phase framework exactly as Section 3.2 of the
//! paper describes it: length-class grouping with `Δ = 3`, one stage per
//! epoch, and early drop-out at `1/(5+ε)` satisfaction — the slackness
//! the paper's multi-stage refinement improves to `1-ε`.

use treenet_core::{mis_tag, DualForm, DualState, RaiseRule};
use treenet_decomp::LayeredDecomposition;
use treenet_mis::luby_mis;
use treenet_model::conflict::ConflictGraph;
use treenet_model::{HeightClass, InstanceId, Problem, Solution, SolutionTracker};

/// Configuration of the PS baseline.
#[derive(Clone, Debug)]
pub struct PsConfig {
    /// The ε of the `1/(5+ε)` drop-out threshold.
    pub epsilon: f64,
    /// Common-randomness seed for the MIS.
    pub seed: u64,
    /// Safety valve on steps per epoch.
    pub max_steps_per_epoch: u64,
}

impl Default for PsConfig {
    fn default() -> Self {
        PsConfig {
            epsilon: 0.1,
            seed: 0xba5e,
            max_steps_per_epoch: 1_000_000,
        }
    }
}

/// Result of a PS baseline run.
#[derive(Clone, Debug)]
pub struct PsOutcome {
    /// The extracted feasible solution.
    pub solution: Solution,
    /// Final dual assignment.
    pub dual: DualState,
    /// Measured slackness λ (≈ `1/(5+ε)` by construction).
    pub lambda: f64,
    /// Steps (framework iterations) executed.
    pub steps: u64,
    /// Total Luby iterations.
    pub mis_rounds: u64,
    /// `Δ` of the layered decomposition (3 on lines).
    pub delta: usize,
}

impl PsOutcome {
    /// Profit of the solution.
    pub fn profit(&self, problem: &Problem) -> f64 {
        self.solution.profit(problem)
    }

    /// Certified upper bound on `p(OPT)`: `val(α,β)/λ`.
    pub fn opt_upper_bound(&self) -> f64 {
        self.dual.opt_upper_bound(self.lambda)
    }

    /// Certified approximation factor.
    pub fn certified_ratio(&self, problem: &Problem) -> f64 {
        let p = self.profit(problem);
        if p == 0.0 {
            if self.opt_upper_bound() == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.opt_upper_bound() / p
        }
    }
}

/// The single-stage two-phase loop (the PS scheme) over an arbitrary
/// layered decomposition and participant set — public so ablation
/// experiments can apply the PS drop-out rule to *tree* decompositions
/// and isolate what the paper's multi-stage refinement contributes.
pub fn single_stage_two_phase(
    problem: &Problem,
    layers: &LayeredDecomposition,
    rule: RaiseRule,
    config: &PsConfig,
    participants: &[InstanceId],
) -> PsOutcome {
    let threshold = 1.0 / (5.0 + config.epsilon);
    let form = match rule {
        RaiseRule::Unit => DualForm::Unit,
        RaiseRule::Narrow => DualForm::Capacitated,
    };
    let mut dual = DualState::new(problem, form);
    let mut stack: Vec<Vec<InstanceId>> = Vec::new();
    let mut steps = 0u64;
    let mut mis_rounds = 0u64;

    let num_groups = layers.num_groups() as u32;
    let mut groups: Vec<Vec<InstanceId>> = vec![Vec::new(); num_groups as usize + 1];
    for &d in participants {
        groups[layers.group_of(d) as usize].push(d);
    }

    for k in 1..=num_groups {
        let members = &groups[k as usize];
        if members.is_empty() {
            continue;
        }
        // Single stage: drop instances as soon as they reach the
        // threshold; iterate until the whole group has.
        let mut steps_this_epoch = 0u64;
        loop {
            let unsatisfied: Vec<InstanceId> = members
                .iter()
                .copied()
                .filter(|&d| dual.satisfaction(problem, d) < threshold - 1e-9)
                .collect();
            if unsatisfied.is_empty() {
                break;
            }
            assert!(
                steps_this_epoch < config.max_steps_per_epoch,
                "PS epoch diverged — broken decomposition"
            );
            let graph = ConflictGraph::build(problem, &unsatisfied);
            let adj: Vec<Vec<u32>> = (0..graph.len())
                .map(|v| graph.neighbors(v).to_vec())
                .collect();
            let keys: Vec<u64> = graph
                .instances()
                .iter()
                .map(|&d| problem.instance(d).canonical_key())
                .collect();
            let outcome = luby_mis(&adj, &keys, config.seed, mis_tag(k, 1, steps_this_epoch));
            mis_rounds += outcome.rounds;
            let raised: Vec<InstanceId> = outcome
                .mis
                .iter()
                .map(|&v| graph.instance(v as usize))
                .collect();
            for &d in &raised {
                // PS raise to tightness with the same δ rules.
                let inst = problem.instance(d);
                let slack = dual.slack(problem, d);
                let pi = layers.critical_of(d);
                match rule {
                    RaiseRule::Unit => {
                        let delta = slack / (pi.len() as f64 + 1.0);
                        dual.raise_alpha(inst.demand, delta);
                        for &e in pi {
                            dual.raise_beta(inst.network, e, delta);
                        }
                    }
                    RaiseRule::Narrow => {
                        let h = problem.height_of(d);
                        let delta = slack / (1.0 + 2.0 * h * (pi.len() as f64).powi(2));
                        dual.raise_alpha(inst.demand, delta);
                        for &e in pi {
                            dual.raise_beta(inst.network, e, 2.0 * pi.len() as f64 * delta);
                        }
                    }
                }
            }
            stack.push(raised);
            steps_this_epoch += 1;
        }
        steps += steps_this_epoch;
    }

    let mut tracker = SolutionTracker::new(problem);
    for entry in stack.iter().rev() {
        for &d in entry {
            let _ = tracker.try_add(d);
        }
    }
    let lambda = dual.min_satisfaction(problem, participants);
    PsOutcome {
        solution: tracker.into_solution(),
        dual,
        lambda,
        steps,
        mis_rounds,
        delta: layers.delta(),
    }
}

/// The Panconesi–Sozio `(20+ε)`-approximation for the unit height case of
/// line-networks (with windows): `Δ = 3` length classes, single-stage
/// epochs, drop-out at `1/(5+ε)`.
///
/// # Panics
///
/// Panics if some network is not a canonical line.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use treenet_model::workload::LineWorkload;
/// use treenet_baseline::{ps_line_unit, PsConfig};
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let problem = LineWorkload::new(30, 15).generate(&mut rng);
/// let outcome = ps_line_unit(&problem, &PsConfig::default());
/// assert!(outcome.solution.verify(&problem).is_ok());
/// // λ sits near 1/(5+ε) — 5× worse than the paper's (1-ε).
/// assert!(outcome.lambda >= 1.0 / 5.1 - 1e-9);
/// ```
pub fn ps_line_unit(problem: &Problem, config: &PsConfig) -> PsOutcome {
    let layers = LayeredDecomposition::for_lines(problem);
    let all: Vec<InstanceId> = problem.instances().map(|d| d.id).collect();
    single_stage_two_phase(problem, &layers, RaiseRule::Unit, config, &all)
}

/// PS-style arbitrary-height baseline for line-networks: wide instances
/// through [`ps_line_unit`]'s scheme, narrow instances through the
/// modified raising with the same single-stage drop-out, combined per
/// network (the structure of their `(55+ε)` algorithm \[16\]; constants
/// are measured rather than matched, see the crate docs).
///
/// Returns `(combined solution, wide outcome, narrow outcome)`.
///
/// # Panics
///
/// Panics if some network is not a canonical line.
pub fn ps_line_arbitrary(problem: &Problem, config: &PsConfig) -> (Solution, PsOutcome, PsOutcome) {
    let layers = LayeredDecomposition::for_lines(problem);
    let mut wide_ids = Vec::new();
    let mut narrow_ids = Vec::new();
    for inst in problem.instances() {
        match problem.demand(inst.demand).height_class() {
            HeightClass::Wide => wide_ids.push(inst.id),
            HeightClass::Narrow => narrow_ids.push(inst.id),
        }
    }
    let wide = single_stage_two_phase(problem, &layers, RaiseRule::Unit, config, &wide_ids);
    let narrow = single_stage_two_phase(problem, &layers, RaiseRule::Narrow, config, &narrow_ids);
    let combined = treenet_core::combine_by_network(problem, &wide.solution, &narrow.solution);
    (combined, wide, narrow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_model::workload::{HeightMode, LineWorkload};

    #[test]
    fn feasible_with_ps_lambda() {
        for seed in 0..6u64 {
            let p = LineWorkload::new(40, 20)
                .with_resources(2)
                .with_window_slack(2)
                .with_len_range(1, 10)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = ps_line_unit(&p, &PsConfig::default());
            assert!(out.solution.verify(&p).is_ok(), "seed {seed}");
            // Everything at least 1/(5+ε)-satisfied.
            assert!(
                out.lambda >= 1.0 / 5.1 - 1e-9,
                "seed {seed}: λ = {}",
                out.lambda
            );
            // Certified ratio within the PS guarantee 4·(5+ε).
            assert!(
                out.certified_ratio(&p) <= 4.0 * 5.1 + 1e-6,
                "seed {seed}: {}",
                out.certified_ratio(&p)
            );
        }
    }

    #[test]
    fn lambda_strictly_below_ours() {
        // The PS drop-out leaves most instances barely 1/(5+ε)-satisfied;
        // our multi-stage loop reaches (1-ε). On any instance where some
        // demand is dropped early, PS's λ is far below 0.9.
        let p = LineWorkload::new(40, 30)
            .with_resources(2)
            .with_len_range(2, 10)
            .generate(&mut SmallRng::seed_from_u64(9));
        let ps = ps_line_unit(&p, &PsConfig::default());
        let ours =
            treenet_core::solve_line_unit(&p, &treenet_core::SolverConfig::default()).unwrap();
        assert!(ours.lambda >= 0.9 - 1e-9);
        assert!(ps.lambda < ours.lambda);
    }

    #[test]
    fn arbitrary_heights_combine_feasibly() {
        for seed in 0..4u64 {
            let p = LineWorkload::new(30, 16)
                .with_resources(2)
                .with_len_range(1, 8)
                .with_heights(HeightMode::Bimodal {
                    narrow_frac: 0.5,
                    hmin: 0.2,
                })
                .generate(&mut SmallRng::seed_from_u64(seed));
            let (combined, wide, narrow) = ps_line_arbitrary(&p, &PsConfig::default());
            assert!(combined.verify(&p).is_ok(), "seed {seed}");
            assert!(wide.solution.verify(&p).is_ok());
            assert!(narrow.solution.verify(&p).is_ok());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = LineWorkload::new(24, 12).generate(&mut SmallRng::seed_from_u64(4));
        let a = ps_line_unit(&p, &PsConfig::default());
        let b = ps_line_unit(&p, &PsConfig::default());
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.steps, b.steps);
    }
}

//! The classic *sequential* line-network algorithms the paper cites as
//! prior art (\[4\] Bar-Noy et al., \[5\] Berman–Dasgupta): a 2-approximation
//! for the unit height case and a 5-approximation for arbitrary heights,
//! both handling windows.
//!
//! Reformulated in the paper's own two-phase framework (as Section 3
//! observes is possible for the local-ratio originals): process demand
//! instances in **non-decreasing end-time order** and use the single
//! critical slot `π(d) = {e(d)}`. If `d₁` ends no later than `d₂` and
//! they overlap, then `s(d₂) ≤ e(d₁) ≤ e(d₂)` — the interference property
//! with `Δ = 1`, hence ratios `(Δ+1)/λ = 2` (unit, Lemma 3.1) and
//! `2·p(S₁) + (2Δ²+1)·p(S₂) = 5·p(S)` for the wide/narrow combination
//! (Lemma 6.1), with `λ = 1` since the pass is sequential.
//!
//! These are the "before" column of the paper's line-network story: the
//! same guarantees as the best sequential algorithms, but inherently
//! serialized — the distributed algorithms trade a constant factor for
//! polylogarithmic rounds.

use treenet_core::{DualForm, DualState, RaiseRule};
use treenet_model::{HeightClass, InstanceId, Problem, Solution, SolutionTracker};

/// Result of a Bar-Noy-style sequential run.
#[derive(Clone, Debug)]
pub struct BarNoyOutcome {
    /// The extracted feasible solution.
    pub solution: Solution,
    /// Final dual assignment (fully satisfied, λ = 1).
    pub dual: DualState,
    /// Per-raise objective cap: 2 for the unit rule (Δ = 1), 3 for the
    /// narrow rule (2Δ²+1).
    pub objective_cap: f64,
    /// Number of raises (single pass: ≤ instance count).
    pub raises: u64,
}

impl BarNoyOutcome {
    /// Profit of the solution.
    pub fn profit(&self, problem: &Problem) -> f64 {
        self.solution.profit(problem)
    }

    /// Upper bound on `p(OPT)` over the participating instances (λ = 1).
    pub fn opt_upper_bound(&self) -> f64 {
        self.dual.value()
    }

    /// Certified approximation factor.
    pub fn certified_ratio(&self, problem: &Problem) -> f64 {
        let p = self.profit(problem);
        if p == 0.0 {
            if self.opt_upper_bound() == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.opt_upper_bound() / p
        }
    }
}

/// Numeric guard for "already satisfied" checks.
const GUARD: f64 = 1e-9;

/// End-time order over instances: last path edge index ascending, ties by
/// canonical key for determinism.
fn end_time_order(problem: &Problem, participants: &[InstanceId]) -> Vec<InstanceId> {
    let mut order = participants.to_vec();
    order.sort_by_key(|&d| {
        let inst = problem.instance(d);
        let end = inst.path.edges().last().expect("demands use ≥ 1 slot").0;
        (end, inst.canonical_key())
    });
    order
}

fn sequential_pass(
    problem: &Problem,
    rule: RaiseRule,
    participants: &[InstanceId],
) -> BarNoyOutcome {
    for t in problem.networks() {
        assert!(
            problem.network(t).is_canonical_line(),
            "Bar-Noy algorithms require canonical line networks"
        );
    }
    let form = match rule {
        RaiseRule::Unit => DualForm::Unit,
        RaiseRule::Narrow => DualForm::Capacitated,
    };
    let mut dual = DualState::new(problem, form);
    let mut stack: Vec<InstanceId> = Vec::new();
    let mut raises = 0u64;
    for d in end_time_order(problem, participants) {
        let slack = dual.slack(problem, d);
        if slack <= GUARD * problem.profit_of(d) {
            continue;
        }
        let inst = problem.instance(d);
        let end = *inst.path.edges().last().expect("non-empty path");
        match rule {
            RaiseRule::Unit => {
                // δ = s/(|π|+1) with |π| = 1.
                let delta = slack / 2.0;
                dual.raise_alpha(inst.demand, delta);
                dual.raise_beta(inst.network, end, delta);
            }
            RaiseRule::Narrow => {
                // δ = s/(1 + 2h·|π|²), β += 2|π|δ with |π| = 1.
                let h = problem.height_of(d);
                let delta = slack / (1.0 + 2.0 * h);
                dual.raise_alpha(inst.demand, delta);
                dual.raise_beta(inst.network, end, 2.0 * delta);
            }
        }
        raises += 1;
        stack.push(d);
    }
    let mut tracker = SolutionTracker::new(problem);
    for &d in stack.iter().rev() {
        let _ = tracker.try_add(d);
    }
    BarNoyOutcome {
        solution: tracker.into_solution(),
        dual,
        objective_cap: match rule {
            RaiseRule::Unit => 2.0,
            RaiseRule::Narrow => 3.0,
        },
        raises,
    }
}

/// The sequential **2-approximation** for the unit height case of
/// line-networks with windows (\[4, 5\] in the paper).
///
/// # Panics
///
/// Panics if some network is not a canonical line.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use treenet_model::workload::LineWorkload;
/// use treenet_baseline::barnoy_line_unit;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let problem = LineWorkload::new(30, 15).with_window_slack(2).generate(&mut rng);
/// let outcome = barnoy_line_unit(&problem);
/// assert!(outcome.solution.verify(&problem).is_ok());
/// assert!(outcome.certified_ratio(&problem) <= 2.0 + 1e-9);
/// ```
pub fn barnoy_line_unit(problem: &Problem) -> BarNoyOutcome {
    let all: Vec<InstanceId> = problem.instances().map(|d| d.id).collect();
    sequential_pass(problem, RaiseRule::Unit, &all)
}

/// The sequential **5-approximation** for the arbitrary height case of
/// line-networks with windows (\[4\] in the paper): wide instances through
/// the unit pass (cap 2), narrow instances through the modified raising
/// (cap 3), combined per resource — `p(OPT) ≤ 2·p(S₁) + 3·p(S₂) ≤ 5·p(S)`.
///
/// Returns `(combined, wide outcome, narrow outcome)`.
///
/// # Panics
///
/// Panics if some network is not a canonical line.
pub fn barnoy_line_arbitrary(problem: &Problem) -> (Solution, BarNoyOutcome, BarNoyOutcome) {
    let mut wide_ids = Vec::new();
    let mut narrow_ids = Vec::new();
    for inst in problem.instances() {
        match problem.demand(inst.demand).height_class() {
            HeightClass::Wide => wide_ids.push(inst.id),
            HeightClass::Narrow => narrow_ids.push(inst.id),
        }
    }
    let wide = sequential_pass(problem, RaiseRule::Unit, &wide_ids);
    let narrow = sequential_pass(problem, RaiseRule::Narrow, &narrow_ids);
    let combined = treenet_core::combine_by_network(problem, &wide.solution, &narrow.solution);
    (combined, wide, narrow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact_max_profit, weighted_interval_dp};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_model::workload::{HeightMode, LineWorkload};

    #[test]
    fn unit_is_certified_two_approximation() {
        for seed in 0..10u64 {
            let p = LineWorkload::new(40, 25)
                .with_resources(2)
                .with_window_slack(3)
                .with_len_range(1, 10)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = barnoy_line_unit(&p);
            assert!(out.solution.verify(&p).is_ok(), "seed {seed}");
            assert!(
                out.certified_ratio(&p) <= 2.0 + 1e-9,
                "seed {seed}: {}",
                out.certified_ratio(&p)
            );
            // λ = 1: every instance satisfied.
            let ids: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
            assert!(out.dual.min_satisfaction(&p, &ids) >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn unit_within_two_of_exact_dp() {
        for seed in 0..8u64 {
            let p = LineWorkload::new(30, 14)
                .with_resources(1)
                .with_window_slack(0)
                .with_len_range(1, 8)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = barnoy_line_unit(&p);
            let opt = weighted_interval_dp(&p).unwrap();
            assert!(
                opt.profit(&p) <= 2.0 * out.profit(&p) + 1e-9,
                "seed {seed}: OPT {} vs 2·{}",
                opt.profit(&p),
                out.profit(&p)
            );
        }
    }

    #[test]
    fn arbitrary_is_certified_five_approximation() {
        for seed in 0..8u64 {
            let p = LineWorkload::new(30, 18)
                .with_resources(2)
                .with_len_range(1, 8)
                .with_heights(HeightMode::Bimodal {
                    narrow_frac: 0.5,
                    hmin: 0.2,
                })
                .generate(&mut SmallRng::seed_from_u64(seed));
            let (combined, wide, narrow) = barnoy_line_arbitrary(&p);
            assert!(combined.verify(&p).is_ok(), "seed {seed}");
            let bound = wide.opt_upper_bound() + narrow.opt_upper_bound();
            let profit = combined.profit(&p);
            assert!(profit > 0.0, "seed {seed}");
            assert!(
                bound / profit <= 5.0 + 1e-9,
                "seed {seed}: certified {}",
                bound / profit
            );
            // Cross-check against exact OPT where tractable.
            if let Ok(opt) = exact_max_profit(&p, 10_000_000) {
                assert!(opt.profit(&p) <= 5.0 * profit + 1e-9, "seed {seed}");
            }
        }
    }

    #[test]
    fn single_pass_raises_each_instance_at_most_once() {
        let p = LineWorkload::new(24, 12)
            .with_window_slack(4)
            .generate(&mut SmallRng::seed_from_u64(3));
        let out = barnoy_line_unit(&p);
        assert!(out.raises as usize <= p.instance_count());
        assert_eq!(out.objective_cap, 2.0);
    }

    #[test]
    fn end_time_order_is_deterministic() {
        let p = LineWorkload::new(24, 12).generate(&mut SmallRng::seed_from_u64(5));
        let a = barnoy_line_unit(&p);
        let b = barnoy_line_unit(&p);
        assert_eq!(a.solution, b.solution);
    }

    #[test]
    #[should_panic(expected = "canonical line")]
    fn rejects_tree_networks() {
        let mut b = treenet_model::ProblemBuilder::new();
        let star = treenet_graph::Tree::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let t = b.add_network(star).unwrap();
        b.add_demand(
            treenet_model::Demand::pair(
                treenet_graph::VertexId(1),
                treenet_graph::VertexId(2),
                1.0,
            ),
            &[t],
        )
        .unwrap();
        let p = b.build().unwrap();
        let _ = barnoy_line_unit(&p);
    }
}

//! Baselines the paper compares against, plus exact reference solvers.
//!
//! * [`ps_line_unit`] — the Panconesi–Sozio distributed algorithm for the
//!   unit height case of line-networks ([15, 16] in the paper): the same
//!   two-phase framework and `Δ = 3` length-class grouping, but a *single
//!   stage per epoch* in which any instance that becomes
//!   `1/(5+ε)`-satisfied is dropped for the rest of the first phase.
//!   That yields slackness `λ = 1/(5+ε)` and the `(20+ε)` ratio the paper
//!   improves to `(4+ε)`.
//! * [`ps_line_arbitrary`] — a PS-style wide/narrow extension (their
//!   `(55+ε)` algorithm; we reproduce the *structure* — single-stage
//!   drop-out — and report measured certified ratios, since \[16\] is not
//!   reproduced verbatim here).
//! * [`barnoy_line_unit`] / [`barnoy_line_arbitrary`] — the *sequential*
//!   state of the art the paper cites (\[4, 5\]): 2- and 5-approximations
//!   for line-networks with windows, via end-time ordering (`Δ = 1`).
//! * [`exact_max_profit`] — branch-and-bound exact optimum for small
//!   instances (certifies the approximation ratios end-to-end).
//! * [`weighted_interval_dp`] — `O(k log k)` exact optimum for the
//!   special case of one line resource, unit heights, fixed intervals.
//! * [`greedy_profit`] — the profit-greedy heuristic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barnoy;
mod exact;
mod greedy;
mod ps;

pub use barnoy::{barnoy_line_arbitrary, barnoy_line_unit, BarNoyOutcome};
pub use exact::{exact_max_profit, weighted_interval_dp, ExactError};
pub use greedy::{greedy_profit, GreedyOrder};
pub use ps::{ps_line_arbitrary, ps_line_unit, single_stage_two_phase, PsConfig, PsOutcome};

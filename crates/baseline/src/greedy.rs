//! Profit-greedy heuristic baseline.

use treenet_model::{Problem, Solution, SolutionTracker};

/// Instance ordering used by [`greedy_profit`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum GreedyOrder {
    /// Highest profit first.
    Profit,
    /// Highest profit per path edge first (density) — the classic
    /// knapsack-style heuristic.
    Density,
    /// Shortest path first (ties by profit) — maximizes count.
    Shortest,
}

/// Greedily packs instances in the given order; always feasible, no
/// approximation guarantee (the experiment harness uses it to show what
/// the primal-dual machinery buys over naive packing).
///
/// # Example
///
/// ```
/// use treenet_model::fixtures::figure1;
/// use treenet_baseline::{greedy_profit, GreedyOrder};
///
/// let (problem, _) = figure1();
/// let solution = greedy_profit(&problem, GreedyOrder::Profit);
/// assert!(solution.verify(&problem).is_ok());
/// ```
pub fn greedy_profit(problem: &Problem, order: GreedyOrder) -> Solution {
    let mut ids: Vec<_> = problem.instances().map(|inst| inst.id).collect();
    match order {
        GreedyOrder::Profit => ids.sort_by(|&a, &b| {
            problem
                .profit_of(b)
                .partial_cmp(&problem.profit_of(a))
                .expect("finite profits")
                .then(a.cmp(&b))
        }),
        GreedyOrder::Density => ids.sort_by(|&a, &b| {
            let da = problem.profit_of(a) / problem.instance(a).len().max(1) as f64;
            let db = problem.profit_of(b) / problem.instance(b).len().max(1) as f64;
            db.partial_cmp(&da)
                .expect("finite densities")
                .then(a.cmp(&b))
        }),
        GreedyOrder::Shortest => ids.sort_by(|&a, &b| {
            problem
                .instance(a)
                .len()
                .cmp(&problem.instance(b).len())
                .then_with(|| {
                    problem
                        .profit_of(b)
                        .partial_cmp(&problem.profit_of(a))
                        .expect("finite profits")
                })
                .then(a.cmp(&b))
        }),
    }
    let mut tracker = SolutionTracker::new(problem);
    for d in ids {
        let _ = tracker.try_add(d);
    }
    tracker.into_solution()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_model::workload::{HeightMode, TreeWorkload};

    #[test]
    fn all_orders_feasible() {
        for seed in 0..5u64 {
            let p = TreeWorkload::new(16, 20)
                .with_networks(2)
                .with_heights(HeightMode::Uniform { hmin: 0.25 })
                .generate(&mut SmallRng::seed_from_u64(seed));
            for order in [
                GreedyOrder::Profit,
                GreedyOrder::Density,
                GreedyOrder::Shortest,
            ] {
                let s = greedy_profit(&p, order);
                assert!(s.verify(&p).is_ok(), "seed {seed} {order:?}");
                assert!(!s.is_empty());
            }
        }
    }

    #[test]
    fn profit_order_takes_the_big_demand_first() {
        let (p, [_, b, _]) = treenet_model::fixtures::figure1();
        let s = greedy_profit(&p, GreedyOrder::Profit);
        // B has profit 7 — the greedy takes it (and C fits besides).
        assert!(s.contains(p.instances_of(b)[0]));
        assert_eq!(s.profit(&p), 11.0);
    }

    #[test]
    fn greedy_is_deterministic() {
        let p = TreeWorkload::new(12, 12).generate(&mut SmallRng::seed_from_u64(3));
        let a = greedy_profit(&p, GreedyOrder::Density);
        let b = greedy_profit(&p, GreedyOrder::Density);
        assert_eq!(a, b);
    }
}

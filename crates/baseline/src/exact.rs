//! Exact reference solvers for small instances.

use std::fmt;
use treenet_model::{InstanceId, Problem, Solution, EPS};

/// Exact-solver failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExactError {
    /// The branch-and-bound node budget was exhausted before the search
    /// completed — the instance is too large for exact solving.
    BudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// [`weighted_interval_dp`] preconditions violated.
    NotAnIntervalInstance {
        /// Which precondition failed.
        reason: String,
    },
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::BudgetExhausted { budget } => {
                write!(f, "exact search exceeded {budget} nodes")
            }
            ExactError::NotAnIntervalInstance { reason } => {
                write!(f, "not a single-line interval instance: {reason}")
            }
        }
    }
}

impl std::error::Error for ExactError {}

struct Search<'p> {
    problem: &'p Problem,
    /// Demands ordered by decreasing best-instance profit (strong early
    /// bounds).
    order: Vec<u32>,
    /// Suffix sums of the order's profits (admissible optimistic bound).
    suffix: Vec<f64>,
    residual: Vec<Vec<f64>>,
    best_profit: f64,
    best: Vec<InstanceId>,
    current: Vec<InstanceId>,
    nodes: u64,
    budget: u64,
}

impl Search<'_> {
    fn fits(&self, d: InstanceId) -> bool {
        let inst = self.problem.instance(d);
        let h = self.problem.height_of(d);
        inst.path
            .edges()
            .iter()
            .all(|&e| self.residual[inst.network.index()][e.index()] + EPS >= h)
    }

    fn apply(&mut self, d: InstanceId, sign: f64) {
        let inst = self.problem.instance(d);
        let h = self.problem.height_of(d) * sign;
        for &e in inst.path.edges() {
            self.residual[inst.network.index()][e.index()] -= h;
        }
    }

    fn dfs(&mut self, pos: usize, profit: f64) -> Result<(), ExactError> {
        self.nodes += 1;
        if self.nodes > self.budget {
            return Err(ExactError::BudgetExhausted {
                budget: self.budget,
            });
        }
        if profit > self.best_profit {
            self.best_profit = profit;
            self.best = self.current.clone();
        }
        if pos == self.order.len() {
            return Ok(());
        }
        // Optimistic bound: everything remaining fits.
        if profit + self.suffix[pos] <= self.best_profit + EPS {
            return Ok(());
        }
        let a = treenet_model::DemandId(self.order[pos]);
        let p = self.problem.demand(a).profit;
        // Branch: schedule one of the demand's instances...
        for &d in self.problem.instances_of(a) {
            if self.fits(d) {
                self.apply(d, 1.0);
                self.current.push(d);
                self.dfs(pos + 1, profit + p)?;
                self.current.pop();
                self.apply(d, -1.0);
            }
        }
        // ...or skip it.
        self.dfs(pos + 1, profit)
    }
}

/// Exact maximum-profit solution by branch-and-bound over demands, with a
/// node budget (default callers use ~10⁷). Exponential in the worst case
/// — intended for the small instances the experiment harness uses to
/// certify approximation ratios against the true optimum.
///
/// # Errors
///
/// [`ExactError::BudgetExhausted`] when the search tree outgrows
/// `budget`.
///
/// # Example
///
/// ```
/// use treenet_model::fixtures::figure1;
/// use treenet_baseline::exact_max_profit;
///
/// let (problem, _) = figure1();
/// let optimal = exact_max_profit(&problem, 1_000_000).unwrap();
/// // Figure 1: the best feasible set is {B, C} with profit 7 + 4.
/// assert_eq!(optimal.profit(&problem), 11.0);
/// ```
pub fn exact_max_profit(problem: &Problem, budget: u64) -> Result<Solution, ExactError> {
    let mut order: Vec<u32> = (0..problem.demand_count() as u32).collect();
    order.sort_by(|&a, &b| {
        let pa = problem.demand(treenet_model::DemandId(a)).profit;
        let pb = problem.demand(treenet_model::DemandId(b)).profit;
        pb.partial_cmp(&pa).expect("profits are finite")
    });
    let mut suffix = vec![0.0f64; order.len() + 1];
    for i in (0..order.len()).rev() {
        suffix[i] = suffix[i + 1] + problem.demand(treenet_model::DemandId(order[i])).profit;
    }
    let mut search = Search {
        problem,
        order,
        suffix,
        residual: problem
            .networks()
            .map(|t| vec![1.0f64; problem.network(t).edge_count()])
            .collect(),
        best_profit: 0.0,
        best: Vec::new(),
        current: Vec::new(),
        nodes: 0,
        budget,
    };
    search.dfs(0, 0.0)?;
    Ok(Solution::new(search.best))
}

/// Exact optimum for the special case of **one line resource, unit
/// heights, one instance per demand** (fixed intervals): the classic
/// weighted interval scheduling DP, `O(k log k)`.
///
/// # Errors
///
/// [`ExactError::NotAnIntervalInstance`] if the problem has several
/// networks, non-unit heights, window demands, or a non-line network.
pub fn weighted_interval_dp(problem: &Problem) -> Result<Solution, ExactError> {
    if problem.network_count() != 1 {
        return Err(ExactError::NotAnIntervalInstance {
            reason: format!("{} networks, need exactly 1", problem.network_count()),
        });
    }
    let t = treenet_model::NetworkId(0);
    if !problem.network(t).is_canonical_line() {
        return Err(ExactError::NotAnIntervalInstance {
            reason: "network is not a canonical line".into(),
        });
    }
    if !problem.is_unit_height() {
        return Err(ExactError::NotAnIntervalInstance {
            reason: "non-unit heights".into(),
        });
    }
    for a in problem.demands() {
        if problem.instances_of(a).len() != 1 {
            return Err(ExactError::NotAnIntervalInstance {
                reason: format!("demand {a} has several instances"),
            });
        }
    }
    // Intervals (start_slot, end_slot inclusive, profit, id), sorted by
    // end.
    let mut intervals: Vec<(u32, u32, f64, InstanceId)> = problem
        .instances()
        .map(|inst| {
            let s = inst.path.edges()[0].0;
            let e = inst.path.edges()[inst.len() - 1].0;
            (s, e, problem.profit_of(inst.id), inst.id)
        })
        .collect();
    intervals.sort_by_key(|&(_, e, _, _)| e);
    let k = intervals.len();
    // dp[i] = best profit using the first i intervals; keep take/skip
    // decisions for reconstruction.
    let mut dp = vec![0.0f64; k + 1];
    let mut take = vec![false; k + 1];
    let mut pred = vec![0usize; k + 1];
    for i in 1..=k {
        let (s, _, p, _) = intervals[i - 1];
        // Last interval ending strictly before slot s.
        let mut lo = 0usize;
        let mut hi = i - 1;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if intervals[mid - 1].1 < s {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        pred[i] = lo;
        let with = dp[lo] + p;
        if with > dp[i - 1] {
            dp[i] = with;
            take[i] = true;
        } else {
            dp[i] = dp[i - 1];
        }
    }
    let mut chosen = Vec::new();
    let mut i = k;
    while i > 0 {
        if take[i] {
            chosen.push(intervals[i - 1].3);
            i = pred[i];
        } else {
            i -= 1;
        }
    }
    Ok(Solution::new(chosen))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_graph::{Tree, VertexId};
    use treenet_model::workload::{HeightMode, LineWorkload, TreeWorkload};
    use treenet_model::{Demand, ProblemBuilder};

    #[test]
    fn figure1_optimum() {
        let (p, _) = treenet_model::fixtures::figure1();
        let opt = exact_max_profit(&p, 100_000).unwrap();
        assert!(opt.verify(&p).is_ok());
        assert_eq!(opt.profit(&p), 11.0); // {B, C}
    }

    #[test]
    fn figure2_optimum_uses_heights() {
        let (p, _) = treenet_model::fixtures::figure2();
        let opt = exact_max_profit(&p, 100_000).unwrap();
        // 0.7+0.3 fit: {⟨1,10⟩ (3.0), ⟨12,13⟩ (1.0)} = 4.0 beats
        // {⟨2,3⟩ (2.0), ⟨12,13⟩ (1.0)} = 3.0.
        assert_eq!(opt.profit(&p), 4.0);
    }

    #[test]
    fn exact_beats_or_equals_every_heuristic() {
        for seed in 0..5u64 {
            let p = TreeWorkload::new(10, 9)
                .with_networks(2)
                .with_heights(HeightMode::Uniform { hmin: 0.3 })
                .generate(&mut SmallRng::seed_from_u64(seed));
            let opt = exact_max_profit(&p, 5_000_000).unwrap();
            assert!(opt.verify(&p).is_ok());
            let ours =
                treenet_core::solve_tree_arbitrary(&p, &treenet_core::SolverConfig::default())
                    .unwrap();
            assert!(opt.profit(&p) + 1e-9 >= ours.profit(&p), "seed {seed}");
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let p = TreeWorkload::new(12, 14)
            .with_networks(3)
            .generate(&mut SmallRng::seed_from_u64(1));
        assert!(matches!(
            exact_max_profit(&p, 3),
            Err(ExactError::BudgetExhausted { budget: 3 })
        ));
    }

    #[test]
    fn dp_matches_branch_and_bound() {
        for seed in 0..8u64 {
            let p = LineWorkload::new(30, 12)
                .with_resources(1)
                .with_window_slack(0)
                .with_len_range(1, 8)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let dp = weighted_interval_dp(&p).unwrap();
            let bb = exact_max_profit(&p, 10_000_000).unwrap();
            assert!(dp.verify(&p).is_ok());
            assert!(
                (dp.profit(&p) - bb.profit(&p)).abs() < 1e-9,
                "seed {seed}: dp {} vs bb {}",
                dp.profit(&p),
                bb.profit(&p)
            );
        }
    }

    #[test]
    fn dp_on_touching_intervals() {
        // Intervals [0,2] and [3,5] (slots): disjoint, both schedulable;
        // [0,2] and [2,4] share slot 2: not both.
        let mut b = ProblemBuilder::new();
        let t = b.add_network(Tree::line(7)).unwrap();
        b.add_demand(Demand::pair(VertexId(0), VertexId(3), 2.0), &[t])
            .unwrap();
        b.add_demand(Demand::pair(VertexId(3), VertexId(6), 3.0), &[t])
            .unwrap();
        b.add_demand(Demand::pair(VertexId(2), VertexId(5), 4.0), &[t])
            .unwrap();
        let p = b.build().unwrap();
        let dp = weighted_interval_dp(&p).unwrap();
        // Best: {0,1} = 5.0 > {2} = 4.0.
        assert_eq!(dp.profit(&p), 5.0);
    }

    #[test]
    fn dp_rejects_invalid_shapes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let two = LineWorkload::new(20, 6)
            .with_resources(2)
            .generate(&mut rng);
        assert!(matches!(
            weighted_interval_dp(&two),
            Err(ExactError::NotAnIntervalInstance { .. })
        ));
        let windows = LineWorkload::new(20, 6)
            .with_resources(1)
            .with_window_slack(2)
            .generate(&mut rng);
        assert!(weighted_interval_dp(&windows).is_err());
        let heights = LineWorkload::new(20, 6)
            .with_resources(1)
            .with_heights(HeightMode::Uniform { hmin: 0.3 })
            .generate(&mut rng);
        assert!(weighted_interval_dp(&heights).is_err());
    }

    #[test]
    fn error_display() {
        assert!(ExactError::BudgetExhausted { budget: 7 }
            .to_string()
            .contains("7"));
        let e = ExactError::NotAnIntervalInstance { reason: "x".into() };
        assert!(e.to_string().contains("x"));
    }
}

//! Validated undirected trees with stable edge identifiers.

use crate::{EdgeId, VertexId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An undirected tree over the vertex set `{0, …, n-1}`.
///
/// The paper assumes every tree-network is connected and spans the common
/// vertex set `V`; [`Tree::from_edges`] enforces exactly that (`n-1` edges,
/// connected, no multi-edges or self-loops). Edge ids are the positions in
/// the edge list passed to the constructor.
///
/// # Example
///
/// ```
/// use treenet_graph::{Tree, VertexId, EdgeId};
///
/// # fn main() -> Result<(), treenet_graph::TreeError> {
/// let star = Tree::from_edges(4, &[(0, 1), (0, 2), (0, 3)])?;
/// assert_eq!(star.len(), 4);
/// assert_eq!(star.degree(VertexId(0)), 3);
/// assert_eq!(star.endpoints(EdgeId(1)), (VertexId(0), VertexId(2)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tree {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    adj: Vec<Vec<(VertexId, EdgeId)>>,
}

/// Error building a [`Tree`] from an edge list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// A tree over `n ≥ 1` vertices needs exactly `n - 1` edges.
    WrongEdgeCount {
        /// Number of vertices requested.
        n: usize,
        /// Number of edges supplied.
        edges: usize,
    },
    /// An endpoint was `>= n`.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: u32,
        /// Number of vertices in the tree.
        n: usize,
    },
    /// An edge connected a vertex to itself.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: u32,
    },
    /// The edge set does not connect all vertices (equivalently, with
    /// `n - 1` edges, it contains a cycle).
    Disconnected,
    /// `n` was zero.
    Empty,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::WrongEdgeCount { n, edges } => {
                write!(
                    f,
                    "tree over {n} vertices needs {} edges, got {edges}",
                    n - 1
                )
            }
            TreeError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for {n} vertices")
            }
            TreeError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            TreeError::Disconnected => write!(f, "edge set is not connected"),
            TreeError::Empty => write!(f, "tree must have at least one vertex"),
        }
    }
}

impl std::error::Error for TreeError {}

impl Tree {
    /// Builds a tree over `n` vertices from an edge list.
    ///
    /// Edge `i` of the list receives id [`EdgeId`]`(i)`.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] if `n == 0`, the list does not have exactly
    /// `n - 1` entries, an endpoint is out of range or repeated, or the
    /// edges do not connect all `n` vertices.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, TreeError> {
        if n == 0 {
            return Err(TreeError::Empty);
        }
        if edges.len() != n - 1 {
            return Err(TreeError::WrongEdgeCount {
                n,
                edges: edges.len(),
            });
        }
        let mut adj: Vec<Vec<(VertexId, EdgeId)>> = vec![Vec::new(); n];
        let mut edge_list = Vec::with_capacity(edges.len());
        for (i, &(u, v)) in edges.iter().enumerate() {
            if u as usize >= n {
                return Err(TreeError::VertexOutOfRange { vertex: u, n });
            }
            if v as usize >= n {
                return Err(TreeError::VertexOutOfRange { vertex: v, n });
            }
            if u == v {
                return Err(TreeError::SelfLoop { vertex: u });
            }
            let e = EdgeId(i as u32);
            adj[u as usize].push((VertexId(v), e));
            adj[v as usize].push((VertexId(u), e));
            edge_list.push((VertexId(u), VertexId(v)));
        }
        let tree = Tree {
            n,
            edges: edge_list,
            adj,
        };
        if !tree.is_connected() {
            return Err(TreeError::Disconnected);
        }
        Ok(tree)
    }

    /// Builds the path (line) `0 - 1 - … - (n-1)`.
    ///
    /// Edge `i` connects vertices `i` and `i + 1`, matching the paper's view
    /// of a line-network as a timeline where edge `i` is timeslot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn line(n: usize) -> Self {
        assert!(n > 0, "line needs at least one vertex");
        let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1))
            .map(|i| (i as u32, i as u32 + 1))
            .collect();
        Tree::from_edges(n, &edges).expect("line edge list is always a valid tree")
    }

    fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![VertexId(0)];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for &(v, _) in &self.adj[u.index()] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tree has exactly one vertex (it can never have zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of edges, always `n - 1`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The endpoints of edge `e` in construction order.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()]
    }

    /// The neighbors of `u` together with the connecting edge ids.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adj[u.index()]
    }

    /// Degree of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.adj[u.index()].len()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + '_ {
        (0..self.n as u32).map(VertexId)
    }

    /// Iterator over `(EdgeId, endpoints)` pairs.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, (VertexId, VertexId))> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &uv)| (EdgeId(i as u32), uv))
    }

    /// The edge between `u` and `v`, if the vertices are adjacent.
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.adj[u.index()]
            .iter()
            .find(|&&(w, _)| w == v)
            .map(|&(_, e)| e)
    }

    /// True when the tree is the path `0 - 1 - … - (n-1)` with edge `i`
    /// joining `i` and `i+1` (the canonical line-network layout).
    pub fn is_canonical_line(&self) -> bool {
        self.edges
            .iter()
            .enumerate()
            .all(|(i, &(u, v))| u == VertexId(i as u32) && v == VertexId(i as u32 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_tree() {
        let t = Tree::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.degree(VertexId(1)), 3);
        assert_eq!(t.endpoints(EdgeId(3)), (VertexId(3), VertexId(4)));
        assert_eq!(t.edge_between(VertexId(1), VertexId(3)), Some(EdgeId(2)));
        assert_eq!(t.edge_between(VertexId(0), VertexId(4)), None);
        assert!(!t.is_empty());
    }

    #[test]
    fn single_vertex_tree() {
        let t = Tree::from_edges(1, &[]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.degree(VertexId(0)), 0);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Tree::from_edges(0, &[]), Err(TreeError::Empty));
    }

    #[test]
    fn rejects_wrong_edge_count() {
        assert_eq!(
            Tree::from_edges(3, &[(0, 1)]),
            Err(TreeError::WrongEdgeCount { n: 3, edges: 1 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Tree::from_edges(2, &[(0, 5)]),
            Err(TreeError::VertexOutOfRange { vertex: 5, n: 2 })
        );
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Tree::from_edges(2, &[(1, 1)]),
            Err(TreeError::SelfLoop { vertex: 1 })
        );
    }

    #[test]
    fn rejects_cycle_with_disconnection() {
        // 4 vertices, 3 edges forming a triangle + isolated vertex 3.
        assert_eq!(
            Tree::from_edges(4, &[(0, 1), (1, 2), (2, 0)]),
            Err(TreeError::Disconnected)
        );
    }

    #[test]
    fn line_layout_is_canonical() {
        let l = Tree::line(6);
        assert!(l.is_canonical_line());
        assert_eq!(l.edge_count(), 5);
        assert_eq!(l.endpoints(EdgeId(2)), (VertexId(2), VertexId(3)));
        let t = Tree::from_edges(3, &[(1, 2), (0, 1)]).unwrap();
        assert!(!t.is_canonical_line());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = Tree::from_edges(3, &[(0, 1)]).unwrap_err();
        assert!(e.to_string().contains("needs 2 edges"));
        assert!(TreeError::Disconnected
            .to_string()
            .contains("not connected"));
        assert!(TreeError::Empty.to_string().contains("at least one"));
        assert!((TreeError::SelfLoop { vertex: 3 })
            .to_string()
            .contains("self-loop"));
        assert!((TreeError::VertexOutOfRange { vertex: 9, n: 2 })
            .to_string()
            .contains("out of range"));
    }

    #[test]
    fn clone_eq_round_trip() {
        let t = Tree::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let u = t.clone();
        assert_eq!(t, u);
    }
}

//! Tree statistics and Graphviz export — used by the experiment harness
//! and the examples for inspecting generated topologies.

use crate::{RootedTree, Tree, VertexId};
use std::fmt::Write as _;

/// Summary statistics of a tree's shape.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of vertices.
    pub n: usize,
    /// Longest path length in edges.
    pub diameter: usize,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Number of leaves (degree-1 vertices; 0 for a single vertex).
    pub leaves: usize,
}

/// Computes [`TreeStats`] (diameter by double-BFS, `O(n)`).
pub fn tree_stats(tree: &Tree) -> TreeStats {
    let n = tree.len();
    let far = |start: VertexId| -> (VertexId, usize) {
        let rooted = RootedTree::new(tree, start);
        tree.vertices()
            .map(|v| (v, rooted.depth(v) as usize))
            .max_by_key(|&(_, d)| d)
            .expect("non-empty tree")
    };
    let (a, _) = far(VertexId(0));
    let (_, diameter) = far(a);
    let max_degree = tree.vertices().map(|v| tree.degree(v)).max().unwrap_or(0);
    let leaves = tree.vertices().filter(|&v| tree.degree(v) == 1).count();
    TreeStats {
        n,
        diameter,
        max_degree,
        leaves,
    }
}

/// Renders the tree in Graphviz DOT format (undirected), with optional
/// per-vertex labels (`None` falls back to the vertex index).
///
/// # Example
///
/// ```
/// use treenet_graph::{Tree, analysis::to_dot};
///
/// let dot = to_dot(&Tree::line(3), "demo", |v| Some(format!("site {}", v.0)));
/// assert!(dot.contains("graph demo {"));
/// assert!(dot.contains("0 -- 1"));
/// ```
pub fn to_dot<F>(tree: &Tree, name: &str, label: F) -> String
where
    F: Fn(VertexId) -> Option<String>,
{
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    for v in tree.vertices() {
        if let Some(text) = label(v) {
            let _ = writeln!(out, "  {} [label=\"{}\"];", v.0, text);
        }
    }
    for (_, (u, v)) in tree.edges() {
        let _ = writeln!(out, "  {} -- {};", u.0, v.0);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_tree, TreeFamily};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn line_stats() {
        let s = tree_stats(&Tree::line(10));
        assert_eq!(s.n, 10);
        assert_eq!(s.diameter, 9);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.leaves, 2);
    }

    #[test]
    fn star_stats() {
        let t = Tree::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let s = tree_stats(&t);
        assert_eq!(s.diameter, 2);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.leaves, 4);
    }

    #[test]
    fn singleton_stats() {
        let t = Tree::from_edges(1, &[]).unwrap();
        let s = tree_stats(&t);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.leaves, 0);
    }

    #[test]
    fn diameter_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..5 {
            let t = random_tree(20, &mut rng);
            let s = tree_stats(&t);
            let rooted = RootedTree::new(&t, VertexId(0));
            let brute = t
                .vertices()
                .flat_map(|u| t.vertices().map(move |v| (u, v)))
                .map(|(u, v)| rooted.distance(u, v) as usize)
                .max()
                .unwrap();
            assert_eq!(s.diameter, brute);
        }
    }

    #[test]
    fn dot_contains_all_edges() {
        let mut rng = SmallRng::seed_from_u64(5);
        let t = TreeFamily::Caterpillar.generate(12, &mut rng);
        let dot = to_dot(&t, "g", |_| None);
        assert_eq!(dot.matches(" -- ").count(), t.edge_count());
        assert!(dot.starts_with("graph g {"));
        assert!(dot.trim_end().ends_with('}'));
        // Labels appear when requested.
        let labelled = to_dot(&t, "g", |v| (v.0 == 0).then(|| "root".to_string()));
        assert!(labelled.contains("label=\"root\""));
    }
}

//! The unique path between two vertices of a tree.

use crate::{EdgeId, VertexId};

/// The unique path between two vertices `u ↝ v` of a [`crate::Tree`].
///
/// A demand instance `d = ⟨u, v⟩` scheduled on a tree-network *is* such a
/// path (`path(d)` in the paper). The path stores the vertex sequence from
/// `u` to `v` inclusive and the corresponding edge ids; a demand instance is
/// *active* on edge `e` (`d ∼ e`) iff `e` is among [`TreePath::edges`].
///
/// Produced by [`crate::RootedTree::path`].
///
/// # Example
///
/// ```
/// use treenet_graph::{Tree, RootedTree, VertexId};
///
/// # fn main() -> Result<(), treenet_graph::TreeError> {
/// let tree = Tree::line(5);
/// let rooted = RootedTree::new(&tree, VertexId(0));
/// let path = rooted.path(VertexId(1), VertexId(4));
/// assert_eq!(path.len(), 3);
/// assert_eq!(path.source(), VertexId(1));
/// assert_eq!(path.target(), VertexId(4));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TreePath {
    vertices: Vec<VertexId>,
    edges: Vec<EdgeId>,
}

impl TreePath {
    /// Creates a path from its vertex sequence and edge sequence.
    ///
    /// # Panics
    ///
    /// Panics unless `vertices.len() == edges.len() + 1` and the sequence is
    /// non-empty — a path always contains at least its source vertex.
    pub fn new(vertices: Vec<VertexId>, edges: Vec<EdgeId>) -> Self {
        assert!(
            !vertices.is_empty(),
            "a tree path contains at least one vertex"
        );
        assert_eq!(
            vertices.len(),
            edges.len() + 1,
            "a path over k edges visits k + 1 vertices"
        );
        TreePath { vertices, edges }
    }

    /// First vertex of the path (the demand end-point `u`).
    #[inline]
    pub fn source(&self) -> VertexId {
        self.vertices[0]
    }

    /// Last vertex of the path (the demand end-point `v`).
    #[inline]
    pub fn target(&self) -> VertexId {
        *self.vertices.last().expect("paths are non-empty")
    }

    /// Number of edges on the path (0 when `u == v`).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the path has no edges (`u == v`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Vertex sequence from source to target, inclusive.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Edge sequence from source to target.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Whether the path visits vertex `x`.
    pub fn contains_vertex(&self, x: VertexId) -> bool {
        self.vertices.contains(&x)
    }

    /// Whether the path uses edge `e` (the paper's `d ∼ e`).
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// The *wings* of vertex `y` on this path: the path edges incident to
    /// `y` (Section 4.4 of the paper).
    ///
    /// Returns one edge when `y` is an end-point of the path, two when `y`
    /// is interior, and none when `y` is not on the path.
    pub fn wings(&self, y: VertexId) -> Vec<EdgeId> {
        match self.vertices.iter().position(|&x| x == y) {
            None => Vec::new(),
            Some(i) => {
                let mut wings = Vec::with_capacity(2);
                if i > 0 {
                    wings.push(self.edges[i - 1]);
                }
                if i < self.edges.len() {
                    wings.push(self.edges[i]);
                }
                wings
            }
        }
    }

    /// Whether this path and `other` share at least one edge — the paper's
    /// *overlapping* relation for two demand instances on the same
    /// tree-network.
    pub fn overlaps(&self, other: &TreePath) -> bool {
        // Quadratic scan; path lengths are O(n) and this is only used by
        // verifiers and small-instance code. Hot paths use the model layer's
        // edge bitsets instead.
        self.edges.iter().any(|e| other.edges.contains(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp(v: &[u32], e: &[u32]) -> TreePath {
        TreePath::new(
            v.iter().map(|&x| VertexId(x)).collect(),
            e.iter().map(|&x| EdgeId(x)).collect(),
        )
    }

    #[test]
    fn basic_accessors() {
        let p = vp(&[2, 1, 0, 3], &[1, 0, 2]);
        assert_eq!(p.source(), VertexId(2));
        assert_eq!(p.target(), VertexId(3));
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(p.contains_vertex(VertexId(0)));
        assert!(!p.contains_vertex(VertexId(9)));
        assert!(p.contains_edge(EdgeId(0)));
        assert!(!p.contains_edge(EdgeId(7)));
    }

    #[test]
    fn trivial_path() {
        let p = vp(&[4], &[]);
        assert_eq!(p.source(), VertexId(4));
        assert_eq!(p.target(), VertexId(4));
        assert!(p.is_empty());
        assert_eq!(p.wings(VertexId(4)), vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn rejects_empty_vertex_list() {
        let _ = TreePath::new(vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "k + 1 vertices")]
    fn rejects_mismatched_lengths() {
        let _ = TreePath::new(vec![VertexId(0), VertexId(1)], vec![]);
    }

    #[test]
    fn wings_at_endpoint_and_interior() {
        let p = vp(&[2, 1, 0, 3], &[1, 0, 2]);
        // End-point: one wing.
        assert_eq!(p.wings(VertexId(2)), vec![EdgeId(1)]);
        assert_eq!(p.wings(VertexId(3)), vec![EdgeId(2)]);
        // Interior: two wings.
        assert_eq!(p.wings(VertexId(1)), vec![EdgeId(1), EdgeId(0)]);
        assert_eq!(p.wings(VertexId(0)), vec![EdgeId(0), EdgeId(2)]);
        // Absent vertex: none.
        assert_eq!(p.wings(VertexId(9)), vec![]);
    }

    #[test]
    fn overlap_is_edge_sharing() {
        let p = vp(&[0, 1, 2], &[0, 1]);
        let q = vp(&[1, 2, 3], &[1, 2]);
        let r = vp(&[3, 4], &[3]);
        assert!(p.overlaps(&q));
        assert!(q.overlaps(&p));
        assert!(!p.overlaps(&r));
        // Sharing only a vertex is NOT overlapping (edge-disjoint paths may
        // share vertices in the unit-height tree problem).
        let s = vp(&[2, 9], &[9]);
        assert!(!p.overlaps(&s));
    }
}

//! Rooted views of a tree: parents, depths, LCA, medians, paths.

use crate::{EdgeId, Tree, TreePath, VertexId};

/// A rooted view of a [`Tree`] with `O(n log n)` preprocessing supporting
/// `O(log n)` LCA queries, `O(1)` ancestor tests and path extraction in
/// time linear in the path length.
///
/// The struct owns only derived index arrays; pair it with the original
/// [`Tree`] when edge endpoints are needed (this keeps borrows out of
/// long-lived structures, avoiding the usual ownership friction of node
/// graphs in Rust).
///
/// Depths here are **0-based** (`depth(root) == 0`); the paper's Section 4
/// uses 1-based depths (`depth(root) == 1`). Use [`RootedTree::paper_depth`]
/// when comparing against statements from the paper.
///
/// # Example
///
/// ```
/// use treenet_graph::{Tree, RootedTree, VertexId};
///
/// # fn main() -> Result<(), treenet_graph::TreeError> {
/// let tree = Tree::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)])?;
/// let rooted = RootedTree::new(&tree, VertexId(0));
/// assert_eq!(rooted.lca(VertexId(3), VertexId(4)), VertexId(1));
/// assert_eq!(rooted.median(VertexId(3), VertexId(4), VertexId(2)), VertexId(1));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RootedTree {
    root: VertexId,
    parent: Vec<Option<VertexId>>,
    parent_edge: Vec<Option<EdgeId>>,
    depth: Vec<u32>,
    /// Euler tour entry/exit counters for O(1) ancestor tests.
    tin: Vec<u32>,
    tout: Vec<u32>,
    /// `up[k][v]` = the 2^k-th ancestor of `v` (root for overshoot).
    up: Vec<Vec<VertexId>>,
    /// Vertices in BFS order from the root (every vertex after its parent).
    order: Vec<VertexId>,
}

impl RootedTree {
    /// Roots `tree` at `root` and precomputes LCA tables.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range for `tree`.
    pub fn new(tree: &Tree, root: VertexId) -> Self {
        let n = tree.len();
        assert!(
            root.index() < n,
            "root {root} out of range for {n} vertices"
        );
        let mut parent = vec![None; n];
        let mut parent_edge = vec![None; n];
        let mut depth = vec![0u32; n];
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut order = Vec::with_capacity(n);

        // Iterative DFS for tin/tout plus BFS-like order extraction.
        let mut timer = 0u32;
        let mut visited = vec![false; n];
        // Stack frames: (vertex, neighbor cursor).
        let mut stack: Vec<(VertexId, usize)> = vec![(root, 0)];
        visited[root.index()] = true;
        tin[root.index()] = timer;
        timer += 1;
        order.push(root);
        while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
            let neighbors = tree.neighbors(u);
            if *cursor < neighbors.len() {
                let (v, e) = neighbors[*cursor];
                *cursor += 1;
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    parent[v.index()] = Some(u);
                    parent_edge[v.index()] = Some(e);
                    depth[v.index()] = depth[u.index()] + 1;
                    tin[v.index()] = timer;
                    timer += 1;
                    order.push(v);
                    stack.push((v, 0));
                }
            } else {
                tout[u.index()] = timer;
                timer += 1;
                stack.pop();
            }
        }

        // Binary lifting table.
        let levels = usize::BITS as usize - (n.max(2) - 1).leading_zeros() as usize;
        let levels = levels.max(1);
        let mut up: Vec<Vec<VertexId>> = Vec::with_capacity(levels);
        let base: Vec<VertexId> = (0..n)
            .map(|v| parent[v].unwrap_or(VertexId(v as u32)))
            .collect();
        up.push(base);
        for k in 1..levels {
            let prev = &up[k - 1];
            let next: Vec<VertexId> = (0..n).map(|v| prev[prev[v].index()]).collect();
            up.push(next);
        }

        RootedTree {
            root,
            parent,
            parent_edge,
            depth,
            tin,
            tout,
            up,
            order,
        }
    }

    /// The root vertex.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.depth.len()
    }

    /// Always false; a rooted tree has at least its root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent[v.index()]
    }

    /// The edge connecting `v` to its parent, or `None` for the root.
    #[inline]
    pub fn parent_edge(&self, v: VertexId) -> Option<EdgeId> {
        self.parent_edge[v.index()]
    }

    /// 0-based depth (`depth(root) == 0`).
    #[inline]
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v.index()]
    }

    /// 1-based depth as used by the paper (`depth(root) == 1`).
    #[inline]
    pub fn paper_depth(&self, v: VertexId) -> u32 {
        self.depth[v.index()] + 1
    }

    /// Height of the rooted tree: maximum 1-based depth over all vertices.
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0) + 1
    }

    /// Vertices in depth-first discovery order from the root; every vertex
    /// appears after its parent, so a single forward scan can push values
    /// down and a reverse scan can aggregate values up.
    #[inline]
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }

    /// True when `a` is an ancestor of `x` or `a == x`.
    #[inline]
    pub fn is_ancestor_or_self(&self, a: VertexId, x: VertexId) -> bool {
        self.tin[a.index()] <= self.tin[x.index()] && self.tout[x.index()] <= self.tout[a.index()]
    }

    /// True when `a` is a strict ancestor of `x` (the paper's convention: a
    /// vertex is not its own ancestor).
    #[inline]
    pub fn is_ancestor(&self, a: VertexId, x: VertexId) -> bool {
        a != x && self.is_ancestor_or_self(a, x)
    }

    /// The ancestor of `v` exactly `k` levels up, saturating at the root.
    pub fn ancestor_at(&self, v: VertexId, k: u32) -> VertexId {
        let mut v = v;
        let mut k = k.min(self.depth(v));
        let mut level = 0usize;
        while k > 0 {
            if k & 1 == 1 {
                v = self.up[level][v.index()];
            }
            k >>= 1;
            level += 1;
        }
        v
    }

    /// Least common ancestor of `u` and `v`.
    pub fn lca(&self, u: VertexId, v: VertexId) -> VertexId {
        if self.is_ancestor_or_self(u, v) {
            return u;
        }
        if self.is_ancestor_or_self(v, u) {
            return v;
        }
        let mut u = u;
        for k in (0..self.up.len()).rev() {
            let candidate = self.up[k][u.index()];
            if !self.is_ancestor_or_self(candidate, v) {
                u = candidate;
            }
        }
        self.up[0][u.index()]
    }

    /// Number of edges on the unique path between `u` and `v`.
    pub fn distance(&self, u: VertexId, v: VertexId) -> u32 {
        let w = self.lca(u, v);
        self.depth(u) + self.depth(v) - 2 * self.depth(w)
    }

    /// The *median* of three vertices: the unique vertex lying on all three
    /// pairwise paths.
    ///
    /// Used to find the *junction* in the ideal tree decomposition
    /// (Section 4.3, Case 2(b)) and *bending points* (Section 4.4): the
    /// bending point of the path `a ↝ b` with respect to `u` is
    /// `median(a, b, u)`.
    pub fn median(&self, a: VertexId, b: VertexId, c: VertexId) -> VertexId {
        let ab = self.lca(a, b);
        let bc = self.lca(b, c);
        let ac = self.lca(a, c);
        // Exactly one of the three pairwise LCAs is the deepest; it is the
        // median. (Two of them always coincide at the shallowest point.)
        let mut best = ab;
        for w in [bc, ac] {
            if self.depth(w) > self.depth(best) {
                best = w;
            }
        }
        best
    }

    /// The unique path from `u` to `v` with vertex and edge sequences.
    pub fn path(&self, u: VertexId, v: VertexId) -> TreePath {
        let w = self.lca(u, v);
        // Ascend from u to w.
        let mut vertices = Vec::new();
        let mut edges = Vec::new();
        let mut x = u;
        while x != w {
            vertices.push(x);
            edges.push(self.parent_edge(x).expect("non-root while ascending"));
            x = self.parent(x).expect("non-root while ascending");
        }
        vertices.push(w);
        // Ascend from v to w, then reverse that suffix.
        let mut tail_vertices = Vec::new();
        let mut tail_edges = Vec::new();
        let mut y = v;
        while y != w {
            tail_vertices.push(y);
            tail_edges.push(self.parent_edge(y).expect("non-root while ascending"));
            y = self.parent(y).expect("non-root while ascending");
        }
        vertices.extend(tail_vertices.into_iter().rev());
        edges.extend(tail_edges.into_iter().rev());
        TreePath::new(vertices, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example tree-network of Figure 6 of the paper, reconstructed
    /// from the narrative constraints of Sections 4.1/4.4 and Appendix A
    /// (vertices 1..14 mapped to 0..13):
    /// path(⟨4,13⟩) = 4-2-5-8-13, captured at 2 under root 1 with wings
    /// ⟨2,4⟩/⟨2,5⟩; C(2) = {2,4} with χ(2) = {1,5}; C(5) =
    /// {5,9,8,2,12,13,4} with χ(5) = {1}; bending points of ⟨4,13⟩ w.r.t.
    /// 3 and 9 are 2 and 5.
    fn figure6_tree() -> Tree {
        Tree::from_edges(
            14,
            &[
                (0, 1),   // 1-2
                (1, 3),   // 2-4
                (1, 4),   // 2-5
                (4, 7),   // 5-8
                (4, 8),   // 5-9
                (7, 12),  // 8-13
                (7, 11),  // 8-12
                (0, 5),   // 1-6
                (5, 2),   // 6-3
                (2, 6),   // 3-7
                (0, 13),  // 1-14
                (13, 9),  // 14-10
                (13, 10), // 14-11
            ],
        )
        .unwrap()
    }

    #[test]
    fn depths_and_parents_on_line() {
        let t = Tree::line(5);
        let r = RootedTree::new(&t, VertexId(0));
        assert_eq!(r.root(), VertexId(0));
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert_eq!(r.depth(VertexId(0)), 0);
        assert_eq!(r.paper_depth(VertexId(0)), 1);
        assert_eq!(r.depth(VertexId(4)), 4);
        assert_eq!(r.parent(VertexId(3)), Some(VertexId(2)));
        assert_eq!(r.parent(VertexId(0)), None);
        assert_eq!(r.parent_edge(VertexId(1)), Some(EdgeId(0)));
        assert_eq!(r.height(), 5);
    }

    #[test]
    fn lca_on_figure6() {
        // Rooted at node 1 (v0), the root-fixing view of Appendix A.
        let t = figure6_tree();
        let r = RootedTree::new(&t, VertexId(0));
        // LCA(2, 8) = 2 in T rooted at 1 (8 lies below 2).
        assert_eq!(r.lca(VertexId(1), VertexId(7)), VertexId(1));
        // LCA(10, 11) = 14.
        assert_eq!(r.lca(VertexId(9), VertexId(10)), VertexId(13));
        // LCA(4, 13) = 2: the capture node of the demand ⟨4, 13⟩.
        assert_eq!(r.lca(VertexId(3), VertexId(12)), VertexId(1));
        // LCA(7, 14) = 1.
        assert_eq!(r.lca(VertexId(6), VertexId(13)), VertexId(0));
        // Ancestor cases.
        assert_eq!(r.lca(VertexId(4), VertexId(7)), VertexId(4));
        assert_eq!(r.lca(VertexId(5), VertexId(5)), VertexId(5));
    }

    #[test]
    fn ancestor_tests() {
        let t = figure6_tree();
        let r = RootedTree::new(&t, VertexId(0));
        assert!(r.is_ancestor(VertexId(0), VertexId(10)));
        // 2 (v1) is an ancestor of 13 (v12).
        assert!(r.is_ancestor(VertexId(1), VertexId(12)));
        assert!(!r.is_ancestor(VertexId(12), VertexId(1)));
        assert!(!r.is_ancestor(VertexId(5), VertexId(13)));
        assert!(!r.is_ancestor(VertexId(4), VertexId(4)));
        assert!(r.is_ancestor_or_self(VertexId(4), VertexId(4)));
    }

    #[test]
    fn ancestor_at_saturates() {
        let t = Tree::line(6);
        let r = RootedTree::new(&t, VertexId(0));
        assert_eq!(r.ancestor_at(VertexId(5), 2), VertexId(3));
        assert_eq!(r.ancestor_at(VertexId(5), 5), VertexId(0));
        assert_eq!(r.ancestor_at(VertexId(5), 100), VertexId(0));
        assert_eq!(r.ancestor_at(VertexId(0), 3), VertexId(0));
    }

    #[test]
    fn distance_matches_path_len() {
        let t = figure6_tree();
        let r = RootedTree::new(&t, VertexId(0));
        for u in t.vertices() {
            for v in t.vertices() {
                assert_eq!(r.distance(u, v) as usize, r.path(u, v).len(), "{u} {v}");
            }
        }
    }

    #[test]
    fn path_endpoints_and_edges_are_consistent() {
        let t = figure6_tree();
        let r = RootedTree::new(&t, VertexId(0));
        for u in t.vertices() {
            for v in t.vertices() {
                let p = r.path(u, v);
                assert_eq!(p.source(), u);
                assert_eq!(p.target(), v);
                // Consecutive vertices joined by the listed edge.
                for (i, &e) in p.edges().iter().enumerate() {
                    let (a, b) = t.endpoints(e);
                    let (x, y) = (p.vertices()[i], p.vertices()[i + 1]);
                    assert!((a, b) == (x, y) || (a, b) == (y, x));
                }
            }
        }
    }

    #[test]
    fn median_lies_on_all_pairwise_paths() {
        let t = figure6_tree();
        let r = RootedTree::new(&t, VertexId(0));
        let vs: Vec<VertexId> = t.vertices().collect();
        for &a in &vs {
            for &b in &vs {
                for &c in &vs {
                    let m = r.median(a, b, c);
                    assert!(r.path(a, b).contains_vertex(m), "median {m} of {a},{b},{c}");
                    assert!(r.path(b, c).contains_vertex(m));
                    assert!(r.path(a, c).contains_vertex(m));
                }
            }
        }
    }

    #[test]
    fn median_examples() {
        let t = figure6_tree();
        let r = RootedTree::new(&t, VertexId(0));
        // Figure 6 narrative: w.r.t. node 3 (v2), the bending point of the
        // demand ⟨4,13⟩ (v3 ↝ v12) is node 2 (v1); w.r.t. node 9 (v8) it is
        // node 5 (v4).
        assert_eq!(
            r.median(VertexId(3), VertexId(12), VertexId(2)),
            VertexId(1)
        );
        assert_eq!(
            r.median(VertexId(3), VertexId(12), VertexId(8)),
            VertexId(4)
        );
    }

    #[test]
    fn single_vertex_tree_queries() {
        let t = Tree::from_edges(1, &[]).unwrap();
        let r = RootedTree::new(&t, VertexId(0));
        assert_eq!(r.lca(VertexId(0), VertexId(0)), VertexId(0));
        assert_eq!(r.distance(VertexId(0), VertexId(0)), 0);
        assert!(r.path(VertexId(0), VertexId(0)).is_empty());
        assert_eq!(r.height(), 1);
    }

    #[test]
    fn order_puts_parents_first() {
        let t = figure6_tree();
        let r = RootedTree::new(&t, VertexId(4));
        let pos: std::collections::BTreeMap<VertexId, usize> = r
            .order()
            .iter()
            .copied()
            .enumerate()
            .map(|(i, v)| (v, i))
            .collect();
        for v in t.vertices() {
            if let Some(p) = r.parent(v) {
                assert!(pos[&p] < pos[&v]);
            }
        }
        assert_eq!(r.order().len(), t.len());
    }
}

//! Tree data structures and algorithms underpinning the `treenet` workspace.
//!
//! The paper ("Distributed Algorithms for Scheduling on Line and Tree
//! Networks", PODC 2012) works with *tree-networks*: trees defined over a
//! common vertex set `V`. This crate provides
//!
//! * [`Tree`] — a validated, undirected tree over `n` vertices with stable
//!   [`EdgeId`]s,
//! * [`RootedTree`] — parent/depth arrays, Euler intervals, binary-lifting
//!   LCA, tree medians and path extraction,
//! * [`TreePath`] — the unique path between two vertices, as both a vertex
//!   sequence and an edge set,
//! * [`component`] — vertex-subset components, neighborhoods `Γ[C]`,
//!   balancers (centroids) and splitting, the raw material of the paper's
//!   tree decompositions (Section 4),
//! * [`generators`] — random and structured tree families used by the
//!   experiment harness.
//!
//! # Example
//!
//! ```
//! use treenet_graph::{Tree, RootedTree, VertexId};
//!
//! # fn main() -> Result<(), treenet_graph::TreeError> {
//! // The path 0 - 1 - 2 - 3.
//! let tree = Tree::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
//! let rooted = RootedTree::new(&tree, VertexId(0));
//! assert_eq!(rooted.lca(VertexId(1), VertexId(3)), VertexId(1));
//! assert_eq!(rooted.path(VertexId(0), VertexId(3)).len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Tree statistics and Graphviz export.
pub mod analysis;
/// Components, neighborhoods and balancers (Section 4 primitives).
pub mod component;
/// Random and structured tree families for tests and experiments.
pub mod generators;
mod path;
mod rooted;
mod tree;
mod union;

pub use path::TreePath;
pub use rooted::RootedTree;
pub use tree::{Tree, TreeError};
pub use union::UnionFind;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex in the common vertex set `V`.
///
/// Vertices are dense indices `0..n`; the newtype prevents mixing vertex and
/// edge indices (the paper indexes both heavily).
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct VertexId(pub u32);

/// Identifier of an edge within one [`Tree`].
///
/// Edge ids are dense indices `0..n-1`, stable for the lifetime of the tree.
/// Note that edges of *different* tree-networks are unrelated even when they
/// connect the same pair of vertices; the model layer pairs an `EdgeId` with
/// a network id to form the global edge set `E` of the paper.
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct EdgeId(pub u32);

impl VertexId {
    /// Returns the underlying index as `usize` for array access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the underlying index as `usize` for array access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(value: u32) -> Self {
        VertexId(value)
    }
}

impl From<u32> for EdgeId {
    fn from(value: u32) -> Self {
        EdgeId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(0) < EdgeId(9));
        assert_eq!(VertexId(3).to_string(), "v3");
        assert_eq!(EdgeId(7).to_string(), "e7");
        assert_eq!(VertexId::from(5u32), VertexId(5));
        assert_eq!(EdgeId::from(5u32), EdgeId(5));
    }

    #[test]
    fn ids_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VertexId>();
        assert_send_sync::<EdgeId>();
        assert_send_sync::<Tree>();
        assert_send_sync::<RootedTree>();
        assert_send_sync::<TreePath>();
    }
}

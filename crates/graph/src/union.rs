//! A growable disjoint-set forest (union–find).
//!
//! Used by the online scheduling engine to maintain conflict components
//! over demands as arrivals merge them: an arrival can only *join*
//! components (it conflicts with everything on its path edges), and a
//! departure never has to split one — solving a conflict-closed superset
//! of a component is still exact, so over-merged components cost only
//! re-solve work, never correctness. That asymmetry is exactly what a
//! union-find supports in near-constant amortized time.
//!
//! Determinism: the representative of a set depends only on the sequence
//! of `make_set`/`union` calls, never on hashing or iteration order, so
//! component-keyed state (caches, dirty sets) is reproducible across runs.

/// A growable union–find over dense `u32` keys, with path halving and
/// union by size.
///
/// # Example
///
/// ```
/// use treenet_graph::UnionFind;
///
/// let mut uf = UnionFind::new(3);
/// assert_ne!(uf.find(0), uf.find(2));
/// uf.union(0, 2);
/// assert_eq!(uf.find(0), uf.find(2));
/// let fresh = uf.make_set();
/// assert_eq!(fresh, 3);
/// assert_eq!(uf.len(), 4);
/// assert_eq!(uf.set_count(), 3); // {0,2}, {1}, {3}
/// ```
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    /// `parent[x]` — a root points at itself.
    parent: Vec<u32>,
    /// Set size, meaningful at roots only.
    size: Vec<u32>,
    /// Number of disjoint sets.
    sets: usize,
}

impl UnionFind {
    /// Creates a forest of `n` singleton sets `0..n`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements ever created.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Appends a fresh singleton set and returns its key.
    pub fn make_set(&mut self) -> u32 {
        let x = self.parent.len() as u32;
        self.parent.push(x);
        self.size.push(1);
        self.sets += 1;
        x
    }

    /// The representative of `x`'s set, compressing the path as it goes.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        // Path halving: every node on the walk re-points to its
        // grandparent, keeping trees near-flat without recursion.
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Like [`UnionFind::find`] but without compression, usable through a
    /// shared reference.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find_immutable(&self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns the surviving root, and
    /// whether the call actually merged two distinct sets.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: u32, b: u32) -> (u32, bool) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return (ra, false);
        }
        // Union by size; ties go to the smaller key so the outcome is a
        // pure function of the call sequence.
        let (big, small) = match self.size[ra as usize].cmp(&self.size[rb as usize]) {
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Equal => (ra.min(rb), ra.max(rb)),
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.sets -= 1;
        (big, true)
    }

    /// Whether `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn same_set(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.set_count(), 5);
        assert!(!uf.is_empty());
        for x in 0..5 {
            assert_eq!(uf.find(x), x);
            assert_eq!(uf.set_size(x), 1);
        }
        let (_, merged) = uf.union(0, 1);
        assert!(merged);
        let (_, merged) = uf.union(0, 1);
        assert!(!merged);
        assert_eq!(uf.set_count(), 4);
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(0, 2));
        assert_eq!(uf.set_size(1), 2);
    }

    #[test]
    fn grows_with_make_set() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let a = uf.make_set();
        let b = uf.make_set();
        assert_eq!((a, b), (0, 1));
        uf.union(a, b);
        let c = uf.make_set();
        assert_eq!(c, 2);
        assert_eq!(uf.set_count(), 2);
        assert!(!uf.same_set(a, c));
    }

    #[test]
    fn representative_is_call_sequence_deterministic() {
        // Two forests fed the same unions agree on every representative.
        let build = || {
            let mut uf = UnionFind::new(8);
            for (a, b) in [(0, 1), (2, 3), (1, 3), (6, 7), (5, 6)] {
                uf.union(a, b);
            }
            uf
        };
        let mut x = build();
        let mut y = build();
        for k in 0..8 {
            assert_eq!(x.find(k), y.find(k));
            assert_eq!(x.find(k), x.find_immutable(k));
        }
        // Equal-size tie goes to the smaller key.
        let mut uf = UnionFind::new(2);
        assert_eq!(uf.union(1, 0), (0, true));
    }

    #[test]
    fn transitive_merges_collapse_to_one_set() {
        let mut uf = UnionFind::new(100);
        for x in 1..100 {
            uf.union(x - 1, x);
        }
        assert_eq!(uf.set_count(), 1);
        let root = uf.find(0);
        for x in 0..100 {
            assert_eq!(uf.find(x), root);
            assert_eq!(uf.find_immutable(x), root);
        }
        assert_eq!(uf.set_size(42), 100);
    }
}

//! Components (connected vertex subsets), neighborhoods and balancers.
//!
//! Section 4 of the paper builds its tree decompositions out of three
//! primitives on a tree `T`:
//!
//! * a **component** `C ⊆ V` is a vertex subset inducing a connected
//!   subtree;
//! * the **neighborhood** `Γ[C]` is the set of vertices outside `C`
//!   adjacent to some vertex of `C` — every path leaving `C` crosses it;
//! * a **balancer** of `C` is a vertex `z ∈ C` whose removal splits the
//!   induced subtree into components of size at most `⌊|C|/2⌋` (a centroid).
//!
//! Functions here take a scratch
//! [`Membership`](crate::component::Membership) buffer so that recursive
//! decomposition code can reuse allocations; a convenience constructor
//! builds one per call for one-off use.

use crate::{Tree, VertexId};

/// Reusable membership bitmap over the vertices of one tree.
///
/// Marking and clearing are `O(|C|)`; queries are `O(1)`. The intended use
/// is mark → query during one decomposition step → clear.
///
/// # Example
///
/// ```
/// use treenet_graph::{Tree, VertexId};
/// use treenet_graph::component::Membership;
///
/// # fn main() -> Result<(), treenet_graph::TreeError> {
/// let tree = Tree::line(4);
/// let mut membership = Membership::new(tree.len());
/// membership.mark(&[VertexId(1), VertexId(2)]);
/// assert!(membership.contains(VertexId(1)));
/// assert!(!membership.contains(VertexId(3)));
/// membership.clear(&[VertexId(1), VertexId(2)]);
/// assert!(!membership.contains(VertexId(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Membership {
    bits: Vec<bool>,
}

impl Membership {
    /// Creates an all-false membership map for `n` vertices.
    pub fn new(n: usize) -> Self {
        Membership {
            bits: vec![false; n],
        }
    }

    /// Marks every vertex in `members`.
    pub fn mark(&mut self, members: &[VertexId]) {
        for &v in members {
            self.bits[v.index()] = true;
        }
    }

    /// Clears every vertex in `members` (cheaper than zeroing the map).
    pub fn clear(&mut self, members: &[VertexId]) {
        for &v in members {
            self.bits[v.index()] = false;
        }
    }

    /// Whether `v` is currently marked.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.bits[v.index()]
    }

    /// Number of vertices this map covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the map covers zero vertices (never true for maps built for
    /// a real tree).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }
}

/// Returns whether `members` induces a connected subtree of `tree`.
///
/// `membership` must already have exactly `members` marked.
pub fn is_component(tree: &Tree, members: &[VertexId], membership: &Membership) -> bool {
    if members.is_empty() {
        return false;
    }
    let mut seen = vec![false; tree.len()];
    let mut stack = vec![members[0]];
    seen[members[0].index()] = true;
    let mut count = 1usize;
    while let Some(u) = stack.pop() {
        for &(v, _) in tree.neighbors(u) {
            if membership.contains(v) && !seen[v.index()] {
                seen[v.index()] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == members.len()
}

/// The neighborhood `Γ[C]`: vertices outside `C` adjacent to some member.
///
/// `membership` must have exactly `members` marked. The result is sorted
/// and duplicate-free.
pub fn neighborhood(tree: &Tree, members: &[VertexId], membership: &Membership) -> Vec<VertexId> {
    let mut out = Vec::new();
    for &u in members {
        for &(v, _) in tree.neighbors(u) {
            if !membership.contains(v) {
                out.push(v);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Splits component `C` by removing `z ∈ C`: returns the vertex sets of the
/// connected components of the induced subtree on `C \ {z}`.
///
/// `membership` must have exactly `members` marked. Components are returned
/// in the order `z`'s incident edges are stored; each component is in
/// DFS-discovery order.
///
/// # Panics
///
/// Panics if `z` is not marked in `membership`.
pub fn split_at(
    tree: &Tree,
    members: &[VertexId],
    membership: &Membership,
    z: VertexId,
) -> Vec<Vec<VertexId>> {
    assert!(
        membership.contains(z),
        "split vertex {z} must belong to the component"
    );
    let mut seen = vec![false; tree.len()];
    seen[z.index()] = true;
    let mut comps = Vec::new();
    let _ = members;
    for &(start, _) in tree.neighbors(z) {
        if !membership.contains(start) || seen[start.index()] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(u) = stack.pop() {
            comp.push(u);
            for &(v, _) in tree.neighbors(u) {
                if membership.contains(v) && !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        comps.push(comp);
    }
    comps
}

/// Finds a **balancer** (centroid) of the component `C`: a vertex whose
/// removal leaves pieces of size at most `⌊|C|/2⌋`.
///
/// Every component contains a balancer (observation in Section 4.2 of the
/// paper). `membership` must have exactly `members` marked. Runs in
/// `O(|C|)`.
///
/// # Panics
///
/// Panics if `members` is empty.
pub fn find_balancer(tree: &Tree, members: &[VertexId], membership: &Membership) -> VertexId {
    assert!(
        !members.is_empty(),
        "cannot find a balancer of an empty component"
    );
    let total = members.len();
    if total == 1 {
        return members[0];
    }
    // DFS from members[0] computing subtree sizes restricted to C, then
    // descend towards the heaviest side until no side exceeds total/2.
    let root = members[0];
    // Order vertices so parents precede children (within C).
    let mut parent: Vec<Option<VertexId>> = vec![None; tree.len()];
    let mut order = Vec::with_capacity(total);
    let mut seen = vec![false; tree.len()];
    let mut stack = vec![root];
    seen[root.index()] = true;
    while let Some(u) = stack.pop() {
        order.push(u);
        for &(v, _) in tree.neighbors(u) {
            if membership.contains(v) && !seen[v.index()] {
                seen[v.index()] = true;
                parent[v.index()] = Some(u);
                stack.push(v);
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        total,
        "members must form a connected component"
    );
    let mut size = vec![1usize; tree.len()];
    for &u in order.iter().rev() {
        if let Some(p) = parent[u.index()] {
            size[p.index()] += size[u.index()];
        }
    }
    // Walk from the root to the centroid.
    let half = total / 2;
    let mut u = root;
    'walk: loop {
        for &(v, _) in tree.neighbors(u) {
            if membership.contains(v) && parent[v.index()] == Some(u) && size[v.index()] > half {
                u = v;
                continue 'walk;
            }
        }
        return u;
    }
}

/// Checks that `z` is a balancer for `C`: every piece of `C \ {z}` has at
/// most `⌊|C|/2⌋` vertices. Used by tests and decomposition verifiers.
pub fn is_balancer(
    tree: &Tree,
    members: &[VertexId],
    membership: &Membership,
    z: VertexId,
) -> bool {
    let half = members.len() / 2;
    split_at(tree, members, membership, z)
        .iter()
        .all(|c| c.len() <= half)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(n: usize) -> Vec<VertexId> {
        (0..n as u32).map(VertexId).collect()
    }

    #[test]
    fn membership_marks_and_clears() {
        let mut m = Membership::new(5);
        assert_eq!(m.len(), 5);
        assert!(!m.is_empty());
        m.mark(&[VertexId(0), VertexId(3)]);
        assert!(m.contains(VertexId(0)));
        assert!(m.contains(VertexId(3)));
        assert!(!m.contains(VertexId(1)));
        m.clear(&[VertexId(0)]);
        assert!(!m.contains(VertexId(0)));
        assert!(m.contains(VertexId(3)));
    }

    #[test]
    fn connectivity_check() {
        let t = Tree::line(5);
        let mut m = Membership::new(5);
        let comp = vec![VertexId(1), VertexId(2), VertexId(3)];
        m.mark(&comp);
        assert!(is_component(&t, &comp, &m));
        m.clear(&comp);
        let broken = vec![VertexId(0), VertexId(2)];
        m.mark(&broken);
        assert!(!is_component(&t, &broken, &m));
    }

    #[test]
    fn neighborhood_of_interior_segment() {
        let t = Tree::line(6);
        let mut m = Membership::new(6);
        let comp = vec![VertexId(2), VertexId(3)];
        m.mark(&comp);
        assert_eq!(neighborhood(&t, &comp, &m), vec![VertexId(1), VertexId(4)]);
        m.clear(&comp);
        let full = all(6);
        m.mark(&full);
        assert!(neighborhood(&t, &full, &m).is_empty());
    }

    #[test]
    fn split_line_in_the_middle() {
        let t = Tree::line(7);
        let mut m = Membership::new(7);
        let comp = all(7);
        m.mark(&comp);
        let mut parts = split_at(&t, &comp, &m, VertexId(3));
        parts.iter_mut().for_each(|p| p.sort_unstable());
        parts.sort();
        assert_eq!(
            parts,
            vec![
                vec![VertexId(0), VertexId(1), VertexId(2)],
                vec![VertexId(4), VertexId(5), VertexId(6)],
            ]
        );
    }

    #[test]
    fn split_star_center() {
        let t = Tree::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let mut m = Membership::new(4);
        let comp = all(4);
        m.mark(&comp);
        let parts = split_at(&t, &comp, &m, VertexId(0));
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    #[should_panic(expected = "must belong")]
    fn split_requires_member() {
        let t = Tree::line(3);
        let mut m = Membership::new(3);
        let comp = vec![VertexId(0), VertexId(1)];
        m.mark(&comp);
        let _ = split_at(&t, &comp, &m, VertexId(2));
    }

    #[test]
    fn balancer_of_line_is_middle() {
        let t = Tree::line(9);
        let mut m = Membership::new(9);
        let comp = all(9);
        m.mark(&comp);
        let z = find_balancer(&t, &comp, &m);
        assert!(is_balancer(&t, &comp, &m, z));
        assert_eq!(z, VertexId(4));
        // The end vertex is not a balancer.
        assert!(!is_balancer(&t, &comp, &m, VertexId(0)));
    }

    #[test]
    fn balancer_of_star_is_center() {
        let t = Tree::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        let mut m = Membership::new(6);
        let comp = all(6);
        m.mark(&comp);
        assert_eq!(find_balancer(&t, &comp, &m), VertexId(0));
    }

    #[test]
    fn balancer_of_sub_component() {
        // Balancer restricted to a strict subset.
        let t = Tree::line(10);
        let mut m = Membership::new(10);
        let comp: Vec<VertexId> = (3..8).map(VertexId).collect();
        m.mark(&comp);
        let z = find_balancer(&t, &comp, &m);
        assert!(is_balancer(&t, &comp, &m, z));
        assert_eq!(z, VertexId(5));
    }

    #[test]
    fn balancer_of_singleton() {
        let t = Tree::line(3);
        let mut m = Membership::new(3);
        let comp = vec![VertexId(1)];
        m.mark(&comp);
        assert_eq!(find_balancer(&t, &comp, &m), VertexId(1));
        assert!(is_balancer(&t, &comp, &m, VertexId(1)));
    }

    #[test]
    fn every_component_has_balancer_found() {
        // Exhaustive over all sub-paths of a small caterpillar.
        let t = Tree::from_edges(7, &[(0, 1), (1, 2), (2, 3), (1, 4), (2, 5), (3, 6)]).unwrap();
        let mut m = Membership::new(7);
        let full = all(7);
        m.mark(&full);
        let z = find_balancer(&t, &full, &m);
        assert!(is_balancer(&t, &full, &m, z));
    }
}

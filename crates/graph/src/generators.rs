//! Random and structured tree families for tests and the experiment harness.
//!
//! The paper's bounds are worst-case over all tree shapes; the experiment
//! harness exercises them across structurally extreme families (paths,
//! stars, caterpillars, balanced trees, brooms, spiders) plus
//! uniformly-random labeled trees via Prüfer sequences.

use crate::{Tree, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A named tree family, so experiments can sweep shapes uniformly.
///
/// # Example
///
/// ```
/// use treenet_graph::generators::TreeFamily;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let tree = TreeFamily::Caterpillar.generate(32, &mut rng);
/// assert_eq!(tree.len(), 32);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TreeFamily {
    /// The path `0-1-…-(n-1)` (a line-network).
    Path,
    /// A star centered at a random vertex.
    Star,
    /// A random caterpillar: a random-length spine with leaves attached.
    Caterpillar,
    /// A balanced binary tree (complete shape, random labels).
    BalancedBinary,
    /// A broom: a path whose far end fans out into leaves.
    Broom,
    /// A spider: several paths (legs) glued at a random center.
    Spider,
    /// A uniformly random labeled tree (Prüfer sequence).
    Uniform,
}

impl TreeFamily {
    /// All families, in a stable order, for experiment sweeps.
    pub const ALL: [TreeFamily; 7] = [
        TreeFamily::Path,
        TreeFamily::Star,
        TreeFamily::Caterpillar,
        TreeFamily::BalancedBinary,
        TreeFamily::Broom,
        TreeFamily::Spider,
        TreeFamily::Uniform,
    ];

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TreeFamily::Path => "path",
            TreeFamily::Star => "star",
            TreeFamily::Caterpillar => "caterpillar",
            TreeFamily::BalancedBinary => "binary",
            TreeFamily::Broom => "broom",
            TreeFamily::Spider => "spider",
            TreeFamily::Uniform => "uniform",
        }
    }

    /// Generates an `n`-vertex member of the family.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate<R: Rng>(self, n: usize, rng: &mut R) -> Tree {
        assert!(n > 0, "trees need at least one vertex");
        match self {
            TreeFamily::Path => Tree::line(n),
            TreeFamily::Star => star(n, rng),
            TreeFamily::Caterpillar => caterpillar(n, rng),
            TreeFamily::BalancedBinary => balanced_binary(n, rng),
            TreeFamily::Broom => broom(n, rng),
            TreeFamily::Spider => spider(n, rng),
            TreeFamily::Uniform => random_tree(n, rng),
        }
    }
}

/// A uniformly random labeled tree over `n` vertices via a random Prüfer
/// sequence (uniform over all `n^(n-2)` labeled trees for `n ≥ 3`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> Tree {
    assert!(n > 0);
    if n <= 2 {
        return Tree::line(n);
    }
    let seq: Vec<u32> = (0..n - 2).map(|_| rng.gen_range(0..n as u32)).collect();
    prufer_to_tree(n, &seq)
}

/// Decodes a Prüfer sequence of length `n - 2` into its labeled tree.
///
/// # Panics
///
/// Panics unless `n ≥ 2`, `seq.len() == n - 2` and every entry is `< n`.
pub fn prufer_to_tree(n: usize, seq: &[u32]) -> Tree {
    assert!(n >= 2, "Prüfer decoding needs at least two vertices");
    assert_eq!(
        seq.len(),
        n - 2,
        "Prüfer sequence for n vertices has n-2 entries"
    );
    assert!(
        seq.iter().all(|&x| (x as usize) < n),
        "Prüfer entries must be < n"
    );
    let mut degree = vec![1u32; n];
    for &x in seq {
        degree[x as usize] += 1;
    }
    // Min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..n as u32)
        .filter(|&v| degree[v as usize] == 1)
        .map(std::cmp::Reverse)
        .collect();
    let mut edges = Vec::with_capacity(n - 1);
    for &x in seq {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("a tree always has a leaf");
        edges.push((leaf, x));
        degree[x as usize] -= 1;
        if degree[x as usize] == 1 {
            leaves.push(std::cmp::Reverse(x));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(b) = leaves.pop().expect("two leaves remain");
    edges.push((a, b));
    Tree::from_edges(n, &edges).expect("Prüfer decoding always yields a tree")
}

/// A star with a random center.
pub fn star<R: Rng>(n: usize, rng: &mut R) -> Tree {
    assert!(n > 0);
    if n == 1 {
        return Tree::from_edges(1, &[]).expect("singleton");
    }
    let center = rng.gen_range(0..n as u32);
    let edges: Vec<(u32, u32)> = (0..n as u32)
        .filter(|&v| v != center)
        .map(|v| (center, v))
        .collect();
    Tree::from_edges(n, &edges).expect("star is a tree")
}

/// A caterpillar: a spine of length `~n/2` with remaining vertices attached
/// to random spine positions.
pub fn caterpillar<R: Rng>(n: usize, rng: &mut R) -> Tree {
    assert!(n > 0);
    let spine_len = (n / 2).max(1);
    let mut edges = Vec::with_capacity(n - 1);
    for i in 1..spine_len {
        edges.push((i as u32 - 1, i as u32));
    }
    for v in spine_len..n {
        let attach = rng.gen_range(0..spine_len) as u32;
        edges.push((attach, v as u32));
    }
    Tree::from_edges(n, &edges).expect("caterpillar is a tree")
}

/// A complete-shape binary tree with randomly permuted labels.
pub fn balanced_binary<R: Rng>(n: usize, rng: &mut R) -> Tree {
    assert!(n > 0);
    let mut labels: Vec<u32> = (0..n as u32).collect();
    labels.shuffle(rng);
    let mut edges = Vec::with_capacity(n - 1);
    for i in 1..n {
        edges.push((labels[(i - 1) / 2], labels[i]));
    }
    Tree::from_edges(n, &edges).expect("heap shape is a tree")
}

/// A broom: a handle path of `~n/2` vertices ending in a fan of leaves.
pub fn broom<R: Rng>(n: usize, _rng: &mut R) -> Tree {
    assert!(n > 0);
    let handle = (n / 2).max(1);
    let mut edges = Vec::with_capacity(n - 1);
    for i in 1..handle {
        edges.push((i as u32 - 1, i as u32));
    }
    for v in handle..n {
        edges.push((handle as u32 - 1, v as u32));
    }
    Tree::from_edges(n, &edges).expect("broom is a tree")
}

/// A spider: `k ∈ [3, 6]` legs of near-equal length glued at vertex 0.
pub fn spider<R: Rng>(n: usize, rng: &mut R) -> Tree {
    assert!(n > 0);
    if n <= 3 {
        return Tree::line(n);
    }
    let k = rng.gen_range(3..=6usize.min(n - 1));
    let mut edges = Vec::with_capacity(n - 1);
    let mut next = 1u32;
    let mut tips: Vec<u32> = Vec::new();
    // Start each leg at the center.
    for _ in 0..k.min(n - 1) {
        edges.push((0, next));
        tips.push(next);
        next += 1;
    }
    // Extend legs round-robin.
    let mut leg = 0usize;
    while (next as usize) < n {
        edges.push((tips[leg], next));
        tips[leg] = next;
        next += 1;
        leg = (leg + 1) % tips.len();
    }
    Tree::from_edges(n, &edges).expect("spider is a tree")
}

/// A uniformly random vertex of `tree`.
pub fn random_vertex<R: Rng>(tree: &Tree, rng: &mut R) -> VertexId {
    VertexId(rng.gen_range(0..tree.len() as u32))
}

/// Two distinct uniformly random vertices of `tree` (requires `n ≥ 2`).
///
/// # Panics
///
/// Panics if the tree has a single vertex.
pub fn random_vertex_pair<R: Rng>(tree: &Tree, rng: &mut R) -> (VertexId, VertexId) {
    assert!(tree.len() >= 2, "need at least two vertices for a demand");
    let u = rng.gen_range(0..tree.len() as u32);
    let mut v = rng.gen_range(0..tree.len() as u32 - 1);
    if v >= u {
        v += 1;
    }
    (VertexId(u), VertexId(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn prufer_known_example() {
        // Sequence (3, 3, 3, 4) over n = 6 yields the tree with edges
        // 0-3, 1-3, 2-3, 3-4, 4-5 (classic textbook example).
        let t = prufer_to_tree(6, &[3, 3, 3, 4]);
        assert_eq!(t.degree(VertexId(3)), 4);
        assert_eq!(t.degree(VertexId(4)), 2);
        assert!(t.edge_between(VertexId(0), VertexId(3)).is_some());
        assert!(t.edge_between(VertexId(4), VertexId(5)).is_some());
    }

    #[test]
    fn prufer_two_vertices() {
        let t = prufer_to_tree(2, &[]);
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "n-2 entries")]
    fn prufer_rejects_bad_length() {
        let _ = prufer_to_tree(4, &[0]);
    }

    #[test]
    fn all_families_generate_valid_trees() {
        let mut rng = SmallRng::seed_from_u64(42);
        for family in TreeFamily::ALL {
            for n in [1usize, 2, 3, 5, 17, 64] {
                let t = family.generate(n, &mut rng);
                assert_eq!(t.len(), n, "{} n={}", family.name(), n);
                assert_eq!(t.edge_count(), n - 1);
            }
        }
    }

    #[test]
    fn family_names_are_unique() {
        let names: std::collections::HashSet<&str> =
            TreeFamily::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), TreeFamily::ALL.len());
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let a = random_tree(20, &mut SmallRng::seed_from_u64(1));
        let b = random_tree(20, &mut SmallRng::seed_from_u64(1));
        let c = random_tree(20, &mut SmallRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (a.s.) differ");
    }

    #[test]
    fn random_pair_is_distinct() {
        let t = Tree::line(5);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let (u, v) = random_vertex_pair(&t, &mut rng);
            assert_ne!(u, v);
            assert!(u.index() < 5 && v.index() < 5);
        }
        let v = random_vertex(&t, &mut rng);
        assert!(v.index() < 5);
    }

    #[test]
    fn star_has_single_center() {
        let mut rng = SmallRng::seed_from_u64(9);
        let t = star(10, &mut rng);
        let centers = t.vertices().filter(|&v| t.degree(v) == 9).count();
        assert_eq!(centers, 1);
    }

    #[test]
    fn spider_center_has_legs() {
        let mut rng = SmallRng::seed_from_u64(11);
        let t = spider(20, &mut rng);
        assert!(t.degree(VertexId(0)) >= 3);
    }
}

//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_graph::component::{
    find_balancer, is_balancer, is_component, neighborhood, split_at, Membership,
};
use treenet_graph::generators::{prufer_to_tree, random_tree, TreeFamily};
use treenet_graph::{RootedTree, VertexId};

fn arb_prufer(max_n: usize) -> impl Strategy<Value = (usize, Vec<u32>)> {
    (3usize..max_n).prop_flat_map(|n| (Just(n), proptest::collection::vec(0u32..(n as u32), n - 2)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every Prüfer sequence decodes to a valid tree with the right degree
    /// profile: degree(v) = 1 + multiplicity of v in the sequence.
    #[test]
    fn prufer_degrees_match_multiplicity((n, seq) in arb_prufer(40)) {
        let tree = prufer_to_tree(n, &seq);
        for v in tree.vertices() {
            let mult = seq.iter().filter(|&&x| x == v.0).count();
            prop_assert_eq!(tree.degree(v), mult + 1);
        }
    }

    /// LCA is symmetric, idempotent on ancestors, and the path through the
    /// LCA has the length reported by `distance`.
    #[test]
    fn lca_and_distance_agree((n, seq) in arb_prufer(40), root in 0u32..40, a in 0u32..40, b in 0u32..40) {
        let tree = prufer_to_tree(n, &seq);
        let root = VertexId(root % n as u32);
        let a = VertexId(a % n as u32);
        let b = VertexId(b % n as u32);
        let r = RootedTree::new(&tree, root);
        prop_assert_eq!(r.lca(a, b), r.lca(b, a));
        let w = r.lca(a, b);
        prop_assert!(r.is_ancestor_or_self(w, a));
        prop_assert!(r.is_ancestor_or_self(w, b));
        prop_assert_eq!(r.distance(a, b) as usize, r.path(a, b).len());
        // The path visits the LCA.
        prop_assert!(r.path(a, b).contains_vertex(w));
    }

    /// The path is simple: no repeated vertices or edges.
    #[test]
    fn paths_are_simple((n, seq) in arb_prufer(30), a in 0u32..30, b in 0u32..30) {
        let tree = prufer_to_tree(n, &seq);
        let a = VertexId(a % n as u32);
        let b = VertexId(b % n as u32);
        let r = RootedTree::new(&tree, VertexId(0));
        let p = r.path(a, b);
        let mut vs: Vec<_> = p.vertices().to_vec();
        vs.sort_unstable();
        vs.dedup();
        prop_assert_eq!(vs.len(), p.vertices().len());
        let mut es: Vec<_> = p.edges().to_vec();
        es.sort_unstable();
        es.dedup();
        prop_assert_eq!(es.len(), p.edges().len());
    }

    /// Median is invariant under argument permutation and lies on all
    /// pairwise paths.
    #[test]
    fn median_permutation_invariant((n, seq) in arb_prufer(25), a in 0u32..25, b in 0u32..25, c in 0u32..25) {
        let tree = prufer_to_tree(n, &seq);
        let a = VertexId(a % n as u32);
        let b = VertexId(b % n as u32);
        let c = VertexId(c % n as u32);
        let r = RootedTree::new(&tree, VertexId(0));
        let m = r.median(a, b, c);
        prop_assert_eq!(m, r.median(b, c, a));
        prop_assert_eq!(m, r.median(c, a, b));
        prop_assert_eq!(m, r.median(b, a, c));
        prop_assert!(r.path(a, b).contains_vertex(m));
        prop_assert!(r.path(b, c).contains_vertex(m));
        prop_assert!(r.path(a, c).contains_vertex(m));
    }

    /// Balancers found by `find_balancer` satisfy the definition, and
    /// splitting at them partitions the component.
    #[test]
    fn balancer_definition_holds(seed in 0u64..500, n in 3usize..50) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = random_tree(n, &mut rng);
        let members: Vec<VertexId> = tree.vertices().collect();
        let mut membership = Membership::new(n);
        membership.mark(&members);
        prop_assert!(is_component(&tree, &members, &membership));
        let z = find_balancer(&tree, &members, &membership);
        prop_assert!(is_balancer(&tree, &members, &membership, z));
        let parts = split_at(&tree, &members, &membership, z);
        let total: usize = parts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n - 1);
        for part in &parts {
            prop_assert!(part.len() <= n / 2);
            // Each part is itself a component whose neighborhood contains z.
            let mut sub = Membership::new(n);
            sub.mark(part);
            prop_assert!(is_component(&tree, part, &sub));
            prop_assert!(neighborhood(&tree, part, &sub).contains(&z));
        }
    }

    /// All generator families produce valid trees for arbitrary sizes.
    #[test]
    fn families_are_valid(seed in 0u64..200, n in 1usize..80) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for family in TreeFamily::ALL {
            let t = family.generate(n, &mut rng);
            prop_assert_eq!(t.len(), n);
        }
    }
}

//! The online [`DeltaEngine`] against the from-scratch oracle, under
//! random arrival/departure interleavings.
//!
//! Every script mixes valid deltas with deliberately invalid ones
//! (withdraw-before-admit, double-withdraw) and interleaved resolve
//! points; at each resolve the warm engine's λ must equal the reference
//! solve **bitwise** and the schedules must be identical. The vendored
//! proptest has no shrinking, so a divergence is minimized by the
//! shared [`common::ddmin`] over the delta script before it is
//! reported — the same idiom as the netsim drop-set shrinker.

mod common;

use common::ddmin;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treenet_core::{DeltaEngine, DeltaEngineError, SolverConfig};
use treenet_graph::VertexId;
use treenet_model::workload::TreeWorkload;
use treenet_model::{Demand, DemandId, ModelError, NetworkId, Problem, ProblemDelta};

const VERTICES: usize = 16;
const NETWORKS: u32 = 2;

/// One replayable script operation. Ops are self-contained relative to
/// the evolving engine state (a departure names the *n-th live* demand,
/// not a raw id), so any subsequence of a script is itself a valid
/// script — the property ddmin needs.
#[derive(Clone, Debug, PartialEq)]
enum Op {
    /// Admit a pair demand between two vertices with a network subset
    /// encoded as `1 = {T0}, 2 = {T1}, 3 = {T0, T1}`.
    Arrive {
        u: u32,
        v: u32,
        profit: f64,
        nets: u8,
    },
    /// Withdraw the `nth` live demand (mod the live count); skipped when
    /// nothing is live.
    Depart { nth: u32 },
    /// Withdraw a demand id that was never admitted — must error with
    /// `UnknownDemand` and change nothing.
    DepartUnknown,
    /// Withdraw the most recently departed demand again — must error
    /// with `AlreadyDeparted` and change nothing.
    DepartTwice,
    /// Warm-resolve and compare against the from-scratch reference.
    Resolve,
}

fn seed_problem(seed: u64) -> Problem {
    TreeWorkload::new(VERTICES, 10)
        .with_networks(NETWORKS as usize)
        .generate(&mut SmallRng::seed_from_u64(seed))
}

fn random_script(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xde17a);
    let mut script = Vec::with_capacity(len);
    for _ in 0..len {
        let op = match rng.gen_range(0..10u32) {
            0..=3 => {
                let u = rng.gen_range(0..VERTICES as u32);
                let mut v = rng.gen_range(0..VERTICES as u32);
                if v == u {
                    v = (v + 1) % VERTICES as u32;
                }
                Op::Arrive {
                    u,
                    v,
                    profit: 1.0 + rng.gen_range(0..12u32) as f64 / 3.0,
                    nets: rng.gen_range(1..=3u8),
                }
            }
            4..=6 => Op::Depart {
                nth: rng.gen_range(0..64u32),
            },
            7 => Op::DepartUnknown,
            8 => Op::DepartTwice,
            _ => Op::Resolve,
        };
        script.push(op);
    }
    // Always end on a resolve so every script checks the final state.
    script.push(Op::Resolve);
    script
}

fn access_of(nets: u8) -> Vec<NetworkId> {
    match nets {
        1 => vec![NetworkId(0)],
        2 => vec![NetworkId(1)],
        _ => vec![NetworkId(0), NetworkId(1)],
    }
}

/// Replays a script; returns a human-readable divergence (engine vs
/// reference mismatch, or an invariant violation) or `None` when the
/// engine tracked the oracle through the whole script.
fn diverges(seed: u64, script: &[Op]) -> Option<String> {
    let mut engine = match DeltaEngine::new(seed_problem(seed), &SolverConfig::default()) {
        Ok(engine) => engine,
        Err(e) => return Some(format!("engine construction failed: {e}")),
    };
    let mut last_departed: Option<DemandId> = None;
    for (i, op) in script.iter().enumerate() {
        match op {
            Op::Arrive { u, v, profit, nets } => {
                let delta = ProblemDelta::Arrival {
                    demand: Demand::pair(VertexId(*u), VertexId(*v), *profit),
                    access: access_of(*nets),
                };
                if let Err(e) = engine.apply(delta) {
                    return Some(format!("op {i}: valid arrival rejected: {e}"));
                }
            }
            Op::Depart { nth } => {
                let live: Vec<DemandId> = engine.problem().live_demands().collect();
                if live.is_empty() {
                    continue;
                }
                let target = live[*nth as usize % live.len()];
                if let Err(e) = engine.apply(ProblemDelta::Departure { demand: target }) {
                    return Some(format!("op {i}: valid departure rejected: {e}"));
                }
                last_departed = Some(target);
            }
            Op::DepartUnknown => {
                let bogus = DemandId(engine.problem().demand_count() as u32 + 7);
                match engine.apply(ProblemDelta::Departure { demand: bogus }) {
                    Err(DeltaEngineError::Model(ModelError::UnknownDemand { .. })) => {}
                    other => {
                        return Some(format!(
                            "op {i}: withdraw-before-admit produced {other:?} instead of \
                             UnknownDemand"
                        ))
                    }
                }
            }
            Op::DepartTwice => {
                let Some(target) = last_departed else {
                    continue;
                };
                match engine.apply(ProblemDelta::Departure { demand: target }) {
                    Err(DeltaEngineError::Model(ModelError::AlreadyDeparted { .. })) => {}
                    other => {
                        return Some(format!(
                            "op {i}: double withdraw produced {other:?} instead of \
                             AlreadyDeparted"
                        ))
                    }
                }
            }
            Op::Resolve => {
                let warm = match engine.resolve() {
                    Ok(out) => out,
                    Err(e) => return Some(format!("op {i}: warm resolve failed: {e}")),
                };
                let reference = match engine.resolve_reference() {
                    Ok(out) => out,
                    Err(e) => return Some(format!("op {i}: reference resolve failed: {e}")),
                };
                if warm.lambda.to_bits() != reference.lambda.to_bits() {
                    return Some(format!(
                        "op {i}: λ diverged: warm {} vs reference {}",
                        warm.lambda, reference.lambda
                    ));
                }
                if warm.solution.selected() != reference.solution.selected() {
                    return Some(format!(
                        "op {i}: schedules diverged: warm {:?} vs reference {:?}",
                        warm.solution.selected(),
                        reference.solution.selected()
                    ));
                }
                if warm.solution.verify(engine.problem()).is_err() {
                    return Some(format!("op {i}: warm solution infeasible"));
                }
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random delta interleavings: the warm engine must track the
    /// from-scratch oracle bit-for-bit at every resolve point. On
    /// divergence, the failing script is ddmin-minimized first so the
    /// report names the smallest reproducing delta sequence.
    #[test]
    fn delta_scripts_match_reference(seed in 0u64..200) {
        let script = random_script(seed, 28);
        if let Some(msg) = diverges(seed, &script) {
            let minimal = ddmin(&script, |s| diverges(seed, s).is_some());
            let final_msg = diverges(seed, &minimal).unwrap_or_default();
            prop_assert!(
                false,
                "seed {}: {}\nminimal script ({} of {} ops): {:?}\nminimal failure: {}",
                seed, msg, minimal.len(), script.len(), minimal, final_msg
            );
        }
    }

    /// Scripts that run against an initially *empty-ish* engine (single
    /// demand) grow the problem dominated by online arrivals.
    #[test]
    fn arrival_heavy_scripts_match_reference(seed in 1000u64..1100) {
        let mut script = Vec::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..16 {
            let u = rng.gen_range(0..VERTICES as u32);
            let v = (u + 1 + rng.gen_range(0..8u32)) % VERTICES as u32;
            script.push(Op::Arrive {
                u,
                v,
                profit: 1.0 + rng.gen_range(0..9u32) as f64,
                nets: rng.gen_range(1..=3u8),
            });
            if rng.gen_range(0..3u32) == 0 {
                script.push(Op::Resolve);
            }
        }
        script.push(Op::Resolve);
        if let Some(msg) = diverges(seed, &script) {
            let minimal = ddmin(&script, |s| diverges(seed, s).is_some());
            prop_assert!(false, "seed {}: {}\nminimal: {:?}", seed, msg, minimal);
        }
    }
}

#[test]
fn withdraw_before_admit_and_double_withdraw_error_cleanly() {
    let script = vec![
        Op::DepartUnknown,
        Op::Resolve,
        Op::Depart { nth: 0 },
        Op::DepartTwice,
        Op::Resolve,
        Op::DepartUnknown,
        Op::Resolve,
    ];
    assert_eq!(diverges(42, &script), None);
}

/// The shrinker contracts a long script to exactly the ops a synthetic
/// failure needs: here, "contains an unknown-withdraw after at least one
/// arrival" minimizes to two ops.
#[test]
fn ddmin_minimizes_to_the_relevant_ops() {
    let script = random_script(7, 40);
    let fails = |s: &[Op]| {
        let arrival = s.iter().position(|op| matches!(op, Op::Arrive { .. }));
        let unknown = s.iter().rposition(|op| matches!(op, Op::DepartUnknown));
        matches!((arrival, unknown), (Some(a), Some(u)) if a < u)
    };
    assert!(fails(&script), "the 40-op script contains both op kinds");
    let minimal = ddmin(&script, fails);
    assert_eq!(minimal.len(), 2, "minimal: {minimal:?}");
    assert!(matches!(minimal[0], Op::Arrive { .. }));
    assert!(matches!(minimal[1], Op::DepartUnknown));
}

/// ddmin on an always-failing predicate terminates at a single op.
#[test]
fn ddmin_handles_degenerate_predicates() {
    let script = random_script(9, 10);
    let minimal = ddmin(&script, |s| !s.is_empty());
    assert_eq!(minimal.len(), 1);
}

//! Helpers shared by the differential oracle harnesses.
//!
//! The vendored proptest has no shrinking, so failing inputs are
//! minimized by a hand-rolled ddmin before they are reported. The
//! shrinker is generic over the op type, which is what lets every
//! (family × rule) cell of the cross-rule harness reuse it: a script of
//! height-carrying ops shrinks the same way whether the failing cell ran
//! the unit, narrow, or capacitated engine.

#![allow(dead_code)]

/// Classic ddmin over a script: returns a subsequence that still fails
/// `fails`, 1-minimal in the sense that removing any single remaining op
/// makes the failure disappear. `fails(&input)` must hold on entry.
pub fn ddmin<T: Clone, F: Fn(&[T]) -> bool>(input: &[T], fails: F) -> Vec<T> {
    let mut current = input.to_vec();
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // Try the complement of [start, end).
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

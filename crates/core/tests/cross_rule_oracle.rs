//! Cross-rule differential oracle: every (family × rule ×
//! delta-interleaving) cell against the from-scratch references.
//!
//! Two layers, both parameterized over the full grid
//! `{tree, line} × {unit, narrow, capacitated}`:
//!
//! 1. **Static cells** — [`run_two_phase`] vs [`run_two_phase_reference`]
//!    on workloads shaped for the rule (unit heights, all-narrow
//!    bimodal, mixed bimodal), demanding byte-identical λ (`to_bits`),
//!    selections, stats, stack, and raise traces. The capacitated cell
//!    is the wide unit-rule run plus the narrow rule run over the
//!    height-class split, each pinned separately.
//! 2. **Dynamic cells** — random arrival/departure/resolve scripts
//!    through [`DeltaEngine`] (unit and capacitated modes, tree and
//!    line families) against [`DeltaEngine::reference_solve`], bitwise
//!    at every resolve point.
//!
//! Failing scripts shrink through the shared [`common::ddmin`]; the
//! shrinker is rule-agnostic because the ops carry their height
//! selector, so the same reduction loop minimizes a failure from any
//! cell.

mod common;

use common::ddmin;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treenet_core::{
    narrow_xi, run_two_phase, run_two_phase_reference, unit_xi, DeltaEngine, FrameworkConfig,
    RaiseRule, SolverConfig,
};
use treenet_decomp::{LayeredDecomposition, Strategy};
use treenet_graph::{Tree, VertexId};
use treenet_mis::MisBackend;
use treenet_model::workload::{HeightMode, LineWorkload, TreeWorkload};
use treenet_model::{
    Demand, DemandId, HeightClass, InstanceId, NetworkId, Problem, ProblemBuilder, ProblemDelta,
};

const VERTICES: usize = 16;
const HMIN: f64 = 0.25;

/// One axis of the grid: which network family the cell runs on.
#[derive(Copy, Clone, Debug, PartialEq)]
enum Family {
    Tree,
    Line,
}

/// The other axis: which raise rule (and engine mode) the cell pins.
/// `Narrow` is the capacitated machinery with every demand narrow, so
/// the wide side stays empty; `Capacitated` mixes both classes.
#[derive(Copy, Clone, Debug, PartialEq)]
enum RuleCell {
    Unit,
    Narrow,
    Capacitated,
}

const FAMILIES: [Family; 2] = [Family::Tree, Family::Line];
const RULES: [RuleCell; 3] = [RuleCell::Unit, RuleCell::Narrow, RuleCell::Capacitated];

fn height_mode(rule: RuleCell) -> HeightMode {
    match rule {
        RuleCell::Unit => HeightMode::Unit,
        RuleCell::Narrow => HeightMode::Bimodal {
            narrow_frac: 1.0,
            hmin: HMIN,
        },
        RuleCell::Capacitated => HeightMode::Bimodal {
            narrow_frac: 0.5,
            hmin: HMIN,
        },
    }
}

// ---------------------------------------------------------------------
// Static cells: run_two_phase vs run_two_phase_reference per rule.
// ---------------------------------------------------------------------

fn static_problem(family: Family, rule: RuleCell, seed: u64) -> Problem {
    let mut rng = SmallRng::seed_from_u64(seed);
    match family {
        Family::Tree => TreeWorkload::new(14, 12)
            .with_networks(2)
            .with_profit_ratio(6.0)
            .with_heights(height_mode(rule))
            .generate(&mut rng),
        Family::Line => LineWorkload::new(24, 10)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(1, 6)
            .with_heights(height_mode(rule))
            .generate(&mut rng),
    }
}

/// Runs one (rule, participant-set) pair through the incremental engine
/// and the preserved from-scratch reference, asserting byte identity of
/// every observable: solution, stats, stack, trace (δ by `to_bits`),
/// and λ.
fn compare_run(
    problem: &Problem,
    layers: &LayeredDecomposition,
    rule: RaiseRule,
    xi: f64,
    participants: &[InstanceId],
    backend: MisBackend,
    seed: u64,
) -> Result<(), TestCaseError> {
    let config = FrameworkConfig {
        seed,
        record_trace: true,
        mis_backend: backend,
        xi,
        ..FrameworkConfig::default()
    };
    let fast = run_two_phase(problem, layers, rule, &config, participants).unwrap();
    let oracle = run_two_phase_reference(problem, layers, rule, &config, participants).unwrap();
    prop_assert_eq!(&fast.solution, &oracle.solution);
    prop_assert_eq!(&fast.stats, &oracle.stats);
    prop_assert_eq!(&fast.stack, &oracle.stack);
    prop_assert_eq!(fast.lambda.to_bits(), oracle.lambda.to_bits());
    let fast_trace = fast.trace.as_deref().unwrap_or(&[]);
    let oracle_trace = oracle.trace.as_deref().unwrap_or(&[]);
    prop_assert_eq!(fast_trace.len(), oracle_trace.len());
    for (a, b) in fast_trace.iter().zip(oracle_trace.iter()) {
        prop_assert_eq!(a.instance, b.instance);
        prop_assert_eq!(a.at, b.at);
        prop_assert_eq!(
            a.delta.to_bits(),
            b.delta.to_bits(),
            "raise δ diverged at {:?}",
            a.at
        );
    }
    Ok(())
}

/// One static grid cell. The capacitated cell splits participants by
/// height class and pins the wide (unit-rule) and narrow (narrow-rule)
/// runs separately — exactly the two runs the combined solvers and the
/// capacitated `DeltaEngine` compose.
fn check_static_cell(
    family: Family,
    rule: RuleCell,
    seed: u64,
    backend: MisBackend,
) -> Result<(), TestCaseError> {
    let problem = static_problem(family, rule, seed);
    let layers = match family {
        Family::Tree => LayeredDecomposition::for_trees(&problem, Strategy::Ideal),
        Family::Line => LayeredDecomposition::for_lines(&problem),
    };
    let all: Vec<InstanceId> = problem.instances().map(|d| d.id).collect();
    match rule {
        RuleCell::Unit => compare_run(
            &problem,
            &layers,
            RaiseRule::Unit,
            unit_xi(layers.delta()),
            &all,
            backend,
            seed,
        ),
        RuleCell::Narrow => compare_run(
            &problem,
            &layers,
            RaiseRule::Narrow,
            narrow_xi(layers.delta(), HMIN),
            &all,
            backend,
            seed,
        ),
        RuleCell::Capacitated => {
            let (narrow, wide): (Vec<InstanceId>, Vec<InstanceId>) = {
                let mut n = Vec::new();
                let mut w = Vec::new();
                for inst in problem.instances() {
                    match problem.demand(inst.demand).height_class() {
                        HeightClass::Narrow => n.push(inst.id),
                        HeightClass::Wide => w.push(inst.id),
                    }
                }
                (n, w)
            };
            compare_run(
                &problem,
                &layers,
                RaiseRule::Unit,
                unit_xi(layers.delta()),
                &wide,
                backend,
                seed,
            )?;
            compare_run(
                &problem,
                &layers,
                RaiseRule::Narrow,
                narrow_xi(layers.delta(), HMIN),
                &narrow,
                backend,
                seed,
            )
        }
    }
}

// ---------------------------------------------------------------------
// Dynamic cells: DeltaEngine scripts vs reference_solve per cell.
// ---------------------------------------------------------------------

/// One replayable script op, shared by every cell. `hsel` indexes a
/// rule-dependent height palette so the *same* script replays in any
/// cell; departures name the n-th live demand so any subsequence is a
/// valid script — the property the shared ddmin needs.
#[derive(Clone, Debug, PartialEq)]
enum Op {
    Arrive {
        u: u32,
        v: u32,
        profit: f64,
        nets: u8,
        hsel: u8,
    },
    Depart {
        nth: u32,
    },
    Resolve,
}

/// Height palette per rule cell. Every value respects the engine floor
/// (`HMIN`) and the narrow cell stays ≤ 1/2 so its wide side is empty.
fn height_of(rule: RuleCell, hsel: u8) -> f64 {
    match rule {
        RuleCell::Unit => 1.0,
        RuleCell::Narrow => [0.25, 0.3, 0.4, 0.5][hsel as usize % 4],
        RuleCell::Capacitated => [1.0, 0.8, 0.6, 0.5, 0.3, 0.25][hsel as usize % 6],
    }
}

fn access_of(nets: u8) -> Vec<NetworkId> {
    match nets {
        1 => vec![NetworkId(0)],
        2 => vec![NetworkId(1)],
        _ => vec![NetworkId(0), NetworkId(1)],
    }
}

/// Seed problem for a dynamic cell. Trees come from the workload
/// generator; lines are hand-built on two line networks with a length-1
/// seed demand, pinning `Lmin = 1` so every scripted pair arrival is
/// admissible regardless of span.
fn dynamic_seed_problem(family: Family, rule: RuleCell, seed: u64) -> Problem {
    match family {
        Family::Tree => TreeWorkload::new(VERTICES, 8)
            .with_networks(2)
            .with_heights(height_mode(rule))
            .generate(&mut SmallRng::seed_from_u64(seed)),
        Family::Line => {
            let mut b = ProblemBuilder::new();
            let t0 = b.add_network(Tree::line(VERTICES)).unwrap();
            let t1 = b.add_network(Tree::line(VERTICES)).unwrap();
            let h = |sel| height_of(rule, sel);
            b.add_demand(
                Demand::pair(VertexId(0), VertexId(1), 2.0).with_height(h(3)),
                &[t0, t1],
            )
            .unwrap();
            b.add_demand(
                Demand::pair(VertexId(5), VertexId(9), 3.0).with_height(h(1)),
                &[t0],
            )
            .unwrap();
            b.add_demand(
                Demand::pair(VertexId(8), VertexId(14), 1.5).with_height(h(4)),
                &[t1],
            )
            .unwrap();
            b.build().unwrap()
        }
    }
}

fn engine_config(rule: RuleCell) -> SolverConfig {
    match rule {
        RuleCell::Unit => SolverConfig::default(),
        RuleCell::Narrow | RuleCell::Capacitated => SolverConfig::default().with_hmin(HMIN),
    }
}

fn random_script(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0552e);
    let mut script = Vec::with_capacity(len + 1);
    for _ in 0..len {
        let op = match rng.gen_range(0..10u32) {
            0..=4 => {
                let u = rng.gen_range(0..VERTICES as u32);
                let mut v = rng.gen_range(0..VERTICES as u32);
                if v == u {
                    v = (v + 1) % VERTICES as u32;
                }
                Op::Arrive {
                    u,
                    v,
                    profit: 1.0 + rng.gen_range(0..12u32) as f64 / 3.0,
                    nets: rng.gen_range(1..=3u8),
                    hsel: rng.gen_range(0..12u8),
                }
            }
            5..=7 => Op::Depart {
                nth: rng.gen_range(0..64u32),
            },
            _ => Op::Resolve,
        };
        script.push(op);
    }
    // Always end on a resolve so every script checks the final state.
    script.push(Op::Resolve);
    script
}

/// Replays a script in one (family, rule) cell; returns a divergence
/// message, or `None` when the warm engine tracked the reference
/// bitwise through every resolve point.
fn diverges(family: Family, rule: RuleCell, seed: u64, script: &[Op]) -> Option<String> {
    let problem = dynamic_seed_problem(family, rule, seed);
    let mut engine = match DeltaEngine::new(problem, &engine_config(rule)) {
        Ok(engine) => engine,
        Err(e) => return Some(format!("engine construction failed: {e}")),
    };
    for (i, op) in script.iter().enumerate() {
        match op {
            Op::Arrive {
                u,
                v,
                profit,
                nets,
                hsel,
            } => {
                let demand = Demand::pair(VertexId(*u), VertexId(*v), *profit)
                    .with_height(height_of(rule, *hsel));
                let delta = ProblemDelta::Arrival {
                    demand,
                    access: access_of(*nets),
                };
                if let Err(e) = engine.apply(delta) {
                    return Some(format!("op {i}: valid arrival rejected: {e}"));
                }
            }
            Op::Depart { nth } => {
                let live: Vec<DemandId> = engine.problem().live_demands().collect();
                if live.is_empty() {
                    continue;
                }
                let target = live[*nth as usize % live.len()];
                if let Err(e) = engine.apply(ProblemDelta::Departure { demand: target }) {
                    return Some(format!("op {i}: valid departure rejected: {e}"));
                }
            }
            Op::Resolve => {
                let warm = match engine.resolve() {
                    Ok(out) => out,
                    Err(e) => return Some(format!("op {i}: warm resolve failed: {e}")),
                };
                let reference = match engine.reference_solve() {
                    Ok(out) => out,
                    Err(e) => return Some(format!("op {i}: reference solve failed: {e}")),
                };
                if warm.lambda.to_bits() != reference.lambda.to_bits() {
                    return Some(format!(
                        "op {i}: λ diverged: warm {} vs reference {}",
                        warm.lambda, reference.lambda
                    ));
                }
                if warm.solution.selected() != reference.solution.selected() {
                    return Some(format!(
                        "op {i}: schedules diverged: warm {:?} vs reference {:?}",
                        warm.solution.selected(),
                        reference.solution.selected()
                    ));
                }
                if warm.solution.verify(engine.problem()).is_err() {
                    return Some(format!("op {i}: warm solution infeasible"));
                }
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Static grid: all six (family × rule) cells must be byte-identical
    /// to the from-scratch reference — λ, selections, stats, stack, and
    /// raise traces.
    #[test]
    fn static_cells_match_reference(seed in 0u64..200) {
        let backend = if seed % 2 == 0 {
            MisBackend::Luby
        } else {
            MisBackend::DeterministicGreedy
        };
        for family in FAMILIES {
            for rule in RULES {
                check_static_cell(family, rule, seed, backend)?;
            }
        }
    }

    /// Dynamic grid: one random delta script replayed in every cell;
    /// the warm engine must track `reference_solve` bitwise at each
    /// resolve. A divergence is ddmin-minimized inside the failing cell
    /// before it is reported.
    #[test]
    fn dynamic_cells_match_reference(seed in 0u64..120) {
        let script = random_script(seed, 24);
        for family in FAMILIES {
            for rule in RULES {
                if let Some(msg) = diverges(family, rule, seed, &script) {
                    let minimal =
                        ddmin(&script, |s| diverges(family, rule, seed, s).is_some());
                    let final_msg =
                        diverges(family, rule, seed, &minimal).unwrap_or_default();
                    prop_assert!(
                        false,
                        "cell ({:?}, {:?}) seed {}: {}\nminimal script ({} of {} ops): \
                         {:?}\nminimal failure: {}",
                        family, rule, seed, msg, minimal.len(), script.len(), minimal,
                        final_msg
                    );
                }
            }
        }
    }
}

/// The shared shrinker reduces a cross-rule failure no matter which cell
/// it came from: a synthetic "narrow arrival followed by a resolve"
/// predicate minimizes to exactly those two ops.
#[test]
fn ddmin_shrinks_across_rule_variants() {
    let script = random_script(11, 40);
    let fails = |s: &[Op]| {
        let narrow_arrival = s.iter().position(
            |op| matches!(op, Op::Arrive { hsel, .. } if height_of(RuleCell::Capacitated, *hsel) <= 0.5),
        );
        let resolve = s.iter().rposition(|op| matches!(op, Op::Resolve));
        matches!((narrow_arrival, resolve), (Some(a), Some(r)) if a < r)
    };
    assert!(fails(&script), "the 40-op script contains both op kinds");
    let minimal = ddmin(&script, fails);
    assert_eq!(minimal.len(), 2, "minimal: {minimal:?}");
    assert!(matches!(minimal[0], Op::Arrive { .. }));
    assert!(matches!(minimal[1], Op::Resolve));
}

/// Narrow-cell scripts keep the wide class empty: the engine must agree
/// with the reference even when every cached component has a neutral
/// wide slot.
#[test]
fn narrow_cell_keeps_wide_side_neutral() {
    let script = vec![
        Op::Arrive {
            u: 1,
            v: 6,
            profit: 4.0,
            nets: 3,
            hsel: 0,
        },
        Op::Resolve,
        Op::Depart { nth: 0 },
        Op::Resolve,
    ];
    for family in FAMILIES {
        assert_eq!(diverges(family, RuleCell::Narrow, 77, &script), None);
    }
}

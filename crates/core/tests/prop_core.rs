//! Property-based tests: the paper's guarantees hold on randomized
//! workloads for every solver.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_core::{
    check_interference, run_two_phase, solve_line_arbitrary, solve_line_unit,
    solve_sequential_tree, solve_tree_arbitrary, solve_tree_unit, FrameworkConfig, RaiseRule,
    SolverConfig,
};
use treenet_decomp::{LayeredDecomposition, Strategy};
use treenet_model::workload::{HeightMode, LineWorkload, TreeWorkload};
use treenet_model::InstanceId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 5.3 end-to-end: feasibility, λ ≥ 1-ε, certified ratio ≤
    /// (Δ+1)/(1-ε), and the interference property on the full trace.
    #[test]
    fn tree_unit_guarantees(seed in 0u64..3000, eps_i in 0usize..3) {
        let eps = [0.05, 0.1, 0.3][eps_i];
        let p = TreeWorkload::new(14, 12)
            .with_networks(2)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let cfg = SolverConfig::default().with_epsilon(eps).with_seed(seed).with_trace(true);
        let out = solve_tree_unit(&p, &cfg).unwrap();
        prop_assert!(out.solution.verify(&p).is_ok());
        prop_assert!(out.lambda >= 1.0 - eps - 1e-9);
        prop_assert!(out.delta <= 6);
        prop_assert!(out.certified_ratio(&p) <= (out.delta as f64 + 1.0) / (1.0 - eps) + 1e-6);
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        prop_assert_eq!(check_interference(&p, &layers, out.trace.as_ref().unwrap()), None);
    }

    /// Theorem 7.1/7.2 on line workloads with windows.
    #[test]
    fn line_guarantees(seed in 0u64..3000, slack in 0u32..4) {
        let p = LineWorkload::new(30, 14)
            .with_resources(2)
            .with_window_slack(slack)
            .with_len_range(1, 8)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let out = solve_line_unit(&p, &SolverConfig::default().with_seed(seed)).unwrap();
        prop_assert!(out.solution.verify(&p).is_ok());
        prop_assert!(out.delta <= 3);
        prop_assert!(out.certified_ratio(&p) <= 4.0 / 0.9 + 1e-6);
    }

    /// Theorem 6.3: the arbitrary-height combiner stays feasible and
    /// certified within (80+ε) on mixed-height workloads.
    #[test]
    fn tree_arbitrary_guarantees(seed in 0u64..3000) {
        let p = TreeWorkload::new(12, 14)
            .with_networks(2)
            .with_heights(HeightMode::Bimodal { narrow_frac: 0.5, hmin: 0.2 })
            .generate(&mut SmallRng::seed_from_u64(seed));
        let out = solve_tree_arbitrary(&p, &SolverConfig::default().with_seed(seed)).unwrap();
        prop_assert!(out.solution.verify(&p).is_ok());
        prop_assert!(out.certified_ratio(&p) <= 80.0 / 0.9 + 1e-6);
        // The combiner never loses to either side.
        let pw = out.wide.solution.profit(&p);
        let pn = out.narrow.solution.profit(&p);
        prop_assert!(out.profit(&p) + 1e-9 >= pw.max(pn));
    }

    /// Line arbitrary-height: feasible and certified within (23+ε).
    #[test]
    fn line_arbitrary_guarantees(seed in 0u64..3000) {
        let p = LineWorkload::new(26, 12)
            .with_resources(2)
            .with_len_range(1, 6)
            .with_heights(HeightMode::Uniform { hmin: 0.2 })
            .generate(&mut SmallRng::seed_from_u64(seed));
        let out = solve_line_arbitrary(&p, &SolverConfig::default().with_seed(seed)).unwrap();
        prop_assert!(out.solution.verify(&p).is_ok());
        prop_assert!(out.certified_ratio(&p) <= 23.0 / 0.9 + 1e-6);
    }

    /// Appendix A: sequential 3-approximation (2 for one network), λ = 1.
    #[test]
    fn sequential_guarantees(seed in 0u64..3000, r in 1usize..4) {
        let p = TreeWorkload::new(12, 10)
            .with_networks(r)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let out = solve_sequential_tree(&p);
        prop_assert!(out.solution.verify(&p).is_ok());
        let cap = if r == 1 { 2.0 } else { 3.0 };
        prop_assert!(out.certified_ratio(&p) <= cap + 1e-6);
        let ids: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
        prop_assert!(out.dual.min_satisfaction(&p, &ids) >= 1.0 - 1e-6);
    }

    /// The framework works under any decomposition strategy (Lemma 4.2 is
    /// strategy-generic); certified ratio respects the strategy's Δ.
    #[test]
    fn framework_strategy_generic(seed in 0u64..1000, strat in 0usize..3) {
        let strategy = Strategy::ALL[strat];
        let p = TreeWorkload::new(12, 10).generate(&mut SmallRng::seed_from_u64(seed));
        let layers = LayeredDecomposition::for_trees(&p, strategy);
        let all: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
        let xi = treenet_core::unit_xi(layers.delta());
        let cfg = FrameworkConfig { xi, seed, ..FrameworkConfig::default() };
        let out = run_two_phase(&p, &layers, RaiseRule::Unit, &cfg, &all).unwrap();
        prop_assert!(out.solution.verify(&p).is_ok());
        prop_assert!(
            out.dual.value() <= (layers.delta() as f64 + 1.0) * out.profit(&p) + 1e-6
        );
    }

    /// The narrow raise rule satisfies Lemma 6.1's accounting:
    /// val(α,β) ≤ (2Δ²+1)·p(S).
    #[test]
    fn narrow_rule_objective_cap(seed in 0u64..1000) {
        let p = TreeWorkload::new(12, 12)
            .with_heights(HeightMode::Uniform { hmin: 0.1 })
            .generate(&mut SmallRng::seed_from_u64(seed));
        let narrow_ids: Vec<InstanceId> = p
            .instances()
            .filter(|d| p.height_of(d.id) <= 0.5)
            .map(|d| d.id)
            .collect();
        prop_assume!(!narrow_ids.is_empty());
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        let hmin = narrow_ids.iter().map(|&d| p.height_of(d)).fold(0.5, f64::min);
        let xi = treenet_core::narrow_xi(layers.delta(), hmin);
        let cfg = FrameworkConfig { xi, seed, ..FrameworkConfig::default() };
        let out = run_two_phase(&p, &layers, RaiseRule::Narrow, &cfg, &narrow_ids).unwrap();
        prop_assert!(out.solution.verify(&p).is_ok());
        let cap = 2.0 * (layers.delta() as f64).powi(2) + 1.0;
        prop_assert!(out.dual.value() <= cap * out.profit(&p) + 1e-6);
        prop_assert!(out.lambda >= 0.9 - 1e-9);
    }
}

//! The incremental phase-1 engine against the from-scratch oracle.
//!
//! Two layers of evidence that the active-subgraph filtering changes
//! *nothing* about the computation:
//!
//! 1. A step replay that walks phase 1 itself — one epoch conflict graph
//!    plus an [`ActiveSubgraph`] on one side, `ConflictGraph::build` over
//!    the unsatisfied members on the other — asserting **byte-identical
//!    adjacency, keys, and MIS outcomes at every step**, plus equal raise
//!    sets.
//! 2. End-to-end: [`run_two_phase`] vs [`run_two_phase_reference`]
//!    (the preserved from-scratch formulation) must agree on solution,
//!    stats, stack, trace, and bit-identical λ.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_core::{
    mis_tag, narrow_xi, run_two_phase, run_two_phase_reference, stages_for, unit_xi, DualState,
    FrameworkConfig, RaiseRule, SATISFACTION_GUARD,
};
use treenet_decomp::{LayeredDecomposition, Strategy};
use treenet_mis::{CsrAdjacency, MisBackend, MisScratch};
use treenet_model::conflict::{ActiveSubgraph, ConflictGraph};
use treenet_model::workload::{HeightMode, LineWorkload, TreeWorkload};
use treenet_model::{InstanceId, Problem};

/// Replays phase 1 with both engines side by side, checking byte
/// identity of every step's MIS input and output. Parameterized over
/// the raise rule so the same walk pins the unit and narrow machinery.
fn replay_phase1(
    problem: &Problem,
    layers: &LayeredDecomposition,
    backend: MisBackend,
    seed: u64,
    epsilon: f64,
    rule: RaiseRule,
    xi: f64,
) -> Result<(), TestCaseError> {
    let stages = stages_for(epsilon, xi);
    let participants: Vec<InstanceId> = problem.instances().map(|d| d.id).collect();
    let num_groups = layers.num_groups() as u32;
    let mut groups: Vec<Vec<InstanceId>> = vec![Vec::new(); num_groups as usize + 1];
    for &d in &participants {
        groups[layers.group_of(d) as usize].push(d);
    }

    let mut dual = DualState::new(problem, rule.dual_form());
    dual.enable_cache(problem);
    let mut view = ActiveSubgraph::new();
    let mut scratch = MisScratch::default();
    let mut mis_inc: Vec<u32> = Vec::new();

    for k in 1..=num_groups {
        let members = &groups[k as usize];
        if members.is_empty() {
            continue;
        }
        let epoch_graph = ConflictGraph::build(problem, members);
        let epoch_keys: Vec<u64> = members
            .iter()
            .map(|&d| problem.instance(d).canonical_key())
            .collect();
        for j in 1..=stages {
            let threshold = 1.0 - xi.powi(j as i32);
            let mut step = 0u64;
            loop {
                // Oracle side: from-scratch filter and build.
                let unsatisfied: Vec<InstanceId> = members
                    .iter()
                    .copied()
                    .filter(|&d| dual.satisfaction(problem, d) < threshold - SATISFACTION_GUARD)
                    .collect();
                // Cached satisfactions must agree with recomputation
                // bitwise for every member, every step.
                for &d in members.iter() {
                    prop_assert_eq!(
                        dual.cached_satisfaction(problem, d).to_bits(),
                        dual.satisfaction(problem, d).to_bits(),
                        "epoch {} stage {} step {}: stale cache for {}",
                        k,
                        j,
                        step,
                        d
                    );
                }
                if unsatisfied.is_empty() {
                    break;
                }
                prop_assert!(step < 10_000, "runaway stage");
                let fresh = ConflictGraph::build(problem, &unsatisfied);
                let fresh_keys: Vec<u64> = fresh
                    .instances()
                    .iter()
                    .map(|&d| problem.instance(d).canonical_key())
                    .collect();

                // Incremental side: filter the epoch graph.
                let active: Vec<bool> = members
                    .iter()
                    .map(|&d| dual.cached_satisfaction(problem, d) < threshold - SATISFACTION_GUARD)
                    .collect();
                view.rebuild(&epoch_graph, &epoch_keys, &active);

                // Byte-identical adjacency and keys.
                prop_assert_eq!(view.active_len(), fresh.len());
                prop_assert_eq!(view.offsets(), fresh.offsets());
                prop_assert_eq!(view.adjacency(), fresh.adjacency());
                prop_assert_eq!(view.keys(), &fresh_keys[..]);

                // Identical MIS outcome and round count.
                let tag = mis_tag(k, j, step);
                let oracle_out = {
                    let adj: Vec<Vec<u32>> = (0..fresh.len())
                        .map(|v| fresh.neighbors(v).to_vec())
                        .collect();
                    backend.run(&adj, &fresh_keys, seed, tag)
                };
                let rounds = backend.run_with(
                    &CsrAdjacency::new(view.offsets(), view.adjacency()),
                    view.keys(),
                    seed,
                    tag,
                    &mut scratch,
                    &mut mis_inc,
                );
                prop_assert_eq!(&mis_inc, &oracle_out.mis);
                prop_assert_eq!(rounds, oracle_out.rounds);

                // Raise the MIS members (shared arithmetic), then refresh
                // the touched constraints through the inverted index.
                for &v in &mis_inc {
                    let d = members[view.base_vertex(v as usize)];
                    prop_assert_eq!(d, fresh.instance(v as usize));
                    let critical = layers.critical_of(d);
                    let _ = rule.raise(problem, &mut dual, d, critical);
                    let inst = problem.instance(d);
                    let network = inst.network;
                    for &sib in problem.instances_of(inst.demand) {
                        dual.refresh_cached_lhs(problem, sib);
                    }
                    for &e in critical {
                        for &user in problem.instances_using(network, e) {
                            dual.refresh_cached_lhs(problem, user);
                        }
                    }
                }
                step += 1;
            }
        }
    }
    // λ read from the cache equals the re-walked minimum, bitwise.
    prop_assert_eq!(
        dual.min_satisfaction_cached(problem, &participants)
            .to_bits(),
        dual.min_satisfaction(problem, &participants).to_bits()
    );
    Ok(())
}

/// End-to-end equality of the incremental engine and the preserved
/// from-scratch runner.
fn assert_end_to_end(
    problem: &Problem,
    layers: &LayeredDecomposition,
    backend: MisBackend,
    seed: u64,
    rule: RaiseRule,
    xi: f64,
) -> Result<(), TestCaseError> {
    let config = FrameworkConfig {
        seed,
        record_trace: true,
        mis_backend: backend,
        xi,
        ..FrameworkConfig::default()
    };
    let participants: Vec<InstanceId> = problem.instances().map(|d| d.id).collect();
    let fast = run_two_phase(problem, layers, rule, &config, &participants).unwrap();
    let oracle = run_two_phase_reference(problem, layers, rule, &config, &participants).unwrap();
    prop_assert_eq!(&fast.solution, &oracle.solution);
    prop_assert_eq!(&fast.stats, &oracle.stats);
    prop_assert_eq!(&fast.stack, &oracle.stack);
    prop_assert_eq!(&fast.trace, &oracle.trace);
    prop_assert_eq!(fast.lambda.to_bits(), oracle.lambda.to_bits());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tree problems, Luby backend: byte-identical per-step MIS inputs
    /// and outputs, fresh cache, and memoized λ.
    #[test]
    fn tree_steps_match_oracle(seed in 0u64..500) {
        let p = TreeWorkload::new(14, 12)
            .with_networks(2)
            .with_profit_ratio(6.0)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        replay_phase1(
            &p,
            &layers,
            MisBackend::Luby,
            seed,
            0.2,
            RaiseRule::Unit,
            unit_xi(layers.delta()),
        )?;
    }

    /// Line problems with windows, deterministic backend.
    #[test]
    fn line_steps_match_oracle(seed in 0u64..500) {
        let p = LineWorkload::new(24, 10)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(1, 6)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let layers = LayeredDecomposition::for_lines(&p);
        replay_phase1(
            &p,
            &layers,
            MisBackend::DeterministicGreedy,
            seed,
            0.25,
            RaiseRule::Unit,
            unit_xi(layers.delta()),
        )?;
    }

    /// Narrow-rule replay: the lazy dual-LHS cache must stay bitwise
    /// fresh under the capacitated LHS scaling at every step.
    #[test]
    fn narrow_steps_match_oracle(seed in 0u64..500) {
        let p = TreeWorkload::new(14, 12)
            .with_networks(2)
            .with_profit_ratio(6.0)
            .with_heights(HeightMode::Bimodal { narrow_frac: 1.0, hmin: 0.25 })
            .generate(&mut SmallRng::seed_from_u64(seed));
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        replay_phase1(
            &p,
            &layers,
            MisBackend::Luby,
            seed,
            0.2,
            RaiseRule::Narrow,
            narrow_xi(layers.delta(), 0.25),
        )?;
    }

    /// End-to-end: the shipped `run_two_phase` equals the preserved
    /// from-scratch reference on trees...
    #[test]
    fn tree_end_to_end_matches_reference(seed in 0u64..500) {
        let p = TreeWorkload::new(16, 14)
            .with_networks(2)
            .with_profit_ratio(8.0)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        assert_end_to_end(
            &p,
            &layers,
            MisBackend::Luby,
            seed,
            RaiseRule::Unit,
            unit_xi(layers.delta()),
        )?;
    }

    /// ... and on lines, under both MIS backends.
    #[test]
    fn line_end_to_end_matches_reference(seed in 0u64..500) {
        let p = LineWorkload::new(30, 12)
            .with_resources(2)
            .with_window_slack(3)
            .with_len_range(2, 8)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let layers = LayeredDecomposition::for_lines(&p);
        let backend = if seed % 2 == 0 {
            MisBackend::Luby
        } else {
            MisBackend::DeterministicGreedy
        };
        assert_end_to_end(
            &p,
            &layers,
            backend,
            seed,
            RaiseRule::Unit,
            unit_xi(layers.delta()),
        )?;
    }

    /// Narrow-rule end-to-end on lines: `run_two_phase` equals the
    /// reference under the capacitated dual form and narrow ξ.
    #[test]
    fn narrow_line_end_to_end_matches_reference(seed in 0u64..500) {
        let p = LineWorkload::new(30, 12)
            .with_resources(2)
            .with_window_slack(3)
            .with_len_range(2, 8)
            .with_heights(HeightMode::Bimodal { narrow_frac: 1.0, hmin: 0.25 })
            .generate(&mut SmallRng::seed_from_u64(seed));
        let layers = LayeredDecomposition::for_lines(&p);
        let backend = if seed % 2 == 0 {
            MisBackend::Luby
        } else {
            MisBackend::DeterministicGreedy
        };
        assert_end_to_end(
            &p,
            &layers,
            backend,
            seed,
            RaiseRule::Narrow,
            narrow_xi(layers.delta(), 0.25),
        )?;
    }
}

//! The online scheduling engine: warm-started re-solve under
//! arrival/departure deltas.
//!
//! # How the warm start works
//!
//! The two-phase framework factorizes over **conflict components**:
//! running [`run_two_phase`] with the participant set restricted to one
//! component of the conflict graph produces bit-identical duals, λ
//! contribution and selections to the same component inside a global run.
//! The mechanics behind that guarantee:
//!
//! * MIS joins are neighbor-local, and the per-stage step counter resets,
//!   so `mis_tag(epoch, stage, step)` values line up across runs — a
//!   component that finishes a stage early simply contributes no active
//!   members while another component keeps stepping;
//! * every dual variable is touched by exactly one component (`α` by the
//!   demand's own component, `β(e)` by the instances sharing edge `e`,
//!   which by definition conflict);
//! * the phase-2 stack pops preserve per-component relative order, and
//!   [`Solution::new`] sorts, so the union of per-component selections is
//!   the global selection;
//! * λ is a `min`-fold seeded at `1.0` over non-negative satisfactions,
//!   so min-of-component-λs is bitwise equal to the global fold.
//!
//! Moreover the factorization tolerates **conflict-closed supersets**: a
//! merged blob of several true components still solves bit-identically
//! (each true component inside it is independent). That means components
//! may only ever *grow* — an arrival unions, a departure never splits —
//! which is exactly what a union-find maintains cheaply.
//!
//! [`DeltaEngine`] exploits this: it keeps a union-find over demands, a
//! per-component cache of `(λ, selected)`, and a dirty set. A delta
//! invalidates only the touched component; [`DeltaEngine::resolve`]
//! re-runs the two-phase engine over dirty components only and reuses
//! every clean component's cached result. The from-scratch oracle
//! [`DeltaEngine::resolve_reference`] re-solves everything with
//! [`run_two_phase_reference`] and must agree bit-for-bit after **any**
//! delta sequence — the invariant the proptest oracle and the `treenet
//! serve` `check` op enforce.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::framework::{
    run_two_phase, run_two_phase_reference, FrameworkConfig, FrameworkError, Outcome, RaiseRule,
};
use crate::solvers::{unit_xi, SolverConfig};
use treenet_decomp::{tree_instance_layer, LayeredDecomposition, Strategy, TreeDecomposition};
use treenet_graph::UnionFind;
use treenet_model::{DeltaEffect, InstanceId, ModelError, Problem, ProblemDelta, Solution};

/// The a-priori critical-set bound of the ideal tree decomposition
/// (Lemma 4.3): `Δ ≤ 6` for every tree, hence a fixed stage factor
/// `ξ = 14/15` that cannot drift as arrivals change the measured `Δ`.
pub const IDEAL_DELTA_BOUND: usize = 6;

/// Error raised by [`DeltaEngine`] construction or delta admission.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaEngineError {
    /// The underlying model rejected the delta (see [`ModelError`]).
    Model(ModelError),
    /// The engine runs the unit-height rule with a fixed `ξ`; a non-unit
    /// height demand cannot be admitted online.
    NonUnitHeight {
        /// The offending height.
        height: f64,
    },
}

impl fmt::Display for DeltaEngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaEngineError::Model(e) => write!(f, "{e}"),
            DeltaEngineError::NonUnitHeight { height } => write!(
                f,
                "online admission requires unit height, got {height} \
                 (the fixed-ξ unit rule is the only one served)"
            ),
        }
    }
}

impl std::error::Error for DeltaEngineError {}

impl From<ModelError> for DeltaEngineError {
    fn from(e: ModelError) -> Self {
        DeltaEngineError::Model(e)
    }
}

/// The cached result of one conflict component's two-phase run.
#[derive(Clone, Debug)]
struct ComponentSolve {
    /// The component's λ: min satisfaction over its participants.
    lambda: f64,
    /// The component's selected instances (sorted, as extracted).
    selected: Vec<InstanceId>,
}

/// Cumulative counters of an engine's lifetime, for the serve `stats` op
/// and the throughput bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaEngineStats {
    /// Deltas successfully applied.
    pub deltas_applied: u64,
    /// [`DeltaEngine::resolve`] calls.
    pub resolves: u64,
    /// Components re-solved across all resolves (the warm-start win is
    /// this staying near `resolves`, not near `resolves × components`).
    pub components_resolved: u64,
    /// Participant instances across all component re-solves.
    pub instances_resolved: u64,
}

/// What a [`DeltaEngine::resolve`] call produced: the globally assembled
/// schedule plus how much work the warm start actually did.
#[derive(Clone, Debug)]
pub struct ResolveOutcome {
    /// Measured slackness λ over all live instances (min of component λs;
    /// `1.0` when nothing is live).
    pub lambda: f64,
    /// The assembled feasible solution (union of component selections).
    pub solution: Solution,
    /// Components re-solved by this call (dirty ones only).
    pub components_resolved: usize,
    /// Participant instances of the re-solved components.
    pub instances_resolved: usize,
    /// Live instances overall — the size a cold solve would have paid.
    pub live_instances: usize,
}

/// The online scheduling engine (the module-level docs above lay out
/// the component-factorization argument it rests on).
///
/// Workflow: [`DeltaEngine::new`] over an initial (possibly empty)
/// problem, then interleave [`DeltaEngine::apply`] and
/// [`DeltaEngine::resolve`] freely; [`DeltaEngine::resolve_reference`]
/// re-solves from scratch and must match bit-for-bit at any point.
#[derive(Clone, Debug)]
pub struct DeltaEngine {
    problem: Problem,
    layers: LayeredDecomposition,
    /// The per-network ideal tree decompositions, retained so arriving
    /// instances get layered against the *same* decomposition as the
    /// initial batch (networks are fixed at construction).
    decompositions: Vec<TreeDecomposition>,
    depths: Vec<u32>,
    config: FrameworkConfig,
    /// Conflict components over demands: merged on arrival, never split.
    comps: UnionFind,
    /// Component root → member demands (live and departed).
    comp_demands: BTreeMap<u32, Vec<u32>>,
    /// Component root → cached solve of its live participants.
    cache: BTreeMap<u32, ComponentSolve>,
    /// Demand keys touched since the last resolve (mapped to their
    /// *current* roots lazily, since later unions can re-root them).
    dirty: BTreeSet<u32>,
    stats: DeltaEngineStats,
}

impl DeltaEngine {
    /// Builds the engine over an initial problem.
    ///
    /// The decomposition strategy is always [`Strategy::Ideal`] and the
    /// stage factor is the a-priori `ξ = unit_xi(6) = 14/15`, independent
    /// of the measured `Δ` — a fixed ξ is what keeps warm and cold solves
    /// on the same stage schedule while the instance set changes. Of
    /// `config`, the engine honors `epsilon`, `seed` and `mis_backend`.
    ///
    /// # Errors
    ///
    /// [`DeltaEngineError::NonUnitHeight`] if any initial demand has
    /// non-unit height.
    pub fn new(problem: Problem, config: &SolverConfig) -> Result<DeltaEngine, DeltaEngineError> {
        if let Some(a) = problem
            .demands()
            .find(|&a| !problem.demand(a).is_unit_height())
        {
            return Err(DeltaEngineError::NonUnitHeight {
                height: problem.demand(a).height,
            });
        }
        let decompositions: Vec<TreeDecomposition> = problem
            .networks()
            .map(|t| Strategy::Ideal.build(problem.network(t)))
            .collect();
        let depths: Vec<u32> = decompositions
            .iter()
            .map(TreeDecomposition::depth)
            .collect();
        let layers = LayeredDecomposition::from_decompositions(&problem, &decompositions);
        let framework_config = FrameworkConfig {
            epsilon: config.epsilon,
            xi: unit_xi(IDEAL_DELTA_BOUND),
            seed: config.seed,
            max_steps_per_stage: Some(1_000_000),
            record_trace: false,
            mis_backend: config.mis_backend,
        };

        let mut comps = UnionFind::new(problem.demand_count());
        // Demands conflict iff some pair of their instances shares an
        // edge; instances_using lists each edge's users in id order, so
        // unioning consecutive users links exactly the conflicting
        // demands, in O(Σ path lengths).
        for t in problem.networks() {
            for e in 0..problem.network(t).edge_count() {
                let users = problem.instances_using(t, treenet_graph::EdgeId(e as u32));
                for pair in users.windows(2) {
                    let a = problem.instance(pair[0]).demand.0;
                    let b = problem.instance(pair[1]).demand.0;
                    comps.union(a, b);
                }
            }
        }
        let mut comp_demands: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut dirty = BTreeSet::new();
        for a in problem.demands() {
            comp_demands.entry(comps.find(a.0)).or_default().push(a.0);
            dirty.insert(a.0);
        }

        Ok(DeltaEngine {
            problem,
            layers,
            decompositions,
            depths,
            config: framework_config,
            comps,
            comp_demands,
            cache: BTreeMap::new(),
            dirty,
            stats: DeltaEngineStats::default(),
        })
    }

    /// The current problem (append-only; departed demands tombstoned).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The framework configuration every solve (warm or reference) uses.
    pub fn framework_config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DeltaEngineStats {
        self.stats
    }

    /// Number of conflict components currently tracked (over-merged
    /// components from departures count as one).
    pub fn component_count(&self) -> usize {
        self.comp_demands.len()
    }

    /// Applies one delta, invalidating exactly the touched component.
    ///
    /// An arrival unions the new demand with every demand it conflicts
    /// with (via the inverted edge index) and layers its new instances
    /// incrementally; a departure only tombstones and marks dirty.
    /// The re-solve itself is deferred to [`DeltaEngine::resolve`].
    ///
    /// # Errors
    ///
    /// [`DeltaEngineError::NonUnitHeight`] for non-unit arrivals, else
    /// whatever the model layer rejects ([`ModelError`]). A rejected
    /// delta leaves the engine unchanged.
    pub fn apply(&mut self, delta: ProblemDelta) -> Result<DeltaEffect, DeltaEngineError> {
        if let ProblemDelta::Arrival { demand, .. } = &delta {
            if !demand.is_unit_height() {
                return Err(DeltaEngineError::NonUnitHeight {
                    height: demand.height,
                });
            }
        }
        let arrival = matches!(delta, ProblemDelta::Arrival { .. });
        let effect = self.problem.apply_delta(delta)?;
        self.stats.deltas_applied += 1;
        if arrival {
            let key = self.comps.make_set();
            debug_assert_eq!(key as usize, effect.demand.index());
            self.comp_demands.insert(key, vec![key]);

            // Layer the new instances against the retained decompositions
            // — identical to what a from-scratch layering would assign.
            for &d in &effect.new_instances {
                let inst = self.problem.instance(d);
                let q = inst.network.index();
                let (g, pi) = tree_instance_layer(
                    &self.decompositions[q],
                    self.problem.rooted(inst.network),
                    self.depths[q],
                    &inst.path,
                );
                self.layers.push_instance(g, pi);
            }

            // Union with every demand sharing an edge. Each counterparty's
            // root is recorded *before* its union so the final root is
            // always among `old_roots`.
            let mut old_roots: BTreeSet<u32> = BTreeSet::new();
            old_roots.insert(self.comps.find(key));
            for &d in &effect.new_instances {
                let network = self.problem.instance(d).network;
                let edges: Vec<treenet_graph::EdgeId> =
                    self.problem.instance(d).path.edges().to_vec();
                for e in edges {
                    for i in 0..self.problem.instances_using(network, e).len() {
                        let other = self.problem.instances_using(network, e)[i];
                        let other = self.problem.instance(other).demand.0;
                        old_roots.insert(self.comps.find(other));
                        self.comps.union(key, other);
                    }
                }
            }
            let root = self.comps.find(key);
            let mut members = Vec::new();
            for r in old_roots {
                self.cache.remove(&r);
                if let Some(mut list) = self.comp_demands.remove(&r) {
                    members.append(&mut list);
                }
            }
            members.sort_unstable();
            self.comp_demands.insert(root, members);
        } else {
            let root = self.comps.find(effect.demand.0);
            self.cache.remove(&root);
        }
        self.dirty.insert(effect.demand.0);
        Ok(effect)
    }

    /// Warm re-solve: re-runs the two-phase engine over the dirty
    /// components' live instances only, keeping every clean component's
    /// cached `(λ, selected)`, then assembles the global schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameworkError`] from a component run.
    pub fn resolve(&mut self) -> Result<ResolveOutcome, FrameworkError> {
        let dirty: Vec<u32> = std::mem::take(&mut self.dirty).into_iter().collect();
        let mut roots: BTreeSet<u32> = BTreeSet::new();
        for d in dirty {
            roots.insert(self.comps.find(d));
        }
        let mut components_resolved = 0usize;
        let mut instances_resolved = 0usize;
        for root in roots {
            let members = self.comp_demands.get(&root).cloned().unwrap_or_default();
            let mut participants: Vec<InstanceId> = Vec::new();
            for a in members {
                let a = treenet_model::DemandId(a);
                if !self.problem.is_departed(a) {
                    participants.extend_from_slice(self.problem.instances_of(a));
                }
            }
            participants.sort_unstable();
            if participants.is_empty() {
                self.cache.remove(&root);
                continue;
            }
            let outcome = run_two_phase(
                &self.problem,
                &self.layers,
                RaiseRule::Unit,
                &self.config,
                &participants,
            )?;
            components_resolved += 1;
            instances_resolved += participants.len();
            self.cache.insert(
                root,
                ComponentSolve {
                    lambda: outcome.lambda,
                    selected: outcome.solution.selected().to_vec(),
                },
            );
        }
        self.stats.resolves += 1;
        self.stats.components_resolved += components_resolved as u64;
        self.stats.instances_resolved += instances_resolved as u64;
        Ok(ResolveOutcome {
            lambda: self.lambda(),
            solution: self.solution(),
            components_resolved,
            instances_resolved,
            live_instances: self.problem.live_instances().len(),
        })
    }

    /// The current global λ: min of the cached component λs, `1.0` when
    /// nothing is cached. Bitwise equal to the reference λ after a
    /// [`DeltaEngine::resolve`] (min-folds of the same non-negative
    /// satisfaction multiset associate freely).
    pub fn lambda(&self) -> f64 {
        self.cache.values().map(|c| c.lambda).fold(1.0f64, f64::min)
    }

    /// The current global schedule: the sorted union of the cached
    /// component selections.
    pub fn solution(&self) -> Solution {
        Solution::new(
            self.cache
                .values()
                .flat_map(|c| c.selected.iter().copied())
                .collect(),
        )
    }

    /// The from-scratch oracle: a reference (non-incremental) two-phase
    /// run over **all** live instances with the engine's own layering and
    /// configuration. After any delta sequence and a
    /// [`DeltaEngine::resolve`], its `lambda` and `solution` must equal
    /// the warm results bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameworkError`].
    pub fn resolve_reference(&self) -> Result<Outcome, FrameworkError> {
        let live = self.problem.live_instances();
        run_two_phase_reference(
            &self.problem,
            &self.layers,
            RaiseRule::Unit,
            &self.config,
            &live,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_graph::VertexId;
    use treenet_model::workload::TreeWorkload;
    use treenet_model::{Demand, DemandId, NetworkId, ProblemBuilder};

    fn seed_problem(seed: u64) -> Problem {
        TreeWorkload::new(16, 18)
            .with_networks(2)
            .generate(&mut SmallRng::seed_from_u64(seed))
    }

    fn engine(seed: u64) -> DeltaEngine {
        DeltaEngine::new(seed_problem(seed), &SolverConfig::default()).unwrap()
    }

    fn assert_matches_reference(engine: &DeltaEngine) {
        let reference = engine.resolve_reference().unwrap();
        assert_eq!(engine.lambda().to_bits(), reference.lambda.to_bits());
        assert_eq!(engine.solution().selected(), reference.solution.selected());
    }

    #[test]
    fn initial_resolve_matches_reference() {
        for seed in 0..4u64 {
            let mut e = engine(seed);
            let out = e.resolve().unwrap();
            assert!(out.components_resolved >= 1);
            assert!(out.solution.verify(e.problem()).is_ok());
            assert_matches_reference(&e);
        }
    }

    #[test]
    fn arrivals_and_departures_stay_bit_identical() {
        let mut e = engine(7);
        e.resolve().unwrap();
        let eff = e
            .apply(ProblemDelta::Arrival {
                demand: Demand::pair(VertexId(2), VertexId(11), 3.5),
                access: vec![NetworkId(0), NetworkId(1)],
            })
            .unwrap();
        e.resolve().unwrap();
        assert_matches_reference(&e);
        e.apply(ProblemDelta::Departure { demand: eff.demand })
            .unwrap();
        e.apply(ProblemDelta::Departure {
            demand: DemandId(3),
        })
        .unwrap();
        e.resolve().unwrap();
        assert_matches_reference(&e);
    }

    #[test]
    fn warm_resolve_touches_only_dirty_components() {
        // Two disjoint pods: perturbing pod 1 must not re-solve pod 0.
        let mut b = ProblemBuilder::new();
        let t0 = b.add_network(treenet_graph::Tree::line(8)).unwrap();
        let t1 = b.add_network(treenet_graph::Tree::line(8)).unwrap();
        for s in [0u32, 3] {
            b.add_demand(Demand::pair(VertexId(s), VertexId(s + 3), 2.0), &[t0])
                .unwrap();
            b.add_demand(Demand::pair(VertexId(s), VertexId(s + 3), 1.0), &[t1])
                .unwrap();
        }
        let mut e = DeltaEngine::new(b.build().unwrap(), &SolverConfig::default()).unwrap();
        let first = e.resolve().unwrap();
        assert_eq!(first.components_resolved, e.component_count());
        e.apply(ProblemDelta::Arrival {
            demand: Demand::pair(VertexId(1), VertexId(6), 9.0),
            access: vec![t1],
        })
        .unwrap();
        let warm = e.resolve().unwrap();
        // Only the t1 component is dirty.
        assert_eq!(warm.components_resolved, 1);
        assert!(warm.instances_resolved < warm.live_instances);
        assert_matches_reference(&e);
    }

    #[test]
    fn resolve_without_dirt_is_free() {
        let mut e = engine(3);
        e.resolve().unwrap();
        let again = e.resolve().unwrap();
        assert_eq!(again.components_resolved, 0);
        assert_eq!(again.instances_resolved, 0);
        assert_matches_reference(&e);
        assert_eq!(e.stats().resolves, 2);
    }

    #[test]
    fn departing_everything_empties_the_schedule() {
        let mut e = engine(5);
        e.resolve().unwrap();
        let demands: Vec<DemandId> = e.problem().demands().collect();
        for a in demands {
            e.apply(ProblemDelta::Departure { demand: a }).unwrap();
        }
        let out = e.resolve().unwrap();
        assert_eq!(out.lambda, 1.0);
        assert!(out.solution.is_empty());
        assert_eq!(out.live_instances, 0);
        assert_matches_reference(&e);
    }

    #[test]
    fn non_unit_heights_are_rejected() {
        let mut e = engine(1);
        let err = e.apply(ProblemDelta::Arrival {
            demand: Demand::pair(VertexId(0), VertexId(1), 1.0).with_height(0.5),
            access: vec![NetworkId(0)],
        });
        assert!(matches!(err, Err(DeltaEngineError::NonUnitHeight { .. })));
        let mut b = ProblemBuilder::new();
        let t = b.add_network(treenet_graph::Tree::line(4)).unwrap();
        b.add_demand(
            Demand::pair(VertexId(0), VertexId(2), 1.0).with_height(0.25),
            &[t],
        )
        .unwrap();
        assert!(matches!(
            DeltaEngine::new(b.build().unwrap(), &SolverConfig::default()),
            Err(DeltaEngineError::NonUnitHeight { .. })
        ));
    }

    #[test]
    fn model_rejections_pass_through_and_leave_engine_usable() {
        let mut e = engine(2);
        e.resolve().unwrap();
        let err = e.apply(ProblemDelta::Departure {
            demand: DemandId(9999),
        });
        assert!(matches!(
            err,
            Err(DeltaEngineError::Model(ModelError::UnknownDemand { .. }))
        ));
        assert!(err.unwrap_err().to_string().contains("a9999"));
        e.resolve().unwrap();
        assert_matches_reference(&e);
    }
}

//! The online scheduling engine: warm-started re-solve under
//! arrival/departure deltas.
//!
//! # How the warm start works
//!
//! The two-phase framework factorizes over **conflict components**:
//! running [`run_two_phase`] with the participant set restricted to one
//! component of the conflict graph produces bit-identical duals, λ
//! contribution and selections to the same component inside a global run.
//! The mechanics behind that guarantee:
//!
//! * MIS joins are neighbor-local, and the per-stage step counter resets,
//!   so `mis_tag(epoch, stage, step)` values line up across runs — a
//!   component that finishes a stage early simply contributes no active
//!   members while another component keeps stepping;
//! * every dual variable is touched by exactly one component (`α` by the
//!   demand's own component, `β(e)` by the instances sharing edge `e`,
//!   which by definition conflict);
//! * the phase-2 stack pops preserve per-component relative order, and
//!   [`Solution::new`] sorts, so the union of per-component selections is
//!   the global selection;
//! * λ is a `min`-fold seeded at `1.0` over non-negative satisfactions,
//!   so min-of-component-λs is bitwise equal to the global fold.
//!
//! Moreover the factorization tolerates **conflict-closed supersets**: a
//! merged blob of several true components still solves bit-identically
//! (each true component inside it is independent). That means components
//! may only ever *grow* — an arrival unions, a departure never splits —
//! which is exactly what a union-find maintains cheaply.
//!
//! # Rules and families
//!
//! The engine serves all four theorem variants of the paper:
//!
//! * **Family.** Networks are fixed at construction. When every network
//!   is a canonical line the engine layers arrivals by *length class*
//!   against the public minimum length [`DeltaEngine::lmin`]
//!   (`Δ ≤ `[`LINE_DELTA_BOUND`]); otherwise it retains the per-network
//!   ideal tree decompositions and layers arrivals against them
//!   (`Δ ≤ `[`IDEAL_DELTA_BOUND`]). Both bounds are a-priori, so the
//!   stage factor ξ cannot drift as arrivals change the measured `Δ`.
//! * **Rule.** Without an a-priori `hmin` ([`SolverConfig::hmin`]) the
//!   engine runs the unit rule and rejects non-unit heights. With
//!   `hmin` fixed it runs the capacitated wide/narrow split of
//!   Section 6: each component caches a *pair* of solves — the unit
//!   rule over its wide instances (`h > 1/2`) and the narrow rule
//!   (`ξ = c/(c+hmin)`) over its narrow ones — and the global schedule
//!   is the per-network combination ([`combine_by_network`]) of the two
//!   assembled class solutions. The factorization argument applies per
//!   class: two same-class instances that conflict share an edge, so a
//!   union-find component over *all* demands is a conflict-closed
//!   superset within each class, and the per-class unions/min-folds are
//!   bitwise equal to the global class runs.
//!
//! [`DeltaEngine`] exploits this: it keeps a union-find over demands, a
//! per-component cache of `(λ, selected)` per class, and a dirty set. A
//! delta invalidates only the touched component; [`DeltaEngine::resolve`]
//! re-runs the two-phase engine over dirty components only and reuses
//! every clean component's cached result. The from-scratch oracle
//! [`DeltaEngine::reference_solve`] re-solves everything with
//! [`run_two_phase_reference`] and must agree bit-for-bit after **any**
//! delta sequence — the invariant the proptest oracles and the `treenet
//! serve` `check` op enforce.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::framework::{
    run_two_phase, run_two_phase_reference, FrameworkConfig, FrameworkError, Outcome, RaiseRule,
};
use crate::solvers::{combine_by_network, narrow_xi, unit_xi, SolverConfig};
use treenet_decomp::{
    line_instance_layer, line_lmin, tree_instance_layer, LayeredDecomposition, Strategy,
    TreeDecomposition,
};
use treenet_graph::UnionFind;
use treenet_model::{
    DeltaEffect, Demand, DemandKind, HeightClass, InstanceId, ModelError, Problem, ProblemDelta,
    Solution, EPS,
};

/// The a-priori critical-set bound of the ideal tree decomposition
/// (Lemma 4.3): `Δ ≤ 6` for every tree, hence a fixed stage factor
/// `ξ = 14/15` that cannot drift as arrivals change the measured `Δ`.
pub const IDEAL_DELTA_BOUND: usize = 6;

/// The a-priori critical-set bound of the line length-class decomposition
/// (Section 7): every instance has at most 3 critical slots
/// (start/mid/end), hence a fixed unit-rule stage factor `ξ = 8/9`.
pub const LINE_DELTA_BOUND: usize = 3;

/// Which layered decomposition the engine runs on (fixed at
/// construction from the networks' shapes).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum EngineFamily {
    /// General tree networks: per-network ideal decompositions,
    /// `Δ ≤ `[`IDEAL_DELTA_BOUND`].
    Tree,
    /// Every network is a canonical line: length-class layering keyed on
    /// the public [`DeltaEngine::lmin`], `Δ ≤ `[`LINE_DELTA_BOUND`].
    Line,
}

/// Error raised by [`DeltaEngine`] construction or delta admission.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaEngineError {
    /// The underlying model rejected the delta (see [`ModelError`]).
    Model(ModelError),
    /// Without an a-priori `hmin` the engine runs the unit-height rule
    /// with a fixed `ξ`; a non-unit height demand cannot be admitted
    /// online (configure [`SolverConfig::with_hmin`] to serve arbitrary
    /// heights).
    NonUnitHeight {
        /// The offending height.
        height: f64,
    },
    /// A narrow demand's height undercuts the engine's a-priori `hmin`
    /// (Section 6's fixed-floor assumption).
    HeightBelowFloor {
        /// The offending height.
        height: f64,
        /// The a-priori floor fixed at construction.
        hmin: f64,
    },
    /// The configured a-priori `hmin` is not a height (must lie in
    /// `(0, 1]`).
    BadHmin {
        /// The offending value.
        hmin: f64,
    },
    /// A line-family arrival is shorter than the public `Lmin` the
    /// length-class layering is keyed on — admitting it would break the
    /// layered property for every already-layered instance.
    InstanceTooShort {
        /// The arrival's instance length (timeslots).
        len: usize,
        /// The engine's public minimum length.
        lmin: f64,
    },
}

impl fmt::Display for DeltaEngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaEngineError::Model(e) => write!(f, "{e}"),
            DeltaEngineError::NonUnitHeight { height } => write!(
                f,
                "online admission requires unit height, got {height} \
                 (fix an a-priori hmin to serve arbitrary heights)"
            ),
            DeltaEngineError::HeightBelowFloor { height, hmin } => write!(
                f,
                "height {height} undercuts the a-priori hmin = {hmin} \
                 fixed at engine construction"
            ),
            DeltaEngineError::BadHmin { hmin } => {
                write!(f, "a-priori hmin must lie in (0, 1], got {hmin}")
            }
            DeltaEngineError::InstanceTooShort { len, lmin } => write!(
                f,
                "instance length {len} undercuts the public Lmin = {lmin} \
                 the line length-class layering is keyed on"
            ),
        }
    }
}

impl std::error::Error for DeltaEngineError {}

impl From<ModelError> for DeltaEngineError {
    fn from(e: ModelError) -> Self {
        DeltaEngineError::Model(e)
    }
}

/// The family-specific layering state.
#[derive(Clone, Debug)]
enum FamilyState {
    /// The per-network ideal tree decompositions, retained so arriving
    /// instances get layered against the *same* decomposition as the
    /// initial batch (networks are fixed at construction).
    Tree {
        decompositions: Vec<TreeDecomposition>,
        depths: Vec<u32>,
    },
    /// Line networks: the public minimum length the length classes are
    /// keyed on, fixed at construction.
    Line { lmin: f64 },
}

/// The raising mode, decided at construction from [`SolverConfig::hmin`].
#[derive(Clone, Debug)]
enum Mode {
    /// Unit rule only; non-unit heights are rejected.
    Unit,
    /// Wide/narrow split with an a-priori height floor.
    Capacitated {
        /// The raw configured floor (admission checks use this).
        hmin: f64,
        /// The narrow-rule configuration (`ξ = narrow_xi(Δbound, hmin)`).
        narrow_config: FrameworkConfig,
    },
}

/// The cached result of one conflict component's two-phase run.
#[derive(Clone, Debug)]
struct ComponentSolve {
    /// The component's λ: min satisfaction over its participants.
    lambda: f64,
    /// The component's selected instances (sorted, as extracted).
    selected: Vec<InstanceId>,
}

impl ComponentSolve {
    /// The solve of an empty participant set: λ = 1.0 (the min-fold
    /// seed), nothing selected — bitwise what [`run_two_phase`] returns
    /// for no participants, without paying for the run.
    fn neutral() -> ComponentSolve {
        ComponentSolve {
            lambda: 1.0,
            selected: Vec::new(),
        }
    }
}

/// One component's cache line: the wide-class and narrow-class solves.
/// In unit mode the whole component solves as the wide class and the
/// narrow slot stays neutral.
#[derive(Clone, Debug)]
struct CacheEntry {
    wide: ComponentSolve,
    narrow: ComponentSolve,
}

/// Cumulative counters of an engine's lifetime, for the serve `stats` op
/// and the throughput bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaEngineStats {
    /// Deltas successfully applied.
    pub deltas_applied: u64,
    /// [`DeltaEngine::resolve`] calls.
    pub resolves: u64,
    /// Components re-solved across all resolves (the warm-start win is
    /// this staying near `resolves`, not near `resolves × components`).
    pub components_resolved: u64,
    /// Participant instances across all component re-solves.
    pub instances_resolved: u64,
}

/// What a [`DeltaEngine::resolve`] call produced: the globally assembled
/// schedule plus how much work the warm start actually did.
#[derive(Clone, Debug)]
pub struct ResolveOutcome {
    /// Measured slackness λ over all live instances (min of component λs;
    /// `1.0` when nothing is live).
    pub lambda: f64,
    /// The assembled feasible solution (union of component selections;
    /// in capacitated mode, the per-network wide/narrow combination).
    pub solution: Solution,
    /// Components re-solved by this call (dirty ones only).
    pub components_resolved: usize,
    /// Participant instances of the re-solved components.
    pub instances_resolved: usize,
    /// Live instances overall — the size a cold solve would have paid.
    pub live_instances: usize,
}

/// The from-scratch oracle's result, mode-independent: what
/// [`DeltaEngine::reference_solve`] computed cold. After any delta
/// sequence and a [`DeltaEngine::resolve`], the warm
/// [`DeltaEngine::lambda`]/[`DeltaEngine::solution`] must equal these
/// bit-for-bit.
#[derive(Clone, Debug)]
pub struct ReferenceSolve {
    /// The reference λ (in capacitated mode, the min of the wide and
    /// narrow run λs).
    pub lambda: f64,
    /// The reference schedule (in capacitated mode, the per-network
    /// combination of the wide and narrow solutions).
    pub solution: Solution,
}

/// The online scheduling engine (the module-level docs above lay out
/// the component-factorization argument it rests on).
///
/// Workflow: [`DeltaEngine::new`] over an initial (possibly empty)
/// problem, then interleave [`DeltaEngine::apply`] and
/// [`DeltaEngine::resolve`] freely; [`DeltaEngine::reference_solve`]
/// re-solves from scratch and must match bit-for-bit at any point.
#[derive(Clone, Debug)]
pub struct DeltaEngine {
    problem: Problem,
    layers: LayeredDecomposition,
    family: FamilyState,
    mode: Mode,
    /// The unit/wide-class framework configuration (the narrow-class one
    /// lives in [`Mode::Capacitated`]).
    config: FrameworkConfig,
    /// Conflict components over demands: merged on arrival, never split.
    comps: UnionFind,
    /// Component root → member demands (live and departed).
    comp_demands: BTreeMap<u32, Vec<u32>>,
    /// Component root → cached per-class solves of its live participants.
    cache: BTreeMap<u32, CacheEntry>,
    /// Demand keys touched since the last resolve (mapped to their
    /// *current* roots lazily, since later unions can re-root them).
    dirty: BTreeSet<u32>,
    stats: DeltaEngineStats,
}

impl DeltaEngine {
    /// Builds the engine over an initial problem.
    ///
    /// The family is detected from the networks (all canonical lines →
    /// length-class layering, else [`Strategy::Ideal`] tree
    /// decompositions) and the stage factors use the a-priori `Δ` bounds
    /// ([`IDEAL_DELTA_BOUND`]/[`LINE_DELTA_BOUND`]), independent of the
    /// measured `Δ` — fixed factors are what keep warm and cold solves
    /// on the same stage schedule while the instance set changes. Of
    /// `config`, the engine honors `epsilon`, `seed`, `mis_backend` and
    /// `hmin` (whose presence selects the capacitated wide/narrow mode).
    ///
    /// # Errors
    ///
    /// [`DeltaEngineError::NonUnitHeight`] if no `hmin` is fixed and
    /// some initial demand has non-unit height;
    /// [`DeltaEngineError::BadHmin`]/[`DeltaEngineError::HeightBelowFloor`]
    /// for a bad or violated a-priori floor.
    pub fn new(problem: Problem, config: &SolverConfig) -> Result<DeltaEngine, DeltaEngineError> {
        let line_family = problem.network_count() > 0
            && problem
                .networks()
                .all(|t| problem.network(t).is_canonical_line());
        let delta_bound = if line_family {
            LINE_DELTA_BOUND
        } else {
            IDEAL_DELTA_BOUND
        };
        let base = |xi: f64| FrameworkConfig {
            epsilon: config.epsilon,
            xi,
            seed: config.seed,
            max_steps_per_stage: Some(1_000_000),
            record_trace: false,
            mis_backend: config.mis_backend,
        };
        let framework_config = base(unit_xi(delta_bound));
        let mode = match config.hmin {
            None => {
                if let Some(a) = problem
                    .demands()
                    .find(|&a| !problem.demand(a).is_unit_height())
                {
                    return Err(DeltaEngineError::NonUnitHeight {
                        height: problem.demand(a).height,
                    });
                }
                Mode::Unit
            }
            Some(hmin) => {
                if !(hmin > 0.0 && hmin <= 1.0) {
                    return Err(DeltaEngineError::BadHmin { hmin });
                }
                if let Some(a) = problem.demands().find(|&a| {
                    let d = problem.demand(a);
                    d.height_class() == HeightClass::Narrow && d.height < hmin - EPS
                }) {
                    return Err(DeltaEngineError::HeightBelowFloor {
                        height: problem.demand(a).height,
                        hmin,
                    });
                }
                Mode::Capacitated {
                    hmin,
                    narrow_config: base(narrow_xi(delta_bound, hmin.min(0.5))),
                }
            }
        };
        let (family, layers) = if line_family {
            (
                FamilyState::Line {
                    lmin: line_lmin(&problem),
                },
                LayeredDecomposition::for_lines(&problem),
            )
        } else {
            let decompositions: Vec<TreeDecomposition> = problem
                .networks()
                .map(|t| Strategy::Ideal.build(problem.network(t)))
                .collect();
            let depths: Vec<u32> = decompositions
                .iter()
                .map(TreeDecomposition::depth)
                .collect();
            let layers = LayeredDecomposition::from_decompositions(&problem, &decompositions);
            (
                FamilyState::Tree {
                    decompositions,
                    depths,
                },
                layers,
            )
        };

        let mut comps = UnionFind::new(problem.demand_count());
        // Demands conflict iff some pair of their instances shares an
        // edge; instances_using lists each edge's users in id order, so
        // unioning consecutive users links exactly the conflicting
        // demands, in O(Σ path lengths).
        for t in problem.networks() {
            for e in 0..problem.network(t).edge_count() {
                let users = problem.instances_using(t, treenet_graph::EdgeId(e as u32));
                for pair in users.windows(2) {
                    let a = problem.instance(pair[0]).demand.0;
                    let b = problem.instance(pair[1]).demand.0;
                    comps.union(a, b);
                }
            }
        }
        let mut comp_demands: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut dirty = BTreeSet::new();
        for a in problem.demands() {
            comp_demands.entry(comps.find(a.0)).or_default().push(a.0);
            dirty.insert(a.0);
        }

        Ok(DeltaEngine {
            problem,
            layers,
            family,
            mode,
            config: framework_config,
            comps,
            comp_demands,
            cache: BTreeMap::new(),
            dirty,
            stats: DeltaEngineStats::default(),
        })
    }

    /// The current problem (append-only; departed demands tombstoned).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The unit/wide-class framework configuration every solve (warm or
    /// reference) uses.
    pub fn framework_config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// The narrow-class framework configuration (`None` in unit mode).
    pub fn narrow_framework_config(&self) -> Option<&FrameworkConfig> {
        match &self.mode {
            Mode::Unit => None,
            Mode::Capacitated { narrow_config, .. } => Some(narrow_config),
        }
    }

    /// Which layered decomposition family the engine runs on.
    pub fn family(&self) -> EngineFamily {
        match self.family {
            FamilyState::Tree { .. } => EngineFamily::Tree,
            FamilyState::Line { .. } => EngineFamily::Line,
        }
    }

    /// The public minimum instance length `Lmin` the line length-class
    /// layering is keyed on (`None` for the tree family). Fixed at
    /// construction; arrivals shorter than this are rejected.
    pub fn lmin(&self) -> Option<f64> {
        match self.family {
            FamilyState::Tree { .. } => None,
            FamilyState::Line { lmin } => Some(lmin),
        }
    }

    /// The a-priori narrow height floor (`None` in unit mode).
    pub fn hmin(&self) -> Option<f64> {
        match self.mode {
            Mode::Unit => None,
            Mode::Capacitated { hmin, .. } => Some(hmin),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DeltaEngineStats {
        self.stats
    }

    /// Number of conflict components currently tracked (over-merged
    /// components from departures count as one).
    pub fn component_count(&self) -> usize {
        self.comp_demands.len()
    }

    /// Admission check for an arriving demand: rule mode (heights) and
    /// line family (public `Lmin`) constraints, before any state changes.
    fn admit(&self, demand: &Demand) -> Result<(), DeltaEngineError> {
        match &self.mode {
            Mode::Unit => {
                if !demand.is_unit_height() {
                    return Err(DeltaEngineError::NonUnitHeight {
                        height: demand.height,
                    });
                }
            }
            Mode::Capacitated { hmin, .. } => {
                if demand.height_class() == HeightClass::Narrow && demand.height < hmin - EPS {
                    return Err(DeltaEngineError::HeightBelowFloor {
                        height: demand.height,
                        hmin: *hmin,
                    });
                }
            }
        }
        if let FamilyState::Line { lmin } = self.family {
            // The instance length is known before materialization: a pair
            // on a canonical line spans |u - v| slots, a window instance
            // always spans its processing time. Degenerate (zero-length)
            // demands fall through to the model's own rejection.
            let len = match demand.kind {
                DemandKind::Pair { u, v } => u.0.abs_diff(v.0) as usize,
                DemandKind::Window { processing, .. } => processing as usize,
            };
            if len >= 1 && (len as f64) < lmin {
                return Err(DeltaEngineError::InstanceTooShort { len, lmin });
            }
        }
        Ok(())
    }

    /// Applies one delta, invalidating exactly the touched component.
    ///
    /// An arrival unions the new demand with every demand it conflicts
    /// with (via the inverted edge index) and layers its new instances
    /// incrementally (tree family: against the retained decompositions;
    /// line family: against the public `Lmin`); a departure only
    /// tombstones and marks dirty. The re-solve itself is deferred to
    /// [`DeltaEngine::resolve`].
    ///
    /// # Errors
    ///
    /// [`DeltaEngineError::NonUnitHeight`] for non-unit arrivals in unit
    /// mode, [`DeltaEngineError::HeightBelowFloor`] for arrivals under
    /// the capacitated floor, [`DeltaEngineError::InstanceTooShort`] for
    /// line arrivals under `Lmin`, else whatever the model layer rejects
    /// ([`ModelError`]). A rejected delta leaves the engine unchanged.
    pub fn apply(&mut self, delta: ProblemDelta) -> Result<DeltaEffect, DeltaEngineError> {
        if let ProblemDelta::Arrival { demand, .. } = &delta {
            self.admit(demand)?;
        }
        let arrival = matches!(delta, ProblemDelta::Arrival { .. });
        let effect = self.problem.apply_delta(delta)?;
        self.stats.deltas_applied += 1;
        if arrival {
            let key = self.comps.make_set();
            debug_assert_eq!(key as usize, effect.demand.index());
            self.comp_demands.insert(key, vec![key]);

            // Layer the new instances exactly as a from-scratch layering
            // of the grown problem would.
            for &d in &effect.new_instances {
                let inst = self.problem.instance(d);
                let (g, pi) = match &self.family {
                    FamilyState::Tree {
                        decompositions,
                        depths,
                    } => {
                        let q = inst.network.index();
                        tree_instance_layer(
                            &decompositions[q],
                            self.problem.rooted(inst.network),
                            depths[q],
                            &inst.path,
                        )
                    }
                    FamilyState::Line { lmin } => line_instance_layer(*lmin, inst.path.edges()),
                };
                self.layers.push_instance(g, pi);
            }

            // Union with every demand sharing an edge. Each counterparty's
            // root is recorded *before* its union so the final root is
            // always among `old_roots`.
            let mut old_roots: BTreeSet<u32> = BTreeSet::new();
            old_roots.insert(self.comps.find(key));
            for &d in &effect.new_instances {
                let network = self.problem.instance(d).network;
                let edges: Vec<treenet_graph::EdgeId> =
                    self.problem.instance(d).path.edges().to_vec();
                for e in edges {
                    for i in 0..self.problem.instances_using(network, e).len() {
                        let other = self.problem.instances_using(network, e)[i];
                        let other = self.problem.instance(other).demand.0;
                        old_roots.insert(self.comps.find(other));
                        self.comps.union(key, other);
                    }
                }
            }
            let root = self.comps.find(key);
            let mut members = Vec::new();
            for r in old_roots {
                self.cache.remove(&r);
                if let Some(mut list) = self.comp_demands.remove(&r) {
                    members.append(&mut list);
                }
            }
            members.sort_unstable();
            self.comp_demands.insert(root, members);
        } else {
            let root = self.comps.find(effect.demand.0);
            self.cache.remove(&root);
        }
        self.dirty.insert(effect.demand.0);
        Ok(effect)
    }

    /// Warm re-solve: re-runs the two-phase engine over the dirty
    /// components' live instances only (per height class in capacitated
    /// mode), keeping every clean component's cached `(λ, selected)`,
    /// then assembles the global schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameworkError`] from a component run.
    pub fn resolve(&mut self) -> Result<ResolveOutcome, FrameworkError> {
        let dirty: Vec<u32> = std::mem::take(&mut self.dirty).into_iter().collect();
        let mut roots: BTreeSet<u32> = BTreeSet::new();
        for d in dirty {
            roots.insert(self.comps.find(d));
        }
        let mut components_resolved = 0usize;
        let mut instances_resolved = 0usize;
        for root in roots {
            let members = self.comp_demands.get(&root).cloned().unwrap_or_default();
            let mut participants: Vec<InstanceId> = Vec::new();
            for a in members {
                let a = treenet_model::DemandId(a);
                if !self.problem.is_departed(a) {
                    participants.extend_from_slice(self.problem.instances_of(a));
                }
            }
            participants.sort_unstable();
            if participants.is_empty() {
                self.cache.remove(&root);
                continue;
            }
            let entry = match &self.mode {
                Mode::Unit => CacheEntry {
                    wide: self.component_solve(RaiseRule::Unit, &self.config, &participants)?,
                    narrow: ComponentSolve::neutral(),
                },
                Mode::Capacitated { narrow_config, .. } => {
                    let (wide_ids, narrow_ids) = split_by_class(&self.problem, &participants);
                    CacheEntry {
                        wide: self.component_solve(RaiseRule::Unit, &self.config, &wide_ids)?,
                        narrow: self.component_solve(
                            RaiseRule::Narrow,
                            narrow_config,
                            &narrow_ids,
                        )?,
                    }
                }
            };
            components_resolved += 1;
            instances_resolved += participants.len();
            self.cache.insert(root, entry);
        }
        self.stats.resolves += 1;
        self.stats.components_resolved += components_resolved as u64;
        self.stats.instances_resolved += instances_resolved as u64;
        Ok(ResolveOutcome {
            lambda: self.lambda(),
            solution: self.solution(),
            components_resolved,
            instances_resolved,
            live_instances: self.problem.live_instances().len(),
        })
    }

    /// One class run over one component's participants (neutral when the
    /// class is empty — bitwise what the empty run would return).
    fn component_solve(
        &self,
        rule: RaiseRule,
        config: &FrameworkConfig,
        participants: &[InstanceId],
    ) -> Result<ComponentSolve, FrameworkError> {
        if participants.is_empty() {
            return Ok(ComponentSolve::neutral());
        }
        let outcome = run_two_phase(&self.problem, &self.layers, rule, config, participants)?;
        Ok(ComponentSolve {
            lambda: outcome.lambda,
            selected: outcome.solution.selected().to_vec(),
        })
    }

    /// The current global λ: min over the cached per-class component λs,
    /// `1.0` when nothing is cached. Bitwise equal to the reference λ
    /// after a [`DeltaEngine::resolve`] (min-folds of the same
    /// non-negative satisfaction multiset associate freely).
    pub fn lambda(&self) -> f64 {
        self.cache
            .values()
            .map(|c| c.wide.lambda.min(c.narrow.lambda))
            .fold(1.0f64, f64::min)
    }

    /// The current global schedule: the sorted union of the cached
    /// component selections; in capacitated mode, the per-network
    /// combination of the assembled wide and narrow class solutions
    /// (bitwise the reference combination, since both class unions are).
    pub fn solution(&self) -> Solution {
        let class_union = |pick: fn(&CacheEntry) -> &ComponentSolve| -> Solution {
            Solution::new(
                self.cache
                    .values()
                    .flat_map(|c| pick(c).selected.iter().copied())
                    .collect(),
            )
        };
        match self.mode {
            Mode::Unit => class_union(|c| &c.wide),
            Mode::Capacitated { .. } => {
                let wide = class_union(|c| &c.wide);
                let narrow = class_union(|c| &c.narrow);
                combine_by_network(&self.problem, &wide, &narrow)
            }
        }
    }

    /// The mode-independent from-scratch oracle: reference
    /// (non-incremental) two-phase runs over **all** live instances with
    /// the engine's own layering and configurations — one unit run in
    /// unit mode, a wide and a narrow run combined per network in
    /// capacitated mode. After any delta sequence and a
    /// [`DeltaEngine::resolve`], its `lambda` and `solution` must equal
    /// the warm results bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameworkError`].
    pub fn reference_solve(&self) -> Result<ReferenceSolve, FrameworkError> {
        let live = self.problem.live_instances();
        match &self.mode {
            Mode::Unit => {
                let out = run_two_phase_reference(
                    &self.problem,
                    &self.layers,
                    RaiseRule::Unit,
                    &self.config,
                    &live,
                )?;
                Ok(ReferenceSolve {
                    lambda: out.lambda,
                    solution: out.solution,
                })
            }
            Mode::Capacitated { narrow_config, .. } => {
                let (wide_ids, narrow_ids) = split_by_class(&self.problem, &live);
                let wide = run_two_phase_reference(
                    &self.problem,
                    &self.layers,
                    RaiseRule::Unit,
                    &self.config,
                    &wide_ids,
                )?;
                let narrow = run_two_phase_reference(
                    &self.problem,
                    &self.layers,
                    RaiseRule::Narrow,
                    narrow_config,
                    &narrow_ids,
                )?;
                Ok(ReferenceSolve {
                    lambda: wide.lambda.min(narrow.lambda),
                    solution: combine_by_network(&self.problem, &wide.solution, &narrow.solution),
                })
            }
        }
    }

    /// The unit-mode from-scratch oracle, exposing the full framework
    /// [`Outcome`] (duals, stats, stack). Prefer
    /// [`DeltaEngine::reference_solve`], which also serves capacitated
    /// mode.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::BadParameters`] in capacitated mode (a single
    /// `Outcome` cannot represent the wide/narrow pair), else propagates
    /// [`FrameworkError`] from the run.
    pub fn resolve_reference(&self) -> Result<Outcome, FrameworkError> {
        if let Mode::Capacitated { .. } = self.mode {
            return Err(FrameworkError::BadParameters {
                reason: "capacitated mode has no single reference Outcome; \
                         use reference_solve"
                    .into(),
            });
        }
        let live = self.problem.live_instances();
        run_two_phase_reference(
            &self.problem,
            &self.layers,
            RaiseRule::Unit,
            &self.config,
            &live,
        )
    }
}

/// Splits participant instances into (wide, narrow) by their demand's
/// height class, preserving order.
fn split_by_class(
    problem: &Problem,
    participants: &[InstanceId],
) -> (Vec<InstanceId>, Vec<InstanceId>) {
    let mut wide = Vec::new();
    let mut narrow = Vec::new();
    for &d in participants {
        match problem.demand(problem.instance(d).demand).height_class() {
            HeightClass::Wide => wide.push(d),
            HeightClass::Narrow => narrow.push(d),
        }
    }
    (wide, narrow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_graph::VertexId;
    use treenet_model::workload::{HeightMode, LineWorkload, TreeWorkload};
    use treenet_model::{Demand, DemandId, NetworkId, ProblemBuilder};

    fn seed_problem(seed: u64) -> Problem {
        TreeWorkload::new(16, 18)
            .with_networks(2)
            .generate(&mut SmallRng::seed_from_u64(seed))
    }

    fn engine(seed: u64) -> DeltaEngine {
        DeltaEngine::new(seed_problem(seed), &SolverConfig::default()).unwrap()
    }

    fn assert_matches_reference(engine: &DeltaEngine) {
        let reference = engine.reference_solve().unwrap();
        assert_eq!(engine.lambda().to_bits(), reference.lambda.to_bits());
        assert_eq!(engine.solution().selected(), reference.solution.selected());
    }

    #[test]
    fn initial_resolve_matches_reference() {
        for seed in 0..4u64 {
            let mut e = engine(seed);
            assert_eq!(e.family(), EngineFamily::Tree);
            assert_eq!(e.lmin(), None);
            assert_eq!(e.hmin(), None);
            let out = e.resolve().unwrap();
            assert!(out.components_resolved >= 1);
            assert!(out.solution.verify(e.problem()).is_ok());
            assert_matches_reference(&e);
        }
    }

    #[test]
    fn arrivals_and_departures_stay_bit_identical() {
        let mut e = engine(7);
        e.resolve().unwrap();
        let eff = e
            .apply(ProblemDelta::Arrival {
                demand: Demand::pair(VertexId(2), VertexId(11), 3.5),
                access: vec![NetworkId(0), NetworkId(1)],
            })
            .unwrap();
        e.resolve().unwrap();
        assert_matches_reference(&e);
        e.apply(ProblemDelta::Departure { demand: eff.demand })
            .unwrap();
        e.apply(ProblemDelta::Departure {
            demand: DemandId(3),
        })
        .unwrap();
        e.resolve().unwrap();
        assert_matches_reference(&e);
    }

    #[test]
    fn warm_resolve_touches_only_dirty_components() {
        // Two disjoint pods: perturbing pod 1 must not re-solve pod 0.
        let mut b = ProblemBuilder::new();
        let t0 = b.add_network(treenet_graph::Tree::line(8)).unwrap();
        let t1 = b.add_network(treenet_graph::Tree::line(8)).unwrap();
        for s in [0u32, 3] {
            b.add_demand(Demand::pair(VertexId(s), VertexId(s + 3), 2.0), &[t0])
                .unwrap();
            b.add_demand(Demand::pair(VertexId(s), VertexId(s + 3), 1.0), &[t1])
                .unwrap();
        }
        let mut e = DeltaEngine::new(b.build().unwrap(), &SolverConfig::default()).unwrap();
        // All networks are canonical lines → length-class layering.
        assert_eq!(e.family(), EngineFamily::Line);
        let first = e.resolve().unwrap();
        assert_eq!(first.components_resolved, e.component_count());
        e.apply(ProblemDelta::Arrival {
            demand: Demand::pair(VertexId(1), VertexId(6), 9.0),
            access: vec![t1],
        })
        .unwrap();
        let warm = e.resolve().unwrap();
        // Only the t1 component is dirty.
        assert_eq!(warm.components_resolved, 1);
        assert!(warm.instances_resolved < warm.live_instances);
        assert_matches_reference(&e);
    }

    #[test]
    fn resolve_without_dirt_is_free() {
        let mut e = engine(3);
        e.resolve().unwrap();
        let again = e.resolve().unwrap();
        assert_eq!(again.components_resolved, 0);
        assert_eq!(again.instances_resolved, 0);
        assert_matches_reference(&e);
        assert_eq!(e.stats().resolves, 2);
    }

    #[test]
    fn departing_everything_empties_the_schedule() {
        let mut e = engine(5);
        e.resolve().unwrap();
        let demands: Vec<DemandId> = e.problem().demands().collect();
        for a in demands {
            e.apply(ProblemDelta::Departure { demand: a }).unwrap();
        }
        let out = e.resolve().unwrap();
        assert_eq!(out.lambda, 1.0);
        assert!(out.solution.is_empty());
        assert_eq!(out.live_instances, 0);
        assert_matches_reference(&e);
    }

    #[test]
    fn non_unit_heights_are_rejected() {
        let mut e = engine(1);
        let err = e.apply(ProblemDelta::Arrival {
            demand: Demand::pair(VertexId(0), VertexId(1), 1.0).with_height(0.5),
            access: vec![NetworkId(0)],
        });
        assert!(matches!(err, Err(DeltaEngineError::NonUnitHeight { .. })));
        let mut b = ProblemBuilder::new();
        let t = b.add_network(treenet_graph::Tree::line(4)).unwrap();
        b.add_demand(
            Demand::pair(VertexId(0), VertexId(2), 1.0).with_height(0.25),
            &[t],
        )
        .unwrap();
        assert!(matches!(
            DeltaEngine::new(b.build().unwrap(), &SolverConfig::default()),
            Err(DeltaEngineError::NonUnitHeight { .. })
        ));
    }

    #[test]
    fn model_rejections_pass_through_and_leave_engine_usable() {
        let mut e = engine(2);
        e.resolve().unwrap();
        let err = e.apply(ProblemDelta::Departure {
            demand: DemandId(9999),
        });
        assert!(matches!(
            err,
            Err(DeltaEngineError::Model(ModelError::UnknownDemand { .. }))
        ));
        assert!(err.unwrap_err().to_string().contains("a9999"));
        e.resolve().unwrap();
        assert_matches_reference(&e);
    }

    fn capacitated_problem(seed: u64) -> Problem {
        TreeWorkload::new(16, 18)
            .with_networks(2)
            .with_heights(HeightMode::Bimodal {
                narrow_frac: 0.5,
                hmin: 0.2,
            })
            .generate(&mut SmallRng::seed_from_u64(seed))
    }

    #[test]
    fn capacitated_mode_matches_reference() {
        for seed in 0..4u64 {
            let p = capacitated_problem(seed);
            let mut e = DeltaEngine::new(p, &SolverConfig::default().with_hmin(0.2)).unwrap();
            assert_eq!(e.hmin(), Some(0.2));
            let out = e.resolve().unwrap();
            assert!(out.solution.verify(e.problem()).is_ok());
            assert_matches_reference(&e);
            // Warm deltas: a narrow arrival, a wide arrival, a departure.
            e.apply(ProblemDelta::Arrival {
                demand: Demand::pair(VertexId(1), VertexId(9), 2.5).with_height(0.3),
                access: vec![NetworkId(0)],
            })
            .unwrap();
            e.apply(ProblemDelta::Arrival {
                demand: Demand::pair(VertexId(4), VertexId(12), 1.5).with_height(0.8),
                access: vec![NetworkId(1)],
            })
            .unwrap();
            e.apply(ProblemDelta::Departure {
                demand: DemandId(seed as u32 % 18),
            })
            .unwrap();
            e.resolve().unwrap();
            assert_matches_reference(&e);
        }
    }

    #[test]
    fn capacitated_floor_is_enforced() {
        let p = capacitated_problem(1);
        let mut e = DeltaEngine::new(p, &SolverConfig::default().with_hmin(0.2)).unwrap();
        let err = e.apply(ProblemDelta::Arrival {
            demand: Demand::pair(VertexId(0), VertexId(3), 1.0).with_height(0.1),
            access: vec![NetworkId(0)],
        });
        assert!(matches!(
            err,
            Err(DeltaEngineError::HeightBelowFloor { .. })
        ));
        // Construction over a problem violating the floor fails too.
        let p = capacitated_problem(1);
        assert!(matches!(
            DeltaEngine::new(p, &SolverConfig::default().with_hmin(0.45)),
            Err(DeltaEngineError::HeightBelowFloor { .. })
        ));
        // And a nonsensical floor is rejected outright.
        let p = capacitated_problem(1);
        assert!(matches!(
            DeltaEngine::new(p, &SolverConfig::default().with_hmin(0.0)),
            Err(DeltaEngineError::BadHmin { .. })
        ));
    }

    #[test]
    fn capacitated_mode_has_no_single_reference_outcome() {
        let p = capacitated_problem(0);
        let e = DeltaEngine::new(p, &SolverConfig::default().with_hmin(0.2)).unwrap();
        assert!(matches!(
            e.resolve_reference(),
            Err(FrameworkError::BadParameters { .. })
        ));
        assert!(e.reference_solve().is_ok());
    }

    #[test]
    fn line_family_layers_by_length_class() {
        let p = LineWorkload::new(40, 20)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(2, 10)
            .generate(&mut SmallRng::seed_from_u64(3));
        let lmin = treenet_decomp::line_lmin(&p);
        let mut e = DeltaEngine::new(p, &SolverConfig::default()).unwrap();
        assert_eq!(e.family(), EngineFamily::Line);
        assert_eq!(e.lmin(), Some(lmin));
        e.resolve().unwrap();
        assert_matches_reference(&e);
        // A long arrival layers into a later length class and still
        // matches the reference.
        e.apply(ProblemDelta::Arrival {
            demand: Demand::pair(VertexId(0), VertexId(35), 4.0),
            access: vec![NetworkId(0)],
        })
        .unwrap();
        e.resolve().unwrap();
        assert_matches_reference(&e);
    }

    #[test]
    fn line_arrivals_shorter_than_lmin_are_rejected() {
        let mut b = ProblemBuilder::new();
        let t = b.add_network(treenet_graph::Tree::line(20)).unwrap();
        b.add_demand(Demand::pair(VertexId(0), VertexId(4), 1.0), &[t])
            .unwrap();
        let mut e = DeltaEngine::new(b.build().unwrap(), &SolverConfig::default()).unwrap();
        assert_eq!(e.lmin(), Some(4.0));
        let err = e.apply(ProblemDelta::Arrival {
            demand: Demand::pair(VertexId(8), VertexId(10), 1.0),
            access: vec![t],
        });
        assert!(matches!(
            err,
            Err(DeltaEngineError::InstanceTooShort { len: 2, .. })
        ));
        // Window arrivals are length-checked by their processing time.
        let err = e.apply(ProblemDelta::Arrival {
            demand: Demand::window(0, 10, 3, 1.0),
            access: vec![t],
        });
        assert!(matches!(
            err,
            Err(DeltaEngineError::InstanceTooShort { len: 3, .. })
        ));
        // Engine still usable and consistent after rejections.
        e.resolve().unwrap();
        assert_matches_reference(&e);
    }

    #[test]
    fn capacitated_line_mode_matches_reference() {
        let p = LineWorkload::new(36, 16)
            .with_resources(2)
            .with_window_slack(2)
            .with_len_range(2, 9)
            .with_heights(HeightMode::Bimodal {
                narrow_frac: 0.6,
                hmin: 0.25,
            })
            .generate(&mut SmallRng::seed_from_u64(5));
        let mut e = DeltaEngine::new(p, &SolverConfig::default().with_hmin(0.25)).unwrap();
        assert_eq!(e.family(), EngineFamily::Line);
        e.resolve().unwrap();
        assert_matches_reference(&e);
        e.apply(ProblemDelta::Arrival {
            demand: Demand::pair(VertexId(2), VertexId(8), 3.0).with_height(0.4),
            access: vec![NetworkId(1)],
        })
        .unwrap();
        e.apply(ProblemDelta::Departure {
            demand: DemandId(2),
        })
        .unwrap();
        e.resolve().unwrap();
        assert_matches_reference(&e);
    }

    #[test]
    fn error_displays_name_the_constraint() {
        let e = DeltaEngineError::HeightBelowFloor {
            height: 0.1,
            hmin: 0.2,
        };
        assert!(e.to_string().contains("hmin"));
        let e = DeltaEngineError::BadHmin { hmin: -1.0 };
        assert!(e.to_string().contains("(0, 1]"));
        let e = DeltaEngineError::InstanceTooShort { len: 2, lmin: 4.0 };
        assert!(e.to_string().contains("Lmin"));
        let e = DeltaEngineError::NonUnitHeight { height: 0.5 };
        assert!(e.to_string().contains("hmin"));
    }
}

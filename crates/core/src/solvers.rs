//! The paper's schedulers, assembled from the framework:
//!
//! * [`solve_tree_unit`] — Theorem 5.3, `(7+ε)`-approximation;
//! * [`solve_tree_arbitrary`] — Theorem 6.3, `(80+ε)`-approximation
//!   (wide/narrow split + per-network combiner);
//! * [`solve_line_unit`] — Theorem 7.1, `(4+ε)`-approximation (windows
//!   supported via instance expansion);
//! * [`solve_line_arbitrary`] — Theorem 7.2, `(23+ε)`-approximation.
//!
//! All stage factors `ξ` are derived from the layered decomposition's `Δ`
//! exactly as in the paper: `ξ = 2Δ′/(2Δ′+1)` with `Δ′ = Δ+1` for the unit
//! rule (`14/15` for trees, `8/9` for lines) and `ξ = c/(c+hmin)` with
//! `c = 2Δ²+1` for the narrow rule (73 for trees, 19 for lines — the
//! "suitable constant" of Section 6.1; see `narrow_xi` for the
//! derivation).

use crate::framework::{run_two_phase, FrameworkConfig, FrameworkError, Outcome, RaiseRule};
use treenet_decomp::{LayeredDecomposition, Strategy};
use treenet_model::{HeightClass, InstanceId, Problem, Solution};

/// User-facing configuration for the solvers.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Slackness target: phase 1 ends with everything `(1-ε)`-satisfied.
    pub epsilon: f64,
    /// Seed for the common-randomness MIS.
    pub seed: u64,
    /// Tree-decomposition strategy (ignored by line solvers).
    pub strategy: Strategy,
    /// Record raise traces for interference checking.
    pub record_trace: bool,
    /// Which MIS routine supplies the `Time(MIS)` factor (Luby by
    /// default; the deterministic backend trades rounds for determinism,
    /// as the paper's `Time(MIS)` discussion allows).
    pub mis_backend: treenet_mis::MisBackend,
    /// A-priori `hmin` for the arbitrary-height schedulers (Section 6's
    /// alternative assumption: "a value hmin is fixed a priori and all
    /// the demands are required to have height at least hmin"). `None`
    /// derives `hmin` from the instance (the default assumption that all
    /// processors know it).
    pub hmin: Option<f64>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            epsilon: 0.1,
            seed: 0x7ee5,
            strategy: Strategy::Ideal,
            record_trace: false,
            mis_backend: treenet_mis::MisBackend::Luby,
            hmin: None,
        }
    }
}

impl SolverConfig {
    /// Builder-style setter for ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Builder-style setter for the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the decomposition strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style setter for trace recording.
    #[must_use]
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Builder-style setter for the MIS backend.
    #[must_use]
    pub fn with_mis_backend(mut self, backend: treenet_mis::MisBackend) -> Self {
        self.mis_backend = backend;
        self
    }

    /// Builder-style setter for the a-priori `hmin` (Section 6).
    #[must_use]
    pub fn with_hmin(mut self, hmin: f64) -> Self {
        self.hmin = Some(hmin);
        self
    }
}

/// The unit-rule stage factor `ξ = 2Δ′/(2Δ′+1)`, `Δ′ = Δ+1` (Section 5):
/// `14/15` for `Δ = 6`, `8/9` for `Δ = 3`. This is exactly the largest ξ
/// for which a "kill" doubles profits (Claim 5.2), giving the
/// `O(log(pmax/pmin))` per-stage step bound.
pub fn unit_xi(delta: usize) -> f64 {
    let dp = 2.0 * (delta as f64 + 1.0);
    dp / (dp + 1.0)
}

/// The narrow-rule stage factor `ξ = c/(c+hmin)` with `c = 2Δ²+1`
/// (Section 6.1's "suitable constant"). Derivation of `c`: a kill of `d₂`
/// by `d₁` contributes at least `min(1, 2·hmin)·δ(d₁) = 2·hmin·δ(d₁)` to
/// the LHS of `d₂` (α path: `δ`; β path: `h(d₂)·2|π|δ ≥ 2·hmin·δ`), and
/// `δ(d₁) ≥ ξ^j·p(d₁)/c`; requiring the kill gap `(ξ^{j-1}-ξ^j)·p(d₂)` to
/// absorb that yields `p(d₂)/p(d₁) ≥ 2·hmin·ξ/((1-ξ)·c) = 2` exactly at
/// `ξ = c/(c+hmin)` — restoring the profit-doubling chain of Lemma 5.1
/// with `O((1/hmin)·log(1/ε))` stages per epoch.
pub fn narrow_xi(delta: usize, hmin: f64) -> f64 {
    assert!(
        hmin > 0.0 && hmin <= 0.5,
        "narrow instances have hmin ∈ (0, 1/2]"
    );
    let c = 2.0 * (delta as f64) * (delta as f64) + 1.0;
    c / (c + hmin)
}

fn framework_config(config: &SolverConfig, xi: f64) -> FrameworkConfig {
    FrameworkConfig {
        epsilon: config.epsilon,
        xi,
        seed: config.seed,
        max_steps_per_stage: Some(1_000_000),
        record_trace: config.record_trace,
        mis_backend: config.mis_backend,
    }
}

/// Distributed scheduler for the **unit height case on tree-networks**
/// (Theorem 5.3): ideal tree decompositions → layered decomposition with
/// `Δ = 6` → two-phase framework with `ξ = 14/15`. Certified
/// approximation factor `(Δ+1)/λ = 7/(1-ε)`.
///
/// Accepts non-unit heights too (they are simply scheduled exclusively),
/// but the approximation guarantee applies to the unit case.
///
/// # Errors
///
/// Propagates [`FrameworkError`] for bad `ε` or a diverging stage.
///
/// # Example
///
/// ```
/// use treenet_model::fixtures::figure2;
/// use treenet_core::{solve_tree_unit, SolverConfig};
///
/// let (problem, _) = figure2();
/// let outcome = solve_tree_unit(&problem, &SolverConfig::default()).unwrap();
/// assert!(outcome.solution.verify(&problem).is_ok());
/// ```
pub fn solve_tree_unit(
    problem: &Problem,
    config: &SolverConfig,
) -> Result<Outcome, FrameworkError> {
    let layers = LayeredDecomposition::for_trees(problem, config.strategy);
    let all: Vec<InstanceId> = problem.instances().map(|d| d.id).collect();
    run_two_phase(
        problem,
        &layers,
        RaiseRule::Unit,
        &framework_config(config, unit_xi(layers.delta())),
        &all,
    )
}

/// Distributed scheduler for the **unit height case on line-networks with
/// windows** (Theorem 7.1): length-class layers with `Δ = 3`, `ξ = 8/9`.
/// Certified factor `4/(1-ε)`.
///
/// # Errors
///
/// Propagates [`FrameworkError`].
///
/// # Panics
///
/// Panics if some network is not a canonical line.
pub fn solve_line_unit(
    problem: &Problem,
    config: &SolverConfig,
) -> Result<Outcome, FrameworkError> {
    let layers = LayeredDecomposition::for_lines(problem);
    let all: Vec<InstanceId> = problem.instances().map(|d| d.id).collect();
    run_two_phase(
        problem,
        &layers,
        RaiseRule::Unit,
        &framework_config(config, unit_xi(layers.delta())),
        &all,
    )
}

/// Result of an arbitrary-height run: the wide and narrow sub-runs plus
/// the combined solution (Theorem 6.3 / 7.2).
#[derive(Clone, Debug)]
pub struct CombinedOutcome {
    /// The per-network combination of the two solutions.
    pub solution: Solution,
    /// Outcome of the unit-rule run on wide instances (`h > 1/2`).
    pub wide: Outcome,
    /// Outcome of the narrow-rule run on narrow instances (`h ≤ 1/2`).
    pub narrow: Outcome,
}

impl CombinedOutcome {
    /// Profit of the combined solution.
    pub fn profit(&self, problem: &Problem) -> f64 {
        self.solution.profit(problem)
    }

    /// The measured slackness of the combined run: the minimum of the
    /// wide and narrow λ (each the minimum satisfaction ratio over that
    /// run's participants).
    pub fn lambda(&self) -> f64 {
        self.wide.lambda.min(self.narrow.lambda)
    }

    /// Certified upper bound on `p(OPT)`:
    /// `p(OPT) ≤ p(OPT_wide) + p(OPT_narrow) ≤ val_w/λ_w + val_n/λ_n`.
    pub fn opt_upper_bound(&self) -> f64 {
        self.wide.opt_upper_bound() + self.narrow.opt_upper_bound()
    }

    /// Certified approximation factor of the combined solution.
    pub fn certified_ratio(&self, problem: &Problem) -> f64 {
        let p = self.profit(problem);
        if p == 0.0 {
            if self.opt_upper_bound() == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.opt_upper_bound() / p
        }
    }
}

/// Splits instances into wide and narrow classes by their demand height.
fn split_by_height(problem: &Problem) -> (Vec<InstanceId>, Vec<InstanceId>) {
    let mut wide = Vec::new();
    let mut narrow = Vec::new();
    for inst in problem.instances() {
        match problem.demand(inst.demand).height_class() {
            HeightClass::Wide => wide.push(inst.id),
            HeightClass::Narrow => narrow.push(inst.id),
        }
    }
    (wide, narrow)
}

/// Resolves the `hmin` of a narrow run: the a-priori value when `fixed`
/// (validated against every narrow participant, then clamped to 1/2),
/// else the minimum participant height (1/2 when empty — any valid value
/// does, as an empty run performs no stages).
///
/// This is the single definition shared by the logical arbitrary-height
/// solvers and the distributed runners in `treenet-dist`, so the two
/// sides derive the same `narrow_xi` by construction. The error value is
/// the human-readable reason (callers wrap it in their error type).
///
/// # Errors
///
/// When `fixed` exceeds some participant's height (beyond the model
/// tolerance), i.e. the a-priori assumption is violated.
pub fn resolve_narrow_hmin(
    problem: &Problem,
    participants: &[InstanceId],
    fixed: Option<f64>,
) -> Result<f64, String> {
    match fixed {
        Some(fixed) => {
            // The a-priori assumption: every narrow demand must respect it.
            if let Some(&offender) = participants
                .iter()
                .find(|&&d| problem.height_of(d) < fixed - treenet_model::EPS)
            {
                return Err(format!(
                    "a-priori hmin = {fixed} but instance {offender} has height {}",
                    problem.height_of(offender)
                ));
            }
            Ok(fixed.min(0.5))
        }
        None => Ok(participants
            .iter()
            .map(|&d| problem.height_of(d))
            .fold(0.5f64, f64::min)),
    }
}

/// The per-network combiner's tie-breaking predicate: the wide run wins
/// network `t` iff its profit there is at least the narrow run's. This is
/// the single definition shared by [`combine_by_network`] and the
/// in-network convergecast combiner of `treenet-dist`, so the two cannot
/// drift on ties.
///
/// Both callers must feed profit sums accumulated **in ascending instance
/// id order** (the order of `Solution::selected`) for the comparison to
/// be bit-identical across implementations.
#[inline]
pub fn combine_decision(wide_profit: f64, narrow_profit: f64) -> bool {
    wide_profit >= narrow_profit
}

/// Per-network combiner of Theorem 6.3: for each network keep whichever of
/// the two solutions earns more profit there. Feasible because the two
/// runs partition the demands by height class.
///
/// Runs in `O(|wide| + |narrow| + networks)`: one bucketing pass per
/// class, one decision per network, one emission pass per class. The
/// per-network profit sums fold in ascending instance id order (the
/// order of `Solution::selected`), so every [`combine_decision`] sees
/// bit-identical operands to a per-network filtered sum.
pub fn combine_by_network(problem: &Problem, wide: &Solution, narrow: &Solution) -> Solution {
    let nets = problem.network_count();
    let mut wide_profit = vec![0.0f64; nets];
    let mut narrow_profit = vec![0.0f64; nets];
    for &d in wide.selected() {
        wide_profit[problem.instance(d).network.0 as usize] += problem.profit_of(d);
    }
    for &d in narrow.selected() {
        narrow_profit[problem.instance(d).network.0 as usize] += problem.profit_of(d);
    }
    let pick_wide: Vec<bool> = (0..nets)
        .map(|t| combine_decision(wide_profit[t], narrow_profit[t]))
        .collect();
    let mut selected = Vec::with_capacity(wide.len().max(narrow.len()));
    for &d in wide.selected() {
        if pick_wide[problem.instance(d).network.0 as usize] {
            selected.push(d);
        }
    }
    for &d in narrow.selected() {
        if !pick_wide[problem.instance(d).network.0 as usize] {
            selected.push(d);
        }
    }
    Solution::new(selected)
}

fn solve_arbitrary(
    problem: &Problem,
    config: &SolverConfig,
    layers: &LayeredDecomposition,
) -> Result<CombinedOutcome, FrameworkError> {
    let (wide_ids, narrow_ids) = split_by_height(problem);
    let wide = run_two_phase(
        problem,
        layers,
        RaiseRule::Unit,
        &framework_config(config, unit_xi(layers.delta())),
        &wide_ids,
    )?;
    let hmin = resolve_narrow_hmin(problem, &narrow_ids, config.hmin)
        .map_err(|reason| FrameworkError::BadParameters { reason })?;
    let narrow = run_two_phase(
        problem,
        layers,
        RaiseRule::Narrow,
        &framework_config(config, narrow_xi(layers.delta(), hmin)),
        &narrow_ids,
    )?;
    let solution = combine_by_network(problem, &wide.solution, &narrow.solution);
    Ok(CombinedOutcome {
        solution,
        wide,
        narrow,
    })
}

/// Distributed scheduler for the **arbitrary height case on
/// tree-networks** (Theorem 6.3): wide instances (`h > 1/2`) through the
/// unit algorithm, narrow instances through the modified raising rule,
/// then the per-network combiner. Certified factor
/// `(7 + 73)/(1-ε) = (80+ε)`.
///
/// # Errors
///
/// Propagates [`FrameworkError`].
pub fn solve_tree_arbitrary(
    problem: &Problem,
    config: &SolverConfig,
) -> Result<CombinedOutcome, FrameworkError> {
    let layers = LayeredDecomposition::for_trees(problem, config.strategy);
    solve_arbitrary(problem, config, &layers)
}

/// Distributed scheduler for the **arbitrary height case on line-networks
/// with windows** (Theorem 7.2): same split with `Δ = 3`, certified
/// factor `(4 + 19)/(1-ε) = (23+ε)`.
///
/// # Errors
///
/// Propagates [`FrameworkError`].
///
/// # Panics
///
/// Panics if some network is not a canonical line.
pub fn solve_line_arbitrary(
    problem: &Problem,
    config: &SolverConfig,
) -> Result<CombinedOutcome, FrameworkError> {
    let layers = LayeredDecomposition::for_lines(problem);
    solve_arbitrary(problem, config, &layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_model::workload::{HeightMode, LineWorkload, TreeWorkload};

    #[test]
    fn xi_constants_match_paper() {
        assert!((unit_xi(6) - 14.0 / 15.0).abs() < 1e-12);
        assert!((unit_xi(3) - 8.0 / 9.0).abs() < 1e-12);
        // c = 2·36+1 = 73 (trees), 2·9+1 = 19 (lines).
        assert!((narrow_xi(6, 0.5) - 73.0 / 73.5).abs() < 1e-12);
        assert!((narrow_xi(3, 0.25) - 19.0 / 19.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "hmin")]
    fn narrow_xi_rejects_wide_hmin() {
        let _ = narrow_xi(6, 0.9);
    }

    #[test]
    fn tree_unit_produces_feasible_certified_solutions() {
        for seed in 0..6u64 {
            let p = TreeWorkload::new(20, 24)
                .with_networks(3)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let outcome = solve_tree_unit(&p, &SolverConfig::default()).unwrap();
            assert!(outcome.solution.verify(&p).is_ok());
            // Theorem 5.3 bound: 7/(1-ε).
            let bound = 7.0 / (1.0 - 0.1) + 1e-6;
            assert!(
                outcome.certified_ratio(&p) <= bound,
                "seed {seed}: ratio {}",
                outcome.certified_ratio(&p)
            );
        }
    }

    #[test]
    fn line_unit_with_windows() {
        for seed in 0..6u64 {
            let p = LineWorkload::new(40, 25)
                .with_resources(2)
                .with_window_slack(3)
                .with_len_range(2, 10)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let outcome = solve_line_unit(&p, &SolverConfig::default()).unwrap();
            assert!(outcome.solution.verify(&p).is_ok());
            assert!(outcome.delta <= 3);
            // Theorem 7.1 bound: 4/(1-ε).
            assert!(
                outcome.certified_ratio(&p) <= 4.0 / 0.9 + 1e-6,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn tree_arbitrary_combines_feasibly() {
        for seed in 0..4u64 {
            let p = TreeWorkload::new(16, 20)
                .with_networks(2)
                .with_heights(HeightMode::Bimodal {
                    narrow_frac: 0.6,
                    hmin: 0.2,
                })
                .generate(&mut SmallRng::seed_from_u64(seed));
            let combined = solve_tree_arbitrary(&p, &SolverConfig::default()).unwrap();
            assert!(combined.solution.verify(&p).is_ok(), "seed {seed}");
            assert!(combined.wide.solution.verify(&p).is_ok());
            assert!(combined.narrow.solution.verify(&p).is_ok());
            // The combination is at least as good as each side.
            let pc = combined.profit(&p);
            assert!(
                pc + 1e-9
                    >= combined
                        .wide
                        .solution
                        .profit(&p)
                        .max(combined.narrow.solution.profit(&p))
            );
            // Theorem 6.3 bound: 80/(1-ε).
            assert!(
                combined.certified_ratio(&p) <= 80.0 / 0.9 + 1e-6,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn line_arbitrary_certified_within_23() {
        for seed in 0..4u64 {
            let p = LineWorkload::new(36, 20)
                .with_resources(2)
                .with_window_slack(2)
                .with_len_range(1, 9)
                .with_heights(HeightMode::Uniform { hmin: 0.15 })
                .generate(&mut SmallRng::seed_from_u64(seed));
            let combined = solve_line_arbitrary(&p, &SolverConfig::default()).unwrap();
            assert!(combined.solution.verify(&p).is_ok(), "seed {seed}");
            // Theorem 7.2 bound: 23/(1-ε).
            assert!(
                combined.certified_ratio(&p) <= 23.0 / 0.9 + 1e-6,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn all_unit_heights_go_wide() {
        let p = TreeWorkload::new(12, 10).generate(&mut SmallRng::seed_from_u64(1));
        let (wide, narrow) = split_by_height(&p);
        assert_eq!(wide.len(), p.instance_count());
        assert!(narrow.is_empty());
        // Arbitrary-height solver degenerates gracefully to the unit one.
        let combined = solve_tree_arbitrary(&p, &SolverConfig::default()).unwrap();
        assert!(combined.narrow.solution.is_empty());
        assert!(combined.solution.verify(&p).is_ok());
    }

    #[test]
    fn config_builders() {
        let cfg = SolverConfig::default()
            .with_epsilon(0.2)
            .with_seed(9)
            .with_strategy(Strategy::Balancing)
            .with_trace(true);
        assert_eq!(cfg.epsilon, 0.2);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.strategy, Strategy::Balancing);
        assert!(cfg.record_trace);
    }
}

#[cfg(test)]
mod hmin_tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_model::workload::{HeightMode, TreeWorkload};

    #[test]
    fn a_priori_hmin_is_honored() {
        let mut rng = SmallRng::seed_from_u64(8);
        let p = TreeWorkload::new(14, 12)
            .with_heights(HeightMode::Uniform { hmin: 0.3 })
            .generate(&mut rng);
        // Valid: every height ≥ 0.3 ≥ 0.25.
        let out = solve_tree_arbitrary(&p, &SolverConfig::default().with_hmin(0.25)).unwrap();
        assert!(out.solution.verify(&p).is_ok());
        // Invalid: demanding hmin = 0.6 while narrow demands go down to
        // 0.3 violates the a-priori assumption.
        if p.min_height() < 0.5 {
            let err = solve_tree_arbitrary(&p, &SolverConfig::default().with_hmin(0.6));
            assert!(matches!(err, Err(FrameworkError::BadParameters { .. })));
        }
    }

    #[test]
    fn fixed_hmin_controls_stage_count() {
        // A smaller a-priori hmin means a ξ closer to 1 and thus more
        // stages — the O(1/hmin) factor is driven by the assumption, not
        // the realized heights.
        let mut rng = SmallRng::seed_from_u64(9);
        let p = TreeWorkload::new(12, 10)
            .with_heights(HeightMode::Uniform { hmin: 0.4 })
            .generate(&mut rng);
        let coarse = solve_tree_arbitrary(&p, &SolverConfig::default().with_hmin(0.4)).unwrap();
        let fine = solve_tree_arbitrary(&p, &SolverConfig::default().with_hmin(0.05)).unwrap();
        assert!(fine.narrow.stats.stages >= coarse.narrow.stats.stages);
        assert!(coarse.solution.verify(&p).is_ok());
        assert!(fine.solution.verify(&p).is_ok());
    }
}

/// Which solver [`solve_auto`] picked.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AutoChoice {
    /// All canonical lines, all unit heights → Theorem 7.1.
    LineUnit,
    /// All canonical lines, mixed heights → Theorem 7.2.
    LineArbitrary,
    /// Trees, all unit heights → Theorem 5.3.
    TreeUnit,
    /// Trees, mixed heights → Theorem 6.3.
    TreeArbitrary,
}

/// Outcome of [`solve_auto`]: the solution plus which theorem applied.
#[derive(Clone, Debug)]
pub struct AutoOutcome {
    /// The extracted feasible solution.
    pub solution: Solution,
    /// The solver that was dispatched.
    pub choice: AutoChoice,
    /// Certified upper bound on `p(OPT)`.
    pub opt_upper_bound: f64,
    /// Measured slackness λ of the dispatched run (minimum over the wide
    /// and narrow sub-runs for the arbitrary-height solvers) — the value
    /// the distributed runner `treenet-dist::run_distributed_auto`
    /// reproduces bit-identically.
    pub lambda: f64,
}

impl AutoOutcome {
    /// Certified approximation factor.
    pub fn certified_ratio(&self, problem: &Problem) -> f64 {
        let p = self.solution.profit(problem);
        if p == 0.0 {
            if self.opt_upper_bound == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.opt_upper_bound / p
        }
    }
}

/// The dispatch rule of [`solve_auto`], exposed as its own function: the
/// strongest applicable theorem for `problem` (line-networks get the
/// `Δ = 3` decomposition with its tighter ratios, unit heights skip the
/// wide/narrow split).
///
/// This is the single definition shared with
/// `treenet-dist::run_distributed_auto`, so the logical and
/// message-passing dispatches cannot drift.
pub fn auto_choice(problem: &Problem) -> AutoChoice {
    let all_lines = problem
        .networks()
        .all(|t| problem.network(t).is_canonical_line());
    match (all_lines, problem.is_unit_height()) {
        (true, true) => AutoChoice::LineUnit,
        (true, false) => AutoChoice::LineArbitrary,
        (false, true) => AutoChoice::TreeUnit,
        (false, false) => AutoChoice::TreeArbitrary,
    }
}

/// Dispatches to the strongest applicable theorem ([`auto_choice`]).
///
/// # Errors
///
/// Propagates [`FrameworkError`].
///
/// # Example
///
/// ```
/// use treenet_model::fixtures::figure1;
/// use treenet_core::{solve_auto, AutoChoice, SolverConfig};
///
/// let (problem, _) = figure1();
/// let out = solve_auto(&problem, &SolverConfig::default()).unwrap();
/// // Figure 1 lives on a line with fractional heights → Theorem 7.2.
/// assert_eq!(out.choice, AutoChoice::LineArbitrary);
/// assert!(out.solution.verify(&problem).is_ok());
/// ```
pub fn solve_auto(problem: &Problem, config: &SolverConfig) -> Result<AutoOutcome, FrameworkError> {
    let (choice, solution, bound, lambda) = match auto_choice(problem) {
        AutoChoice::LineUnit => {
            let out = solve_line_unit(problem, config)?;
            (
                AutoChoice::LineUnit,
                out.solution.clone(),
                out.opt_upper_bound(),
                out.lambda,
            )
        }
        AutoChoice::LineArbitrary => {
            let out = solve_line_arbitrary(problem, config)?;
            (
                AutoChoice::LineArbitrary,
                out.solution.clone(),
                out.opt_upper_bound(),
                out.lambda(),
            )
        }
        AutoChoice::TreeUnit => {
            let out = solve_tree_unit(problem, config)?;
            (
                AutoChoice::TreeUnit,
                out.solution.clone(),
                out.opt_upper_bound(),
                out.lambda,
            )
        }
        AutoChoice::TreeArbitrary => {
            let out = solve_tree_arbitrary(problem, config)?;
            (
                AutoChoice::TreeArbitrary,
                out.solution.clone(),
                out.opt_upper_bound(),
                out.lambda(),
            )
        }
    };
    Ok(AutoOutcome {
        solution,
        choice,
        opt_upper_bound: bound,
        lambda,
    })
}

#[cfg(test)]
mod auto_tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_model::workload::{HeightMode, LineWorkload, TreeWorkload};

    #[test]
    fn dispatch_matches_problem_shape() {
        let mut rng = SmallRng::seed_from_u64(2);
        let cases: Vec<(Problem, AutoChoice)> = vec![
            (
                LineWorkload::new(20, 8).generate(&mut rng),
                AutoChoice::LineUnit,
            ),
            (
                LineWorkload::new(20, 8)
                    .with_heights(HeightMode::Uniform { hmin: 0.3 })
                    .generate(&mut rng),
                AutoChoice::LineArbitrary,
            ),
            (
                TreeWorkload::new(12, 8).generate(&mut rng),
                AutoChoice::TreeUnit,
            ),
            (
                TreeWorkload::new(12, 8)
                    .with_heights(HeightMode::Uniform { hmin: 0.3 })
                    .generate(&mut rng),
                AutoChoice::TreeArbitrary,
            ),
        ];
        for (problem, expected) in cases {
            let out = solve_auto(&problem, &SolverConfig::default()).unwrap();
            assert_eq!(out.choice, expected);
            assert!(out.solution.verify(&problem).is_ok());
            assert!(out.certified_ratio(&problem).is_finite());
        }
    }
}

//! Dual variables of the LP relaxation (Section 3.1 / Section 6.1).
//!
//! The dual has one variable `α(a)` per demand and one `β(e)` per edge of
//! the global edge set `E = Σ_T edges(T)`. The dual constraint of a demand
//! instance `d` reads
//!
//! * unit height: `α(a_d) + Σ_{e : d∼e} β(e) ≥ p(d)`,
//! * arbitrary height: `α(a_d) + h(d)·Σ_{e : d∼e} β(e) ≥ p(d)`,
//!
//! and `d` is `ξ`-*satisfied* when the LHS reaches `ξ·p(d)`.

use treenet_graph::EdgeId;
use treenet_model::{DemandId, InstanceId, NetworkId, Problem};

/// Which LP/raising scheme is in force.
///
/// `Unit` is the Section 3 scheme (heights absent from the dual
/// constraint); `Capacitated` is the Section 6.1 narrow-instance scheme
/// where the `β` sum is scaled by `h(d)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DualForm {
    /// `α + Σβ ≥ p` — the unit height case.
    Unit,
    /// `α + h·Σβ ≥ p` — the arbitrary height (narrow) case.
    Capacitated,
}

/// The dual variable assignment `⟨α, β⟩`, with an optional per-instance
/// cache of the dual LHS values.
///
/// The cache exists for the incremental phase-1 engine: instead of
/// re-walking every instance's path edges on every step, the engine
/// marks exactly the instances a raise touches as *stale* (found through
/// [`Problem::instances_using`] — an `O(1)` flag per instance) and
/// recomputes lazily at the next read, at most once per instance per
/// step no matter how many raises touched it. Refreshing *recomputes*
/// the LHS with the same summation order as [`DualState::lhs`], so cached
/// values are bit-identical to a from-scratch evaluation — the property
/// that keeps the logical and message-passing executions equal.
#[derive(Clone, Debug)]
pub struct DualState {
    form: DualForm,
    alpha: Vec<f64>,
    beta: Vec<Vec<f64>>,
    /// Cached LHS per instance; empty until [`DualState::enable_cache`].
    lhs_cache: Vec<f64>,
    /// Parallel staleness flags: `dirty[d]` means `lhs_cache[d]` predates
    /// a raise that touched `d`'s constraint and must be recomputed
    /// before use.
    dirty: Vec<bool>,
}

impl DualState {
    /// All-zero duals for `problem` under the given form.
    pub fn new(problem: &Problem, form: DualForm) -> Self {
        DualState {
            form,
            alpha: vec![0.0; problem.demand_count()],
            beta: problem
                .networks()
                .map(|t| vec![0.0; problem.network(t).edge_count()])
                .collect(),
            lhs_cache: Vec::new(),
            dirty: Vec::new(),
        }
    }

    /// The dual form this state is maintained under.
    pub fn form(&self) -> DualForm {
        self.form
    }

    /// `α(a)`.
    #[inline]
    pub fn alpha(&self, a: DemandId) -> f64 {
        self.alpha[a.index()]
    }

    /// `β(e)` for edge `e` of network `t`.
    #[inline]
    pub fn beta(&self, t: NetworkId, e: EdgeId) -> f64 {
        self.beta[t.index()][e.index()]
    }

    /// Adds `amount` to `α(a)`.
    #[inline]
    pub fn raise_alpha(&mut self, a: DemandId, amount: f64) {
        self.alpha[a.index()] += amount;
    }

    /// Adds `amount` to `β(e)` of network `t`.
    #[inline]
    pub fn raise_beta(&mut self, t: NetworkId, e: EdgeId, amount: f64) {
        self.beta[t.index()][e.index()] += amount;
    }

    /// LHS of the dual constraint of instance `d`.
    pub fn lhs(&self, problem: &Problem, d: InstanceId) -> f64 {
        let inst = problem.instance(d);
        let beta_sum: f64 = inst
            .path
            .edges()
            .iter()
            .map(|&e| self.beta[inst.network.index()][e.index()])
            .sum();
        let scale = match self.form {
            DualForm::Unit => 1.0,
            DualForm::Capacitated => problem.height_of(d),
        };
        self.alpha[inst.demand.index()] + scale * beta_sum
    }

    /// Slack `p(d) - LHS(d)` (negative when over-satisfied).
    pub fn slack(&self, problem: &Problem, d: InstanceId) -> f64 {
        problem.profit_of(d) - self.lhs(problem, d)
    }

    /// The satisfaction ratio `LHS(d) / p(d)` — `d` is `ξ`-satisfied when
    /// this reaches `ξ` (Section 3.2).
    pub fn satisfaction(&self, problem: &Problem, d: InstanceId) -> f64 {
        self.lhs(problem, d) / problem.profit_of(d)
    }

    /// Enables (or resets) the per-instance LHS cache by evaluating
    /// [`DualState::lhs`] for every instance once. After a raise, mark
    /// the touched instances with [`DualState::mark_stale`] and refresh
    /// them before the next read ([`DualState::refresh_if_stale`]).
    pub fn enable_cache(&mut self, problem: &Problem) {
        self.lhs_cache = problem
            .instances()
            .map(|inst| self.lhs(problem, inst.id))
            .collect();
        self.dirty.clear();
        self.dirty.resize(self.lhs_cache.len(), false);
    }

    /// Whether the LHS cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        !self.lhs_cache.is_empty()
    }

    /// Flags instance `d`'s cached LHS as stale — `O(1)`, no path walk.
    ///
    /// # Panics
    ///
    /// Panics if the cache is disabled or `d` is out of range.
    #[inline]
    pub fn mark_stale(&mut self, d: InstanceId) {
        self.dirty[d.index()] = true;
    }

    /// Whether instance `d`'s cached LHS is currently stale.
    ///
    /// # Panics
    ///
    /// Panics if the cache is disabled or `d` is out of range.
    #[inline]
    pub fn is_stale(&self, d: InstanceId) -> bool {
        self.dirty[d.index()]
    }

    /// Recomputes the cached LHS of `d` if (and only if) it is stale —
    /// the same summation order as [`DualState::lhs`], hence bitwise
    /// equal to a from-scratch evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the cache is disabled or `d` is out of range.
    #[inline]
    pub fn refresh_if_stale(&mut self, problem: &Problem, d: InstanceId) {
        if self.dirty[d.index()] {
            self.refresh_cached_lhs(problem, d);
        }
    }

    /// Unconditionally recomputes and stores the cached LHS of instance
    /// `d`, clearing its staleness flag.
    ///
    /// # Panics
    ///
    /// Panics if the cache is disabled or `d` is out of range.
    #[inline]
    pub fn refresh_cached_lhs(&mut self, problem: &Problem, d: InstanceId) {
        self.lhs_cache[d.index()] = self.lhs(problem, d);
        self.dirty[d.index()] = false;
    }

    /// The cached LHS of instance `d`.
    ///
    /// # Panics
    ///
    /// Panics if the cache is disabled or `d` is out of range. Debug
    /// builds additionally assert the entry is fresh.
    #[inline]
    pub fn cached_lhs(&self, d: InstanceId) -> f64 {
        debug_assert!(!self.dirty[d.index()], "stale cache read for {d}");
        self.lhs_cache[d.index()]
    }

    /// The satisfaction ratio of `d` from the cache — bitwise equal to
    /// [`DualState::satisfaction`] whenever the entry is fresh.
    ///
    /// # Panics
    ///
    /// Panics if the cache is disabled or `d` is out of range. Debug
    /// builds additionally assert the entry is fresh.
    #[inline]
    pub fn cached_satisfaction(&self, problem: &Problem, d: InstanceId) -> f64 {
        debug_assert!(!self.dirty[d.index()], "stale cache read for {d}");
        self.lhs_cache[d.index()] / problem.profit_of(d)
    }

    /// [`DualState::min_satisfaction`] read off the cache instead of
    /// re-walking every path — the memoized λ of the first phase.
    /// Refreshes stale entries on the way (hence `&mut`).
    ///
    /// # Panics
    ///
    /// Panics if the cache is disabled.
    pub fn min_satisfaction_cached<'a, I>(&mut self, problem: &Problem, instances: I) -> f64
    where
        I: IntoIterator<Item = &'a InstanceId>,
    {
        instances
            .into_iter()
            .map(|&d| {
                self.refresh_if_stale(problem, d);
                self.cached_satisfaction(problem, d)
            })
            .fold(1.0f64, f64::min)
    }

    /// The dual objective `val(α, β) = Σ_a α(a) + Σ_e β(e)`.
    pub fn value(&self) -> f64 {
        let a: f64 = self.alpha.iter().sum();
        let b: f64 = self.beta.iter().map(|per| per.iter().sum::<f64>()).sum();
        a + b
    }

    /// The minimum satisfaction ratio over `instances` — the *measured*
    /// slackness parameter λ at the end of the first phase. Returns 1.0
    /// for an empty set.
    pub fn min_satisfaction<'a, I>(&self, problem: &Problem, instances: I) -> f64
    where
        I: IntoIterator<Item = &'a InstanceId>,
    {
        instances
            .into_iter()
            .map(|&d| self.satisfaction(problem, d))
            .fold(1.0f64, f64::min)
    }

    /// Scaled dual objective `val(α, β) / λ`: by weak duality (after
    /// scaling into feasibility, Lemma 3.1 proof) this upper-bounds
    /// `p(OPT)` whenever every instance is `λ`-satisfied.
    pub fn opt_upper_bound(&self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "λ must be positive");
        self.value() / lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treenet_graph::{Tree, VertexId};
    use treenet_model::{Demand, ProblemBuilder};

    fn problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let t = b.add_network(Tree::line(5)).unwrap();
        b.add_demand(Demand::pair(VertexId(0), VertexId(2), 4.0), &[t])
            .unwrap();
        b.add_demand(
            Demand::pair(VertexId(1), VertexId(4), 6.0).with_height(0.5),
            &[t],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn zero_initialized() {
        let p = problem();
        let dual = DualState::new(&p, DualForm::Unit);
        assert_eq!(dual.value(), 0.0);
        assert_eq!(dual.lhs(&p, InstanceId(0)), 0.0);
        assert_eq!(dual.slack(&p, InstanceId(0)), 4.0);
        assert_eq!(dual.satisfaction(&p, InstanceId(0)), 0.0);
        assert_eq!(dual.form(), DualForm::Unit);
    }

    #[test]
    fn unit_lhs_sums_alpha_and_path_betas() {
        let p = problem();
        let mut dual = DualState::new(&p, DualForm::Unit);
        dual.raise_alpha(DemandId(0), 1.0);
        dual.raise_beta(NetworkId(0), EdgeId(0), 0.5);
        dual.raise_beta(NetworkId(0), EdgeId(3), 2.0); // off d0's path [0,2)
        assert_eq!(dual.lhs(&p, InstanceId(0)), 1.5);
        assert_eq!(dual.alpha(DemandId(0)), 1.0);
        assert_eq!(dual.beta(NetworkId(0), EdgeId(0)), 0.5);
        assert_eq!(dual.value(), 3.5);
        assert!((dual.satisfaction(&p, InstanceId(0)) - 1.5 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn capacitated_lhs_scales_beta_by_height() {
        let p = problem();
        let mut dual = DualState::new(&p, DualForm::Capacitated);
        // d1 = demand 1 (height 0.5), path edges 1..3.
        dual.raise_beta(NetworkId(0), EdgeId(1), 2.0);
        dual.raise_beta(NetworkId(0), EdgeId(2), 2.0);
        assert_eq!(dual.lhs(&p, InstanceId(1)), 0.5 * 4.0);
        dual.raise_alpha(DemandId(1), 1.0);
        assert_eq!(dual.lhs(&p, InstanceId(1)), 3.0);
    }

    #[test]
    fn min_satisfaction_and_bound() {
        let p = problem();
        let mut dual = DualState::new(&p, DualForm::Unit);
        dual.raise_alpha(DemandId(0), 4.0); // d0 fully satisfied
        dual.raise_alpha(DemandId(1), 3.0); // d1 half satisfied
        let ids = [InstanceId(0), InstanceId(1)];
        let lam = dual.min_satisfaction(&p, &ids);
        assert!((lam - 0.5).abs() < 1e-12);
        assert!((dual.opt_upper_bound(0.5) - 14.0).abs() < 1e-12);
        // Empty set → 1.0 by convention.
        assert_eq!(dual.min_satisfaction(&p, &[]), 1.0);
    }

    #[test]
    fn cache_tracks_recomputation_bitwise() {
        let p = problem();
        let mut dual = DualState::new(&p, DualForm::Unit);
        assert!(!dual.cache_enabled());
        dual.enable_cache(&p);
        assert!(dual.cache_enabled());
        assert_eq!(dual.cached_lhs(InstanceId(0)), 0.0);
        dual.raise_alpha(DemandId(0), 1.25);
        dual.raise_beta(NetworkId(0), EdgeId(1), 0.375);
        for d in [InstanceId(0), InstanceId(1)] {
            assert!(!dual.is_stale(d));
            dual.mark_stale(d);
            assert!(dual.is_stale(d));
            dual.refresh_if_stale(&p, d);
            assert!(!dual.is_stale(d));
            // A second refresh_if_stale is a no-op; the unconditional
            // variant recomputes to the same bits.
            dual.refresh_if_stale(&p, d);
            dual.refresh_cached_lhs(&p, d);
            assert_eq!(
                dual.cached_lhs(d).to_bits(),
                dual.lhs(&p, d).to_bits(),
                "{d}"
            );
            assert_eq!(
                dual.cached_satisfaction(&p, d).to_bits(),
                dual.satisfaction(&p, d).to_bits(),
                "{d}"
            );
        }
        let ids = [InstanceId(0), InstanceId(1)];
        assert_eq!(
            dual.min_satisfaction_cached(&p, &ids).to_bits(),
            dual.min_satisfaction(&p, &ids).to_bits()
        );
        assert_eq!(dual.min_satisfaction_cached(&p, &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lambda_rejected() {
        let p = problem();
        let dual = DualState::new(&p, DualForm::Unit);
        let _ = dual.opt_upper_bound(0.0);
    }
}

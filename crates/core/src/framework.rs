//! The two-phase primal-dual framework (Section 3.2) and the distributed
//! first-phase schedule of Section 5 (epochs → stages → steps).
//!
//! The runner is parametrized by
//!
//! * a [`LayeredDecomposition`] supplying the epoch grouping and the
//!   critical edges `π(d)`,
//! * a [`RaiseRule`] — the unit scheme of Section 3 or the narrow scheme
//!   of Section 6.1,
//! * a [`FrameworkConfig`] fixing `ε`, the stage factor `ξ`, and the
//!   common-randomness seed.
//!
//! Epoch `k` processes group `G_k`. Stage `j` of an epoch drives every
//! group member to `(1 - ξ^j)`-satisfaction; each step computes an MIS of
//! the still-unsatisfied members' conflict graph (Luby with common
//! randomness — bit-identical to the message-passing execution in
//! `treenet-dist`) and raises all its members simultaneously, pushing the
//! set onto the framework stack. The second phase pops the stack and
//! greedily extracts a feasible solution.
//!
//! # The incremental phase-1 engine
//!
//! [`run_two_phase`] does *not* rebuild its MIS input from scratch on
//! every step. It builds one CSR [`ConflictGraph`] per epoch group,
//! filters it through a reusable [`ActiveSubgraph`] view, and tracks
//! satisfaction through the [`DualState`] LHS cache refreshed via the
//! [`Problem::instances_using`] inverted index. Per-step work is
//! proportional to the *active* set, not the group. Three invariants
//! keep the execution bit-identical to the from-scratch formulation
//! (preserved as [`run_two_phase_reference`]) and therefore to the
//! message-passing run in `treenet-dist`:
//!
//! 1. **Order-preserving relabeling.** The active view assigns step-local
//!    indices in ascending epoch order, so its adjacency is byte-identical
//!    to `ConflictGraph::build` over the filtered member subsequence;
//!    MIS draws depend only on canonical keys and adjacency content, so
//!    every draw — and the order of the raised set — is unchanged.
//! 2. **Refresh-by-recompute.** A raise never *adds deltas into* a cached
//!    LHS; it re-evaluates [`DualState::lhs`] (same summation order as
//!    the distributed nodes) for exactly the instances whose constraint
//!    the raise touched: the demand's siblings (α) and the instances
//!    using a raised critical edge (β). All other cached values are
//!    untouched and remain exact because their constraint is unchanged.
//! 3. **Monotone activity.** Duals only grow, so a member leaves the
//!    unsatisfied set and never returns within a stage; stage boundaries
//!    re-sweep the cached satisfactions against the new threshold — the
//!    same predicate, same guard, same float compares as the reference.
//!
//! λ is read off the cache at the end of phase 1
//! ([`DualState::min_satisfaction_cached`]) instead of re-walking every
//! path, and communication rounds are accounted through the shared
//! [`step_comm_rounds`] formula also used by `treenet-dist`.

use crate::dual::{DualForm, DualState};
use std::fmt;
use treenet_decomp::LayeredDecomposition;
use treenet_mis::{CsrAdjacency, MisBackend, MisScratch};
use treenet_model::conflict::{ActiveSubgraph, ConflictGraph};
use treenet_model::{InstanceId, Problem, Solution, SolutionTracker};

/// How dual variables are raised for a demand instance with slack `s` and
/// critical set `π(d)` (Sections 3.2 and 6.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RaiseRule {
    /// Unit height: `δ = s/(|π|+1)`; `α += δ`; `β(e) += δ` on critical
    /// edges. Objective grows by at most `(Δ+1)·δ` per raise.
    Unit,
    /// Narrow instances: `δ = s/(1 + 2h|π|²)`; `α += δ`;
    /// `β(e) += 2|π|·δ` on critical edges. Objective grows by at most
    /// `(2Δ²+1)·δ` per raise.
    Narrow,
}

impl RaiseRule {
    /// The matching dual form.
    pub fn dual_form(self) -> DualForm {
        match self {
            RaiseRule::Unit => DualForm::Unit,
            RaiseRule::Narrow => DualForm::Capacitated,
        }
    }

    /// The per-raise objective growth cap as a function of `Δ`:
    /// `Δ+1` (unit, Lemma 3.1) or `2Δ²+1` (narrow, Lemma 6.1).
    pub fn objective_cap(self, delta: usize) -> f64 {
        match self {
            RaiseRule::Unit => (delta + 1) as f64,
            RaiseRule::Narrow => (2 * delta * delta + 1) as f64,
        }
    }

    /// The raise amount `δ(d)` for an instance with slack `slack`,
    /// height `height` (ignored by the unit rule) and `|π(d)| = pi`.
    ///
    /// This is the single definition of the raising arithmetic, shared
    /// with the message-passing processors in `treenet-dist` so the two
    /// executions compute bit-identical floats.
    #[inline]
    pub fn delta_for(self, slack: f64, height: f64, pi: f64) -> f64 {
        match self {
            RaiseRule::Unit => slack / (pi + 1.0),
            RaiseRule::Narrow => slack / (1.0 + 2.0 * height * pi * pi),
        }
    }

    /// The `β` increment applied to each critical edge for a raise of
    /// `delta` with `|π(d)| = pi`: `δ` (unit) or `2|π|·δ` (narrow). Shared
    /// with `treenet-dist` like [`RaiseRule::delta_for`].
    #[inline]
    pub fn beta_increment(self, pi: f64, delta: f64) -> f64 {
        match self {
            RaiseRule::Unit => delta,
            RaiseRule::Narrow => 2.0 * pi * delta,
        }
    }

    /// Raises instance `d` to tightness; returns `δ(d)`.
    ///
    /// Public so oracle tests and alternative runners can replay the
    /// exact raising arithmetic of the framework.
    pub fn raise(
        self,
        problem: &Problem,
        dual: &mut DualState,
        d: InstanceId,
        critical: &[treenet_graph::EdgeId],
    ) -> f64 {
        let inst = problem.instance(d);
        let slack = dual.slack(problem, d);
        debug_assert!(slack > 0.0, "raised instances must be unsatisfied");
        let pi = critical.len() as f64;
        let delta = self.delta_for(slack, problem.height_of(d), pi);
        let beta_inc = self.beta_increment(pi, delta);
        dual.raise_alpha(inst.demand, delta);
        for &e in critical {
            dual.raise_beta(inst.network, e, beta_inc);
        }
        delta
    }
}

/// Configuration of a framework run.
#[derive(Clone, Debug)]
pub struct FrameworkConfig {
    /// Target slackness: run stages until everything is `(1-ε)`-satisfied.
    /// Must lie in `(0, 1)`.
    pub epsilon: f64,
    /// Stage shrink factor `ξ ∈ (0, 1)`: stage `j` targets
    /// `(1-ξ^j)`-satisfaction. Section 5 uses `14/15` for trees, Section 7
    /// uses `8/9` for lines, Section 6 uses `c/(c+hmin)`.
    pub xi: f64,
    /// Seed of the common-randomness hash driving Luby's MIS.
    pub seed: u64,
    /// Safety valve: abort if a stage exceeds this many steps (`None`
    /// disables). Lemma 5.1 bounds steps by `1 + log₂(pmax/pmin)` — the
    /// default in [`FrameworkConfig::default`] is far above that.
    pub max_steps_per_stage: Option<u64>,
    /// Record the raise order for interference-property checking.
    pub record_trace: bool,
    /// Which MIS routine supplies the `Time(MIS)` factor.
    pub mis_backend: MisBackend,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            epsilon: 0.1,
            xi: 14.0 / 15.0,
            seed: 0x5eed,
            max_steps_per_stage: Some(100_000),
            record_trace: false,
            mis_backend: MisBackend::Luby,
        }
    }
}

/// One recorded raise (for interference checking and diagnostics).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RaiseEvent {
    /// The raised instance.
    pub instance: InstanceId,
    /// The raise amount `δ(d)`.
    pub delta: f64,
    /// Epoch (1-based), stage (1-based), step (0-based) of the raise.
    pub at: (u32, u32, u64),
}

/// Counters of a framework run — the quantities Theorems 5.3/6.3/7.1/7.2
/// bound.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Epochs executed (= number of non-empty groups scanned).
    pub epochs: u64,
    /// Total stages across epochs.
    pub stages: u64,
    /// Total steps (framework iterations) across stages.
    pub steps: u64,
    /// Largest step count of any single stage (Lemma 5.1 bounds this by
    /// `O(log(pmax/pmin))`).
    pub max_steps_in_stage: u64,
    /// Total Luby iterations across all MIS computations (`Time(MIS)`
    /// accounting).
    pub mis_rounds: u64,
    /// Number of raise operations.
    pub raises: u64,
    /// Synchronous communication rounds of the equivalent message-passing
    /// execution: per step, two rounds per Luby iteration plus one round
    /// to broadcast the new dual values, plus one round per phase-2 stack
    /// pop.
    pub comm_rounds: u64,
}

/// Result of a framework run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The feasible solution extracted by the second phase.
    pub solution: Solution,
    /// The dual assignment at the end of the first phase.
    pub dual: DualState,
    /// Round/step counters.
    pub stats: RunStats,
    /// The measured slackness λ: the minimum satisfaction ratio over all
    /// participating instances (≥ `1 - ε` when the run succeeds).
    pub lambda: f64,
    /// The critical set size `Δ` of the layered decomposition used.
    pub delta: usize,
    /// The per-raise objective cap `Δ+1` (unit) or `2Δ²+1` (narrow) —
    /// dividing by λ gives the certified approximation factor.
    pub objective_cap: f64,
    /// Raise order, when tracing was requested.
    pub trace: Option<Vec<RaiseEvent>>,
    /// The stack of independent sets as pushed in phase 1 (innermost
    /// last); kept for the distributed equivalence tests.
    pub stack: Vec<StackEntry>,
}

/// One stack entry: the independent set raised in one step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StackEntry {
    /// (epoch, stage, step) tuple identifying the framework iteration.
    pub at: (u32, u32, u64),
    /// The raised independent set.
    pub instances: Vec<InstanceId>,
}

impl Outcome {
    /// Profit `p(S)` of the extracted solution.
    pub fn profit(&self, problem: &Problem) -> f64 {
        self.solution.profit(problem)
    }

    /// Certified upper bound on `p(OPT)`: `val(α,β)/λ` (weak duality).
    pub fn opt_upper_bound(&self) -> f64 {
        self.dual.opt_upper_bound(self.lambda)
    }

    /// Certified approximation factor `opt_upper_bound / p(S)` (∞ for an
    /// empty solution with positive dual value).
    pub fn certified_ratio(&self, problem: &Problem) -> f64 {
        let p = self.profit(problem);
        if p == 0.0 {
            if self.opt_upper_bound() == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.opt_upper_bound() / p
        }
    }
}

/// Framework failure.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameworkError {
    /// `ε` or `ξ` outside `(0, 1)`.
    BadParameters {
        /// Human-readable reason.
        reason: String,
    },
    /// A stage exceeded [`FrameworkConfig::max_steps_per_stage`].
    StageDiverged {
        /// Epoch (1-based).
        epoch: u32,
        /// Stage (1-based).
        stage: u32,
    },
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::BadParameters { reason } => write!(f, "bad parameters: {reason}"),
            FrameworkError::StageDiverged { epoch, stage } => {
                write!(f, "stage {stage} of epoch {epoch} exceeded the step budget")
            }
        }
    }
}

impl std::error::Error for FrameworkError {}

/// Tolerance for satisfaction comparisons: an instance counts as
/// `ξ`-unsatisfied only if its LHS is below `ξ·p(d)` by more than this
/// relative guard, keeping float jitter from spinning the step loop.
/// Public because the message-passing nodes in `treenet-dist` must apply
/// the *same* guard for participation decisions to be bit-identical.
pub const SATISFACTION_GUARD: f64 = 1e-9;

/// Communication rounds of one framework step: two per Luby iteration
/// (`Joined` raises, then `Died` cleanups) plus one step-boundary round
/// broadcasting participation. This is the single definition shared by
/// [`RunStats::comm_rounds`] accounting here and by
/// `treenet-dist`'s schedule accounting, so the two can't silently
/// diverge.
#[inline]
pub fn step_comm_rounds(luby_rounds: u64) -> u64 {
    2 * luby_rounds + 1
}

/// Communication rounds of one in-network termination-detection sweep
/// (convergecast + echo broadcast) over a convergecast forest of the
/// given height: a report climbs `height` hops, the root's verdict
/// descends `height` hops, and the deepest processors need one more
/// round to consume it — `2·height + 1` rounds, or zero when every
/// component is a singleton (each processor *is* its root and resolves
/// the verdict locally, with no messages at all).
///
/// This is the single definition shared by the `treenet-dist` schedule
/// accounting and its metrics tests, so the documented round relation
/// cannot silently drift from the implementation.
#[inline]
pub fn echo_sweep_rounds(height: u32) -> u64 {
    if height == 0 {
        0
    } else {
        2 * height as u64 + 1
    }
}

/// Upper bound on the link-layer recovery slots the reliable-delivery
/// sublayer (`treenet-netsim`'s loss-model path) may add to a run that
/// suffered `dropped` dropped and `delayed` delayed transmissions under
/// a sliding send window of `window` in-flight copies per packet:
/// `2 · (dropped + delayed)` for `window ≥ 2`, degrading to the
/// stop-and-wait `4 · (dropped + delayed)` at `window ≤ 1`.
///
/// Derivation. A round only enters recovery when its first slot lost or
/// delayed a transmission, so recovery *episodes* number at most
/// `dropped + delayed`. With `window ≥ 2` the ARQ retransmits an
/// unacknowledged packet in **every** recovery slot until `window`
/// copies are in flight (eager pipelining), so each slot a packet stays
/// undelivered consumes one fresh loss event of that packet — copies are
/// only re-lost, never left waiting on a timer — and a delayed copy
/// occupies exactly one slot before landing. Past the window the
/// two-slot pacing timer takes over, costing at most two slots per
/// further event. Either way every charged slot is attributable to a
/// distinct drop or delay plus at most one trailing pacing slot per
/// event: `slots ≤ 2·(dropped + delayed)`. At `window ≤ 1` the eager
/// phase is empty and only the two-slot timer drives recovery; any two
/// consecutive slots without a fresh loss event finish an episode, so an
/// episode spans at most `2·(events_inside + 1)` slots and summing gives
/// `slots ≤ 2·events + 2·episodes ≤ 4·(dropped + delayed)`. In both
/// regimes the bound is zero when nothing was lost — the zero-overhead
/// passthrough at `p = 0`.
///
/// `dropped`/`delayed` count *transmissions* (originals, retransmissions
/// and proactive redundant copies alike), which only loosens the bound.
/// This is the single shared definition used by the fault-injection
/// proptests in `treenet-dist` and the `exp_f_dist_loss` experiment, so
/// the documented bound cannot drift from what is asserted.
#[inline]
pub fn retransmit_round_bound(dropped: u64, delayed: u64, window: u64) -> u64 {
    let per_event = if window >= 2 { 2u64 } else { 4u64 };
    per_event.saturating_mul(dropped.saturating_add(delayed))
}

/// Communication rounds of the charged BFS/leader-election prologue that
/// builds the convergecast forest in-network by flooding
/// `(candidate root, distance)` pairs: a node at depth `d` of the final
/// forest adopts its true `(root, d)` label by round `d + 1` (the
/// minimum root id travels one hop per round and every improvement is
/// rebroadcast), so after `height + 1` rounds all labels are final and
/// one more round delivers the last rebroadcasts — after which every
/// node also knows its neighbors' final distances and can resolve its
/// parent (smallest-id neighbor one layer up) locally. `height + 2`
/// rounds in total, or zero when every component is a singleton (an
/// isolated processor is its own root and sends nothing).
#[inline]
pub fn prologue_rounds(height: u32) -> u64 {
    if height == 0 {
        0
    } else {
        height as u64 + 2
    }
}

/// Runs the two-phase framework over `participants` (pass all instances
/// for the plain algorithm; subsets are used by the wide/narrow combiner).
///
/// # Errors
///
/// [`FrameworkError::BadParameters`] for out-of-range `ε`/`ξ`;
/// [`FrameworkError::StageDiverged`] if a stage exceeds the step budget
/// (indicates a broken layered decomposition).
pub fn run_two_phase(
    problem: &Problem,
    layers: &LayeredDecomposition,
    rule: RaiseRule,
    config: &FrameworkConfig,
    participants: &[InstanceId],
) -> Result<Outcome, FrameworkError> {
    validate(config)?;
    // b = smallest integer with ξ^b ≤ ε.
    let stages_per_epoch = stages_for(config.epsilon, config.xi);

    let mut dual = DualState::new(problem, rule.dual_form());
    dual.enable_cache(problem);
    let mut stats = RunStats::default();
    let mut stack: Vec<StackEntry> = Vec::new();
    let mut trace: Option<Vec<RaiseEvent>> = config.record_trace.then(Vec::new);

    let num_groups = layers.num_groups() as u32;
    let groups = group_members(layers, participants, num_groups);

    // Scratch shared across every epoch/stage/step — after the first
    // steps at the high-water mark, the steady-state step loop performs
    // no allocation beyond the raised sets it hands to the stack.
    let mut view = ActiveSubgraph::new();
    let mut mis_scratch = MisScratch::default();
    let mut mis_buf: Vec<u32> = Vec::new();
    let mut epoch_keys: Vec<u64> = Vec::new();
    let mut is_unsat: Vec<bool> = Vec::new();
    let mut member_of: Vec<u32> = vec![OUTSIDE; problem.instance_count()];
    // Current-epoch members whose cached LHS went stale during the step;
    // refreshed (once each) and re-bucketed at the step boundary.
    let mut stale_members: Vec<u32> = Vec::new();
    // Members that can still participate in the current epoch (below the
    // final stage threshold at epoch start).
    let mut active_members: Vec<InstanceId> = Vec::new();

    // ---- First phase: epochs / stages / steps (Figure 7). ----
    for k in 1..=num_groups {
        let members = &groups[k as usize];
        if members.is_empty() {
            continue;
        }
        stats.epochs += 1;
        // Epoch filter: satisfaction only ever grows, so a member already
        // `(1-ξ^b)`-satisfied (the *final* stage threshold) can never be
        // unsatisfied at any stage of this epoch — raises from earlier
        // epochs typically retire most of a group before it starts. Only
        // the potential participants enter the epoch graph.
        let final_threshold = 1.0 - config.xi.powi(stages_per_epoch as i32);
        active_members.clear();
        for &d in members {
            dual.refresh_if_stale(problem, d);
            if dual.cached_satisfaction(problem, d) < final_threshold - SATISFACTION_GUARD {
                active_members.push(d);
            }
        }
        // Epoch setup — one conflict-graph build, one key table, one
        // member index for the whole epoch; every step below is a filter.
        let graph = ConflictGraph::build(problem, &active_members);
        epoch_keys.clear();
        epoch_keys.extend(
            active_members
                .iter()
                .map(|&d| problem.instance(d).canonical_key()),
        );
        for (i, &d) in active_members.iter().enumerate() {
            member_of[d.index()] = i as u32;
        }
        is_unsat.clear();
        is_unsat.resize(active_members.len(), false);

        for j in 1..=stages_per_epoch {
            stats.stages += 1;
            let threshold = 1.0 - config.xi.powi(j as i32);
            // Stage sweep: one pass over cached satisfactions re-buckets
            // the potential participants against the new threshold — no
            // path walks (the cache is fresh for epoch members).
            let mut unsat_count = 0usize;
            for (i, &d) in active_members.iter().enumerate() {
                let unsat = dual.cached_satisfaction(problem, d) < threshold - SATISFACTION_GUARD;
                is_unsat[i] = unsat;
                unsat_count += unsat as usize;
            }
            let mut steps_this_stage = 0u64;
            while unsat_count > 0 {
                if let Some(limit) = config.max_steps_per_stage {
                    if steps_this_stage >= limit {
                        return Err(FrameworkError::StageDiverged { epoch: k, stage: j });
                    }
                }
                // MIS of the active subgraph (the still-unsatisfied
                // members), with common randomness tagged by
                // (epoch, stage, step). The view's adjacency and
                // canonical-key table are byte-identical to a
                // from-scratch build over the filtered members.
                view.rebuild(&graph, &epoch_keys, &is_unsat);
                let tag = mis_tag(k, j, steps_this_stage);
                let rounds = config.mis_backend.run_with(
                    &CsrAdjacency::new(view.offsets(), view.adjacency()),
                    view.keys(),
                    config.seed,
                    tag,
                    &mut mis_scratch,
                    &mut mis_buf,
                );
                stats.mis_rounds += rounds;
                // Raise every MIS member; they are pairwise non-conflicting
                // so the raises commute (the parallelism of the framework).
                let raised: Vec<InstanceId> = mis_buf
                    .iter()
                    .map(|&v| active_members[view.base_vertex(v as usize)])
                    .collect();
                for &d in &raised {
                    let critical = layers.critical_of(d);
                    let delta = rule.raise(problem, &mut dual, d, critical);
                    stats.raises += 1;
                    if let Some(t) = trace.as_mut() {
                        t.push(RaiseEvent {
                            instance: d,
                            delta,
                            at: (k, j, steps_this_stage),
                        });
                    }
                    // Mark exactly the constraints this raise touched as
                    // stale — the demand's siblings (α) and every
                    // instance using a raised critical edge (β). Marking
                    // is an O(1) flag; the path re-walk happens at most
                    // once per instance per step, in the boundary sweep
                    // below.
                    let inst = problem.instance(d);
                    let network = inst.network;
                    for &sib in problem.instances_of(inst.demand) {
                        mark_stale(&mut dual, &member_of, &mut stale_members, sib);
                    }
                    for &e in critical {
                        for &user in problem.instances_using(network, e) {
                            mark_stale(&mut dual, &member_of, &mut stale_members, user);
                        }
                    }
                }
                // Step-boundary sweep: refresh each stale member once and
                // move it between the unsatisfied/satisfied buckets.
                // (Non-members stay flagged and refresh lazily at their
                // epoch's stage sweep or the final λ read.)
                for &idx in &stale_members {
                    let d = active_members[idx as usize];
                    dual.refresh_if_stale(problem, d);
                    let now = dual.cached_satisfaction(problem, d) < threshold - SATISFACTION_GUARD;
                    let was = &mut is_unsat[idx as usize];
                    if *was != now {
                        *was = now;
                        if now {
                            unsat_count += 1;
                        } else {
                            unsat_count -= 1;
                        }
                    }
                }
                stale_members.clear();
                stack.push(StackEntry {
                    at: (k, j, steps_this_stage),
                    instances: raised,
                });
                stats.comm_rounds += step_comm_rounds(rounds);
                steps_this_stage += 1;
            }
            stats.steps += steps_this_stage;
            stats.max_steps_in_stage = stats.max_steps_in_stage.max(steps_this_stage);
        }
        // Release the member index for the next epoch.
        for &d in &active_members {
            member_of[d.index()] = OUTSIDE;
        }
    }

    let solution = extract_solution(problem, &stack, &mut stats);
    // λ memoized from the cache — bitwise equal to re-walking every path.
    let lambda = dual.min_satisfaction_cached(problem, participants);
    Ok(Outcome {
        solution,
        dual,
        stats,
        lambda,
        delta: layers.delta(),
        objective_cap: rule.objective_cap(layers.delta()),
        trace,
        stack,
    })
}

/// Sentinel in the epoch member index for instances outside the current
/// epoch group.
const OUTSIDE: u32 = u32::MAX;

/// Flags `d`'s cached LHS as stale after a raise; when `d` belongs to the
/// current epoch group (and was not already flagged this step), its
/// member index is queued for the step-boundary refresh sweep.
#[inline]
fn mark_stale(
    dual: &mut DualState,
    member_of: &[u32],
    stale_members: &mut Vec<u32>,
    d: InstanceId,
) {
    if dual.is_stale(d) {
        return;
    }
    dual.mark_stale(d);
    let idx = member_of[d.index()];
    if idx != OUTSIDE {
        stale_members.push(idx);
    }
}

fn validate(config: &FrameworkConfig) -> Result<(), FrameworkError> {
    if !(config.epsilon > 0.0 && config.epsilon < 1.0) {
        return Err(FrameworkError::BadParameters {
            reason: format!("epsilon must lie in (0,1), got {}", config.epsilon),
        });
    }
    if !(config.xi > 0.0 && config.xi < 1.0) {
        return Err(FrameworkError::BadParameters {
            reason: format!("xi must lie in (0,1), got {}", config.xi),
        });
    }
    Ok(())
}

/// Buckets `participants` into their epoch groups (index 0 unused).
fn group_members(
    layers: &LayeredDecomposition,
    participants: &[InstanceId],
    num_groups: u32,
) -> Vec<Vec<InstanceId>> {
    let mut groups: Vec<Vec<InstanceId>> = vec![Vec::new(); num_groups as usize + 1];
    for &d in participants {
        groups[layers.group_of(d) as usize].push(d);
    }
    groups
}

/// The second phase: reverse greedy over the stack, one communication
/// round per pop.
fn extract_solution(problem: &Problem, stack: &[StackEntry], stats: &mut RunStats) -> Solution {
    let mut tracker = SolutionTracker::new(problem);
    for entry in stack.iter().rev() {
        for &d in &entry.instances {
            let _ = tracker.try_add(d);
        }
        stats.comm_rounds += 1;
    }
    tracker.into_solution()
}

/// The from-scratch formulation of the first phase, kept as the
/// executable specification of [`run_two_phase`]: every step rebuilds
/// the conflict graph of the unsatisfied members and rescans the whole
/// group's satisfaction by re-walking path edges. Produces bit-identical
/// outcomes (solutions, duals, λ, stack, stats) at a per-step cost
/// proportional to the *group* rather than the active set — the
/// `exp_perf_phase1` benchmark measures the gap, and the proptest in
/// `crates/core/tests/incremental_oracle.rs` pins the equivalence.
///
/// # Errors
///
/// Same contract as [`run_two_phase`].
pub fn run_two_phase_reference(
    problem: &Problem,
    layers: &LayeredDecomposition,
    rule: RaiseRule,
    config: &FrameworkConfig,
    participants: &[InstanceId],
) -> Result<Outcome, FrameworkError> {
    validate(config)?;
    let stages_per_epoch = stages_for(config.epsilon, config.xi);

    let mut dual = DualState::new(problem, rule.dual_form());
    let mut stats = RunStats::default();
    let mut stack: Vec<StackEntry> = Vec::new();
    let mut trace: Option<Vec<RaiseEvent>> = config.record_trace.then(Vec::new);

    let num_groups = layers.num_groups() as u32;
    let groups = group_members(layers, participants, num_groups);

    for k in 1..=num_groups {
        let members = &groups[k as usize];
        if members.is_empty() {
            continue;
        }
        stats.epochs += 1;
        for j in 1..=stages_per_epoch {
            stats.stages += 1;
            let threshold = 1.0 - config.xi.powi(j as i32);
            let mut steps_this_stage = 0u64;
            loop {
                // U = group members still (1-ξ^j)-unsatisfied.
                let unsatisfied: Vec<InstanceId> = members
                    .iter()
                    .copied()
                    .filter(|&d| dual.satisfaction(problem, d) < threshold - SATISFACTION_GUARD)
                    .collect();
                if unsatisfied.is_empty() {
                    break;
                }
                if let Some(limit) = config.max_steps_per_stage {
                    if steps_this_stage >= limit {
                        return Err(FrameworkError::StageDiverged { epoch: k, stage: j });
                    }
                }
                let graph = ConflictGraph::build(problem, &unsatisfied);
                let adj: Vec<Vec<u32>> = (0..graph.len())
                    .map(|v| graph.neighbors(v).to_vec())
                    .collect();
                // Canonical keys (not dense ids) so the message-passing
                // implementation draws identical common randomness.
                let keys: Vec<u64> = graph
                    .instances()
                    .iter()
                    .map(|&d| problem.instance(d).canonical_key())
                    .collect();
                let tag = mis_tag(k, j, steps_this_stage);
                let outcome = config.mis_backend.run(&adj, &keys, config.seed, tag);
                stats.mis_rounds += outcome.rounds;
                let raised: Vec<InstanceId> = outcome
                    .mis
                    .iter()
                    .map(|&v| graph.instance(v as usize))
                    .collect();
                for &d in &raised {
                    let delta = rule.raise(problem, &mut dual, d, layers.critical_of(d));
                    stats.raises += 1;
                    if let Some(t) = trace.as_mut() {
                        t.push(RaiseEvent {
                            instance: d,
                            delta,
                            at: (k, j, steps_this_stage),
                        });
                    }
                }
                stack.push(StackEntry {
                    at: (k, j, steps_this_stage),
                    instances: raised,
                });
                stats.comm_rounds += step_comm_rounds(outcome.rounds);
                steps_this_stage += 1;
            }
            stats.steps += steps_this_stage;
            stats.max_steps_in_stage = stats.max_steps_in_stage.max(steps_this_stage);
        }
    }

    let solution = extract_solution(problem, &stack, &mut stats);
    let lambda = dual.min_satisfaction(problem, participants);
    Ok(Outcome {
        solution,
        dual,
        stats,
        lambda,
        delta: layers.delta(),
        objective_cap: rule.objective_cap(layers.delta()),
        trace,
        stack,
    })
}

/// The MIS namespace tag for (epoch, stage, step): all processors derive
/// the same tag from the public schedule, so common randomness is shared.
pub fn mis_tag(epoch: u32, stage: u32, step: u64) -> u64 {
    ((epoch as u64) << 48) ^ ((stage as u64) << 32) ^ step
}

/// Number of stages per epoch: the smallest `b` with `ξ^b ≤ ε` (so the
/// last stage reaches `(1-ε)`-satisfaction). Public, so every processor
/// of the message-passing implementation derives the same schedule.
///
/// # Panics
///
/// Panics unless both parameters lie in `(0, 1)`.
pub fn stages_for(epsilon: f64, xi: f64) -> u32 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
    assert!(xi > 0.0 && xi < 1.0, "xi in (0,1)");
    (epsilon.ln() / xi.ln()).ceil().max(1.0) as u32
}

/// Checks the interference property (Section 3.2) on a recorded trace:
/// for every pair of overlapping instances `d₁` raised before `d₂`,
/// `path(d₂)` must include a critical edge of `d₁`. Returns the first
/// violating pair, if any. `O(R²)` — for tests.
pub fn check_interference(
    problem: &Problem,
    layers: &LayeredDecomposition,
    trace: &[RaiseEvent],
) -> Option<(InstanceId, InstanceId)> {
    for (i, first) in trace.iter().enumerate() {
        let d1 = problem.instance(first.instance);
        for second in &trace[i + 1..] {
            // Simultaneous raises (same step) are independent by
            // construction; the property concerns strictly-later raises.
            if second.at == first.at {
                continue;
            }
            let d2 = problem.instance(second.instance);
            if !d1.overlaps(d2) {
                continue;
            }
            if !layers
                .critical_of(first.instance)
                .iter()
                .any(|&e| d2.active_on(e))
            {
                return Some((first.instance, second.instance));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_decomp::Strategy;
    use treenet_model::workload::TreeWorkload;

    fn small_problem(seed: u64) -> Problem {
        TreeWorkload::new(16, 14)
            .with_networks(2)
            .with_profit_ratio(8.0)
            .generate(&mut SmallRng::seed_from_u64(seed))
    }

    fn run(problem: &Problem, seed: u64) -> (LayeredDecomposition, Outcome) {
        let layers = LayeredDecomposition::for_trees(problem, Strategy::Ideal);
        let config = FrameworkConfig {
            seed,
            record_trace: true,
            ..FrameworkConfig::default()
        };
        let participants: Vec<InstanceId> = problem.instances().map(|d| d.id).collect();
        let outcome =
            run_two_phase(problem, &layers, RaiseRule::Unit, &config, &participants).unwrap();
        (layers, outcome)
    }

    #[test]
    fn produces_feasible_solutions() {
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let (_, outcome) = run(&p, seed);
            assert!(outcome.solution.verify(&p).is_ok(), "seed {seed}");
            assert!(!outcome.solution.is_empty(), "seed {seed}: empty solution");
        }
    }

    #[test]
    fn all_instances_end_lambda_satisfied() {
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let (_, outcome) = run(&p, seed);
            assert!(
                outcome.lambda >= 1.0 - 0.1 - 1e-9,
                "seed {seed}: λ = {}",
                outcome.lambda
            );
        }
    }

    #[test]
    fn dual_value_bounded_by_cap_times_profit() {
        // The heart of Lemma 3.1's proof: val(α,β) ≤ (Δ+1)·p(S).
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let (_, outcome) = run(&p, seed);
            let profit = outcome.profit(&p);
            assert!(
                outcome.dual.value() <= outcome.objective_cap * profit + 1e-6,
                "seed {seed}: val {} > cap {} · p(S) {}",
                outcome.dual.value(),
                outcome.objective_cap,
                profit
            );
        }
    }

    #[test]
    fn interference_property_holds_on_trace() {
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let (layers, outcome) = run(&p, seed);
            let trace = outcome.trace.as_ref().unwrap();
            assert_eq!(check_interference(&p, &layers, trace), None, "seed {seed}");
        }
    }

    #[test]
    fn certified_ratio_within_theorem_bound() {
        // Theorem 5.3: ratio ≤ (Δ+1)/λ = 7/(1-ε).
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let (_, outcome) = run(&p, seed);
            let bound = outcome.objective_cap / outcome.lambda;
            assert!(
                outcome.certified_ratio(&p) <= bound + 1e-6,
                "seed {seed}: {} > {}",
                outcome.certified_ratio(&p),
                bound
            );
        }
    }

    #[test]
    fn steps_per_stage_within_lemma_bound() {
        // Lemma 5.1: ≤ 1 + log₂(pmax/pmin) steps per stage (+1 slack for
        // the final empty check).
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let (pmin, pmax) = p.profit_bounds();
            let (_, outcome) = run(&p, seed);
            let bound = 2.0 + (pmax / pmin).log2().max(0.0);
            assert!(
                (outcome.stats.max_steps_in_stage as f64) <= bound,
                "seed {seed}: {} steps > {}",
                outcome.stats.max_steps_in_stage,
                bound
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = small_problem(3);
        let (_, a) = run(&p, 11);
        let (_, b) = run(&p, 11);
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.stats, b.stats);
        let (_, c) = run(&p, 12);
        // Different seeds may change the MIS choices; stats usually differ.
        let _ = c;
    }

    #[test]
    fn rejects_bad_parameters() {
        let p = small_problem(0);
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        let participants: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
        for (eps, xi) in [(0.0, 0.9), (1.0, 0.9), (0.1, 0.0), (0.1, 1.0)] {
            let config = FrameworkConfig {
                epsilon: eps,
                xi,
                ..FrameworkConfig::default()
            };
            assert!(matches!(
                run_two_phase(&p, &layers, RaiseRule::Unit, &config, &participants),
                Err(FrameworkError::BadParameters { .. })
            ));
        }
    }

    #[test]
    fn empty_participants_yield_empty_outcome() {
        let p = small_problem(1);
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        let outcome = run_two_phase(
            &p,
            &layers,
            RaiseRule::Unit,
            &FrameworkConfig::default(),
            &[],
        )
        .unwrap();
        assert!(outcome.solution.is_empty());
        assert_eq!(outcome.stats.raises, 0);
        assert_eq!(outcome.lambda, 1.0);
        assert_eq!(outcome.certified_ratio(&p), 1.0);
    }

    #[test]
    fn incremental_equals_reference_bitwise() {
        // The executable spec: the incremental engine reproduces the
        // from-scratch formulation exactly — stack, stats, solution, and
        // bit-identical λ.
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
            let config = FrameworkConfig {
                seed,
                record_trace: true,
                ..FrameworkConfig::default()
            };
            let participants: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
            let fast = run_two_phase(&p, &layers, RaiseRule::Unit, &config, &participants).unwrap();
            let oracle =
                run_two_phase_reference(&p, &layers, RaiseRule::Unit, &config, &participants)
                    .unwrap();
            assert_eq!(fast.solution, oracle.solution, "seed {seed}");
            assert_eq!(fast.stats, oracle.stats, "seed {seed}");
            assert_eq!(fast.stack, oracle.stack, "seed {seed}");
            assert_eq!(fast.trace, oracle.trace, "seed {seed}");
            assert_eq!(
                fast.lambda.to_bits(),
                oracle.lambda.to_bits(),
                "seed {seed}: λ {} vs {}",
                fast.lambda,
                oracle.lambda
            );
            assert_eq!(fast.dual.value().to_bits(), oracle.dual.value().to_bits());
        }
    }

    #[test]
    fn comm_round_formula_is_shared() {
        // One step = 2 rounds per Luby iteration + 1 boundary broadcast.
        assert_eq!(step_comm_rounds(0), 1);
        assert_eq!(step_comm_rounds(1), 3);
        assert_eq!(step_comm_rounds(5), 11);
        // The accounting in RunStats::comm_rounds follows the formula:
        // a run's total equals Σ steps step_comm_rounds(luby) + pops, so
        // with the stack length known we can cross-check one run.
        let p = small_problem(2);
        let (_, outcome) = run(&p, 2);
        let pops = outcome.stack.len() as u64;
        let steps = outcome.stats.steps;
        // comm_rounds = Σ (2·luby_i + 1) + pops = 2·mis_rounds + steps + pops.
        assert_eq!(
            outcome.stats.comm_rounds,
            2 * outcome.stats.mis_rounds + steps + pops
        );
    }

    #[test]
    fn retransmit_round_bound_formula() {
        // Zero loss events ⇒ zero recovery slots (the p=0 passthrough),
        // at any window.
        assert_eq!(retransmit_round_bound(0, 0, 1), 0);
        assert_eq!(retransmit_round_bound(0, 0, 4), 0);
        // Stop-and-wait (window ≤ 1): 4 slots per loss event, drops and
        // delays alike.
        assert_eq!(retransmit_round_bound(1, 0, 1), 4);
        assert_eq!(retransmit_round_bound(0, 1, 0), 4);
        assert_eq!(retransmit_round_bound(3, 2, 1), 20);
        // Windowed ARQ (window ≥ 2): eager pipelining halves the bound.
        assert_eq!(retransmit_round_bound(1, 0, 2), 2);
        assert_eq!(retransmit_round_bound(0, 1, 4), 2);
        assert_eq!(retransmit_round_bound(3, 2, 8), 10);
        // Saturating at the extremes instead of wrapping.
        assert_eq!(retransmit_round_bound(u64::MAX, 1, 1), u64::MAX);
        assert_eq!(retransmit_round_bound(u64::MAX / 2 + 1, 0, 4), u64::MAX);
    }

    #[test]
    fn prologue_round_formula() {
        // Singleton components: every processor is its own root, no
        // flood at all.
        assert_eq!(prologue_rounds(0), 0);
        // Height h: labels final by round h+1, last rebroadcasts land in
        // round h+2.
        assert_eq!(prologue_rounds(1), 3);
        assert_eq!(prologue_rounds(12), 14);
    }

    #[test]
    fn mis_tags_are_unique_per_tuple() {
        let mut seen = std::collections::BTreeSet::new();
        for k in 1..5u32 {
            for j in 1..5u32 {
                for s in 0..5u64 {
                    assert!(seen.insert(mis_tag(k, j, s)));
                }
            }
        }
    }

    #[test]
    fn error_display() {
        let e = FrameworkError::StageDiverged { epoch: 2, stage: 3 };
        assert!(e.to_string().contains("stage 3"));
        let e = FrameworkError::BadParameters { reason: "x".into() };
        assert!(e.to_string().contains("x"));
    }
}

//! The two-phase primal-dual framework (Section 3.2) and the distributed
//! first-phase schedule of Section 5 (epochs → stages → steps).
//!
//! The runner is parametrized by
//!
//! * a [`LayeredDecomposition`] supplying the epoch grouping and the
//!   critical edges `π(d)`,
//! * a [`RaiseRule`] — the unit scheme of Section 3 or the narrow scheme
//!   of Section 6.1,
//! * a [`FrameworkConfig`] fixing `ε`, the stage factor `ξ`, and the
//!   common-randomness seed.
//!
//! Epoch `k` processes group `G_k`. Stage `j` of an epoch drives every
//! group member to `(1 - ξ^j)`-satisfaction; each step computes an MIS of
//! the still-unsatisfied members' conflict graph (Luby with common
//! randomness — bit-identical to the message-passing execution in
//! `treenet-dist`) and raises all its members simultaneously, pushing the
//! set onto the framework stack. The second phase pops the stack and
//! greedily extracts a feasible solution.

use crate::dual::{DualForm, DualState};
use std::fmt;
use treenet_decomp::LayeredDecomposition;
use treenet_mis::MisBackend;
use treenet_model::conflict::ConflictGraph;
use treenet_model::{InstanceId, Problem, Solution, SolutionTracker};

/// How dual variables are raised for a demand instance with slack `s` and
/// critical set `π(d)` (Sections 3.2 and 6.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RaiseRule {
    /// Unit height: `δ = s/(|π|+1)`; `α += δ`; `β(e) += δ` on critical
    /// edges. Objective grows by at most `(Δ+1)·δ` per raise.
    Unit,
    /// Narrow instances: `δ = s/(1 + 2h|π|²)`; `α += δ`;
    /// `β(e) += 2|π|·δ` on critical edges. Objective grows by at most
    /// `(2Δ²+1)·δ` per raise.
    Narrow,
}

impl RaiseRule {
    /// The matching dual form.
    pub fn dual_form(self) -> DualForm {
        match self {
            RaiseRule::Unit => DualForm::Unit,
            RaiseRule::Narrow => DualForm::Capacitated,
        }
    }

    /// The per-raise objective growth cap as a function of `Δ`:
    /// `Δ+1` (unit, Lemma 3.1) or `2Δ²+1` (narrow, Lemma 6.1).
    pub fn objective_cap(self, delta: usize) -> f64 {
        match self {
            RaiseRule::Unit => (delta + 1) as f64,
            RaiseRule::Narrow => (2 * delta * delta + 1) as f64,
        }
    }

    /// Raises instance `d` to tightness; returns `δ(d)`.
    fn raise(
        self,
        problem: &Problem,
        dual: &mut DualState,
        d: InstanceId,
        critical: &[treenet_graph::EdgeId],
    ) -> f64 {
        let inst = problem.instance(d);
        let slack = dual.slack(problem, d);
        debug_assert!(slack > 0.0, "raised instances must be unsatisfied");
        let pi = critical.len() as f64;
        match self {
            RaiseRule::Unit => {
                let delta = slack / (pi + 1.0);
                dual.raise_alpha(inst.demand, delta);
                for &e in critical {
                    dual.raise_beta(inst.network, e, delta);
                }
                delta
            }
            RaiseRule::Narrow => {
                let h = problem.height_of(d);
                let delta = slack / (1.0 + 2.0 * h * pi * pi);
                dual.raise_alpha(inst.demand, delta);
                for &e in critical {
                    dual.raise_beta(inst.network, e, 2.0 * pi * delta);
                }
                delta
            }
        }
    }
}

/// Configuration of a framework run.
#[derive(Clone, Debug)]
pub struct FrameworkConfig {
    /// Target slackness: run stages until everything is `(1-ε)`-satisfied.
    /// Must lie in `(0, 1)`.
    pub epsilon: f64,
    /// Stage shrink factor `ξ ∈ (0, 1)`: stage `j` targets
    /// `(1-ξ^j)`-satisfaction. Section 5 uses `14/15` for trees, Section 7
    /// uses `8/9` for lines, Section 6 uses `c/(c+hmin)`.
    pub xi: f64,
    /// Seed of the common-randomness hash driving Luby's MIS.
    pub seed: u64,
    /// Safety valve: abort if a stage exceeds this many steps (`None`
    /// disables). Lemma 5.1 bounds steps by `1 + log₂(pmax/pmin)` — the
    /// default in [`FrameworkConfig::default`] is far above that.
    pub max_steps_per_stage: Option<u64>,
    /// Record the raise order for interference-property checking.
    pub record_trace: bool,
    /// Which MIS routine supplies the `Time(MIS)` factor.
    pub mis_backend: MisBackend,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            epsilon: 0.1,
            xi: 14.0 / 15.0,
            seed: 0x5eed,
            max_steps_per_stage: Some(100_000),
            record_trace: false,
            mis_backend: MisBackend::Luby,
        }
    }
}

/// One recorded raise (for interference checking and diagnostics).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RaiseEvent {
    /// The raised instance.
    pub instance: InstanceId,
    /// The raise amount `δ(d)`.
    pub delta: f64,
    /// Epoch (1-based), stage (1-based), step (0-based) of the raise.
    pub at: (u32, u32, u64),
}

/// Counters of a framework run — the quantities Theorems 5.3/6.3/7.1/7.2
/// bound.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Epochs executed (= number of non-empty groups scanned).
    pub epochs: u64,
    /// Total stages across epochs.
    pub stages: u64,
    /// Total steps (framework iterations) across stages.
    pub steps: u64,
    /// Largest step count of any single stage (Lemma 5.1 bounds this by
    /// `O(log(pmax/pmin))`).
    pub max_steps_in_stage: u64,
    /// Total Luby iterations across all MIS computations (`Time(MIS)`
    /// accounting).
    pub mis_rounds: u64,
    /// Number of raise operations.
    pub raises: u64,
    /// Synchronous communication rounds of the equivalent message-passing
    /// execution: per step, two rounds per Luby iteration plus one round
    /// to broadcast the new dual values, plus one round per phase-2 stack
    /// pop.
    pub comm_rounds: u64,
}

/// Result of a framework run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The feasible solution extracted by the second phase.
    pub solution: Solution,
    /// The dual assignment at the end of the first phase.
    pub dual: DualState,
    /// Round/step counters.
    pub stats: RunStats,
    /// The measured slackness λ: the minimum satisfaction ratio over all
    /// participating instances (≥ `1 - ε` when the run succeeds).
    pub lambda: f64,
    /// The critical set size `Δ` of the layered decomposition used.
    pub delta: usize,
    /// The per-raise objective cap `Δ+1` (unit) or `2Δ²+1` (narrow) —
    /// dividing by λ gives the certified approximation factor.
    pub objective_cap: f64,
    /// Raise order, when tracing was requested.
    pub trace: Option<Vec<RaiseEvent>>,
    /// The stack of independent sets as pushed in phase 1 (innermost
    /// last); kept for the distributed equivalence tests.
    pub stack: Vec<StackEntry>,
}

/// One stack entry: the independent set raised in one step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StackEntry {
    /// (epoch, stage, step) tuple identifying the framework iteration.
    pub at: (u32, u32, u64),
    /// The raised independent set.
    pub instances: Vec<InstanceId>,
}

impl Outcome {
    /// Profit `p(S)` of the extracted solution.
    pub fn profit(&self, problem: &Problem) -> f64 {
        self.solution.profit(problem)
    }

    /// Certified upper bound on `p(OPT)`: `val(α,β)/λ` (weak duality).
    pub fn opt_upper_bound(&self) -> f64 {
        self.dual.opt_upper_bound(self.lambda)
    }

    /// Certified approximation factor `opt_upper_bound / p(S)` (∞ for an
    /// empty solution with positive dual value).
    pub fn certified_ratio(&self, problem: &Problem) -> f64 {
        let p = self.profit(problem);
        if p == 0.0 {
            if self.opt_upper_bound() == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.opt_upper_bound() / p
        }
    }
}

/// Framework failure.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameworkError {
    /// `ε` or `ξ` outside `(0, 1)`.
    BadParameters {
        /// Human-readable reason.
        reason: String,
    },
    /// A stage exceeded [`FrameworkConfig::max_steps_per_stage`].
    StageDiverged {
        /// Epoch (1-based).
        epoch: u32,
        /// Stage (1-based).
        stage: u32,
    },
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::BadParameters { reason } => write!(f, "bad parameters: {reason}"),
            FrameworkError::StageDiverged { epoch, stage } => {
                write!(f, "stage {stage} of epoch {epoch} exceeded the step budget")
            }
        }
    }
}

impl std::error::Error for FrameworkError {}

/// Tolerance for satisfaction comparisons: an instance counts as
/// `ξ`-unsatisfied only if its LHS is below `ξ·p(d)` by more than this
/// relative guard, keeping float jitter from spinning the step loop.
const SATISFACTION_GUARD: f64 = 1e-9;

/// Runs the two-phase framework over `participants` (pass all instances
/// for the plain algorithm; subsets are used by the wide/narrow combiner).
///
/// # Errors
///
/// [`FrameworkError::BadParameters`] for out-of-range `ε`/`ξ`;
/// [`FrameworkError::StageDiverged`] if a stage exceeds the step budget
/// (indicates a broken layered decomposition).
pub fn run_two_phase(
    problem: &Problem,
    layers: &LayeredDecomposition,
    rule: RaiseRule,
    config: &FrameworkConfig,
    participants: &[InstanceId],
) -> Result<Outcome, FrameworkError> {
    if !(config.epsilon > 0.0 && config.epsilon < 1.0) {
        return Err(FrameworkError::BadParameters {
            reason: format!("epsilon must lie in (0,1), got {}", config.epsilon),
        });
    }
    if !(config.xi > 0.0 && config.xi < 1.0) {
        return Err(FrameworkError::BadParameters {
            reason: format!("xi must lie in (0,1), got {}", config.xi),
        });
    }
    // b = smallest integer with ξ^b ≤ ε.
    let stages_per_epoch = stages_for(config.epsilon, config.xi);

    let mut dual = DualState::new(problem, rule.dual_form());
    let mut stats = RunStats::default();
    let mut stack: Vec<StackEntry> = Vec::new();
    let mut trace: Option<Vec<RaiseEvent>> = config.record_trace.then(Vec::new);

    // Group members once.
    let num_groups = layers.num_groups() as u32;
    let mut groups: Vec<Vec<InstanceId>> = vec![Vec::new(); num_groups as usize + 1];
    for &d in participants {
        groups[layers.group_of(d) as usize].push(d);
    }

    // ---- First phase: epochs / stages / steps (Figure 7). ----
    for k in 1..=num_groups {
        let members = &groups[k as usize];
        if members.is_empty() {
            continue;
        }
        stats.epochs += 1;
        for j in 1..=stages_per_epoch {
            stats.stages += 1;
            let threshold = 1.0 - config.xi.powi(j as i32);
            let mut steps_this_stage = 0u64;
            loop {
                // U = group members still (1-ξ^j)-unsatisfied.
                let unsatisfied: Vec<InstanceId> = members
                    .iter()
                    .copied()
                    .filter(|&d| dual.satisfaction(problem, d) < threshold - SATISFACTION_GUARD)
                    .collect();
                if unsatisfied.is_empty() {
                    break;
                }
                if let Some(limit) = config.max_steps_per_stage {
                    if steps_this_stage >= limit {
                        return Err(FrameworkError::StageDiverged { epoch: k, stage: j });
                    }
                }
                // MIS of the conflict graph on U, with common randomness
                // tagged by (epoch, stage, step).
                let graph = ConflictGraph::build(problem, &unsatisfied);
                let adj: Vec<Vec<u32>> = (0..graph.len())
                    .map(|v| graph.neighbors(v).to_vec())
                    .collect();
                // Canonical keys (not dense ids) so the message-passing
                // implementation draws identical common randomness.
                let keys: Vec<u64> = graph
                    .instances()
                    .iter()
                    .map(|&d| problem.instance(d).canonical_key())
                    .collect();
                let tag = mis_tag(k, j, steps_this_stage);
                let outcome = config.mis_backend.run(&adj, &keys, config.seed, tag);
                stats.mis_rounds += outcome.rounds;
                // Raise every MIS member; they are pairwise non-conflicting
                // so the raises commute (the parallelism of the framework).
                let raised: Vec<InstanceId> = outcome
                    .mis
                    .iter()
                    .map(|&v| graph.instance(v as usize))
                    .collect();
                for &d in &raised {
                    let delta = rule.raise(problem, &mut dual, d, layers.critical_of(d));
                    stats.raises += 1;
                    if let Some(t) = trace.as_mut() {
                        t.push(RaiseEvent {
                            instance: d,
                            delta,
                            at: (k, j, steps_this_stage),
                        });
                    }
                }
                stack.push(StackEntry {
                    at: (k, j, steps_this_stage),
                    instances: raised,
                });
                // Communication accounting: 2 rounds per Luby iteration +
                // 1 round broadcasting the raised duals.
                stats.comm_rounds += 2 * outcome.rounds + 1;
                steps_this_stage += 1;
            }
            stats.steps += steps_this_stage;
            stats.max_steps_in_stage = stats.max_steps_in_stage.max(steps_this_stage);
        }
    }

    // ---- Second phase: reverse greedy over the stack. ----
    let mut tracker = SolutionTracker::new(problem);
    for entry in stack.iter().rev() {
        for &d in &entry.instances {
            let _ = tracker.try_add(d);
        }
        stats.comm_rounds += 1;
    }
    let solution = tracker.into_solution();

    let lambda = dual.min_satisfaction(problem, participants);
    Ok(Outcome {
        solution,
        dual,
        stats,
        lambda,
        delta: layers.delta(),
        objective_cap: rule.objective_cap(layers.delta()),
        trace,
        stack,
    })
}

/// The MIS namespace tag for (epoch, stage, step): all processors derive
/// the same tag from the public schedule, so common randomness is shared.
pub fn mis_tag(epoch: u32, stage: u32, step: u64) -> u64 {
    ((epoch as u64) << 48) ^ ((stage as u64) << 32) ^ step
}

/// Number of stages per epoch: the smallest `b` with `ξ^b ≤ ε` (so the
/// last stage reaches `(1-ε)`-satisfaction). Public, so every processor
/// of the message-passing implementation derives the same schedule.
///
/// # Panics
///
/// Panics unless both parameters lie in `(0, 1)`.
pub fn stages_for(epsilon: f64, xi: f64) -> u32 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
    assert!(xi > 0.0 && xi < 1.0, "xi in (0,1)");
    (epsilon.ln() / xi.ln()).ceil().max(1.0) as u32
}

/// Checks the interference property (Section 3.2) on a recorded trace:
/// for every pair of overlapping instances `d₁` raised before `d₂`,
/// `path(d₂)` must include a critical edge of `d₁`. Returns the first
/// violating pair, if any. `O(R²)` — for tests.
pub fn check_interference(
    problem: &Problem,
    layers: &LayeredDecomposition,
    trace: &[RaiseEvent],
) -> Option<(InstanceId, InstanceId)> {
    for (i, first) in trace.iter().enumerate() {
        let d1 = problem.instance(first.instance);
        for second in &trace[i + 1..] {
            // Simultaneous raises (same step) are independent by
            // construction; the property concerns strictly-later raises.
            if second.at == first.at {
                continue;
            }
            let d2 = problem.instance(second.instance);
            if !d1.overlaps(d2) {
                continue;
            }
            if !layers
                .critical_of(first.instance)
                .iter()
                .any(|&e| d2.active_on(e))
            {
                return Some((first.instance, second.instance));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_decomp::Strategy;
    use treenet_model::workload::TreeWorkload;

    fn small_problem(seed: u64) -> Problem {
        TreeWorkload::new(16, 14)
            .with_networks(2)
            .with_profit_ratio(8.0)
            .generate(&mut SmallRng::seed_from_u64(seed))
    }

    fn run(problem: &Problem, seed: u64) -> (LayeredDecomposition, Outcome) {
        let layers = LayeredDecomposition::for_trees(problem, Strategy::Ideal);
        let config = FrameworkConfig {
            seed,
            record_trace: true,
            ..FrameworkConfig::default()
        };
        let participants: Vec<InstanceId> = problem.instances().map(|d| d.id).collect();
        let outcome =
            run_two_phase(problem, &layers, RaiseRule::Unit, &config, &participants).unwrap();
        (layers, outcome)
    }

    #[test]
    fn produces_feasible_solutions() {
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let (_, outcome) = run(&p, seed);
            assert!(outcome.solution.verify(&p).is_ok(), "seed {seed}");
            assert!(!outcome.solution.is_empty(), "seed {seed}: empty solution");
        }
    }

    #[test]
    fn all_instances_end_lambda_satisfied() {
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let (_, outcome) = run(&p, seed);
            assert!(
                outcome.lambda >= 1.0 - 0.1 - 1e-9,
                "seed {seed}: λ = {}",
                outcome.lambda
            );
        }
    }

    #[test]
    fn dual_value_bounded_by_cap_times_profit() {
        // The heart of Lemma 3.1's proof: val(α,β) ≤ (Δ+1)·p(S).
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let (_, outcome) = run(&p, seed);
            let profit = outcome.profit(&p);
            assert!(
                outcome.dual.value() <= outcome.objective_cap * profit + 1e-6,
                "seed {seed}: val {} > cap {} · p(S) {}",
                outcome.dual.value(),
                outcome.objective_cap,
                profit
            );
        }
    }

    #[test]
    fn interference_property_holds_on_trace() {
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let (layers, outcome) = run(&p, seed);
            let trace = outcome.trace.as_ref().unwrap();
            assert_eq!(check_interference(&p, &layers, trace), None, "seed {seed}");
        }
    }

    #[test]
    fn certified_ratio_within_theorem_bound() {
        // Theorem 5.3: ratio ≤ (Δ+1)/λ = 7/(1-ε).
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let (_, outcome) = run(&p, seed);
            let bound = outcome.objective_cap / outcome.lambda;
            assert!(
                outcome.certified_ratio(&p) <= bound + 1e-6,
                "seed {seed}: {} > {}",
                outcome.certified_ratio(&p),
                bound
            );
        }
    }

    #[test]
    fn steps_per_stage_within_lemma_bound() {
        // Lemma 5.1: ≤ 1 + log₂(pmax/pmin) steps per stage (+1 slack for
        // the final empty check).
        for seed in 0..10u64 {
            let p = small_problem(seed);
            let (pmin, pmax) = p.profit_bounds();
            let (_, outcome) = run(&p, seed);
            let bound = 2.0 + (pmax / pmin).log2().max(0.0);
            assert!(
                (outcome.stats.max_steps_in_stage as f64) <= bound,
                "seed {seed}: {} steps > {}",
                outcome.stats.max_steps_in_stage,
                bound
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = small_problem(3);
        let (_, a) = run(&p, 11);
        let (_, b) = run(&p, 11);
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.stats, b.stats);
        let (_, c) = run(&p, 12);
        // Different seeds may change the MIS choices; stats usually differ.
        let _ = c;
    }

    #[test]
    fn rejects_bad_parameters() {
        let p = small_problem(0);
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        let participants: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
        for (eps, xi) in [(0.0, 0.9), (1.0, 0.9), (0.1, 0.0), (0.1, 1.0)] {
            let config = FrameworkConfig {
                epsilon: eps,
                xi,
                ..FrameworkConfig::default()
            };
            assert!(matches!(
                run_two_phase(&p, &layers, RaiseRule::Unit, &config, &participants),
                Err(FrameworkError::BadParameters { .. })
            ));
        }
    }

    #[test]
    fn empty_participants_yield_empty_outcome() {
        let p = small_problem(1);
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        let outcome = run_two_phase(
            &p,
            &layers,
            RaiseRule::Unit,
            &FrameworkConfig::default(),
            &[],
        )
        .unwrap();
        assert!(outcome.solution.is_empty());
        assert_eq!(outcome.stats.raises, 0);
        assert_eq!(outcome.lambda, 1.0);
        assert_eq!(outcome.certified_ratio(&p), 1.0);
    }

    #[test]
    fn mis_tags_are_unique_per_tuple() {
        let mut seen = std::collections::HashSet::new();
        for k in 1..5u32 {
            for j in 1..5u32 {
                for s in 0..5u64 {
                    assert!(seen.insert(mis_tag(k, j, s)));
                }
            }
        }
    }

    #[test]
    fn error_display() {
        let e = FrameworkError::StageDiverged { epoch: 2, stage: 3 };
        assert!(e.to_string().contains("stage 3"));
        let e = FrameworkError::BadParameters { reason: "x".into() };
        assert!(e.to_string().contains("x"));
    }
}

//! Machine-checkable optimality certificates.
//!
//! Every scheduler run carries a dual assignment whose scaled objective
//! upper-bounds `p(OPT)` by weak duality (the device behind Lemma 3.1).
//! [`Certificate::audit`] re-derives that argument from scratch against
//! the problem — independent of the solver's own bookkeeping — so a
//! downstream user can trust a run without trusting the run's code path:
//!
//! 1. the solution is feasible;
//! 2. every demand instance is `λ`-satisfied under the recorded duals;
//! 3. the accounting inequality `val(α,β) ≤ cap·p(S)` holds;
//! 4. therefore `p(OPT) ≤ val/λ ≤ (cap/λ)·p(S)`.

use crate::dual::DualState;
use crate::framework::Outcome;
use std::fmt;
use treenet_model::{InstanceId, Problem};

/// An audited a-posteriori guarantee for one scheduler run.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Achieved profit `p(S)`.
    pub profit: f64,
    /// Dual objective `val(α, β)`.
    pub dual_value: f64,
    /// Re-measured slackness λ (min satisfaction over participants).
    pub lambda: f64,
    /// The per-raise objective cap (`Δ+1` or `2Δ²+1`).
    pub objective_cap: f64,
    /// `val/λ ≥ p(OPT)`.
    pub opt_upper_bound: f64,
    /// `opt_upper_bound / profit` — the certified factor.
    pub certified_ratio: f64,
    /// Whether the solution passed feasibility verification.
    pub feasible: bool,
    /// Whether `val ≤ cap·p(S)` held (the Lemma 3.1/6.1 accounting).
    pub accounting_holds: bool,
}

impl Certificate {
    /// Audits `outcome` against `problem`, re-deriving every quantity
    /// from the problem and the dual assignment (`participants` = the
    /// instances the run was responsible for; pass all instances for the
    /// plain solvers).
    pub fn audit(problem: &Problem, outcome: &Outcome, participants: &[InstanceId]) -> Self {
        Self::from_parts(
            problem,
            &outcome.dual,
            outcome,
            participants,
            outcome.objective_cap,
        )
    }

    fn from_parts(
        problem: &Problem,
        dual: &DualState,
        outcome: &Outcome,
        participants: &[InstanceId],
        cap: f64,
    ) -> Self {
        let profit = outcome.solution.profit(problem);
        let feasible = outcome.solution.verify(problem).is_ok();
        let dual_value = dual.value();
        let lambda = dual
            .min_satisfaction(problem, participants)
            .clamp(f64::MIN_POSITIVE, 1.0);
        let opt_upper_bound = dual_value / lambda;
        let certified_ratio = if profit > 0.0 {
            opt_upper_bound / profit
        } else if opt_upper_bound == 0.0 {
            1.0
        } else {
            f64::INFINITY
        };
        let accounting_holds = dual_value <= cap * profit + 1e-6 * (1.0 + dual_value.abs());
        Certificate {
            profit,
            dual_value,
            lambda,
            objective_cap: cap,
            opt_upper_bound,
            certified_ratio,
            feasible,
            accounting_holds,
        }
    }

    /// Whether the certificate establishes the guarantee: feasible
    /// solution and valid accounting.
    pub fn is_valid(&self) -> bool {
        self.feasible && self.accounting_holds && self.certified_ratio.is_finite()
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "certificate:")?;
        writeln!(f, "  profit p(S)        = {:.4}", self.profit)?;
        writeln!(f, "  dual value val(α,β) = {:.4}", self.dual_value)?;
        writeln!(f, "  slackness λ        = {:.4}", self.lambda)?;
        writeln!(f, "  p(OPT) ≤ val/λ     = {:.4}", self.opt_upper_bound)?;
        writeln!(f, "  certified ratio    = {:.4}", self.certified_ratio)?;
        write!(
            f,
            "  status             = {}",
            if self.is_valid() { "VALID" } else { "INVALID" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_tree_unit, SolverConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_model::workload::TreeWorkload;

    #[test]
    fn audits_valid_runs() {
        for seed in 0..5u64 {
            let p = TreeWorkload::new(14, 12)
                .with_networks(2)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = solve_tree_unit(&p, &SolverConfig::default().with_seed(seed)).unwrap();
            let all: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
            let cert = Certificate::audit(&p, &out, &all);
            assert!(cert.is_valid(), "seed {seed}: {cert}");
            assert!((cert.lambda - out.lambda).abs() < 1e-12);
            assert!((cert.certified_ratio - out.certified_ratio(&p)).abs() < 1e-9);
            assert!(cert.to_string().contains("VALID"));
        }
    }

    #[test]
    fn detects_tampered_solutions() {
        let p = TreeWorkload::new(12, 10)
            .with_networks(1)
            .generate(&mut SmallRng::seed_from_u64(3));
        let mut out = solve_tree_unit(&p, &SolverConfig::default()).unwrap();
        // Tamper: claim every instance was selected (infeasible on any
        // contended workload).
        out.solution = treenet_model::Solution::new(p.instances().map(|d| d.id).collect());
        let all: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
        let cert = Certificate::audit(&p, &out, &all);
        if out.solution.verify(&p).is_err() {
            assert!(!cert.feasible);
            assert!(!cert.is_valid());
        }
    }

    #[test]
    fn empty_run_is_trivially_valid() {
        let mut b = treenet_model::ProblemBuilder::new();
        b.add_network(treenet_graph::Tree::line(3)).unwrap();
        let p = b.build().unwrap();
        let out = solve_tree_unit(&p, &SolverConfig::default()).unwrap();
        let cert = Certificate::audit(&p, &out, &[]);
        assert!(cert.is_valid());
        assert_eq!(cert.certified_ratio, 1.0);
    }
}

//! The sequential Appendix-A algorithm: `Δ = 2`, `λ = 1`, one instance
//! raised per iteration — a 3-approximation for tree-networks (2 for a
//! single tree, where the `α` variables are unnecessary).
//!
//! The algorithm implicitly uses the root-fixing tree decomposition
//! (Figure 8): per network, instances are processed in descending order of
//! the depth of their capture node `µ(d)`, each raised with critical
//! edges `π(d)` = the wings of `µ(d)` (Observation A.1 then yields the
//! interference property with `Δ = 2`).

use crate::dual::{DualForm, DualState};
use treenet_decomp::{capture_node, root_fixing};
use treenet_graph::{EdgeId, VertexId};
use treenet_model::{InstanceId, Problem, Solution, SolutionTracker};

/// Result of the sequential algorithm.
#[derive(Clone, Debug)]
pub struct SequentialOutcome {
    /// The feasible solution extracted by the second phase.
    pub solution: Solution,
    /// The final dual assignment (fully satisfied: λ = 1).
    pub dual: DualState,
    /// Number of raise operations (= stack pushes).
    pub raises: u64,
    /// The per-raise objective cap: 3 in general, 2 for a single tree
    /// (where `α` is not raised).
    pub objective_cap: f64,
}

impl SequentialOutcome {
    /// Profit of the solution.
    pub fn profit(&self, problem: &Problem) -> f64 {
        self.solution.profit(problem)
    }

    /// Upper bound on `p(OPT)` (λ = 1, so this is just `val(α,β)`).
    pub fn opt_upper_bound(&self) -> f64 {
        self.dual.value()
    }

    /// Certified approximation factor.
    pub fn certified_ratio(&self, problem: &Problem) -> f64 {
        let p = self.profit(problem);
        if p == 0.0 {
            if self.opt_upper_bound() == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.opt_upper_bound() / p
        }
    }
}

/// Numeric guard: an instance counts as unsatisfied while its LHS is
/// below `p(d)` by more than this relative tolerance.
const GUARD: f64 = 1e-9;

/// Runs the sequential Appendix-A algorithm on a (unit-height)
/// tree-network problem.
///
/// With several networks the certified factor is 3; with exactly one
/// network the `α` raises are skipped (`δ = s/|π|`, β only) and the factor
/// improves to 2 — matching Lewin-Eytan et al. as cited by the paper.
///
/// # Example
///
/// ```
/// use treenet_model::fixtures::figure2;
/// use treenet_core::solve_sequential_tree;
///
/// let (problem, _) = figure2();
/// let outcome = solve_sequential_tree(&problem);
/// assert!(outcome.solution.verify(&problem).is_ok());
/// assert!(outcome.certified_ratio(&problem) <= 2.0 + 1e-9); // single tree
/// ```
pub fn solve_sequential_tree(problem: &Problem) -> SequentialOutcome {
    let single_tree = problem.network_count() == 1;
    let mut dual = DualState::new(problem, DualForm::Unit);
    let mut stack: Vec<InstanceId> = Vec::new();
    let mut raises = 0u64;

    for t in problem.networks() {
        let tree = problem.network(t);
        let h = root_fixing(tree, VertexId(0));
        // π(d): wings of the capture node; σ(T): descending capture depth.
        let mut ordered: Vec<(u32, InstanceId, Vec<EdgeId>)> = problem
            .instances_on(t)
            .iter()
            .map(|&d| {
                let path = &problem.instance(d).path;
                let mu = capture_node(&h, path);
                (h.node_depth(mu), d, path.wings(mu))
            })
            .collect();
        // Descending depth; ties broken by instance id for determinism.
        ordered.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        for (_, d, pi) in &ordered {
            let slack = dual.slack(problem, *d);
            if slack <= GUARD * problem.profit_of(*d) {
                continue; // already satisfied by earlier raises
            }
            debug_assert!(!pi.is_empty(), "capture node always has a wing");
            let inst = problem.instance(*d);
            if single_tree {
                // Appendix A, single-network special case: skip α.
                let delta = slack / pi.len() as f64;
                for &e in pi {
                    dual.raise_beta(inst.network, e, delta);
                }
            } else {
                let delta = slack / (pi.len() as f64 + 1.0);
                dual.raise_alpha(inst.demand, delta);
                for &e in pi {
                    dual.raise_beta(inst.network, e, delta);
                }
            }
            raises += 1;
            stack.push(*d);
        }
    }

    // Second phase: reverse greedy.
    let mut tracker = SolutionTracker::new(problem);
    for &d in stack.iter().rev() {
        let _ = tracker.try_add(d);
    }

    SequentialOutcome {
        solution: tracker.into_solution(),
        dual,
        raises,
        objective_cap: if single_tree { 2.0 } else { 3.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_model::workload::TreeWorkload;

    #[test]
    fn feasible_and_fully_satisfied() {
        for seed in 0..10u64 {
            let p = TreeWorkload::new(18, 20)
                .with_networks(3)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = solve_sequential_tree(&p);
            assert!(out.solution.verify(&p).is_ok(), "seed {seed}");
            // λ = 1: every instance's dual constraint is satisfied.
            let ids: Vec<InstanceId> = p.instances().map(|d| d.id).collect();
            let lambda = out.dual.min_satisfaction(&p, &ids);
            assert!(lambda >= 1.0 - 1e-6, "seed {seed}: λ = {lambda}");
        }
    }

    #[test]
    fn certified_three_approximation() {
        for seed in 0..10u64 {
            let p = TreeWorkload::new(18, 20)
                .with_networks(3)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = solve_sequential_tree(&p);
            // val(α,β) ≤ 3·p(S) (Lemma 3.1 with Δ = 2, λ = 1).
            assert!(
                out.certified_ratio(&p) <= 3.0 + 1e-6,
                "seed {seed}: {}",
                out.certified_ratio(&p)
            );
        }
    }

    #[test]
    fn single_tree_is_two_approximation() {
        for seed in 0..10u64 {
            let p = TreeWorkload::new(18, 15)
                .with_networks(1)
                .generate(&mut SmallRng::seed_from_u64(seed));
            let out = solve_sequential_tree(&p);
            assert!(out.solution.verify(&p).is_ok());
            assert_eq!(out.objective_cap, 2.0);
            assert!(
                out.certified_ratio(&p) <= 2.0 + 1e-6,
                "seed {seed}: {}",
                out.certified_ratio(&p)
            );
        }
    }

    #[test]
    fn raises_bounded_by_instances() {
        let p = TreeWorkload::new(14, 12).generate(&mut SmallRng::seed_from_u64(5));
        let out = solve_sequential_tree(&p);
        assert!(out.raises as usize <= p.instance_count());
        assert!(out.raises > 0);
    }

    #[test]
    fn figure2_selects_the_profitable_demand() {
        // All three demands share an edge; the sequential algorithm must
        // pick exactly one of them (unit heights)... but which one is
        // certified within factor 2 of the best (profit 3).
        let (p, _) = treenet_model::fixtures::figure2();
        // Treat as unit height: rebuild with unit heights.
        let out = solve_sequential_tree(&p);
        assert!(out.solution.verify(&p).is_ok());
        assert!(!out.solution.is_empty());
    }
}

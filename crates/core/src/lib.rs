//! The paper's primary contribution: primal-dual schedulers for the
//! throughput maximization problem on line and tree networks.
//!
//! Contents, mapped to the paper:
//!
//! | Module / item | Paper section |
//! |---|---|
//! | [`DualState`], [`DualForm`] | 3.1, 6.1 (LP duals) |
//! | [`run_two_phase`], [`RaiseRule`], [`FrameworkConfig`] | 3.2 framework + Section 5 epochs/stages/steps (Figure 7) |
//! | [`check_interference`] | the interference property of Section 3.2 |
//! | [`solve_tree_unit`] | Theorem 5.3 — `(7+ε)`-approximation |
//! | [`solve_tree_arbitrary`] | Theorem 6.3 — `(80+ε)`-approximation |
//! | [`solve_line_unit`] | Theorem 7.1 — `(4+ε)`-approximation |
//! | [`solve_line_arbitrary`] | Theorem 7.2 — `(23+ε)`-approximation |
//! | [`solve_sequential_tree`] | Appendix A — 3-approximation (2 for one tree) |
//!
//! The schedulers run the *logical* distributed execution: the exact
//! pseudocode of Figure 7, with Luby-MIS rounds counted faithfully and
//! all randomness drawn from a seeded hash shared with the real
//! message-passing implementation in `treenet-dist` (which provably
//! produces identical results).
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use treenet_model::workload::TreeWorkload;
//! use treenet_core::{solve_tree_unit, SolverConfig};
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let problem = TreeWorkload::new(32, 30).generate(&mut rng);
//! let outcome = solve_tree_unit(&problem, &SolverConfig::default()).unwrap();
//!
//! outcome.solution.verify(&problem).unwrap();
//! // Certified a-posteriori approximation factor (Theorem 5.3 guarantees
//! // at most 7/(1-ε)):
//! assert!(outcome.certified_ratio(&problem) <= 7.0 / 0.9 + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certificate;
mod delta;
mod dual;
mod framework;
mod sequential;
mod solvers;

pub use certificate::Certificate;
pub use delta::{
    DeltaEngine, DeltaEngineError, DeltaEngineStats, EngineFamily, ReferenceSolve, ResolveOutcome,
    IDEAL_DELTA_BOUND, LINE_DELTA_BOUND,
};
pub use dual::{DualForm, DualState};
pub use framework::{
    check_interference, echo_sweep_rounds, mis_tag, prologue_rounds, retransmit_round_bound,
    run_two_phase, run_two_phase_reference, stages_for, step_comm_rounds, FrameworkConfig,
    FrameworkError, Outcome, RaiseEvent, RaiseRule, RunStats, StackEntry, SATISFACTION_GUARD,
};
pub use sequential::{solve_sequential_tree, SequentialOutcome};
pub use solvers::{
    auto_choice, combine_by_network, combine_decision, narrow_xi, resolve_narrow_hmin, solve_auto,
    solve_line_arbitrary, solve_line_unit, solve_tree_arbitrary, solve_tree_unit, unit_xi,
    AutoChoice, AutoOutcome, CombinedOutcome, SolverConfig,
};

//! The sharded round executor: at any thread count the engine must be
//! observationally identical to the single-threaded one — every node
//! sees the same inbox *in the same order* every round, and `Metrics`
//! (including `by_class` and the reliable layer's retransmit counters)
//! match bit for bit. The suite drives adversarial topologies (star,
//! path, disconnected forests) plus a seeded proptest over random
//! forests with delivery shuffle and loss, and pins the shard-plan
//! validation panics (cross-shard edges, incomplete plans).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use treenet_netsim::{
    Context, Engine, Envelope, LossModel, MessageSize, Metrics, Protocol, ShardPlan, Topology,
};

/// A tagged gossip message; the tag doubles as the traffic class so the
/// per-class counters differ across classes and any merge mistake shows.
#[derive(Clone, Debug, PartialEq)]
struct Tagged {
    payload: u64,
    tag: usize,
}

impl MessageSize for Tagged {
    fn size_bits(&self) -> u64 {
        64 + self.tag as u64
    }
    fn traffic_class(&self) -> usize {
        self.tag
    }
}

/// Broadcasts a fresh value each round and logs every inbox verbatim —
/// the order-sensitive witness of delivery order.
struct Gossip {
    id: u64,
    rounds: u64,
    log: Vec<Vec<(usize, Tagged)>>,
}

impl Gossip {
    fn new(id: usize, rounds: u64) -> Self {
        Gossip {
            id: id as u64,
            rounds,
            log: Vec::new(),
        }
    }
}

impl Protocol for Gossip {
    type Msg = Tagged;

    fn on_start(&mut self, ctx: &mut Context<'_, Tagged>) {
        ctx.broadcast(Tagged {
            payload: self.id * 1000,
            tag: (self.id % 3) as usize,
        });
    }

    fn on_round(&mut self, round: u64, inbox: &[Envelope<Tagged>], ctx: &mut Context<'_, Tagged>) {
        self.log
            .push(inbox.iter().map(|e| (e.from, e.msg.clone())).collect());
        if round < self.rounds {
            ctx.broadcast(Tagged {
                payload: self.id * 1000 + round,
                tag: ((self.id + round) % 3) as usize,
            });
        }
    }

    fn is_done(&self) -> bool {
        self.log.len() as u64 > self.rounds
    }
}

/// Runs `Gossip` over `topology` twice — single-threaded and with
/// `threads` shards — and asserts identical metrics and identical
/// per-node inbox logs.
fn assert_thread_invariant(
    topology: &Topology,
    threads: usize,
    configure: impl Fn(Engine<Gossip>) -> Engine<Gossip>,
) {
    let rounds = 5;
    let nodes = |n: usize| (0..n).map(|v| Gossip::new(v, rounds)).collect::<Vec<_>>();
    let mut serial = configure(Engine::new(nodes(topology.len()), topology.clone()));
    let mut sharded =
        configure(Engine::new(nodes(topology.len()), topology.clone()).with_threads(threads));
    let a = serial.run(1000).expect("serial run");
    let b = sharded.run(1000).expect("sharded run");
    assert_eq!(a, b, "metrics diverged at {threads} threads");
    for (v, (s, p)) in serial.nodes().iter().zip(sharded.nodes()).enumerate() {
        assert_eq!(
            s.log, p.log,
            "node {v}: inbox order diverged at {threads} threads"
        );
    }
}

/// A forest of `blocks` random trees over disjoint, interleaved node id
/// ranges, so component ids are non-contiguous (the adversarial case for
/// the shard-local index maps).
fn random_forest(seed: u64) -> Topology {
    let mut rng = SmallRng::seed_from_u64(seed);
    let blocks = rng.gen_range(2..6usize);
    let per_block = rng.gen_range(2..8usize);
    let n = blocks * per_block;
    let mut t = Topology::new(n);
    // Node v belongs to block v % blocks: members of a block are spread
    // across the whole id range instead of sitting in one contiguous run.
    for b in 0..blocks {
        let members: Vec<usize> = (0..n).filter(|v| v % blocks == b).collect();
        for i in 1..members.len() {
            let parent = members[rng.gen_range(0..i)];
            t.add_edge(parent, members[i]);
        }
    }
    t
}

#[test]
fn star_is_thread_invariant() {
    let mut t = Topology::new(9);
    for leaf in 1..9 {
        t.add_edge(0, leaf);
    }
    for threads in [2, 4, 8] {
        assert_thread_invariant(&t, threads, |e| e);
    }
}

#[test]
fn path_is_thread_invariant() {
    let mut t = Topology::new(12);
    for v in 0..11 {
        t.add_edge(v, v + 1);
    }
    assert_thread_invariant(&t, 8, |e| e);
}

#[test]
fn disconnected_forest_is_thread_invariant() {
    // Three components of different shapes: a triangle, a path, a pair —
    // with interleaved ids, so shard-local indices differ from node ids.
    let mut t = Topology::new(9);
    t.add_edge(0, 3);
    t.add_edge(3, 6);
    t.add_edge(6, 0);
    t.add_edge(1, 4);
    t.add_edge(4, 7);
    t.add_edge(2, 5);
    for threads in [2, 3, 8] {
        assert_thread_invariant(&t, threads, |e| e);
    }
}

#[test]
fn shuffled_delivery_is_thread_invariant() {
    let t = random_forest(0xf0_11);
    assert_thread_invariant(&t, 4, |e| e.with_delivery_shuffle(0xabcd));
}

#[test]
fn lossy_links_are_thread_invariant() {
    let t = random_forest(0xf0_22);
    let model = LossModel::bernoulli(0.2, 0x5eed)
        .with_duplicates(0.1)
        .with_delays(0.2);
    assert_thread_invariant(&t, 4, |e| e.with_loss_model(model.clone()));
}

#[test]
fn by_components_covers_every_node_once() {
    let t = random_forest(0xf0_33);
    let plan = ShardPlan::by_components(&t, 3);
    let mut seen = vec![false; t.len()];
    for shard in plan.shards() {
        for &v in shard {
            assert!(!seen[v], "node {v} in two shards");
            seen[v] = true;
        }
        assert!(shard.windows(2).all(|w| w[0] < w[1]), "shard not sorted");
    }
    assert!(seen.iter().all(|&s| s), "plan dropped a node");
    assert!(plan.len() <= 3);
}

#[test]
#[should_panic(expected = "crosses shards")]
fn cross_shard_edges_are_rejected() {
    let mut t = Topology::new(4);
    t.add_edge(0, 1);
    t.add_edge(2, 3);
    // {0, 2} / {1, 3} splits both edges across the shard boundary.
    let plan = ShardPlan::from_groups(4, vec![vec![0, 2], vec![1, 3]]);
    let nodes: Vec<Gossip> = (0..4).map(|v| Gossip::new(v, 1)).collect();
    let _ = Engine::new(nodes, t).with_shards(plan);
}

#[test]
#[should_panic(expected = "missing from the shard plan")]
fn incomplete_plans_are_rejected() {
    let _ = ShardPlan::from_groups(3, vec![vec![0, 2]]);
}

#[test]
#[should_panic(expected = "more than one shard")]
fn overlapping_plans_are_rejected() {
    let _ = ShardPlan::from_groups(3, vec![vec![0, 1], vec![1, 2]]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any random forest, any thread count in {1, 2, 8}, with delivery
    /// shuffle and a lossy link model: identical `Metrics` — including
    /// `by_class` and the retransmit/ack counters — and identical logs.
    #[test]
    fn threads_do_not_change_metrics(seed in 0u64..3000, loss in 0usize..2) {
        let t = random_forest(seed);
        let rounds = 4;
        let build = |threads: usize| {
            let nodes: Vec<Gossip> = (0..t.len()).map(|v| Gossip::new(v, rounds)).collect();
            let mut engine = Engine::new(nodes, t.clone()).with_delivery_shuffle(seed ^ 0x51ff);
            if loss == 1 {
                engine = engine.with_loss_model(LossModel::bernoulli(0.15, seed ^ 0x1055));
            }
            if threads > 1 {
                engine = engine.with_threads(threads);
            }
            engine
        };
        let mut baseline = build(1);
        let reference: Metrics = baseline.run(1000).expect("baseline run");
        if loss == 1 {
            prop_assert!(reference.retransmits > 0 || reference.messages == 0);
        }
        for threads in [2usize, 8] {
            let mut engine = build(threads);
            let metrics = engine.run(1000).expect("sharded run");
            prop_assert_eq!(metrics, reference);
            for (s, p) in baseline.nodes().iter().zip(engine.nodes()) {
                prop_assert_eq!(&s.log, &p.log);
            }
        }
    }
}

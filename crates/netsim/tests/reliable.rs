//! The reliable-delivery sublayer: lossy links must be invisible to the
//! protocol (byte-identical inboxes, identical results, identical
//! logical traffic), `p = 0` must be a literal zero-overhead
//! passthrough, overhead must land in the dedicated counters, and the
//! loss RNG and the delivery-shuffle RNG must be independent streams.

use treenet_netsim::{
    Context, Engine, Envelope, LossModel, MessageSize, Metrics, Protocol, Topology, ACK_BITS,
};

/// Floods the maximum id — a multi-round protocol whose result and
/// traffic are deterministic, so lossless and lossy runs are comparable
/// field by field.
struct MaxFlood {
    best: u64,
    changed: bool,
}

impl Protocol for MaxFlood {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(self.best);
    }
    fn on_round(&mut self, _round: u64, inbox: &[Envelope<u64>], ctx: &mut Context<'_, u64>) {
        self.changed = false;
        for env in inbox {
            if env.msg > self.best {
                self.best = env.msg;
                self.changed = true;
            }
        }
        if self.changed {
            ctx.broadcast(self.best);
        }
    }
    fn is_done(&self) -> bool {
        !self.changed
    }
}

/// Records the exact inbox order every round — the probe for canonical
/// reassembly and for the shuffle/loss stream split.
struct Recorder {
    log: Vec<Vec<(usize, u64)>>,
}

impl Protocol for Recorder {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        // Everyone floods three distinguishable payloads at its
        // neighbors, so inboxes hold several same-round messages whose
        // order matters.
        for k in 0..3 {
            ctx.broadcast(ctx.node() as u64 * 10 + k);
        }
    }
    fn on_round(&mut self, _round: u64, inbox: &[Envelope<u64>], _ctx: &mut Context<'_, u64>) {
        if !inbox.is_empty() {
            self.log
                .push(inbox.iter().map(|e| (e.from, e.msg)).collect());
        }
    }
    fn is_done(&self) -> bool {
        true
    }
}

fn line_topology(n: usize) -> Topology {
    let mut t = Topology::new(n);
    for i in 0..n - 1 {
        t.add_edge(i, i + 1);
    }
    t
}

fn flood_nodes(n: usize) -> Vec<MaxFlood> {
    (0..n)
        .map(|i| MaxFlood {
            best: i as u64,
            changed: true,
        })
        .collect()
}

fn star_topology(n: usize) -> Topology {
    let mut t = Topology::new(n);
    for v in 1..n {
        t.add_edge(0, v);
    }
    t
}

/// Runs MaxFlood on a line under `build`'s engine decoration and returns
/// (metrics, final node states).
fn flood_run(
    n: usize,
    decorate: impl FnOnce(Engine<MaxFlood>) -> Engine<MaxFlood>,
) -> (Metrics, Vec<u64>) {
    let mut engine = decorate(Engine::new(flood_nodes(n), line_topology(n)));
    let metrics = engine.run(500).unwrap();
    let best: Vec<u64> = engine.nodes().iter().map(|x| x.best).collect();
    (metrics, best)
}

#[test]
fn lossless_model_is_zero_overhead_passthrough() {
    let (plain, plain_best) = flood_run(8, |e| e);
    let (lossy, lossy_best) = flood_run(8, |e| e.with_loss_model(LossModel::bernoulli(0.0, 42)));
    // Byte-identical metrics — including every overhead counter at zero.
    assert_eq!(plain, lossy);
    assert_eq!(plain_best, lossy_best);
    assert_eq!(lossy.retransmits, 0);
    assert_eq!(lossy.acks, 0);
    assert_eq!(lossy.ack_bits, 0);
    assert_eq!(lossy.dup_suppressed, 0);
    assert_eq!(lossy.retransmit_rounds, 0);
    assert_eq!(lossy.dropped, 0);
    assert_eq!(lossy.delayed, 0);
    assert!(LossModel::bernoulli(0.0, 42).is_lossless());
}

#[test]
fn drops_are_recovered_with_identical_results_and_logical_traffic() {
    let (plain, plain_best) = flood_run(8, |e| e);
    for seed in [1u64, 7, 0xbeef] {
        let (lossy, lossy_best) =
            flood_run(8, |e| e.with_loss_model(LossModel::bernoulli(0.3, seed)));
        // The protocol cannot tell: same result...
        assert_eq!(plain_best, lossy_best, "seed {seed}");
        // ...and the *logical* traffic is identical — every unique
        // payload delivered exactly once; overhead lives elsewhere.
        assert_eq!(plain.messages, lossy.messages, "seed {seed}");
        assert_eq!(plain.bits, lossy.bits, "seed {seed}");
        assert_eq!(plain.by_class[0].messages, lossy.by_class[0].messages);
        assert_eq!(plain.max_message_bits, lossy.max_message_bits);
        // Loss actually happened and was recovered. (The proactive salvo
        // may absorb every drop without a single recovery slot — that is
        // the point — so only the retransmission traffic is asserted.)
        assert!(lossy.dropped > 0, "seed {seed}: no drop fired at p=0.3");
        assert!(lossy.retransmits > 0, "seed {seed}");
        // Round inflation is exactly the recovery slots, and bounded by
        // the windowed-ARQ formula (window ≥ 2).
        assert_eq!(lossy.rounds, plain.rounds + lossy.retransmit_rounds);
        assert!(
            lossy.retransmit_rounds <= 2 * (lossy.dropped + lossy.delayed),
            "seed {seed}: {} recovery slots > 2·({} dropped + {} delayed)",
            lossy.retransmit_rounds,
            lossy.dropped,
            lossy.delayed
        );
        // Determinism: the same seed reproduces the same trace.
        let (again, _) = flood_run(8, |e| e.with_loss_model(LossModel::bernoulli(0.3, seed)));
        assert_eq!(lossy, again, "seed {seed}");
    }
}

#[test]
fn duplicates_are_suppressed() {
    let (plain, plain_best) = flood_run(8, |e| e);
    let model = LossModel::bernoulli(0.0, 5).with_duplicates(0.5);
    let (lossy, lossy_best) = flood_run(8, |e| e.with_loss_model(model));
    assert_eq!(plain_best, lossy_best);
    assert_eq!(plain.messages, lossy.messages);
    assert!(lossy.duplicated > 0, "duplication should have fired");
    // Every fault-created copy was discarded by sequence tracking, and
    // pure duplication needs no recovery slots at all.
    assert_eq!(lossy.dup_suppressed, lossy.duplicated);
    assert_eq!(lossy.by_class[0].dup_suppressed, lossy.dup_suppressed);
    assert_eq!(lossy.retransmit_rounds, 0);
    assert_eq!(lossy.rounds, plain.rounds);
}

#[test]
fn delays_are_recovered() {
    let (plain, plain_best) = flood_run(8, |e| e);
    let model = LossModel::bernoulli(0.0, 9).with_delays(0.4);
    let (lossy, lossy_best) = flood_run(8, |e| e.with_loss_model(model));
    assert_eq!(plain_best, lossy_best);
    assert_eq!(plain.messages, lossy.messages);
    assert!(lossy.delayed > 0, "delay should have fired");
    assert!(
        lossy.retransmit_rounds > 0,
        "a delayed packet stalls the round"
    );
    assert!(lossy.retransmit_rounds <= 2 * (lossy.dropped + lossy.delayed));
}

#[test]
fn heavy_mixed_loss_still_converges_exactly() {
    let (plain, plain_best) = flood_run(10, |e| e);
    let model = LossModel::bernoulli(0.25, 0xabcd)
        .with_duplicates(0.25)
        .with_delays(0.25);
    let (lossy, lossy_best) = flood_run(10, |e| e.with_loss_model(model));
    assert_eq!(plain_best, lossy_best);
    assert_eq!(plain.messages, lossy.messages);
    assert!(lossy.dropped > 0 && lossy.duplicated > 0 && lossy.delayed > 0);
    assert!(lossy.retransmit_rounds <= 2 * (lossy.dropped + lossy.delayed));
}

#[test]
fn inbox_order_is_canonical_under_loss() {
    let build = || {
        Engine::new(
            (0..5).map(|_| Recorder { log: Vec::new() }).collect(),
            star_topology(5),
        )
    };
    let mut plain = build();
    plain.run(10).unwrap();
    let mut lossy = build().with_loss_model(
        LossModel::bernoulli(0.4, 3)
            .with_duplicates(0.3)
            .with_delays(0.3),
    );
    lossy.run(10).unwrap();
    // Reassembly restores the lossless (sender, send-order) delivery
    // order exactly, for every node and round.
    for (a, b) in plain.nodes().iter().zip(lossy.nodes()) {
        assert_eq!(a.log, b.log);
    }
}

#[test]
fn shuffle_and_loss_are_independent_rng_streams() {
    let build = || {
        Engine::new(
            (0..5).map(|_| Recorder { log: Vec::new() }).collect(),
            star_topology(5),
        )
    };
    // Shuffle only.
    let mut shuffled = build().with_delivery_shuffle(0x5eed);
    shuffled.run(10).unwrap();
    // Shuffle + lossless model: adding the (inactive) loss model must
    // not perturb the shuffle sequence — the streams are split.
    let mut with_model = build()
        .with_delivery_shuffle(0x5eed)
        .with_loss_model(LossModel::bernoulli(0.0, 0x1055));
    with_model.run(10).unwrap();
    for (a, b) in shuffled.nodes().iter().zip(with_model.nodes()) {
        assert_eq!(a.log, b.log);
    }
    // Shuffle + real loss: the shuffle RNG is consumed once per node per
    // *logical* round (never per recovery slot), and reassembly is
    // canonical, so even the shuffled orders are identical.
    let mut with_loss = build()
        .with_delivery_shuffle(0x5eed)
        .with_loss_model(LossModel::bernoulli(0.3, 77));
    with_loss.run(10).unwrap();
    for (a, b) in shuffled.nodes().iter().zip(with_loss.nodes()) {
        assert_eq!(a.log, b.log);
    }
    // The shuffle genuinely does something (differs from unshuffled).
    let mut plain = build();
    plain.run(10).unwrap();
    assert_ne!(plain.nodes()[0].log, shuffled.nodes()[0].log);
}

/// Sends `k` one-way pings on start; the far side never replies, so
/// every ack in a recovery episode must travel as a standalone message.
struct Pinger {
    to_send: u64,
    received: u64,
}

impl Protocol for Pinger {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        for i in 0..self.to_send {
            if !ctx.neighbors().is_empty() {
                ctx.send(ctx.neighbors()[0], i);
            }
        }
    }
    fn on_round(&mut self, _r: u64, inbox: &[Envelope<u64>], _c: &mut Context<'_, u64>) {
        self.received += inbox.len() as u64;
    }
    fn is_done(&self) -> bool {
        true
    }
}

#[test]
fn forced_drop_episode_has_the_textbook_shape() {
    // Three packets, the middle original forced-dropped (the class is
    // lossless, so no proactive salvo fires). Episode: in recovery slot
    // 1 the receiver's cumulative+SACK ack (one standalone message — no
    // reverse traffic to piggyback on) rides ahead of the slot's
    // retransmissions, so the sender repairs exactly the missing packet
    // eagerly in the same slot. One recovery slot, one retransmission,
    // one ack, no duplicates.
    let mut topology = Topology::new(2);
    topology.add_edge(0, 1);
    let nodes = vec![
        Pinger {
            to_send: 3,
            received: 0,
        },
        Pinger {
            to_send: 0,
            received: 0,
        },
    ];
    let mut engine = Engine::new(nodes, topology)
        .with_loss_model(LossModel::lossless(0).with_forced_drops(vec![1]));
    let metrics = engine.run(10).unwrap();
    assert_eq!(engine.nodes()[1].received, 3, "all three pings arrive");
    assert_eq!(metrics.messages, 3);
    assert_eq!(metrics.dropped, 1);
    assert_eq!(metrics.retransmits, 1);
    assert_eq!(metrics.by_class[0].retransmits, 1);
    assert_eq!(metrics.retransmit_rounds, 1);
    assert_eq!(metrics.acks, 1);
    assert_eq!(metrics.ack_bits, ACK_BITS);
    assert_eq!(metrics.dup_suppressed, 0);
    // Acks are link-layer control: the O(M) payload accounting ignores
    // them.
    assert_eq!(metrics.bits, 3 * 64);
    assert_eq!(metrics.max_message_bits, 64);
    // Ordering survives the gap: seq 1 is slotted back between 0 and 2.
    assert!(metrics.retransmit_rounds <= 2 * (metrics.dropped + metrics.delayed));
}

#[test]
fn class_window_targets_one_traffic_class_only() {
    /// Messages alternate classes by parity (like the engine unit test).
    #[derive(Clone)]
    struct ClassyMsg(u64);
    impl MessageSize for ClassyMsg {
        fn size_bits(&self) -> u64 {
            64
        }
        fn traffic_class(&self) -> usize {
            (self.0 % 2) as usize
        }
    }
    struct ClassSender;
    impl Protocol for ClassSender {
        type Msg = ClassyMsg;
        fn on_start(&mut self, ctx: &mut Context<'_, ClassyMsg>) {
            if ctx.node() == 0 {
                for i in 0..6 {
                    ctx.send(1, ClassyMsg(i));
                }
            }
        }
        fn on_round(
            &mut self,
            _r: u64,
            _i: &[Envelope<ClassyMsg>],
            _c: &mut Context<'_, ClassyMsg>,
        ) {
        }
        fn is_done(&self) -> bool {
            true
        }
    }
    let mut topology = Topology::new(2);
    topology.add_edge(0, 1);
    // Drop the first two class-1 originals (payloads 1 and 3); class 0
    // is untouched.
    let mut engine = Engine::new(vec![ClassSender, ClassSender], topology)
        .with_loss_model(LossModel::lossless(0).with_class_window(1, 0, 2));
    let metrics = engine.run(10).unwrap();
    assert_eq!(metrics.dropped, 2);
    assert_eq!(metrics.retransmits, 2);
    assert_eq!(metrics.by_class[1].retransmits, 2);
    assert_eq!(metrics.by_class[0].retransmits, 0);
    // Still delivered exactly once each.
    assert_eq!(metrics.by_class[0].messages, 3);
    assert_eq!(metrics.by_class[1].messages, 3);
}

#[test]
#[should_panic(expected = "mutually exclusive")]
fn loss_model_rejects_raw_faults() {
    let _ = Engine::new(flood_nodes(2), line_topology(2))
        .with_loss_model(LossModel::bernoulli(0.1, 0))
        .with_faults(treenet_netsim::FaultPlan::dropping(0.1, 0));
}

#[test]
#[should_panic(expected = "mutually exclusive")]
fn raw_faults_reject_loss_model() {
    let _ = Engine::new(flood_nodes(2), line_topology(2))
        .with_faults(treenet_netsim::FaultPlan::dropping(0.1, 0))
        .with_loss_model(LossModel::bernoulli(0.1, 0));
}

#[test]
#[should_panic(expected = "reliable layer starved")]
fn certain_loss_is_detected_not_spun_forever() {
    let mut engine =
        Engine::new(flood_nodes(2), line_topology(2)).with_loss_model(LossModel::bernoulli(1.0, 0));
    let _ = engine.run(10);
}

#[test]
fn topology_edges_enumerate_canonically() {
    let t = star_topology(4);
    let edges: Vec<(usize, usize)> = t.edges().collect();
    assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3)]);
    let line = line_topology(3);
    assert_eq!(line.edges().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
    assert_eq!(line.edges().count(), line.edge_count());
}

//! Fault-injection tests: the engine's bookkeeping under message drops
//! and duplication, and a demonstration that the paper's synchronous
//! model genuinely depends on reliable delivery.

use treenet_netsim::{Context, Engine, Envelope, FaultPlan, Protocol, Topology};

/// Floods the maximum id; robust to duplication (idempotent) but not to
/// drops.
struct MaxFlood {
    best: u64,
    changed: bool,
}

impl Protocol for MaxFlood {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.broadcast(self.best);
    }
    fn on_round(&mut self, _round: u64, inbox: &[Envelope<u64>], ctx: &mut Context<'_, u64>) {
        self.changed = false;
        for env in inbox {
            if env.msg > self.best {
                self.best = env.msg;
                self.changed = true;
            }
        }
        if self.changed {
            ctx.broadcast(self.best);
        }
    }
    fn is_done(&self) -> bool {
        !self.changed
    }
}

fn line_topology(n: usize) -> Topology {
    let mut t = Topology::new(n);
    for i in 0..n - 1 {
        t.add_edge(i, i + 1);
    }
    t
}

fn flood_nodes(n: usize) -> Vec<MaxFlood> {
    (0..n)
        .map(|i| MaxFlood {
            best: i as u64,
            changed: true,
        })
        .collect()
}

#[test]
fn reliable_plan_changes_nothing() {
    let n = 6;
    let mut plain = Engine::new(flood_nodes(n), line_topology(n));
    let m1 = plain.run(100).unwrap();
    let mut reliable =
        Engine::new(flood_nodes(n), line_topology(n)).with_faults(FaultPlan::reliable());
    let m2 = reliable.run(100).unwrap();
    assert_eq!(m1, m2);
    assert_eq!(m2.dropped, 0);
    assert_eq!(m2.duplicated, 0);
    assert!(reliable.nodes().iter().all(|x| x.best == (n - 1) as u64));
}

#[test]
fn duplication_preserves_idempotent_protocols() {
    let n = 8;
    let mut engine =
        Engine::new(flood_nodes(n), line_topology(n)).with_faults(FaultPlan::duplicating(0.5, 42));
    let metrics = engine.run(200).unwrap();
    assert!(metrics.duplicated > 0, "duplication should have fired");
    // MaxFlood is idempotent: the result is unchanged.
    assert!(engine.nodes().iter().all(|x| x.best == (n - 1) as u64));
}

#[test]
fn heavy_drops_break_convergence_to_the_true_maximum() {
    // With every message dropped, no node learns anything: the paper's
    // synchronous model assumes reliable links, and this documents that
    // assumption is load-bearing.
    let n = 6;
    let mut engine =
        Engine::new(flood_nodes(n), line_topology(n)).with_faults(FaultPlan::dropping(1.0, 7));
    let metrics = engine.run(100).unwrap();
    assert_eq!(metrics.messages, 0);
    assert!(metrics.dropped > 0);
    let stale = engine
        .nodes()
        .iter()
        .filter(|x| x.best != (n - 1) as u64)
        .count();
    assert_eq!(stale, n - 1, "nobody but the max node knows the max");
}

#[test]
fn drop_metrics_are_consistent() {
    let n = 10;
    let mut engine =
        Engine::new(flood_nodes(n), line_topology(n)).with_faults(FaultPlan::dropping(0.3, 99));
    let metrics = engine.run(500).unwrap();
    // Delivered + dropped = attempted; bits only counted for deliveries.
    assert!(metrics.dropped > 0);
    assert_eq!(metrics.bits, metrics.messages * 64);
}

#[test]
#[should_panic(expected = "probability")]
fn rejects_bad_probability() {
    let _ = FaultPlan::dropping(1.5, 0);
}

//! Direct arithmetic coverage for `Metrics::merged` and the per-class
//! counters — previously exercised only indirectly through the runner
//! assertions in `crates/dist/tests/metrics.rs`. Pins down saturation,
//! empty-class behaviour and class disjointness.

use treenet_netsim::{ClassMetrics, Metrics, MESSAGE_CLASSES};

fn sample(seed: u64) -> Metrics {
    let mut m = Metrics {
        rounds: 10 + seed,
        messages: 100 + seed,
        bits: 6400 + seed,
        max_message_bits: 64 + seed,
        dropped: 3 + seed,
        duplicated: 2 + seed,
        delayed: 1 + seed,
        retransmits: 4 + seed,
        acks: 5 + seed,
        ack_bits: 96 * (5 + seed),
        dup_suppressed: 2 + seed,
        retransmit_rounds: 6 + seed,
        ..Metrics::default()
    };
    m.by_class[0] = ClassMetrics {
        messages: 60 + seed,
        bits: 3840 + seed,
        retransmits: 3 + seed,
        dup_suppressed: 1 + seed,
    };
    m.by_class[3] = ClassMetrics {
        messages: 40,
        bits: 2560,
        retransmits: 1,
        dup_suppressed: 1,
    };
    m
}

#[test]
fn merged_adds_every_counter_and_maxes_message_size() {
    let a = sample(0);
    let b = sample(7);
    let m = a.merged(b);
    assert_eq!(m.rounds, a.rounds + b.rounds);
    assert_eq!(m.messages, a.messages + b.messages);
    assert_eq!(m.bits, a.bits + b.bits);
    assert_eq!(m.max_message_bits, b.max_message_bits, "max, not sum");
    assert_eq!(m.dropped, a.dropped + b.dropped);
    assert_eq!(m.duplicated, a.duplicated + b.duplicated);
    assert_eq!(m.delayed, a.delayed + b.delayed);
    assert_eq!(m.retransmits, a.retransmits + b.retransmits);
    assert_eq!(m.acks, a.acks + b.acks);
    assert_eq!(m.ack_bits, a.ack_bits + b.ack_bits);
    assert_eq!(m.dup_suppressed, a.dup_suppressed + b.dup_suppressed);
    assert_eq!(
        m.retransmit_rounds,
        a.retransmit_rounds + b.retransmit_rounds
    );
    for k in 0..MESSAGE_CLASSES {
        assert_eq!(
            m.by_class[k].messages,
            a.by_class[k].messages + b.by_class[k].messages
        );
        assert_eq!(m.by_class[k].bits, a.by_class[k].bits + b.by_class[k].bits);
        assert_eq!(
            m.by_class[k].retransmits,
            a.by_class[k].retransmits + b.by_class[k].retransmits
        );
        assert_eq!(
            m.by_class[k].dup_suppressed,
            a.by_class[k].dup_suppressed + b.by_class[k].dup_suppressed
        );
    }
}

#[test]
fn merged_saturates_instead_of_wrapping() {
    let mut a = Metrics {
        rounds: u64::MAX,
        messages: u64::MAX - 1,
        bits: u64::MAX,
        retransmits: u64::MAX,
        acks: u64::MAX,
        ack_bits: u64::MAX,
        dup_suppressed: u64::MAX,
        retransmit_rounds: u64::MAX,
        dropped: u64::MAX,
        duplicated: u64::MAX,
        delayed: u64::MAX,
        ..Metrics::default()
    };
    a.by_class[2] = ClassMetrics {
        messages: u64::MAX,
        bits: u64::MAX,
        retransmits: u64::MAX,
        dup_suppressed: u64::MAX,
    };
    let m = a.merged(sample(3));
    assert_eq!(m.rounds, u64::MAX);
    assert_eq!(m.messages, u64::MAX);
    assert_eq!(m.bits, u64::MAX);
    assert_eq!(m.retransmits, u64::MAX);
    assert_eq!(m.acks, u64::MAX);
    assert_eq!(m.ack_bits, u64::MAX);
    assert_eq!(m.dup_suppressed, u64::MAX);
    assert_eq!(m.retransmit_rounds, u64::MAX);
    assert_eq!(m.dropped, u64::MAX);
    assert_eq!(m.duplicated, u64::MAX);
    assert_eq!(m.delayed, u64::MAX);
    assert_eq!(m.by_class[2].messages, u64::MAX);
    assert_eq!(m.by_class[2].bits, u64::MAX);
    assert_eq!(m.by_class[2].retransmits, u64::MAX);
    assert_eq!(m.by_class[2].dup_suppressed, u64::MAX);
    // Saturation is symmetric.
    let m = sample(3).merged(a);
    assert_eq!(m.rounds, u64::MAX);
    assert_eq!(m.by_class[2].messages, u64::MAX);
}

#[test]
fn merging_an_empty_metrics_is_the_identity() {
    let a = sample(11);
    assert_eq!(a.merged(Metrics::default()), a);
    assert_eq!(Metrics::default().merged(a), a);
    assert_eq!(
        Metrics::default().merged(Metrics::default()),
        Metrics::default()
    );
}

#[test]
fn classes_merge_disjointly() {
    // Two runs whose traffic lives in disjoint classes: merging must not
    // bleed counters across buckets, and untouched buckets stay zero.
    let mut a = Metrics::default();
    a.by_class[1] = ClassMetrics {
        messages: 5,
        bits: 320,
        retransmits: 2,
        dup_suppressed: 1,
    };
    a.messages = 5;
    a.bits = 320;
    let mut b = Metrics::default();
    b.by_class[4] = ClassMetrics {
        messages: 7,
        bits: 448,
        retransmits: 0,
        dup_suppressed: 3,
    };
    b.messages = 7;
    b.bits = 448;
    let m = a.merged(b);
    assert_eq!(m.by_class[1], a.by_class[1]);
    assert_eq!(m.by_class[4], b.by_class[4]);
    for k in (0..MESSAGE_CLASSES).filter(|&k| k != 1 && k != 4) {
        assert_eq!(m.by_class[k], ClassMetrics::default(), "class {k}");
    }
    // The class sums still add up to the global counters.
    let (msgs, bits) = m
        .by_class
        .iter()
        .fold((0u64, 0u64), |(x, y), c| (x + c.messages, y + c.bits));
    assert_eq!((msgs, bits), (m.messages, m.bits));
}

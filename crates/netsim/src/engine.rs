//! The synchronous round engine.

use crate::reliable::Reliable;
use crate::{LossModel, MessageSize, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A received message with its sender.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// The sending node.
    pub from: usize,
    /// The payload.
    pub msg: M,
}

/// Per-round send interface handed to protocol nodes.
///
/// Sends are restricted to topology neighbors, matching the paper's model
/// where a processor talks only to processors sharing a resource.
#[derive(Debug)]
pub struct Context<'a, M> {
    node: usize,
    neighbors: &'a [usize],
    /// Pooled per-node out-buffer from the engine's [`MailboxArena`]:
    /// capacity persists across rounds, so steady-state sends allocate
    /// nothing.
    out: &'a mut Vec<(usize, M)>,
}

impl<M> Context<'_, M> {
    /// The id of the node this context belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The node's topology neighbors, sorted.
    pub fn neighbors(&self) -> &[usize] {
        self.neighbors
    }

    /// Queues `msg` for delivery to `to` at the start of the next round.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a topology neighbor — single-hop communication
    /// is a model invariant, so violating it is a programming error.
    pub fn send(&mut self, to: usize, msg: M) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "node {} cannot send to non-neighbor {}",
            self.node,
            to
        );
        self.out.push((to, msg));
    }

    /// Sends a clone of `msg` to every neighbor.
    ///
    /// Routes through [`Context::send`] so the single-hop neighbor
    /// assertion — the model invariant — lives in exactly one place.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for i in 0..self.neighbors.len() {
            let w = self.neighbors[i];
            self.send(w, msg.clone());
        }
    }
}

/// A node of a synchronous distributed protocol.
pub trait Protocol {
    /// The message type exchanged by this protocol.
    type Msg: Clone + MessageSize;

    /// Called once before the first round; typically seeds initial sends.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// One synchronous round: `inbox` holds everything sent to this node
    /// in the previous round.
    fn on_round(
        &mut self,
        round: u64,
        inbox: &[Envelope<Self::Msg>],
        ctx: &mut Context<'_, Self::Msg>,
    );

    /// Local termination flag. The engine stops once every node is done
    /// *and* no messages are in flight.
    fn is_done(&self) -> bool;
}

/// Number of traffic-class buckets in [`Metrics::by_class`].
pub const MESSAGE_CLASSES: usize = 8;

/// Per-traffic-class message counters (see
/// [`MessageSize::traffic_class`](crate::MessageSize::traffic_class)).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassMetrics {
    /// Messages delivered in this class.
    pub messages: u64,
    /// Delivered payload bits in this class.
    pub bits: u64,
    /// Retransmissions sent in this class by the reliable-delivery layer
    /// (zero without a loss model, and at `p = 0`).
    pub retransmits: u64,
    /// Duplicate deliveries of this class discarded by the reliable
    /// layer's sequence tracking (fault-injected duplicates and
    /// redundant retransmissions alike).
    pub dup_suppressed: u64,
}

/// Communication metrics of one engine run — the quantities the paper's
/// theorems bound.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of synchronous rounds executed.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total delivered payload size in bits (via [`MessageSize`]).
    pub bits: u64,
    /// Largest single-message size observed, in bits.
    pub max_message_bits: u64,
    /// Transmissions discarded by fault injection ([`FaultPlan`]) or by
    /// the loss model beneath the reliable layer (data and acks alike).
    pub dropped: u64,
    /// Extra deliveries created by fault injection or the loss model.
    pub duplicated: u64,
    /// Transmissions the loss model delayed by one slot.
    pub delayed: u64,
    /// Data retransmissions sent by the reliable-delivery layer. Under a
    /// loss model, `messages` keeps counting each unique payload exactly
    /// once (the logical traffic), so `retransmits` (plus `acks`) *is*
    /// the message overhead of reliability.
    pub retransmits: u64,
    /// Standalone cumulative-ack messages sent by the reliable layer
    /// (acks piggybacked on reverse-direction retransmissions are free
    /// and not counted).
    pub acks: u64,
    /// Bits spent on standalone acks ([`crate::ACK_BITS`] each). Acks
    /// are link-layer control: excluded from `bits`, `by_class` and
    /// `max_message_bits`, which account protocol payloads (the paper's
    /// `O(M)` bound).
    pub ack_bits: u64,
    /// Duplicate deliveries discarded by the reliable layer's sequence
    /// tracking.
    pub dup_suppressed: u64,
    /// Extra link-layer recovery slots the reliable layer ran — the
    /// round inflation of lossy links: `rounds` includes them, and the
    /// logical round count is `rounds - retransmit_rounds`. Bounded by
    /// `treenet_core::retransmit_round_bound(dropped, delayed, window)`
    /// where `window` is the ARQ send window
    /// ([`Engine::with_arq_window`]).
    pub retransmit_rounds: u64,
    /// Per-traffic-class message/bit counters, indexed by
    /// [`MessageSize::traffic_class`](crate::MessageSize::traffic_class)
    /// (clamped to the last bucket).
    pub by_class: [ClassMetrics; MESSAGE_CLASSES],
}

impl Metrics {
    /// Combines the metrics of two sequential engine runs: counters add
    /// (saturating, so pathological inputs cannot wrap), the maximum
    /// message size is the larger of the two. Used when a protocol
    /// executes as several engine passes (e.g. the serial reference path
    /// of the wide/narrow split schedulers).
    #[must_use]
    pub fn merged(mut self, other: Metrics) -> Metrics {
        self.rounds = self.rounds.saturating_add(other.rounds);
        self.messages = self.messages.saturating_add(other.messages);
        self.bits = self.bits.saturating_add(other.bits);
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.dropped = self.dropped.saturating_add(other.dropped);
        self.duplicated = self.duplicated.saturating_add(other.duplicated);
        self.delayed = self.delayed.saturating_add(other.delayed);
        self.retransmits = self.retransmits.saturating_add(other.retransmits);
        self.acks = self.acks.saturating_add(other.acks);
        self.ack_bits = self.ack_bits.saturating_add(other.ack_bits);
        self.dup_suppressed = self.dup_suppressed.saturating_add(other.dup_suppressed);
        self.retransmit_rounds = self
            .retransmit_rounds
            .saturating_add(other.retransmit_rounds);
        for (mine, theirs) in self.by_class.iter_mut().zip(other.by_class.iter()) {
            mine.messages = mine.messages.saturating_add(theirs.messages);
            mine.bits = mine.bits.saturating_add(theirs.bits);
            mine.retransmits = mine.retransmits.saturating_add(theirs.retransmits);
            mine.dup_suppressed = mine.dup_suppressed.saturating_add(theirs.dup_suppressed);
        }
        self
    }
}

/// Fault injection for simulator robustness testing.
///
/// The paper's model assumes reliable synchronous delivery and the
/// scheduling protocols are **not** fault-tolerant — injection exists to
/// exercise the engine's bookkeeping and to demonstrate how sensitive the
/// model is to message loss (see the engine tests), not to claim
/// resilience.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability each message is silently dropped.
    pub drop_probability: f64,
    /// Probability each delivered message is delivered twice.
    pub duplicate_probability: f64,
    /// Seed of the fault RNG (faults are reproducible).
    pub seed: u64,
}

impl FaultPlan {
    /// A reliable plan (no faults) — the default behaviour.
    pub fn reliable() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            seed: 0,
        }
    }

    /// Drops each message independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn dropping(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0,1]");
        FaultPlan {
            drop_probability: p,
            duplicate_probability: 0.0,
            seed,
        }
    }

    /// Duplicates each message independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn duplicating(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0,1]");
        FaultPlan {
            drop_probability: 0.0,
            duplicate_probability: p,
            seed,
        }
    }
}

/// Engine failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The round budget was exhausted before quiescence.
    RoundLimitExceeded {
        /// The budget that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not quiesce within {limit} rounds")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Reusable per-round buffer arena of one engine: the consumed-inbox set
/// and the per-node out-buffers.
///
/// Every round the engine swaps the whole mailbox vector with the arena's
/// inbox set (two pointer swaps, no per-message work), hands each node a
/// pooled out-buffer, and clears — rather than drops — everything
/// afterwards. Buffers therefore keep their high-water-mark capacity and
/// the steady-state round loop performs no per-message `Vec` allocation,
/// which is what lets the sharded executor scale to 10⁵–10⁶ nodes.
#[derive(Debug)]
pub struct MailboxArena<M> {
    /// Last round's inboxes, swapped out of the engine's live mailboxes
    /// at the start of each step and cleared (capacity kept) at its end.
    inboxes: Vec<Vec<Envelope<M>>>,
    /// Pooled per-node out-buffers lent to [`Context`]; drained by
    /// delivery, never dropped.
    outs: Vec<Vec<(usize, M)>>,
}

impl<M> MailboxArena<M> {
    /// An empty arena for `n` nodes.
    pub fn new(n: usize) -> Self {
        MailboxArena {
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            outs: (0..n).map(|_| Vec::new()).collect(),
        }
    }
}

/// A node's pooled out-buffer: `(destination, message)` pairs.
type OutBuf<M> = Vec<(usize, M)>;

/// Per-node `&mut` borrows handed out to shard threads; each shard
/// `take`s its members' slots, proving at runtime the borrows are
/// disjoint without `unsafe`.
type Slots<'a, T> = Vec<Option<&'a mut T>>;

/// A partition of the engine's nodes into shards that the sharded round
/// executor runs on scoped threads — one thread per shard per round.
///
/// Determinism requires every shard to be *component-closed*: all of a
/// node's topology neighbors live in its own shard, so each shard's
/// compute-and-deliver pass touches only shard-local mailboxes and the
/// per-inbox delivery order (ascending sender id) is byte-identical to
/// the single-threaded loop. [`Engine::with_shards`] re-validates the
/// closure against the engine's topology on installation.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Shard member lists, each sorted ascending; non-empty.
    shards: Vec<Vec<usize>>,
    /// `node -> shard index`.
    shard_of: Vec<u32>,
    /// `node -> position within its shard` (dense, for O(1) shard-local
    /// mailbox lookup during fused delivery).
    local_of: Vec<u32>,
}

impl ShardPlan {
    /// Builds a plan from explicit member groups over nodes `0..n`.
    /// Groups are sorted internally; empty groups are dropped.
    ///
    /// # Panics
    ///
    /// Panics unless the groups form an exact partition of `0..n` (every
    /// node in exactly one group, no out-of-range members).
    pub fn from_groups(n: usize, groups: Vec<Vec<usize>>) -> Self {
        const UNASSIGNED: u32 = u32::MAX;
        let mut shards: Vec<Vec<usize>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
        let mut shard_of = vec![UNASSIGNED; n];
        let mut local_of = vec![UNASSIGNED; n];
        for (s, shard) in shards.iter_mut().enumerate() {
            shard.sort_unstable();
            for (i, &v) in shard.iter().enumerate() {
                assert!(v < n, "shard member {v} out of range (n = {n})");
                assert!(
                    shard_of[v] == UNASSIGNED,
                    "node {v} appears in more than one shard"
                );
                shard_of[v] = s as u32;
                local_of[v] = i as u32;
            }
        }
        if let Some(v) = shard_of.iter().position(|&s| s == UNASSIGNED) {
            panic!("node {v} is missing from the shard plan");
        }
        ShardPlan {
            shards,
            shard_of,
            local_of,
        }
    }

    /// Partitions a topology's connected components into at most
    /// `max_shards` shards, balancing by component size (longest
    /// processing time first, deterministic tie-breaks: larger component
    /// first, then smaller minimum id, assigned to the least-loaded
    /// lowest-index shard).
    pub fn by_components(topology: &Topology, max_shards: usize) -> Self {
        let components = topology.components();
        let bins = max_shards.max(1).min(components.len().max(1));
        let mut order: Vec<usize> = (0..components.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(components[i].len()), components[i][0]));
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); bins];
        let mut load = vec![0usize; bins];
        for i in order {
            let b = (0..bins)
                .min_by_key(|&b| (load[b], b))
                .expect("at least one bin");
            load[b] += components[i].len();
            groups[b].extend(&components[i]);
        }
        ShardPlan::from_groups(topology.len(), groups)
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan has zero shards (only for zero nodes).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard member lists, each sorted ascending.
    pub fn shards(&self) -> &[Vec<usize>] {
        &self.shards
    }

    /// The shard index of `v`.
    pub fn shard_of(&self, v: usize) -> usize {
        self.shard_of[v] as usize
    }

    /// Number of nodes covered by the plan.
    pub fn node_count(&self) -> usize {
        self.shard_of.len()
    }

    fn local_of(&self, v: usize) -> usize {
        self.local_of[v] as usize
    }
}

/// Drives a set of [`Protocol`] nodes over a [`Topology`] in synchronous
/// rounds (see the crate-level example).
pub struct Engine<P: Protocol> {
    nodes: Vec<P>,
    topology: Topology,
    mailboxes: Vec<Vec<Envelope<P::Msg>>>,
    arena: MailboxArena<P::Msg>,
    metrics: Metrics,
    started: bool,
    faults: Option<(FaultPlan, SmallRng)>,
    shuffle: Option<SmallRng>,
    reliable: Option<Reliable<P::Msg>>,
    arq_window: u32,
    shards: Option<ShardPlan>,
}

impl<P: Protocol + fmt::Debug> fmt::Debug for Engine<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("nodes", &self.nodes)
            .field("topology", &self.topology)
            .field("metrics", &self.metrics)
            .field("started", &self.started)
            .field("faults", &self.faults.as_ref().map(|(plan, _)| plan))
            .field("shuffled", &self.shuffle.is_some())
            .field("reliable", &self.reliable.is_some())
            .field("shards", &self.shards.as_ref().map(ShardPlan::len))
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> Engine<P> {
    /// Creates an engine; `nodes[i]` sits at topology node `i`.
    ///
    /// # Panics
    ///
    /// Panics if the node count differs from the topology size.
    pub fn new(nodes: Vec<P>, topology: Topology) -> Self {
        assert_eq!(
            nodes.len(),
            topology.len(),
            "one protocol node per topology node"
        );
        let n = nodes.len();
        Engine {
            nodes,
            topology,
            mailboxes: vec![Vec::new(); n],
            arena: MailboxArena::new(n),
            metrics: Metrics::default(),
            started: false,
            faults: None,
            shuffle: None,
            reliable: None,
            arq_window: crate::reliable::DEFAULT_ARQ_WINDOW,
            shards: None,
        }
    }

    /// Installs a shard plan (builder style): each round's node steps run
    /// on one scoped thread per shard, with fused shard-local delivery
    /// when no loss model or fault plan is active. Results — inbox
    /// contents and order, metrics, RNG traces — are bit-identical to the
    /// single-threaded executor at any shard count, because shards are
    /// component-closed and each shard delivers in ascending sender
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not cover exactly this engine's nodes, or
    /// if any topology edge crosses shards (shards must be unions of
    /// connected components).
    #[must_use]
    pub fn with_shards(mut self, plan: ShardPlan) -> Self {
        assert_eq!(
            plan.node_count(),
            self.topology.len(),
            "shard plan must cover every node"
        );
        for (a, b) in self.topology.edges() {
            assert_eq!(
                plan.shard_of(a),
                plan.shard_of(b),
                "edge {a}-{b} crosses shards: shards must be unions of connected components"
            );
        }
        self.shards = Some(plan);
        self
    }

    /// Shards the engine by connected components into at most `threads`
    /// shards (builder style); `threads <= 1` restores the
    /// single-threaded executor. See [`Engine::with_shards`].
    #[must_use]
    pub fn with_threads(self, threads: usize) -> Self {
        if threads <= 1 {
            let mut engine = self;
            engine.shards = None;
            engine
        } else {
            let plan = ShardPlan::by_components(&self.topology, threads);
            self.with_shards(plan)
        }
    }

    /// Enables *raw* fault injection (builder style): messages are
    /// dropped or duplicated with no recovery — see [`FaultPlan`].
    /// Mutually exclusive with [`Engine::with_loss_model`], which puts
    /// the same faults beneath a reliable-delivery layer instead.
    ///
    /// # Panics
    ///
    /// Panics if a loss model is already installed.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        assert!(
            self.reliable.is_none(),
            "with_faults and with_loss_model are mutually exclusive: raw injection \
             bypasses the reliable layer"
        );
        self.faults = Some((plan, SmallRng::seed_from_u64(plan.seed)));
        self
    }

    /// Enables the reliable-delivery sublayer over a lossy link model
    /// (builder style): per-edge sequence numbers, a sliding send window
    /// with eager pipelined retransmission, proactive repetition on
    /// known-lossy classes, cumulative+SACK acks and duplicate
    /// suppression keep every *logical* round's inbox byte-identical to
    /// a lossless run, at the cost of extra recovery slots and
    /// retransmission/ack traffic (tracked by the new [`Metrics`]
    /// counters). A lossless model is a literal zero-overhead
    /// passthrough. See [`crate::reliable`] for the protocol and its
    /// determinism contract. Mutually exclusive with
    /// [`Engine::with_faults`].
    ///
    /// # Panics
    ///
    /// Panics if raw fault injection is already installed.
    #[must_use]
    pub fn with_loss_model(mut self, model: LossModel) -> Self {
        assert!(
            self.faults.is_none(),
            "with_faults and with_loss_model are mutually exclusive: raw injection \
             bypasses the reliable layer"
        );
        self.reliable = Some(Reliable::new(model, self.arq_window));
        self
    }

    /// Sets the ARQ send window (builder style): the per-packet
    /// in-flight transmission budget of the reliable layer, i.e. how
    /// many copies of one packet may be sent eagerly (initial salvo plus
    /// back-to-back recovery-slot repairs) before the two-slot pacing
    /// timer takes over. `window = 1` degenerates to classic
    /// stop-and-wait (the `4·(dropped+delayed)` bound regime);
    /// `window ≥ 2` enables pipelined repair and the
    /// `2·(dropped+delayed)` bound. Values are clamped to at least 1;
    /// the default is [`crate::DEFAULT_ARQ_WINDOW`]. No effect unless a
    /// loss model is (or becomes) installed.
    #[must_use]
    pub fn with_arq_window(mut self, window: u32) -> Self {
        self.arq_window = window.max(1);
        if let Some(reliable) = self.reliable.as_mut() {
            reliable.set_window(self.arq_window);
        }
        self
    }

    /// Enables adversarial (but reproducible, seeded) shuffling of each
    /// node's per-round inbox before delivery. The synchronous model
    /// fixes *which* round a message arrives in but not the order within
    /// the inbox — protocols must not depend on it, and the scheduler
    /// tests use this knob to prove they don't.
    #[must_use]
    pub fn with_delivery_shuffle(mut self, seed: u64) -> Self {
        self.shuffle = Some(SmallRng::seed_from_u64(seed));
        self
    }

    /// Immutable access to the protocol nodes (e.g. to read results).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable access to the protocol nodes (e.g. to reconfigure between
    /// phases).
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Runs `on_start` (once) and then rounds until quiescence — all nodes
    /// done and no in-flight messages — or until `max_rounds` is hit.
    ///
    /// Returns the accumulated metrics on success. Can be called again
    /// after new work is injected via [`Engine::nodes_mut`]; metrics keep
    /// accumulating.
    ///
    /// # Errors
    ///
    /// [`EngineError::RoundLimitExceeded`] if the protocol does not
    /// quiesce in time (metrics keep whatever was accumulated).
    pub fn run(&mut self, max_rounds: u64) -> Result<Metrics, EngineError>
    where
        P: Send,
        P::Msg: Send + Sync,
    {
        if !self.started {
            self.started = true;
            // on_start runs serially (it happens once); the sends land in
            // the arena's pooled out-buffers like any round's.
            for (v, node) in self.nodes.iter_mut().enumerate() {
                let mut ctx = Context {
                    node: v,
                    neighbors: self.topology.neighbors(v),
                    out: &mut self.arena.outs[v],
                };
                node.on_start(&mut ctx);
            }
            self.deliver();
        }
        let mut executed = 0u64;
        while !self.quiescent() {
            if executed >= max_rounds {
                return Err(EngineError::RoundLimitExceeded { limit: max_rounds });
            }
            self.step();
            executed += 1;
        }
        Ok(self.metrics)
    }

    /// Executes exactly one synchronous round.
    ///
    /// With a [`ShardPlan`] installed ([`Engine::with_shards`]) the node
    /// steps run on one scoped thread per shard; everything the protocol
    /// or the metrics can observe is bit-identical to the single-threaded
    /// executor. The delivery-shuffle RNG is consumed in a serial
    /// pre-pass (once per node per round, in node order) and the loss /
    /// fault RNG in a serial delivery pass, so those traces are
    /// thread-count-invariant too.
    pub fn step(&mut self)
    where
        P: Send,
        P::Msg: Send + Sync,
    {
        let round = self.metrics.rounds;
        // Whole-vector swap: the live mailboxes become this round's
        // inboxes, the arena's cleared buffers (capacity intact) become
        // the landing zone for next round's messages.
        std::mem::swap(&mut self.mailboxes, &mut self.arena.inboxes);
        if let Some(rng) = self.shuffle.as_mut() {
            use rand::seq::SliceRandom;
            for inbox in &mut self.arena.inboxes {
                inbox.shuffle(rng);
            }
        }
        let sharded = self.shards.as_ref().is_some_and(|plan| plan.len() > 1);
        if !sharded {
            for (v, node) in self.nodes.iter_mut().enumerate() {
                let mut ctx = Context {
                    node: v,
                    neighbors: self.topology.neighbors(v),
                    out: &mut self.arena.outs[v],
                };
                node.on_round(round, &self.arena.inboxes[v], &mut ctx);
            }
            self.deliver();
        } else if self.reliable.is_some() || self.faults.is_some() {
            // Loss/fault RNGs are single serial streams: compute in
            // parallel, deliver serially in global node order so the
            // trace is identical at any thread count.
            self.compute_sharded(round);
            self.deliver();
        } else {
            self.step_sharded_fused(round);
        }
        for inbox in &mut self.arena.inboxes {
            inbox.clear();
        }
        self.metrics.rounds += 1;
    }

    /// Parallel node compute only: each shard thread fills its members'
    /// out-buffers; delivery is left to the caller.
    fn compute_sharded(&mut self, round: u64)
    where
        P: Send,
        P::Msg: Send + Sync,
    {
        let plan = self.shards.as_ref().expect("sharded path requires a plan");
        let topology = &self.topology;
        let inboxes: &[Vec<Envelope<P::Msg>>] = &self.arena.inboxes;
        let mut node_slots: Slots<'_, P> = self.nodes.iter_mut().map(Some).collect();
        let mut out_slots: Slots<'_, OutBuf<P::Msg>> =
            self.arena.outs.iter_mut().map(Some).collect();
        type ComputeWork<'a, P> = (
            &'a [usize],
            Vec<&'a mut P>,
            Vec<&'a mut OutBuf<<P as Protocol>::Msg>>,
        );
        let work: Vec<ComputeWork<'_, P>> = plan
            .shards()
            .iter()
            .map(|members| {
                (
                    members.as_slice(),
                    members
                        .iter()
                        .map(|&v| node_slots[v].take().expect("partition"))
                        .collect(),
                    members
                        .iter()
                        .map(|&v| out_slots[v].take().expect("partition"))
                        .collect(),
                )
            })
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .into_iter()
                .map(|(members, mut nodes, mut outs)| {
                    scope.spawn(move || {
                        for (i, &v) in members.iter().enumerate() {
                            let mut ctx = Context {
                                node: v,
                                neighbors: topology.neighbors(v),
                                out: outs[i],
                            };
                            nodes[i].on_round(round, &inboxes[v], &mut ctx);
                        }
                    })
                })
                .collect();
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }

    /// The fully in-shard round: compute and local delivery fused on each
    /// shard thread (valid because component closure keeps every
    /// destination in-shard), with per-shard metrics deltas merged
    /// afterwards. Delivery within a shard walks members in ascending id
    /// order, so every inbox receives exactly the single-threaded order.
    fn step_sharded_fused(&mut self, round: u64)
    where
        P: Send,
        P::Msg: Send + Sync,
    {
        let plan = self.shards.as_ref().expect("sharded path requires a plan");
        let topology = &self.topology;
        let MailboxArena { inboxes, outs } = &mut self.arena;
        let inboxes: &[Vec<Envelope<P::Msg>>] = inboxes;
        let mut node_slots: Slots<'_, P> = self.nodes.iter_mut().map(Some).collect();
        let mut out_slots: Slots<'_, OutBuf<P::Msg>> = outs.iter_mut().map(Some).collect();
        let mut mail_slots: Slots<'_, Vec<Envelope<P::Msg>>> =
            self.mailboxes.iter_mut().map(Some).collect();
        type ShardWork<'a, P> = (
            &'a [usize],
            Vec<&'a mut P>,
            Vec<&'a mut OutBuf<<P as Protocol>::Msg>>,
            Vec<&'a mut Vec<Envelope<<P as Protocol>::Msg>>>,
        );
        let work: Vec<ShardWork<'_, P>> = plan
            .shards()
            .iter()
            .map(|members| {
                (
                    members.as_slice(),
                    members
                        .iter()
                        .map(|&v| node_slots[v].take().expect("partition"))
                        .collect(),
                    members
                        .iter()
                        .map(|&v| out_slots[v].take().expect("partition"))
                        .collect(),
                    members
                        .iter()
                        .map(|&v| mail_slots[v].take().expect("partition"))
                        .collect(),
                )
            })
            .collect();
        let deltas = std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .into_iter()
                .map(|(members, mut nodes, mut outs, mut mailboxes)| {
                    scope.spawn(move || {
                        let mut delta = Metrics::default();
                        for (i, &v) in members.iter().enumerate() {
                            {
                                let mut ctx = Context {
                                    node: v,
                                    neighbors: topology.neighbors(v),
                                    out: outs[i],
                                };
                                nodes[i].on_round(round, &inboxes[v], &mut ctx);
                            }
                            for (to, msg) in outs[i].drain(..) {
                                let bits = msg.size_bits();
                                let class = msg.traffic_class().min(MESSAGE_CLASSES - 1);
                                delta.messages += 1;
                                delta.bits += bits;
                                delta.max_message_bits = delta.max_message_bits.max(bits);
                                delta.by_class[class].messages += 1;
                                delta.by_class[class].bits += bits;
                                debug_assert_eq!(
                                    plan.shard_of(to),
                                    plan.shard_of(v),
                                    "component closure keeps destinations in-shard"
                                );
                                mailboxes[plan.local_of(to)].push(Envelope { from: v, msg });
                            }
                        }
                        delta
                    })
                })
                .collect();
            let mut deltas = Vec::with_capacity(handles.len());
            for handle in handles {
                match handle.join() {
                    Ok(delta) => deltas.push(delta),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            deltas
        });
        // Saturating counter adds and a max are commutative, so the merge
        // order cannot matter; `rounds` deltas are zero by construction.
        for delta in deltas {
            self.metrics = self.metrics.merged(delta);
        }
    }

    /// Drains the arena's out-buffers into the live mailboxes — the
    /// single-threaded delivery path, also used after a sharded compute
    /// when a loss model or fault plan needs its serial RNG trace.
    fn deliver(&mut self) {
        if let Some(reliable) = self.reliable.as_mut() {
            // The reliable path: the layer transmits, recovers every
            // loss (charging recovery slots to the metrics) and returns
            // the round's inboxes in canonical lossless order.
            let inboxes = reliable.exchange(&mut self.arena.outs, &mut self.metrics);
            for (to, inbox) in inboxes.into_iter().enumerate() {
                self.mailboxes[to].extend(inbox);
            }
            return;
        }
        for from in 0..self.arena.outs.len() {
            // Take the buffer out of the arena for the duration of the
            // drain (delivery borrows mailboxes/metrics/faults), then
            // put it back so its capacity is reused next round.
            let mut out = std::mem::take(&mut self.arena.outs[from]);
            for (to, msg) in out.drain(..) {
                if let Some((plan, rng)) = self.faults.as_mut() {
                    if plan.drop_probability > 0.0 && rng.gen_bool(plan.drop_probability) {
                        self.metrics.dropped += 1;
                        continue;
                    }
                    if plan.duplicate_probability > 0.0 && rng.gen_bool(plan.duplicate_probability)
                    {
                        self.metrics.duplicated += 1;
                        self.mailboxes[to].push(Envelope {
                            from,
                            msg: msg.clone(),
                        });
                    }
                }
                let bits = msg.size_bits();
                let class = msg.traffic_class().min(MESSAGE_CLASSES - 1);
                self.metrics.messages += 1;
                self.metrics.bits += bits;
                self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
                self.metrics.by_class[class].messages += 1;
                self.metrics.by_class[class].bits += bits;
                self.mailboxes[to].push(Envelope { from, msg });
            }
            self.arena.outs[from] = out;
        }
    }

    /// Whether every node is done and no message is in flight.
    pub fn quiescent(&self) -> bool {
        self.nodes.iter().all(Protocol::is_done) && self.mailboxes.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts messages received; sends `k` pings on start and stops.
    struct Pinger {
        to_send: u64,
        received: u64,
    }

    impl Protocol for Pinger {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            for i in 0..self.to_send {
                if !ctx.neighbors().is_empty() {
                    let target = ctx.neighbors()[i as usize % ctx.neighbors().len()];
                    ctx.send(target, i);
                }
            }
        }
        fn on_round(&mut self, _round: u64, inbox: &[Envelope<u64>], _ctx: &mut Context<'_, u64>) {
            self.received += inbox.len() as u64;
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn delivers_messages_and_counts_metrics() {
        let mut topology = Topology::new(2);
        topology.add_edge(0, 1);
        let nodes = vec![
            Pinger {
                to_send: 3,
                received: 0,
            },
            Pinger {
                to_send: 0,
                received: 0,
            },
        ];
        let mut engine = Engine::new(nodes, topology);
        let metrics = engine.run(10).unwrap();
        assert_eq!(engine.nodes()[1].received, 3);
        assert_eq!(metrics.messages, 3);
        assert_eq!(metrics.bits, 3 * 64);
        assert_eq!(metrics.max_message_bits, 64);
        // One round to drain the start messages.
        assert_eq!(metrics.rounds, 1);
    }

    /// Relays a token along a path; node i forwards to i+1.
    struct Relay {
        id: usize,
        last: usize,
        got: bool,
    }

    impl Protocol for Relay {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            if self.id == 0 {
                ctx.send(1, 42);
            }
        }
        fn on_round(&mut self, _round: u64, inbox: &[Envelope<u64>], ctx: &mut Context<'_, u64>) {
            if inbox.iter().any(|e| e.msg == 42) {
                self.got = true;
                if self.id < self.last {
                    ctx.send(self.id + 1, 42);
                }
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn token_takes_one_round_per_hop() {
        let n = 6;
        let mut topology = Topology::new(n);
        for i in 0..n - 1 {
            topology.add_edge(i, i + 1);
        }
        let nodes = (0..n)
            .map(|id| Relay {
                id,
                last: n - 1,
                got: false,
            })
            .collect();
        let mut engine = Engine::new(nodes, topology);
        let metrics = engine.run(20).unwrap();
        assert!(engine.nodes().iter().skip(1).all(|r| r.got));
        // n-1 hops, one round each.
        assert_eq!(metrics.rounds, (n - 1) as u64);
        assert_eq!(metrics.messages, (n - 1) as u64);
    }

    /// Never finishes: tests the round limit.
    struct Chatter;
    impl Protocol for Chatter {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.broadcast(0);
        }
        fn on_round(&mut self, _round: u64, _inbox: &[Envelope<u64>], ctx: &mut Context<'_, u64>) {
            ctx.broadcast(0);
        }
        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_is_enforced() {
        let topology = Topology::complete(3);
        let mut engine = Engine::new(vec![Chatter, Chatter, Chatter], topology);
        let err = engine.run(5).unwrap_err();
        assert_eq!(err, EngineError::RoundLimitExceeded { limit: 5 });
        assert!(err.to_string().contains("5 rounds"));
    }

    /// Ignores the topology and fires at node 1 directly — a model
    /// violation the engine must reject.
    struct BadSender;
    impl Protocol for BadSender {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.send(1, 0);
        }
        fn on_round(&mut self, _r: u64, _i: &[Envelope<u64>], _c: &mut Context<'_, u64>) {}
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sends_to_non_neighbors_panic() {
        let topology = Topology::new(2); // no edges
        let mut engine = Engine::new(vec![BadSender, BadSender], topology);
        let _ = engine.run(5);
    }

    /// Waits one round, then fires at a non-neighbor mid-protocol: the
    /// single-hop assertion must also guard sends issued from `on_round`.
    struct LateBadSender;
    impl Protocol for LateBadSender {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.broadcast(7);
        }
        fn on_round(&mut self, _r: u64, _i: &[Envelope<u64>], ctx: &mut Context<'_, u64>) {
            // Node ids are 0..3 on a path 0-1-2; node 0's neighbors are
            // just {1}, so 2 is one hop too far.
            if ctx.node() == 0 {
                ctx.send(2, 9);
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn on_round_sends_to_non_neighbors_panic() {
        let mut topology = Topology::new(3);
        topology.add_edge(0, 1);
        topology.add_edge(1, 2);
        let mut engine = Engine::new(vec![LateBadSender, LateBadSender, LateBadSender], topology);
        let _ = engine.run(5);
    }

    /// Broadcasts once from node 0, counts receipts everywhere.
    struct Caster {
        received: u64,
    }
    impl Protocol for Caster {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            if ctx.node() == 0 {
                ctx.broadcast(1);
            }
        }
        fn on_round(&mut self, _r: u64, inbox: &[Envelope<u64>], _c: &mut Context<'_, u64>) {
            self.received += inbox.len() as u64;
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn broadcast_reaches_exactly_the_neighbors() {
        // Broadcast routes through send: every topology neighbor gets one
        // copy, nobody else does, and the neighbor assertion holds.
        let mut topology = Topology::new(4);
        topology.add_edge(0, 1);
        topology.add_edge(0, 2); // node 3 is not adjacent to node 0
        let mut engine = Engine::new((0..4).map(|_| Caster { received: 0 }).collect(), topology);
        let metrics = engine.run(5).unwrap();
        assert_eq!(metrics.messages, 2);
        assert_eq!(engine.nodes()[0].received, 0);
        assert_eq!(engine.nodes()[1].received, 1);
        assert_eq!(engine.nodes()[2].received, 1);
        assert_eq!(engine.nodes()[3].received, 0);
    }

    /// Messages alternate between class 0 and class 1 by parity.
    struct ClassyMsg(u64);
    impl Clone for ClassyMsg {
        fn clone(&self) -> Self {
            ClassyMsg(self.0)
        }
    }
    impl MessageSize for ClassyMsg {
        fn size_bits(&self) -> u64 {
            64
        }
        fn traffic_class(&self) -> usize {
            (self.0 % 2) as usize
        }
    }
    struct ClassSender;
    impl Protocol for ClassSender {
        type Msg = ClassyMsg;
        fn on_start(&mut self, ctx: &mut Context<'_, ClassyMsg>) {
            if ctx.node() == 0 {
                for i in 0..5 {
                    ctx.send(1, ClassyMsg(i));
                }
            }
        }
        fn on_round(
            &mut self,
            _r: u64,
            _i: &[Envelope<ClassyMsg>],
            _c: &mut Context<'_, ClassyMsg>,
        ) {
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn per_class_counters_split_traffic() {
        let mut topology = Topology::new(2);
        topology.add_edge(0, 1);
        let mut engine = Engine::new(vec![ClassSender, ClassSender], topology);
        let metrics = engine.run(5).unwrap();
        assert_eq!(metrics.messages, 5);
        assert_eq!(metrics.by_class[0].messages, 3); // 0, 2, 4
        assert_eq!(metrics.by_class[1].messages, 2); // 1, 3
        assert_eq!(metrics.by_class[0].bits, 3 * 64);
        assert_eq!(metrics.by_class[1].bits, 2 * 64);
        // Class totals add up to the global counters.
        let (m, b) = metrics
            .by_class
            .iter()
            .fold((0, 0), |(m, b), c| (m + c.messages, b + c.bits));
        assert_eq!((m, b), (metrics.messages, metrics.bits));
    }

    #[test]
    fn merged_metrics_add_counters_and_max_sizes() {
        let a = Metrics {
            rounds: 3,
            messages: 10,
            bits: 640,
            max_message_bits: 64,
            ..Metrics::default()
        };
        let b = Metrics {
            rounds: 2,
            messages: 4,
            bits: 512,
            max_message_bits: 128,
            ..Metrics::default()
        };
        let m = a.merged(b);
        assert_eq!(m.rounds, 5);
        assert_eq!(m.messages, 14);
        assert_eq!(m.bits, 1152);
        assert_eq!(m.max_message_bits, 128);
    }

    /// Sums received payloads — order-insensitive, so shuffled delivery
    /// must not change the result while the inbox order does change.
    struct Summer {
        sum: u64,
        order: Vec<u64>,
    }
    impl Protocol for Summer {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            if ctx.node() != 0 {
                ctx.send(0, ctx.node() as u64);
            }
        }
        fn on_round(&mut self, _r: u64, inbox: &[Envelope<u64>], _c: &mut Context<'_, u64>) {
            for env in inbox {
                self.sum += env.msg;
                self.order.push(env.msg);
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn delivery_shuffle_reorders_within_a_round_only() {
        let build = || {
            let mut topology = Topology::new(5);
            for v in 1..5 {
                topology.add_edge(0, v);
            }
            Engine::new(
                (0..5)
                    .map(|_| Summer {
                        sum: 0,
                        order: Vec::new(),
                    })
                    .collect(),
                topology,
            )
        };
        let mut plain = build();
        plain.run(5).unwrap();
        let mut shuffled = build().with_delivery_shuffle(0xbeef);
        shuffled.run(5).unwrap();
        // Same metrics, same (order-insensitive) result…
        assert_eq!(plain.metrics(), shuffled.metrics());
        assert_eq!(plain.nodes()[0].sum, shuffled.nodes()[0].sum);
        // …but a genuinely different delivery order (all four messages
        // arrive in the same round, so only the inbox order can differ).
        assert_eq!(plain.nodes()[0].order, vec![1, 2, 3, 4]);
        assert_ne!(plain.nodes()[0].order, shuffled.nodes()[0].order);
        // And the shuffle is reproducible per seed.
        let mut again = build().with_delivery_shuffle(0xbeef);
        again.run(5).unwrap();
        assert_eq!(shuffled.nodes()[0].order, again.nodes()[0].order);
    }

    #[test]
    fn multi_phase_runs_accumulate_metrics() {
        let mut topology = Topology::new(2);
        topology.add_edge(0, 1);
        let nodes = vec![
            Pinger {
                to_send: 2,
                received: 0,
            },
            Pinger {
                to_send: 0,
                received: 0,
            },
        ];
        let mut engine = Engine::new(nodes, topology);
        let m1 = engine.run(10).unwrap();
        // Inject more work.
        engine.nodes_mut()[0].to_send = 0;
        let m2 = engine.run(10).unwrap();
        assert_eq!(m1.messages, 2);
        assert_eq!(m2.messages, 2, "no new messages sent in phase 2");
        assert_eq!(engine.metrics().messages, 2);
    }
}

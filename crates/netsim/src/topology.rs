//! Communication topologies: who may exchange messages with whom.

/// An undirected communication graph over nodes `0..n`.
///
/// In the scheduling problem the nodes are processors and an edge exists
/// iff two processors share an accessible resource (`Acc(P₁) ∩ Acc(P₂) ≠
/// ∅`). The [`crate::Engine`] rejects sends along non-edges — the model
/// permits single-hop communication only.
#[derive(Clone, Debug)]
pub struct Topology {
    adj: Vec<Vec<usize>>,
}

impl Topology {
    /// An edgeless topology over `n` nodes.
    pub fn new(n: usize) -> Self {
        Topology {
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a topology from sorted-or-not adjacency lists.
    ///
    /// # Panics
    ///
    /// Panics if a neighbor index is out of range or self-referential.
    pub fn from_adjacency(adj: Vec<Vec<usize>>) -> Self {
        let n = adj.len();
        let mut topology = Topology { adj };
        for (v, list) in topology.adj.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            for &w in list.iter() {
                assert!(w < n, "neighbor {w} out of range");
                assert_ne!(w, v, "self-loops are not allowed");
            }
        }
        topology
    }

    /// Adds the undirected edge `{a, b}` (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `a == b`.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        let n = self.adj.len();
        assert!(a < n && b < n, "edge endpoints must be < {n}");
        assert_ne!(a, b, "self-loops are not allowed");
        if let Err(pos) = self.adj[a].binary_search(&b) {
            self.adj[a].insert(pos, b);
        }
        if let Err(pos) = self.adj[b].binary_search(&a) {
            self.adj[b].insert(pos, a);
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the topology has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Neighbors of `v`, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Whether `{a, b}` is an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }

    /// Iterates the undirected edges as `(a, b)` with `a < b`, in
    /// ascending order — the canonical enumeration used by the reliable
    /// layer's tests to audit per-edge link state.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(a, list)| list.iter().filter(move |&&b| a < b).map(move |&b| (a, b)))
    }

    /// Connected components of the graph, each sorted ascending, ordered
    /// by smallest member id. Components are the unit of parallelism for
    /// the sharded engine ([`crate::ShardPlan::by_components`]): nodes in
    /// different components can never exchange messages, so their rounds
    /// commute.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        let mut components = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            queue.push_back(s);
            let mut component = Vec::new();
            while let Some(v) = queue.pop_front() {
                component.push(v);
                for &w in self.neighbors(v) {
                    if !seen[w] {
                        seen[w] = true;
                        queue.push_back(w);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// A complete topology over `n` nodes (every pair connected).
    pub fn complete(n: usize) -> Self {
        let adj = (0..n)
            .map(|v| (0..n).filter(|&w| w != v).collect())
            .collect();
        Topology { adj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_is_idempotent_and_symmetric() {
        let mut t = Topology::new(4);
        t.add_edge(0, 2);
        t.add_edge(2, 0);
        t.add_edge(1, 2);
        assert_eq!(t.edge_count(), 2);
        assert!(t.has_edge(0, 2));
        assert!(t.has_edge(2, 0));
        assert!(!t.has_edge(0, 1));
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_adjacency_normalizes() {
        let t = Topology::from_adjacency(vec![vec![2, 1, 1], vec![0], vec![0]]);
        assert_eq!(t.neighbors(0), &[1, 2]);
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut t = Topology::new(2);
        t.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let t = Topology::from_adjacency(vec![vec![5]]);
        let _ = t;
    }

    #[test]
    fn complete_topology() {
        let t = Topology::complete(4);
        assert_eq!(t.edge_count(), 6);
        assert!(t.has_edge(1, 3));
    }

    #[test]
    fn components_partition_the_nodes() {
        // Two triangles and an isolated node.
        let mut t = Topology::new(7);
        t.add_edge(0, 2);
        t.add_edge(2, 4);
        t.add_edge(4, 0);
        t.add_edge(1, 3);
        t.add_edge(3, 5);
        t.add_edge(5, 1);
        let comps = t.components();
        assert_eq!(comps, vec![vec![0, 2, 4], vec![1, 3, 5], vec![6]]);
        assert_eq!(Topology::complete(3).components(), vec![vec![0, 1, 2]]);
        assert!(Topology::new(0).components().is_empty());
    }
}

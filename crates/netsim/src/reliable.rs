//! Reliable delivery over lossy links: per-edge sequence numbers, a
//! sliding send window with eager pipelined retransmission, proactive
//! repetition on known-lossy classes, cumulative+SACK acknowledgements
//! and duplicate suppression, beneath the synchronous round abstraction.
//!
//! The paper's schedulers assume reliable synchronous delivery. This
//! module closes the gap between that model and a lossy network: the
//! engine keeps presenting the protocol with perfect synchronous rounds,
//! while underneath each *logical* round expands into one transmission
//! slot plus as many link-layer *recovery slots* as the loss process
//! demands. The application layer idles during recovery (a synchronizer);
//! once every packet of the round is through, the inbox is reassembled in
//! canonical `(sender, sequence)` order — exactly the delivery order of a
//! lossless run — and the protocol resumes. A protocol therefore observes
//! byte-identical inboxes at any loss rate, which is what makes the
//! distributed schedulers' results bit-identical under loss *by
//! construction*.
//!
//! # The link protocol
//!
//! * **Sequence numbers.** Every directed edge carries its own sequence
//!   counter; each payload is stamped once, at first transmission. On the
//!   wire a sequence number is a 16-bit wrapping counter; the receiver
//!   reconstructs the full (virtual) sequence from its monotone
//!   watermark, serial-number-arithmetic style, which is exact as long as
//!   fewer than 2¹⁵ packets of one edge are in flight at once (asserted).
//! * **Proactive repetition.** On a traffic class whose configured drop
//!   probability is nonzero, the first transmission is a salvo of
//!   several identical copies (enough to push the residual per-packet
//!   loss probability below ~0.2%, capped by the send window). Redundant
//!   copies are charged to
//!   [`Metrics::retransmits`](crate::Metrics::retransmits), roll only
//!   the drop process, and are suppressed by the receiver's sequence
//!   tracking when the packet already landed. This is what keeps most
//!   logical rounds at *zero* recovery slots even at high loss rates.
//! * **Sliding-window eager retransmission.** An unacknowledged packet
//!   is retransmitted in **every** recovery slot until `window` copies
//!   have been sent (the per-packet in-flight budget, see
//!   [`Engine::with_arq_window`](crate::Engine::with_arq_window));
//!   past the window the classic two-slot pacing timer (the link RTT)
//!   takes over. With the one-slot ack turnaround below, a packet that
//!   missed its salvo is usually repaired in a single recovery slot.
//! * **Cumulative + SACK acks, one-slot turnaround.** In every recovery
//!   slot, a node that accepted data on an edge in the previous slot
//!   returns the edge's cumulative sequence watermark plus the
//!   received-ahead set (SACK), so a gap never triggers spurious
//!   retransmission of packets behind it. Acks ride ahead of data within
//!   a slot: they are generated and applied *before* the slot's
//!   retransmission decisions, so the first recovery slot already
//!   retransmits selectively. An ack piggybacks for free when the
//!   reverse direction still has unacknowledged traffic in flight (its
//!   channel is active this slot); otherwise it is a standalone
//!   [`ACK_BITS`]-bit message, counted in
//!   [`Metrics::acks`](crate::Metrics::acks). The *logical round
//!   barrier* itself acts as the final cumulative ack: when every packet
//!   of the round is through, completing the barrier is common knowledge
//!   (that is exactly the guarantee a synchronizer provides), so
//!   outstanding state clears without a trailing ack exchange. This is
//!   what makes `p = 0` a literal zero-overhead passthrough: no acks, no
//!   retransmissions, no redundant copies, no extra slots, byte-identical
//!   metrics.
//!
//! # Determinism and RNG stream split
//!
//! The loss process draws from its **own** seeded RNG
//! ([`LossModel::seed`]); the engine's delivery-shuffle RNG
//! ([`Engine::with_delivery_shuffle`](crate::Engine::with_delivery_shuffle))
//! is a separate stream that is consumed exactly once per node per
//! *logical* round, never per recovery slot. The two streams therefore
//! compose deterministically: enabling a loss model — at any `p`,
//! including 0 — does not perturb the shuffle sequence, and enabling the
//! shuffle does not perturb the loss trace. Links are processed in
//! ascending `(from, to)` order within a slot, probabilities of zero
//! consume no randomness, and redundant copies draw exactly one drop
//! decision each, so the loss trace is a pure function of the model's
//! seed, the window configuration and the protocol's traffic.
//!
//! # Round inflation bound
//!
//! A recovery slot is only charged while some packet of the round is
//! undelivered or a delayed copy is in flight. Under eager pipelining
//! every such slot consumes a fresh drop or delay event (a copy is
//! re-lost or lands one slot late), and past the send window the pacing
//! timer adds at most two slots per further event — so the physical
//! expansion is bounded by `treenet_core::retransmit_round_bound`, i.e.
//! `retransmit_rounds ≤ 2 · (dropped + delayed)` at `window ≥ 2`
//! (`4 · (dropped + delayed)` in the stop-and-wait degenerate case
//! `window = 1`). The fault-injection proptests in `treenet-dist` assert
//! this bound on every run.

use crate::{Envelope, MessageSize, Metrics, MESSAGE_CLASSES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Wire size of a standalone cumulative+SACK ack, in bits: edge
/// endpoint, sequence watermark, a compact SACK block and a tag word.
/// Acks are link-layer control — they are accounted in
/// [`Metrics::acks`](crate::Metrics::acks) /
/// [`Metrics::ack_bits`](crate::Metrics::ack_bits), never in the
/// per-class protocol counters, and never touch `max_message_bits` (the
/// paper's `O(M)` bound concerns protocol payloads).
pub const ACK_BITS: u64 = 96;

/// Default per-packet in-flight transmission budget of the sliding
/// window (see [`Engine::with_arq_window`](crate::Engine::with_arq_window)):
/// room for a proactive salvo plus at least one eager repair copy.
pub const DEFAULT_ARQ_WINDOW: u32 = 6;

/// Residual per-packet loss probability the proactive-repetition salvo
/// aims for on classes with a nonzero drop probability.
const SPRAY_RESIDUAL_TARGET: f64 = 2e-3;

/// Hard cap on salvo size, independent of the window.
const SPRAY_MAX_COPIES: u32 = 5;

/// Safety valve: recovery slots per logical round before the layer
/// declares the loss process adversarially starving (e.g. a drop
/// probability of 1.0, under which no retransmission can ever succeed).
const MAX_RECOVERY_SLOTS: u64 = 100_000;

/// Half the 16-bit wire sequence space: the serial-number reconstruction
/// is exact while fewer packets than this are in flight per edge.
const WIRE_SEQ_HORIZON: usize = 32_768;

/// Reconstructs a full (virtual) sequence number from its 16-bit wire
/// form, relative to a reference the true value is known to sit within
/// ±2¹⁵ of (serial number arithmetic, RFC 1982 style).
fn unwrap_wire(reference: u64, wire: u16) -> u64 {
    let delta = wire.wrapping_sub(reference as u16) as i16 as i64;
    reference
        .checked_add_signed(delta)
        .expect("wire sequence outside the ±2^15 reconstruction horizon")
}

/// Per-traffic-class loss probabilities of one [`LossModel`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ClassLoss {
    /// Probability a transmission is silently dropped.
    pub drop: f64,
    /// Probability a delivered transmission arrives twice (the copy is
    /// suppressed by the receiver's sequence tracking).
    pub duplicate: f64,
    /// Probability a transmission is delayed by one slot.
    pub delay: f64,
}

impl ClassLoss {
    /// No loss at all.
    pub const NONE: ClassLoss = ClassLoss {
        drop: 0.0,
        duplicate: 0.0,
        delay: 0.0,
    };

    /// Bernoulli drops with probability `p`, nothing else.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn dropping(p: f64) -> Self {
        ClassLoss {
            drop: p,
            ..ClassLoss::NONE
        }
        .validated()
    }

    fn validated(self) -> Self {
        for (label, p) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("delay", self.delay),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{label} probability must lie in [0,1], got {p}"
            );
        }
        self
    }

    fn is_lossless(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.delay == 0.0
    }
}

/// A seeded, per-traffic-class loss process for the reliable-delivery
/// sublayer (see the module docs). Enable with
/// [`Engine::with_loss_model`](crate::Engine::with_loss_model).
///
/// Besides the Bernoulli processes, the model supports *deterministic*
/// adversarial drops for tests: an explicit global index list
/// ([`LossModel::with_forced_drops`]) and per-class index windows
/// ([`LossModel::with_class_window`]). Both count original transmissions
/// only — retransmissions and redundant salvo copies always face just
/// the Bernoulli process, so a forced drop is recovered, not repeated
/// forever.
#[derive(Clone, Debug, PartialEq)]
pub struct LossModel {
    /// Seed of the loss RNG — an independent stream from the engine's
    /// delivery-shuffle RNG (see the module docs on the stream split).
    pub seed: u64,
    classes: [ClassLoss; MESSAGE_CLASSES],
    acks: ClassLoss,
    forced_drops: Vec<u64>,
    class_windows: Vec<(usize, u64, u64)>,
}

impl LossModel {
    /// A loss model that never loses anything — the zero-overhead
    /// passthrough configuration (proven by the p=0 tests and the CI
    /// budget gate).
    pub fn lossless(seed: u64) -> Self {
        LossModel {
            seed,
            classes: [ClassLoss::NONE; MESSAGE_CLASSES],
            acks: ClassLoss::NONE,
            forced_drops: Vec::new(),
            class_windows: Vec::new(),
        }
    }

    /// Uniform Bernoulli drops with probability `p` on every traffic
    /// class, acks included.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn bernoulli(p: f64, seed: u64) -> Self {
        let class = ClassLoss::dropping(p);
        LossModel {
            seed,
            classes: [class; MESSAGE_CLASSES],
            acks: class,
            forced_drops: Vec::new(),
            class_windows: Vec::new(),
        }
    }

    /// Sets the duplication probability on every class (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[must_use]
    pub fn with_duplicates(mut self, p: f64) -> Self {
        for class in &mut self.classes {
            class.duplicate = p;
            *class = class.validated();
        }
        self
    }

    /// Sets the one-slot delay probability on every class, acks included
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[must_use]
    pub fn with_delays(mut self, p: f64) -> Self {
        for class in &mut self.classes {
            class.delay = p;
            *class = class.validated();
        }
        self.acks.delay = p;
        self.acks = self.acks.validated();
        self
    }

    /// Overrides the loss process of one traffic class (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `class ≥ MESSAGE_CLASSES` or a probability is out of
    /// range.
    #[must_use]
    pub fn with_class(mut self, class: usize, loss: ClassLoss) -> Self {
        assert!(class < MESSAGE_CLASSES, "class {class} out of range");
        self.classes[class] = loss.validated();
        self
    }

    /// Overrides the loss process of the link-layer acks (builder
    /// style). Acks are cumulative and idempotent, so their duplication
    /// probability is ignored.
    ///
    /// # Panics
    ///
    /// Panics if a probability is out of range.
    #[must_use]
    pub fn with_ack_loss(mut self, loss: ClassLoss) -> Self {
        self.acks = loss.validated();
        self
    }

    /// Deterministically drops the original transmissions with these
    /// global indices (0-based, counted across all classes in send
    /// order). Retransmissions and salvo copies are exempt, so every
    /// forced drop is recovered. The proptest shrinker minimizes exactly
    /// this set.
    #[must_use]
    pub fn with_forced_drops(mut self, mut indices: Vec<u64>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        self.forced_drops = indices;
        self
    }

    /// Deterministically drops original transmissions `start..start+len`
    /// of traffic class `class` (0-based per-class send order).
    /// Retransmissions and salvo copies are exempt.
    ///
    /// # Panics
    ///
    /// Panics if `class ≥ MESSAGE_CLASSES`.
    #[must_use]
    pub fn with_class_window(mut self, class: usize, start: u64, len: u64) -> Self {
        assert!(class < MESSAGE_CLASSES, "class {class} out of range");
        self.class_windows.push((class, start, len));
        self
    }

    /// Whether the model can never lose anything — used by the engine to
    /// prove the passthrough claim in debug assertions.
    pub fn is_lossless(&self) -> bool {
        self.classes.iter().all(ClassLoss::is_lossless)
            && self.acks.is_lossless()
            && self.forced_drops.is_empty()
            && self.class_windows.iter().all(|&(_, _, len)| len == 0)
    }

    fn forces_drop(&self, global_index: u64, class: usize, class_index: u64) -> bool {
        self.forced_drops.binary_search(&global_index).is_ok()
            || self.class_windows.iter().any(|&(c, start, len)| {
                c == class && class_index >= start && class_index < start.saturating_add(len)
            })
    }
}

/// Salvo size for one class under the given send window: enough copies
/// to push the residual drop probability below
/// [`SPRAY_RESIDUAL_TARGET`], capped by [`SPRAY_MAX_COPIES`] and by
/// `window - 1` so at least one eager repair copy always fits inside the
/// window. Lossless classes (and the stop-and-wait window of 1) send
/// exactly one copy.
fn salvo_copies(drop: f64, window: u32) -> u32 {
    if window <= 1 || drop <= 0.0 {
        return 1;
    }
    let wanted = if drop >= 1.0 {
        u32::MAX
    } else {
        (SPRAY_RESIDUAL_TARGET.ln() / drop.ln()).ceil() as u32
    };
    wanted.clamp(1, SPRAY_MAX_COPIES).min(window - 1).max(1)
}

/// One unacknowledged packet on a sender's directed edge.
struct Outstanding<M> {
    seq: u64,
    msg: M,
    class: usize,
    bits: u64,
    /// Slot of the most recent transmission (the pacing timer).
    last_sent: u64,
    /// Copies sent so far (salvo included) — the in-flight count the
    /// send window caps.
    sends: u64,
    /// Whether an ack covering this packet arrived. The sender's
    /// retransmission decisions look exclusively at this; the
    /// round-completion barrier tracks delivery separately (the
    /// `undelivered` counter in `exchange`, the simulator's ground
    /// truth standing in for the synchronizer).
    acked: bool,
}

/// Per-directed-edge link state: sender-side sequence/outstanding
/// bookkeeping and receiver-side duplicate suppression. Sequence state
/// is virtual (u64) internally; only the 16-bit wire form travels.
#[derive(Default)]
struct LinkState<M> {
    /// Next sequence number to stamp (sender side, virtual).
    next_seq: u64,
    /// Unacknowledged packets, ascending by `seq` (sender side).
    outstanding: Vec<Outstanding<M>>,
    /// All sequence numbers below this were accepted (receiver side);
    /// compacted to `next_seq` at every round barrier.
    recv_cum: u64,
    /// Accepted sequence numbers at or above `recv_cum` (receiver side).
    recv_ahead: Vec<u64>,
    /// Whether data arrived on this edge in the previous slot — the ack
    /// trigger (receiver side).
    got_data_last_slot: bool,
    got_data_this_slot: bool,
}

impl<M> LinkState<M> {
    fn new() -> Self {
        LinkState {
            next_seq: 0,
            outstanding: Vec::new(),
            recv_cum: 0,
            recv_ahead: Vec::new(),
            got_data_last_slot: false,
            got_data_this_slot: false,
        }
    }

    fn already_received(&self, seq: u64) -> bool {
        seq < self.recv_cum || self.recv_ahead.contains(&seq)
    }

    /// Receiver-side reconstruction reference: the next virtual sequence
    /// number not yet seen on this edge. Every in-flight wire sequence
    /// sits within the ±2¹⁵ horizon of it.
    fn expected(&self) -> u64 {
        self.recv_ahead
            .iter()
            .copied()
            .max()
            .map_or(self.recv_cum, |m| (m + 1).max(self.recv_cum))
    }

    /// Receiver-side cumulative watermark: every seq below it accepted.
    fn cumulative(&self) -> u64 {
        let mut cum = self.recv_cum;
        let mut ahead: Vec<u64> = self.recv_ahead.clone();
        ahead.sort_unstable();
        for seq in ahead {
            if seq == cum {
                cum += 1;
            }
        }
        cum
    }
}

/// An in-flight delayed data copy: arrives at the start of the next
/// slot. Carries the 16-bit wire sequence form, like the channel does.
struct DelayedData<M> {
    from: usize,
    to: usize,
    wire: u16,
    msg: M,
    class: usize,
    bits: u64,
}

/// An in-flight (or just-generated) ack: cumulative watermark plus the
/// selectively-acknowledged set above it (SACK), both in 16-bit wire
/// form, so a gap does not trigger spurious retransmissions of
/// everything behind it.
struct DelayedAck {
    from: usize,
    to: usize,
    cumulative_wire: u16,
    ahead_wire: Vec<u16>,
}

/// The reliable-delivery sublayer of one engine: the per-edge link state
/// plus the loss process. Owned by [`Engine`](crate::Engine) when
/// [`Engine::with_loss_model`](crate::Engine::with_loss_model) is set;
/// the protocol nodes never see it — they keep exchanging plain
/// messages over perfect logical rounds.
pub struct Reliable<M> {
    model: LossModel,
    /// Per-packet in-flight transmission budget (≥ 1); see
    /// [`Engine::with_arq_window`](crate::Engine::with_arq_window).
    window: u32,
    /// Salvo size per traffic class, derived from the model's drop
    /// probabilities and the window.
    salvo: [u32; MESSAGE_CLASSES],
    rng: SmallRng,
    /// Link state per directed edge, in ascending `(from, to)` order so
    /// every slot's RNG consumption is deterministic.
    links: BTreeMap<(u32, u32), LinkState<M>>,
    delayed_data: Vec<DelayedData<M>>,
    delayed_acks: Vec<DelayedAck>,
    /// Original transmissions so far, globally and per class (the
    /// deterministic-drop coordinates).
    originals: u64,
    class_originals: [u64; MESSAGE_CLASSES],
}

/// What the loss process decided for one transmission.
enum Fate {
    Deliver { duplicate: bool },
    Drop,
    Delay,
}

impl<M: Clone + MessageSize> Reliable<M> {
    /// Creates the layer for a fresh engine with the given send window.
    pub(crate) fn new(model: LossModel, window: u32) -> Self {
        let rng = SmallRng::seed_from_u64(model.seed);
        let window = window.max(1);
        let mut layer = Reliable {
            model,
            window,
            salvo: [1; MESSAGE_CLASSES],
            rng,
            links: BTreeMap::new(),
            delayed_data: Vec::new(),
            delayed_acks: Vec::new(),
            originals: 0,
            class_originals: [0; MESSAGE_CLASSES],
        };
        layer.set_window(window);
        layer
    }

    /// Re-derives the window-dependent state (the salvo schedule).
    pub(crate) fn set_window(&mut self, window: u32) {
        self.window = window.max(1);
        for (class, salvo) in self.salvo.iter_mut().enumerate() {
            *salvo = salvo_copies(self.model.classes[class].drop, self.window);
        }
    }

    /// Rolls the loss process for one transmission. Probabilities of
    /// zero consume no randomness, so a lossless class leaves the RNG
    /// stream untouched (part of the determinism contract).
    fn fate(rng: &mut SmallRng, loss: &ClassLoss) -> Fate {
        if loss.drop > 0.0 && rng.gen_bool(loss.drop) {
            return Fate::Drop;
        }
        if loss.delay > 0.0 && rng.gen_bool(loss.delay) {
            return Fate::Delay;
        }
        if loss.duplicate > 0.0 && rng.gen_bool(loss.duplicate) {
            return Fate::Deliver { duplicate: true };
        }
        Fate::Deliver { duplicate: false }
    }

    /// Accepts one arriving data copy at the receiver: reconstructs the
    /// virtual sequence from the wire form, suppresses duplicates,
    /// otherwise stages the payload for the round's inbox and counts the
    /// delivery. Returns whether the copy was new (a first delivery).
    #[allow(clippy::too_many_arguments)]
    fn receive(
        link: &mut LinkState<M>,
        staging: &mut [Vec<(usize, u64, M)>],
        metrics: &mut Metrics,
        from: usize,
        to: usize,
        wire: u16,
        msg: M,
        class: usize,
        bits: u64,
    ) -> bool {
        link.got_data_this_slot = true;
        let seq = unwrap_wire(link.expected(), wire);
        if link.already_received(seq) {
            metrics.dup_suppressed += 1;
            metrics.by_class[class].dup_suppressed += 1;
            return false;
        }
        link.recv_ahead.push(seq);
        metrics.messages += 1;
        metrics.bits += bits;
        metrics.max_message_bits = metrics.max_message_bits.max(bits);
        metrics.by_class[class].messages += 1;
        metrics.by_class[class].bits += bits;
        staging[to].push((from, seq, msg));
        true
    }

    /// Applies one cumulative+SACK ack to the sender state of its edge,
    /// reconstructing the virtual sequences against the sender's own
    /// counter (all outstanding packets sit within the wire horizon).
    fn apply_ack(links: &mut BTreeMap<(u32, u32), LinkState<M>>, ack: &DelayedAck) {
        if let Some(link) = links.get_mut(&(ack.from as u32, ack.to as u32)) {
            let cum = unwrap_wire(link.next_seq, ack.cumulative_wire);
            let ahead: Vec<u64> = ack
                .ahead_wire
                .iter()
                .map(|&w| unwrap_wire(link.next_seq, w))
                .collect();
            for packet in &mut link.outstanding {
                if packet.seq < cum || ahead.contains(&packet.seq) {
                    packet.acked = true;
                }
            }
        }
    }

    /// Runs one logical round's exchange: transmits `outs` (salvo
    /// included), recovers every loss, and returns the reassembled
    /// per-node inboxes in canonical `(sender, sequence)` order — the
    /// lossless delivery order. Recovery slots are charged to
    /// `metrics.rounds` and `metrics.retransmit_rounds`.
    ///
    /// # Panics
    ///
    /// Panics if the loss process starves recovery for
    /// `MAX_RECOVERY_SLOTS` slots (a drop probability of ~1.0), or if a
    /// single edge carries ≥ 2¹⁵ packets in one round (the wire sequence
    /// horizon).
    pub(crate) fn exchange(
        &mut self,
        outs: &mut [Vec<(usize, M)>],
        metrics: &mut Metrics,
    ) -> Vec<Vec<Envelope<M>>> {
        let n = outs.len();
        let mut staging: Vec<Vec<(usize, u64, M)>> = vec![Vec::new(); n];
        let mut undelivered = 0u64;

        // ---- Slot 0: original transmissions plus their proactive
        // salvos, in sender order (the lossless delivery order, which
        // canonical reassembly restores).
        for (from, out) in outs.iter_mut().enumerate() {
            for (to, msg) in out.drain(..) {
                let class = msg.traffic_class().min(MESSAGE_CLASSES - 1);
                let bits = msg.size_bits();
                let global_index = self.originals;
                let class_index = self.class_originals[class];
                self.originals += 1;
                self.class_originals[class] += 1;
                let forced = self.model.forces_drop(global_index, class, class_index);
                let loss = self.model.classes[class];
                let copies = self.salvo[class];
                let link = self
                    .links
                    .entry((from as u32, to as u32))
                    .or_insert_with(LinkState::new);
                let seq = link.next_seq;
                link.next_seq += 1;
                let wire = seq as u16;
                assert!(
                    link.outstanding.len() < WIRE_SEQ_HORIZON,
                    "more than {WIRE_SEQ_HORIZON} packets on one edge in a single round \
                     (wire sequence horizon)"
                );
                link.outstanding.push(Outstanding {
                    seq,
                    msg: msg.clone(),
                    class,
                    bits,
                    last_sent: 0,
                    sends: copies as u64,
                    acked: false,
                });
                undelivered += 1;
                // The original copy rolls the full loss process (and the
                // deterministic drop coordinates apply to it alone).
                let fate = if forced {
                    Fate::Drop
                } else {
                    Self::fate(&mut self.rng, &loss)
                };
                match fate {
                    Fate::Drop => metrics.dropped += 1,
                    Fate::Delay => {
                        metrics.delayed += 1;
                        self.delayed_data.push(DelayedData {
                            from,
                            to,
                            wire,
                            msg: msg.clone(),
                            class,
                            bits,
                        });
                    }
                    Fate::Deliver { duplicate } => {
                        if duplicate {
                            metrics.duplicated += 1;
                            if Self::receive(
                                link,
                                &mut staging,
                                metrics,
                                from,
                                to,
                                wire,
                                msg.clone(),
                                class,
                                bits,
                            ) {
                                undelivered -= 1;
                            }
                        }
                        if Self::receive(
                            link,
                            &mut staging,
                            metrics,
                            from,
                            to,
                            wire,
                            msg.clone(),
                            class,
                            bits,
                        ) {
                            undelivered -= 1;
                        }
                    }
                }
                // Redundant salvo copies: link-layer repetition, charged
                // as retransmissions; they roll only the drop process
                // (a redundant copy is never delayed or duplicated).
                for _ in 1..copies {
                    metrics.retransmits += 1;
                    metrics.by_class[class].retransmits += 1;
                    if loss.drop > 0.0 && self.rng.gen_bool(loss.drop) {
                        metrics.dropped += 1;
                    } else if Self::receive(
                        link,
                        &mut staging,
                        metrics,
                        from,
                        to,
                        wire,
                        msg.clone(),
                        class,
                        bits,
                    ) {
                        undelivered -= 1;
                    }
                }
            }
        }

        // ---- Recovery slots until the round's data is fully through.
        let mut slot = 0u64;
        while undelivered > 0 || !self.delayed_data.is_empty() {
            slot += 1;
            assert!(
                slot <= MAX_RECOVERY_SLOTS,
                "reliable layer starved: {MAX_RECOVERY_SLOTS} recovery slots without completing \
                 the round (is a drop probability ≈ 1.0?)"
            );
            metrics.rounds += 1;
            metrics.retransmit_rounds += 1;

            // Shift the ack triggers to "previous slot".
            for link in self.links.values_mut() {
                link.got_data_last_slot = link.got_data_this_slot;
                link.got_data_this_slot = false;
            }

            // (a) Delayed arrivals from the previous slot land first.
            for d in std::mem::take(&mut self.delayed_data) {
                let link = self
                    .links
                    .get_mut(&(d.from as u32, d.to as u32))
                    .expect("delayed copies travel existing links");
                if Self::receive(
                    link,
                    &mut staging,
                    metrics,
                    d.from,
                    d.to,
                    d.wire,
                    d.msg,
                    d.class,
                    d.bits,
                ) {
                    undelivered -= 1;
                }
            }
            for a in std::mem::take(&mut self.delayed_acks) {
                Self::apply_ack(&mut self.links, &a);
            }

            // (b) Cumulative + SACK acks for edges that carried data in
            // the previous slot, in ascending edge order — generated and
            // applied *before* this slot's retransmission decisions (the
            // one-slot control turnaround: acks ride ahead of data
            // within a slot), so the first recovery slot already
            // retransmits selectively. An ack piggybacks for free when
            // the reverse direction still has unacknowledged traffic in
            // flight; standalone ACK_BITS messages otherwise.
            let acks: Vec<(bool, DelayedAck)> = self
                .links
                .iter()
                .filter(|(_, link)| link.got_data_last_slot)
                .map(|(&(from, to), link)| {
                    let piggyback = self
                        .links
                        .get(&(to, from))
                        .is_some_and(|rev| rev.outstanding.iter().any(|p| !p.acked));
                    (
                        piggyback,
                        DelayedAck {
                            from: from as usize,
                            to: to as usize,
                            cumulative_wire: link.cumulative() as u16,
                            ahead_wire: link.recv_ahead.iter().map(|&s| s as u16).collect(),
                        },
                    )
                })
                .collect();
            for (piggyback, ack) in acks {
                if !piggyback {
                    metrics.acks += 1;
                    metrics.ack_bits += ACK_BITS;
                }
                match Self::fate(&mut self.rng, &self.model.acks) {
                    Fate::Drop => metrics.dropped += 1,
                    Fate::Delay => {
                        metrics.delayed += 1;
                        self.delayed_acks.push(ack);
                    }
                    // Acks are cumulative and idempotent: duplication is
                    // a no-op, so both delivery fates collapse.
                    Fate::Deliver { .. } => Self::apply_ack(&mut self.links, &ack),
                }
            }

            // (c) Retransmissions, snapshotted after the ack pass: a
            // packet is due eagerly while its in-flight budget (the
            // window) has room, and on the two-slot pacing timer past
            // it. Ascending edge order (BTreeMap iteration) keeps the
            // trace deterministic.
            let mut resends: Vec<(u32, u32, u16, M, usize, u64)> = Vec::new();
            for (&(from, to), link) in self.links.iter_mut() {
                let window = self.window as u64;
                for p in link
                    .outstanding
                    .iter_mut()
                    .filter(|p| !p.acked && (p.sends < window || slot - p.last_sent >= 2))
                {
                    p.last_sent = slot;
                    p.sends += 1;
                    resends.push((from, to, p.seq as u16, p.msg.clone(), p.class, p.bits));
                }
            }

            // (d) Transmit the snapshotted retransmissions.
            for (from, to, wire, msg, class, bits) in resends {
                metrics.retransmits += 1;
                metrics.by_class[class].retransmits += 1;
                let loss = self.model.classes[class];
                match Self::fate(&mut self.rng, &loss) {
                    Fate::Drop => metrics.dropped += 1,
                    Fate::Delay => {
                        metrics.delayed += 1;
                        self.delayed_data.push(DelayedData {
                            from: from as usize,
                            to: to as usize,
                            wire,
                            msg,
                            class,
                            bits,
                        });
                    }
                    Fate::Deliver { duplicate } => {
                        let link = self.links.get_mut(&(from, to)).expect("due link exists");
                        if duplicate {
                            // Same shape as the slot-0 path: the copy is
                            // genuinely delivered, then suppressed by
                            // sequence tracking.
                            metrics.duplicated += 1;
                            if Self::receive(
                                link,
                                &mut staging,
                                metrics,
                                from as usize,
                                to as usize,
                                wire,
                                msg.clone(),
                                class,
                                bits,
                            ) {
                                undelivered -= 1;
                            }
                        }
                        let link = self.links.get_mut(&(from, to)).expect("due link exists");
                        if Self::receive(
                            link,
                            &mut staging,
                            metrics,
                            from as usize,
                            to as usize,
                            wire,
                            msg,
                            class,
                            bits,
                        ) {
                            undelivered -= 1;
                        }
                    }
                }
            }
        }

        // ---- Round barrier: completion is common knowledge (the
        // synchronizer's guarantee), which acts as the final cumulative
        // ack — outstanding state clears, receive windows compact. The
        // virtual sequence counters keep running across rounds; only
        // their 16-bit wire form ever wraps.
        for link in self.links.values_mut() {
            link.outstanding.clear();
            link.recv_cum = link.next_seq;
            link.recv_ahead.clear();
            link.got_data_last_slot = false;
            link.got_data_this_slot = false;
        }
        self.delayed_acks.clear();

        // ---- Canonical reassembly: ascending (sender, sequence) is the
        // delivery order of a lossless run, so the protocol observes
        // byte-identical inboxes at any loss rate.
        staging
            .into_iter()
            .map(|mut inbox| {
                inbox.sort_unstable_by_key(|&(from, seq, _)| (from, seq));
                inbox
                    .into_iter()
                    .map(|(from, _, msg)| Envelope { from, msg })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_loss_validates_probabilities() {
        let loss = ClassLoss::dropping(0.5);
        assert_eq!(loss.drop, 0.5);
        assert!(ClassLoss::NONE.is_lossless());
        assert!(!loss.is_lossless());
    }

    #[test]
    #[should_panic(expected = "probability must lie in [0,1]")]
    fn class_loss_rejects_bad_probability() {
        let _ = ClassLoss::dropping(1.5);
    }

    #[test]
    fn lossless_detection_accounts_for_every_knob() {
        assert!(LossModel::lossless(7).is_lossless());
        assert!(LossModel::bernoulli(0.0, 7).is_lossless());
        assert!(!LossModel::bernoulli(0.1, 7).is_lossless());
        assert!(!LossModel::lossless(7).with_duplicates(0.2).is_lossless());
        assert!(!LossModel::lossless(7).with_delays(0.2).is_lossless());
        assert!(!LossModel::lossless(7)
            .with_forced_drops(vec![3])
            .is_lossless());
        assert!(!LossModel::lossless(7)
            .with_class_window(0, 0, 2)
            .is_lossless());
        // A zero-length window drops nothing.
        assert!(LossModel::lossless(7)
            .with_class_window(0, 5, 0)
            .is_lossless());
    }

    #[test]
    fn forced_drops_hit_exact_coordinates() {
        let model = LossModel::lossless(0)
            .with_forced_drops(vec![4, 2, 2])
            .with_class_window(3, 10, 2);
        assert!(model.forces_drop(2, 0, 0));
        assert!(model.forces_drop(4, 1, 7));
        assert!(!model.forces_drop(3, 0, 0));
        assert!(model.forces_drop(100, 3, 10));
        assert!(model.forces_drop(100, 3, 11));
        assert!(!model.forces_drop(100, 3, 12));
        assert!(!model.forces_drop(100, 2, 10));
    }

    #[test]
    fn cumulative_watermark_skips_gaps() {
        let mut link: LinkState<u64> = LinkState::new();
        link.recv_cum = 2;
        link.recv_ahead = vec![4, 2];
        assert_eq!(link.cumulative(), 3, "gap at 3 stops the watermark");
        link.recv_ahead = vec![3, 2, 4];
        assert_eq!(link.cumulative(), 5);
        assert!(link.already_received(1));
        assert!(link.already_received(3));
        assert!(!link.already_received(5));
        assert_eq!(link.expected(), 5);
    }

    #[test]
    fn salvo_schedule_matches_the_residual_target() {
        // Lossless classes and the stop-and-wait window send one copy.
        assert_eq!(salvo_copies(0.0, 6), 1);
        assert_eq!(salvo_copies(0.2, 1), 1);
        // ceil(ln 0.002 / ln p): 0.2 → 4 copies, 0.05 → 3, 0.01 → 2.
        assert_eq!(salvo_copies(0.2, 6), 4);
        assert_eq!(salvo_copies(0.05, 6), 3);
        assert_eq!(salvo_copies(0.01, 6), 2);
        // A drop probability already below the residual target needs no
        // redundancy at all.
        assert_eq!(salvo_copies(0.001, 6), 1);
        // Capped by the window (room for one eager repair copy) and by
        // the hard cap.
        assert_eq!(salvo_copies(0.2, 3), 2);
        assert_eq!(salvo_copies(0.9, 16), 5);
        assert_eq!(salvo_copies(1.0, 16), 5);
    }

    #[test]
    fn wire_reconstruction_is_exact_within_the_horizon() {
        // Identity near zero.
        assert_eq!(unwrap_wire(0, 0), 0);
        assert_eq!(unwrap_wire(0, 5), 5);
        assert_eq!(unwrap_wire(10, 7), 7);
        // Across the wrap, forwards and backwards.
        assert_eq!(unwrap_wire(65_530, 65_535), 65_535);
        assert_eq!(unwrap_wire(65_534, 2), 65_538);
        assert_eq!(unwrap_wire(65_540, 65_533), 65_533);
        assert_eq!(unwrap_wire(131_070, 3), 131_075);
        // Large virtual values far past the first wrap.
        let v = 1_000_000u64;
        assert_eq!(unwrap_wire(v, v as u16), v);
        assert_eq!(unwrap_wire(v, (v + 100) as u16), v + 100);
        assert_eq!(unwrap_wire(v, (v - 100) as u16), v - 100);
    }

    #[test]
    fn wire_sequence_numbers_survive_wrap() {
        // Drive one edge through > 2^16 sequence numbers across many
        // rounds, with forced drops straddling the wrap boundary: the
        // virtual-sequence reconstruction must keep delivery exact and
        // canonical. (The u64 payload doubles as the expected sequence.)
        let per_round = 48u64;
        let rounds = 1_500u64; // 72_000 packets on edge (0, 1)
        let model = LossModel::lossless(3).with_forced_drops(vec![
            65_533, 65_534, 65_535, 65_536, 65_537, // the wrap itself
            70_001, // and a straggler past it
        ]);
        let mut layer: Reliable<u64> = Reliable::new(model, DEFAULT_ARQ_WINDOW);
        let mut metrics = Metrics::default();
        for r in 0..rounds {
            let mut outs: Vec<Vec<(usize, u64)>> = vec![Vec::new(), Vec::new()];
            for k in 0..per_round {
                outs[0].push((1, r * per_round + k));
            }
            let inboxes = layer.exchange(&mut outs, &mut metrics);
            let got: Vec<u64> = inboxes[1].iter().map(|e| e.msg).collect();
            let expect: Vec<u64> = (r * per_round..(r + 1) * per_round).collect();
            assert_eq!(got, expect, "round {r} lost canonical order");
            assert!(inboxes[0].is_empty());
        }
        assert!(per_round * rounds > u16::MAX as u64);
        assert_eq!(metrics.messages, per_round * rounds);
        assert_eq!(metrics.dropped, 6, "every forced drop fired");
        assert!(metrics.retransmits >= 6, "and was repaired");
    }
}

//! A synchronous message-passing network simulator.
//!
//! The paper assumes "the standard synchronous, message passing model of
//! computation: in a given network of processors, each processor can
//! communicate in one step with all other processors it is directly
//! connected to. The running time of the algorithm is given by the number
//! of communication rounds." This crate implements exactly that model:
//!
//! * a [`Topology`] fixes who may talk to whom (in the scheduling problem:
//!   processors sharing a resource);
//! * each node implements [`Protocol`]; in every round it consumes the
//!   messages sent to it in the previous round and emits messages for the
//!   next one;
//! * the [`Engine`] drives rounds until every node reports done and no
//!   message is in flight, collecting [`Metrics`] (rounds, message count,
//!   message bits) — the quantities the paper's theorems bound.
//!
//! Message sizes are accounted through [`MessageSize`], mirroring the
//! paper's `O(M)`-bits-per-message statement.
//!
//! Links need not be reliable: [`Engine::with_loss_model`] slides the
//! [`reliable`] sublayer (per-edge sequence numbers, a sliding send
//! window with eager pipelined retransmission and proactive repetition,
//! cumulative+SACK acks, duplicate suppression) beneath the synchronous
//! rounds, so protocols written for the reliable model run unchanged —
//! and produce identical results — over seeded Bernoulli
//! drop/duplicate/delay processes, at a measurable round/message
//! overhead. The send window is configurable via
//! [`Engine::with_arq_window`] (default [`DEFAULT_ARQ_WINDOW`]).
//! [`Engine::with_faults`] remains the *raw* injection path with no
//! recovery, for demonstrating that the paper's reliability assumption
//! is load-bearing.
//!
//! # Example
//!
//! ```
//! use treenet_netsim::{Engine, Topology, Protocol, Context, Envelope, MessageSize};
//!
//! /// Each node learns the maximum id in the network by flooding.
//! struct MaxFlood { id: u64, best: u64, changed: bool }
//!
//! impl Protocol for MaxFlood {
//!     type Msg = u64;
//!     fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
//!         ctx.broadcast(self.best);
//!     }
//!     fn on_round(&mut self, _round: u64, inbox: &[Envelope<u64>], ctx: &mut Context<'_, u64>) {
//!         self.changed = false;
//!         for env in inbox {
//!             if env.msg > self.best {
//!                 self.best = env.msg;
//!                 self.changed = true;
//!             }
//!         }
//!         if self.changed {
//!             ctx.broadcast(self.best);
//!         }
//!     }
//!     fn is_done(&self) -> bool { !self.changed }
//! }
//!
//! let mut topology = Topology::new(3);
//! topology.add_edge(0, 1);
//! topology.add_edge(1, 2);
//! let nodes = (0..3).map(|i| MaxFlood { id: i, best: i, changed: true }).collect();
//! let mut engine = Engine::new(nodes, topology);
//! let metrics = engine.run(100).unwrap();
//! assert!(engine.nodes().iter().all(|n| n.best == 2));
//! assert!(metrics.rounds <= 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
/// Loss, ARQ and sliding-window delivery on top of the engine.
pub mod reliable;
mod topology;

pub use engine::{
    ClassMetrics, Context, Engine, EngineError, Envelope, FaultPlan, MailboxArena, Metrics,
    Protocol, ShardPlan, MESSAGE_CLASSES,
};
pub use reliable::{ClassLoss, LossModel, ACK_BITS, DEFAULT_ARQ_WINDOW};
pub use topology::Topology;

/// Size accounting for messages, in bits.
///
/// The paper states each message carries `O(M)` bits where `M` encodes one
/// demand (end-points, profit, height). Implement this for protocol
/// message types so [`Metrics::bits`] reflects real payloads; the default
/// of 64 bits suits plain word-sized messages.
pub trait MessageSize {
    /// Estimated wire size of this message in bits.
    fn size_bits(&self) -> u64 {
        64
    }

    /// Traffic class of this message for the per-class counters in
    /// [`Metrics::by_class`] (namespaced protocols map each message tag —
    /// setup, per-sub-run data, control, … — to its own class). Classes
    /// at or above [`MESSAGE_CLASSES`] are clamped into the last bucket.
    /// The default of 0 suits untagged protocols.
    fn traffic_class(&self) -> usize {
        0
    }
}

impl MessageSize for u64 {}
impl MessageSize for u32 {
    fn size_bits(&self) -> u64 {
        32
    }
}
impl MessageSize for () {
    fn size_bits(&self) -> u64 {
        1
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn size_bits(&self) -> u64 {
        self.0.size_bits() + self.1.size_bits()
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn size_bits(&self) -> u64 {
        self.iter().map(MessageSize::size_bits).sum::<u64>().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_size_defaults() {
        assert_eq!(7u64.size_bits(), 64);
        assert_eq!(7u32.size_bits(), 32);
        assert_eq!(().size_bits(), 1);
        assert_eq!((1u32, 2u32).size_bits(), 64);
        assert_eq!(vec![1u32, 2, 3].size_bits(), 96);
        let empty: Vec<u32> = vec![];
        assert_eq!(empty.size_bits(), 1);
    }
}

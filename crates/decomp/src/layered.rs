//! Layered decompositions (Section 4.4, Lemmas 4.2 and 4.3).
//!
//! A layered decomposition of the demand instances is a partition into
//! ordered groups `G₁, …, G_ℓ` plus a critical-edge set `π(d)` per
//! instance such that for any overlapping `d₁ ∈ G_i`, `d₂ ∈ G_j` with
//! `i ≤ j`, `path(d₂)` includes an edge of `π(d₁)`. The distributed
//! algorithm processes one group per epoch; the group count bounds the
//! epoch count and `Δ = max |π(d)|` drives the approximation ratio.

use crate::line::line_layers;
use crate::{capture_node, critical_edges, Strategy, TreeDecomposition};
use std::fmt;
use treenet_graph::{EdgeId, RootedTree, TreePath};
use treenet_model::{InstanceId, NetworkId, Problem};

/// The epoch group index and critical edges of one tree instance given
/// its path, the network's tree decomposition and rooted view, and the
/// decomposition depth: groups by reversed capture depth (deepest
/// captures first, Lemma 4.2), critical edges per [`critical_edges`].
///
/// This is the single per-instance definition shared by
/// [`LayeredDecomposition::from_decompositions`] and the distributed
/// processors in `treenet-dist`, which derive each neighbor's layer from
/// its demand descriptor — both sides must compute identically for the
/// executions to stay bit-identical.
pub fn tree_instance_layer(
    decomposition: &TreeDecomposition,
    rooted: &RootedTree,
    depth: u32,
    path: &TreePath,
) -> (u32, Vec<EdgeId>) {
    let mu = capture_node(decomposition, path);
    let group = depth - decomposition.node_depth(mu) + 1;
    let critical = critical_edges(decomposition, rooted, path);
    (group, critical)
}

/// A layered decomposition of all demand instances of a [`Problem`]
/// (the per-network orderings `σ_q` merged by group index `k`, as used by
/// the distributed algorithm of Section 5).
#[derive(Clone, Debug)]
pub struct LayeredDecomposition {
    /// 1-based group index per instance (`G_k`; `k = 1` is raised first).
    group: Vec<u32>,
    /// Critical edges `π(d)` per instance (edges of the instance's own
    /// network), sorted.
    critical: Vec<Vec<EdgeId>>,
    /// Number of groups `ℓmax`.
    num_groups: usize,
    /// `Δ = max_d |π(d)|`.
    delta: usize,
}

/// A violation of the layered-decomposition property, reported by
/// [`LayeredDecomposition::verify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayeredError {
    /// The earlier-or-equal-group instance.
    pub d1: InstanceId,
    /// The overlapping later-group instance whose path misses `π(d1)`.
    pub d2: InstanceId,
}

impl fmt::Display for LayeredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layered property violated: path({}) misses all critical edges of {}",
            self.d2, self.d1
        )
    }
}

impl std::error::Error for LayeredError {}

impl LayeredDecomposition {
    /// Builds the tree-network layered decomposition of Lemma 4.3: an
    /// [ideal](crate::ideal) (or other, per `strategy`) tree decomposition
    /// per network, groups by reversed capture depth, critical edges per
    /// [`critical_edges`].
    ///
    /// For the ideal strategy this guarantees `Δ ≤ 6` and at most
    /// `2⌈log n⌉ + 1` groups.
    pub fn for_trees(problem: &Problem, strategy: Strategy) -> Self {
        let decompositions: Vec<TreeDecomposition> = problem
            .networks()
            .map(|t| strategy.build(problem.network(t)))
            .collect();
        Self::from_decompositions(problem, &decompositions)
    }

    /// Builds the layered decomposition from externally supplied tree
    /// decompositions (one per network, in network order).
    ///
    /// # Panics
    ///
    /// Panics if the number of decompositions differs from the number of
    /// networks.
    pub fn from_decompositions(problem: &Problem, decompositions: &[TreeDecomposition]) -> Self {
        assert_eq!(
            decompositions.len(),
            problem.network_count(),
            "one decomposition per network"
        );
        let depths: Vec<u32> = decompositions
            .iter()
            .map(TreeDecomposition::depth)
            .collect();
        let mut group = vec![0u32; problem.instance_count()];
        let mut critical = vec![Vec::new(); problem.instance_count()];
        for inst in problem.instances() {
            let q = inst.network.index();
            let (g, pi) = tree_instance_layer(
                &decompositions[q],
                problem.rooted(inst.network),
                depths[q],
                &inst.path,
            );
            group[inst.id.index()] = g;
            critical[inst.id.index()] = pi;
        }
        let num_groups = group.iter().copied().max().unwrap_or(0) as usize;
        let delta = critical.iter().map(Vec::len).max().unwrap_or(0);
        LayeredDecomposition {
            group,
            critical,
            num_groups,
            delta,
        }
    }

    /// Builds the line-network layered decomposition of Section 7
    /// (length classes, `Δ ≤ 3`, `⌈log(Lmax/Lmin)⌉ + 1` groups).
    ///
    /// # Panics
    ///
    /// Panics if some network is not a canonical line.
    pub fn for_lines(problem: &Problem) -> Self {
        line_layers(problem)
    }

    /// Internal constructor used by the line builder.
    pub(crate) fn from_parts(group: Vec<u32>, critical: Vec<Vec<EdgeId>>) -> Self {
        let num_groups = group.iter().copied().max().unwrap_or(0) as usize;
        let delta = critical.iter().map(Vec::len).max().unwrap_or(0);
        LayeredDecomposition {
            group,
            critical,
            num_groups,
            delta,
        }
    }

    /// Builds a decomposition from raw parts **without any validity
    /// guarantee** — exists so mutation tests can hand [`Self::verify`]
    /// deliberately broken inputs. Not for production use.
    #[doc(hidden)]
    pub fn from_parts_for_tests(group: Vec<u32>, critical: Vec<Vec<EdgeId>>) -> Self {
        Self::from_parts(group, critical)
    }

    /// Appends the layer assignment of one newly materialized instance —
    /// the incremental counterpart of
    /// [`LayeredDecomposition::from_decompositions`] for online arrivals.
    ///
    /// Instances must be pushed in id order (the caller appends exactly
    /// the instances an arrival materialized, in order). `num_groups` and
    /// `delta` are running maxima, so they only grow; the two-phase
    /// engine skips empty groups, so a stale-high group count changes no
    /// observable behavior. Compute `(group, critical)` with
    /// [`tree_instance_layer`] against the *same* per-network
    /// [`TreeDecomposition`] used at build time — the networks are fixed,
    /// so layer assignments of existing instances never change.
    pub fn push_instance(&mut self, group: u32, critical: Vec<EdgeId>) {
        self.num_groups = self.num_groups.max(group as usize);
        self.delta = self.delta.max(critical.len());
        self.group.push(group);
        self.critical.push(critical);
    }

    /// Number of instances covered (== the problem's instance count).
    #[inline]
    pub fn len(&self) -> usize {
        self.group.len()
    }

    /// Whether the decomposition covers no instances.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.group.is_empty()
    }

    /// The 1-based group index of instance `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[inline]
    pub fn group_of(&self, d: InstanceId) -> u32 {
        self.group[d.index()]
    }

    /// The critical edges `π(d)` (edges of `d`'s own network), sorted.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[inline]
    pub fn critical_of(&self, d: InstanceId) -> &[EdgeId] {
        &self.critical[d.index()]
    }

    /// Number of groups `ℓmax` (= number of epochs).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// The critical set size `Δ = max_d |π(d)|`.
    #[inline]
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The members of group `k` (1-based), in instance-id order.
    pub fn group_members(&self, k: u32) -> Vec<InstanceId> {
        self.group
            .iter()
            .enumerate()
            .filter(|&(_, g)| *g == k)
            .map(|(i, _)| InstanceId(i as u32))
            .collect()
    }

    /// Exhaustively verifies the defining property: for any overlapping
    /// pair `d₁ ∈ G_i, d₂ ∈ G_j` with `i ≤ j`, `path(d₂)` includes a
    /// critical edge of `d₁`. `O(|D|²·Δ)` per network — for tests.
    ///
    /// # Errors
    ///
    /// Returns the first violating pair.
    pub fn verify(&self, problem: &Problem) -> Result<(), LayeredError> {
        for t in problem.networks() {
            let members = problem.instances_on(t);
            for &d1 in members {
                for &d2 in members {
                    if d1 == d2 || self.group_of(d1) > self.group_of(d2) {
                        continue;
                    }
                    let i1 = problem.instance(d1);
                    let i2 = problem.instance(d2);
                    if !i1.overlaps(i2) {
                        continue;
                    }
                    if !self.critical_of(d1).iter().any(|&e| i2.active_on(e)) {
                        return Err(LayeredError { d1, d2 });
                    }
                }
            }
        }
        Ok(())
    }

    /// The per-network group counts `(network, max group index)` — useful
    /// for diagnostics and experiments.
    pub fn groups_per_network(&self, problem: &Problem) -> Vec<(NetworkId, u32)> {
        problem
            .networks()
            .map(|t| {
                let max = problem
                    .instances_on(t)
                    .iter()
                    .map(|&d| self.group_of(d))
                    .max()
                    .unwrap_or(0);
                (t, max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_graph::generators::TreeFamily;
    use treenet_model::workload::TreeWorkload;

    fn workload(seed: u64, family: TreeFamily) -> Problem {
        let mut rng = SmallRng::seed_from_u64(seed);
        TreeWorkload::new(24, 30)
            .with_networks(3)
            .with_family(family)
            .generate(&mut rng)
    }

    #[test]
    fn tree_layers_have_delta_at_most_six() {
        for family in [
            TreeFamily::Uniform,
            TreeFamily::Path,
            TreeFamily::Caterpillar,
        ] {
            for seed in 0..5u64 {
                let p = workload(seed, family);
                let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
                assert!(
                    layers.delta() <= 6,
                    "{}: Δ = {}",
                    family.name(),
                    layers.delta()
                );
                assert!(layers.verify(&p).is_ok(), "{}", family.name());
            }
        }
    }

    #[test]
    fn group_count_is_logarithmic_for_ideal() {
        let p = workload(3, TreeFamily::Uniform);
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        let n = p.vertex_count();
        let bound = crate::ideal::ideal_depth_bound(n) as usize;
        assert!(layers.num_groups() <= bound);
        assert!(layers.num_groups() >= 1);
    }

    #[test]
    fn every_instance_gets_group_and_critical_edges() {
        let p = workload(4, TreeFamily::Uniform);
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        for inst in p.instances() {
            let g = layers.group_of(inst.id);
            assert!(g >= 1 && g as usize <= layers.num_groups());
            let pi = layers.critical_of(inst.id);
            assert!(!pi.is_empty());
            for &e in pi {
                assert!(inst.path.contains_edge(e), "critical edges lie on the path");
            }
        }
        // group_members partitions the instance set.
        let total: usize = (1..=layers.num_groups() as u32)
            .map(|k| layers.group_members(k).len())
            .sum();
        assert_eq!(total, p.instance_count());
    }

    #[test]
    fn root_fixing_layers_also_satisfy_property() {
        // Lemma 4.2 holds for any tree decomposition; with θ = 1 the bound
        // is Δ ≤ 4.
        let p = workload(5, TreeFamily::Uniform);
        let layers = LayeredDecomposition::for_trees(&p, Strategy::RootFixing);
        assert!(layers.delta() <= 4, "Δ = {}", layers.delta());
        assert!(layers.verify(&p).is_ok());
    }

    #[test]
    fn balancing_layers_satisfy_property() {
        let p = workload(6, TreeFamily::Uniform);
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Balancing);
        assert!(layers.verify(&p).is_ok());
        let theta = 5; // ⌈log₂ 24⌉ = 5
        assert!(layers.delta() <= 2 * (theta + 1));
    }

    #[test]
    fn groups_per_network_reports_all_networks() {
        let p = workload(7, TreeFamily::Uniform);
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        let per = layers.groups_per_network(&p);
        assert_eq!(per.len(), p.network_count());
    }

    #[test]
    fn push_instance_matches_batch_layering() {
        use treenet_model::{Demand, ProblemDelta};
        // Grow a workload by one arrival; pushing the new instances'
        // layers incrementally must agree with re-layering from scratch.
        let mut p = workload(8, TreeFamily::Uniform);
        let decompositions: Vec<TreeDecomposition> = p
            .networks()
            .map(|t| Strategy::Ideal.build(p.network(t)))
            .collect();
        let depths: Vec<u32> = decompositions
            .iter()
            .map(TreeDecomposition::depth)
            .collect();
        let mut layers = LayeredDecomposition::from_decompositions(&p, &decompositions);
        assert_eq!(layers.len(), p.instance_count());
        assert!(!layers.is_empty());
        let effect = p
            .apply_delta(ProblemDelta::Arrival {
                demand: Demand::pair(treenet_graph::VertexId(0), treenet_graph::VertexId(17), 2.5),
                access: p.networks().collect(),
            })
            .unwrap();
        for &d in &effect.new_instances {
            let inst = p.instance(d);
            let q = inst.network.index();
            let (g, pi) = tree_instance_layer(
                &decompositions[q],
                p.rooted(inst.network),
                depths[q],
                &inst.path,
            );
            layers.push_instance(g, pi);
        }
        let batch = LayeredDecomposition::from_decompositions(&p, &decompositions);
        assert_eq!(layers.len(), batch.len());
        for inst in p.instances() {
            assert_eq!(layers.group_of(inst.id), batch.group_of(inst.id));
            assert_eq!(layers.critical_of(inst.id), batch.critical_of(inst.id));
        }
        assert_eq!(layers.num_groups(), batch.num_groups());
        assert_eq!(layers.delta(), batch.delta());
        assert!(layers.verify(&p).is_ok());
    }

    #[test]
    fn error_display() {
        let e = LayeredError {
            d1: InstanceId(1),
            d2: InstanceId(2),
        };
        assert!(e.to_string().contains("d1"));
        assert!(e.to_string().contains("d2"));
    }
}

//! The convergecast forest: rooted spanning trees of the processor
//! communication graph, used by the message-passing schedulers for
//! in-network aggregation (termination detection and the per-network
//! combiner).
//!
//! The communication graph is infrastructure knowledge — it derives from
//! which processors share a resource, not from any demand's private data
//! — and the rooting rule is chosen to be *locally computable*: every
//! vertex sits at BFS depth `d` below its component's smallest id (the
//! root/leader), and its parent is its **smallest-id neighbor at depth
//! `d − 1`**. A processor that knows only its own BFS distance and its
//! neighbors' distances can evaluate this rule with no further
//! information, which is exactly what the charged message-passing
//! prologue in `treenet-dist` does (distance flooding, then a local
//! parent pick); this module is the reference construction the prologue
//! is asserted against.

/// A rooted spanning forest of an undirected graph over `0..n`, with
/// parent pointers, children lists and depths — one tree per connected
/// component, rooted at the component's smallest vertex id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergecastForest {
    parent: Vec<Option<u32>>,
    children: Vec<Vec<u32>>,
    depth: Vec<u32>,
    roots: Vec<u32>,
    height: u32,
}

impl ConvergecastForest {
    /// Builds the forest from adjacency lists (assumed symmetric): BFS
    /// depths below each component's smallest id, then parent = the
    /// smallest-id neighbor one layer up. The parent rule depends only
    /// on a vertex's own depth and its neighbors' depths — the locally
    /// computable form the distributed prologue reproduces — so input
    /// list order is irrelevant by construction.
    ///
    /// # Panics
    ///
    /// Panics if a neighbor index is out of range.
    pub fn from_adjacency(adj: &[Vec<usize>]) -> Self {
        let n = adj.len();
        let mut parent: Vec<Option<u32>> = vec![None; n];
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut depth: Vec<u32> = vec![0; n];
        let mut visited = vec![false; n];
        let mut roots = Vec::new();
        let mut height = 0u32;
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if visited[start] {
                continue;
            }
            // Layer 1: BFS distances from the component's smallest id.
            roots.push(start as u32);
            visited[start] = true;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                for &w in adj[v].iter() {
                    assert!(w < n, "neighbor {w} out of range");
                    if !visited[w] {
                        visited[w] = true;
                        depth[w] = depth[v] + 1;
                        height = height.max(depth[w]);
                        queue.push_back(w);
                    }
                }
            }
        }
        // Layer 2: the local parent pick, one vertex at a time.
        for v in 0..n {
            if depth[v] == 0 {
                continue;
            }
            let p = adj[v]
                .iter()
                .copied()
                .filter(|&w| depth[w] + 1 == depth[v])
                .min()
                .expect("BFS leaves every non-root a neighbor one layer up");
            parent[v] = Some(p as u32);
            children[p].push(v as u32);
        }
        for list in &mut children {
            list.sort_unstable();
        }
        ConvergecastForest {
            parent,
            children,
            depth,
            roots,
            height,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest has zero vertices.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The BFS parent of `v`, or `None` when `v` is a component root.
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v].map(|p| p as usize)
    }

    /// The BFS children of `v`, ascending.
    pub fn children(&self, v: usize) -> &[u32] {
        &self.children[v]
    }

    /// Depth of `v` below its component root (roots have depth 0).
    pub fn depth(&self, v: usize) -> u32 {
        self.depth[v]
    }

    /// The component roots (each component's smallest vertex id),
    /// ascending.
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// The forest height: the maximum depth over all vertices (0 when
    /// every component is a singleton).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The vertices of each tree (connected component), sorted
    /// ascending, ordered by root id.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut components = Vec::with_capacity(self.roots.len());
        let mut stack = Vec::new();
        for &root in &self.roots {
            let mut members = Vec::new();
            stack.push(root as usize);
            while let Some(v) = stack.pop() {
                members.push(v);
                stack.extend(self.children(v).iter().map(|&c| c as usize));
            }
            members.sort_unstable();
            components.push(members);
        }
        components
    }

    /// Partitions the vertices into at most `max_shards` groups of whole
    /// components, balanced by longest-processing-time: components are
    /// placed largest-first into the currently lightest group. Every
    /// group is a union of components, so a sharded engine can execute
    /// groups concurrently — no message ever crosses a group boundary.
    ///
    /// The assignment is deterministic: ties between components break by
    /// smallest member id, ties between groups by lowest group index.
    pub fn partition(&self, max_shards: usize) -> Vec<Vec<usize>> {
        let mut components = self.components();
        if components.is_empty() {
            return Vec::new();
        }
        let bins = max_shards.max(1).min(components.len());
        components.sort_by_key(|c| (std::cmp::Reverse(c.len()), c[0]));
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); bins];
        for component in components {
            let lightest = (0..bins)
                .min_by_key(|&g| groups[g].len())
                .expect("bins >= 1");
            groups[lightest].extend(component);
        }
        for group in &mut groups {
            group.sort_unstable();
        }
        groups.retain(|g| !g.is_empty());
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_component_minima() {
        // Components {0,1,2} (path) and {3,4} (edge) and singleton {5}.
        let adj = vec![vec![1], vec![0, 2], vec![1], vec![4], vec![3], vec![]];
        let f = ConvergecastForest::from_adjacency(&adj);
        assert_eq!(f.roots(), &[0, 3, 5]);
        assert_eq!(f.parent(0), None);
        assert_eq!(f.parent(1), Some(0));
        assert_eq!(f.parent(2), Some(1));
        assert_eq!(f.parent(4), Some(3));
        assert_eq!(f.parent(5), None);
        assert_eq!(f.children(0), &[1]);
        assert_eq!(f.children(1), &[2]);
        assert_eq!(f.depth(2), 2);
        assert_eq!(f.height(), 2);
        assert_eq!(f.len(), 6);
        assert!(!f.is_empty());
    }

    #[test]
    fn bfs_prefers_small_ids() {
        // A clique: everyone hangs off vertex 0 at depth 1.
        let adj: Vec<Vec<usize>> = (0..4)
            .map(|v| (0..4).filter(|&w| w != v).collect())
            .collect();
        let f = ConvergecastForest::from_adjacency(&adj);
        assert_eq!(f.roots(), &[0]);
        assert_eq!(f.children(0), &[1, 2, 3]);
        assert_eq!(f.height(), 1);
    }

    #[test]
    fn parents_are_deterministic_under_unsorted_input() {
        let sorted = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let unsorted = vec![vec![2, 1], vec![2, 0], vec![1, 0]];
        assert_eq!(
            ConvergecastForest::from_adjacency(&sorted),
            ConvergecastForest::from_adjacency(&unsorted)
        );
    }

    #[test]
    fn partition_groups_whole_components() {
        // Components: {0,1,2,3} (path), {4,5} (edge), {6} and {7}.
        let adj = vec![
            vec![1],
            vec![0, 2],
            vec![1, 3],
            vec![2],
            vec![5],
            vec![4],
            vec![],
            vec![],
        ];
        let f = ConvergecastForest::from_adjacency(&adj);
        assert_eq!(
            f.components(),
            vec![vec![0, 1, 2, 3], vec![4, 5], vec![6], vec![7]]
        );
        // Two shards, LPT: the big path alone, everything else together.
        let shards = f.partition(2);
        assert_eq!(shards, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        // More shards than components: one component per shard.
        let shards = f.partition(16);
        assert_eq!(shards.len(), 4);
        // One shard (or zero, clamped): everything together.
        assert_eq!(f.partition(1), vec![vec![0, 1, 2, 3, 4, 5, 6, 7]]);
        assert_eq!(f.partition(0), vec![vec![0, 1, 2, 3, 4, 5, 6, 7]]);
        assert!(ConvergecastForest::from_adjacency(&[])
            .partition(4)
            .is_empty());
    }

    #[test]
    fn singleton_forest_has_height_zero() {
        let f = ConvergecastForest::from_adjacency(&[Vec::new(), Vec::new()]);
        assert_eq!(f.height(), 0);
        assert_eq!(f.roots(), &[0, 1]);
        assert!(f.children(0).is_empty());
    }
}

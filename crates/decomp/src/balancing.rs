//! The balancing tree decomposition (Section 4.2): depth `⌈log n⌉ + 1`,
//! pivot size up to `⌈log n⌉` — classic centroid decomposition.

use crate::TreeDecomposition;
use treenet_graph::component::{find_balancer, split_at, Membership};
use treenet_graph::{Tree, VertexId};

/// Builds the balancing decomposition (`BuildBalTD` in the paper): pick a
/// balancer (centroid) `z` of the current component, make it the root, and
/// recurse into the split pieces.
///
/// Component sizes halve at each level, so the depth is at most
/// `⌈log₂ n⌉ + 1`; the neighborhood of `C(z)` is contained in `z`'s `H`-
/// ancestors, so the pivot size can reach the depth (e.g. on a path).
///
/// # Example
///
/// ```
/// use treenet_graph::Tree;
/// use treenet_decomp::balancing;
///
/// let tree = Tree::line(64);
/// let h = balancing(&tree);
/// assert!(h.depth() <= 7); // ⌈log₂ 64⌉ + 1
/// assert!(h.verify(&tree).is_ok());
/// ```
pub fn balancing(tree: &Tree) -> TreeDecomposition {
    let n = tree.len();
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut membership = Membership::new(n);
    let all: Vec<VertexId> = tree.vertices().collect();
    // Explicit work list of (component, parent-of-its-balancer) to avoid
    // deep recursion on adversarial shapes.
    let mut work: Vec<(Vec<VertexId>, Option<VertexId>)> = vec![(all, None)];
    while let Some((comp, attach)) = work.pop() {
        membership.mark(&comp);
        let z = find_balancer(tree, &comp, &membership);
        let parts = split_at(tree, &comp, &membership, z);
        membership.clear(&comp);
        parent[z.index()] = attach;
        for part in parts {
            work.push((part, Some(z)));
        }
    }
    TreeDecomposition::from_parents(tree, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_graph::generators::{random_tree, TreeFamily};

    fn log2_ceil(n: usize) -> u32 {
        (usize::BITS - (n.max(1) - 1).leading_zeros()).max(1)
    }

    #[test]
    fn depth_is_logarithmic() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [2usize, 3, 9, 33, 100, 257] {
            let tree = random_tree(n, &mut rng);
            let h = balancing(&tree);
            assert!(
                h.depth() <= log2_ceil(n) + 1,
                "n={n} depth={} bound={}",
                h.depth(),
                log2_ceil(n) + 1
            );
        }
    }

    #[test]
    fn valid_on_all_families() {
        let mut rng = SmallRng::seed_from_u64(8);
        for family in TreeFamily::ALL {
            let tree = family.generate(33, &mut rng);
            let h = balancing(&tree);
            assert!(h.verify(&tree).is_ok(), "{}", family.name());
        }
    }

    #[test]
    fn pivot_is_bounded_by_depth_and_can_exceed_two() {
        // On a line every connected component has at most two outside
        // neighbors, so the pivot stays ≤ 2 ...
        let line = Tree::line(64);
        let h = balancing(&line);
        assert!(h.pivot_size() <= 2);
        // ... but on branching trees the balancing pivot exceeds 2 (it can
        // reach Θ(log n) in the worst case) — this is exactly why the
        // paper needs the ideal decomposition. Uniform tree, n=63, seed=0
        // gives pivot 4 (found by examples/scan_pivots.rs).
        let tree = random_tree(63, &mut SmallRng::seed_from_u64(0));
        let h = balancing(&tree);
        assert!(h.pivot_size() >= 3, "pivot = {}", h.pivot_size());
        assert!(h.pivot_size() <= h.depth() as usize);
    }

    #[test]
    fn root_is_a_balancer_of_the_whole_tree() {
        let tree = Tree::line(9);
        let h = balancing(&tree);
        // The centroid of a 9-path is vertex 4.
        assert_eq!(h.root(), VertexId(4));
        assert_eq!(h.depth(), 4);
    }

    #[test]
    fn single_and_two_vertex_trees() {
        let t1 = Tree::from_edges(1, &[]).unwrap();
        assert!(balancing(&t1).verify(&t1).is_ok());
        let t2 = Tree::line(2);
        let h = balancing(&t2);
        assert!(h.verify(&t2).is_ok());
        assert_eq!(h.depth(), 2);
    }
}

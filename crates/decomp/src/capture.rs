//! Capture nodes, bending points and critical edges (Section 4.4).
//!
//! For a demand instance `d` on a tree-network `T` with tree decomposition
//! `H`:
//!
//! * the **capture node** `µ(d)` is the minimum-depth `H`-node on
//!   `path(d)` (unique by LCA closure);
//! * the **bending point** of `path(d)` w.r.t. an outside vertex `u` is
//!   the unique path vertex whose route to `u` avoids the rest of the path
//!   — computed as `median_T(endpoints, u)`;
//! * the **critical edges** `π(d)` (Lemma 4.2) are the wings of `µ(d)` on
//!   the path plus, for each pivot `u ∈ χ(µ(d))`, the wings of the bending
//!   point w.r.t. `u` — at most `2(θ+1)` edges.

use crate::TreeDecomposition;
use treenet_graph::{EdgeId, RootedTree, TreePath, VertexId};

/// The capture node `µ(d)`: the path vertex with minimum `H`-depth.
///
/// # Panics
///
/// Panics if the path is empty.
pub fn capture_node(h: &TreeDecomposition, path: &TreePath) -> VertexId {
    *path
        .vertices()
        .iter()
        .min_by_key(|v| h.node_depth(**v))
        .expect("paths contain at least one vertex")
}

/// The bending point of `path` w.r.t. vertex `u`: the unique path vertex
/// `y` such that the `T`-path from `u` to `y` avoids every other path
/// vertex. Equal to `median_T(source, target, u)`.
///
/// `rooted` must be a rooted view of the same tree-network the path lives
/// in.
pub fn bending_point(rooted: &RootedTree, path: &TreePath, u: VertexId) -> VertexId {
    rooted.median(path.source(), path.target(), u)
}

/// The critical edge set `π(d)` of Lemma 4.2: wings of the capture node
/// plus wings of the bending points w.r.t. each pivot of the capture
/// node's component. Sorted and deduplicated; size at most `2(θ + 1)`.
pub fn critical_edges(h: &TreeDecomposition, rooted: &RootedTree, path: &TreePath) -> Vec<EdgeId> {
    let mu = capture_node(h, path);
    let mut critical = path.wings(mu);
    for &u in h.pivot(mu) {
        let y = bending_point(rooted, path, u);
        critical.extend(path.wings(y));
    }
    critical.sort_unstable();
    critical.dedup();
    critical
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ideal, root_fixing};
    use treenet_graph::Tree;

    /// The Figure 6 tree (see `treenet_model::fixtures`): paper labels
    /// 1..14 are vertices 0..13.
    fn figure6() -> Tree {
        Tree::from_edges(
            14,
            &[
                (0, 1),
                (1, 3),
                (1, 4),
                (4, 7),
                (4, 8),
                (7, 12),
                (7, 11),
                (0, 5),
                (5, 2),
                (2, 6),
                (0, 13),
                (13, 9),
                (13, 10),
            ],
        )
        .unwrap()
    }

    #[test]
    fn capture_node_matches_appendix_a_example() {
        // Appendix A: with the root-fixing decomposition rooted at node 1,
        // the demand ⟨4, 13⟩ (path 4-2-5-8-13) is captured at node 2, and
        // π(d) = {⟨2,4⟩, ⟨2,5⟩}.
        let tree = figure6();
        let h = root_fixing(&tree, VertexId(0));
        let rooted = RootedTree::new(&tree, VertexId(0));
        let path = rooted.path(VertexId(3), VertexId(12)); // 4 ↝ 13
        let mu = capture_node(&h, &path);
        assert_eq!(mu, VertexId(1)); // node 2
        let wings = path.wings(mu);
        let e24 = tree.edge_between(VertexId(1), VertexId(3)).unwrap();
        let e25 = tree.edge_between(VertexId(1), VertexId(4)).unwrap();
        let mut wings_sorted = wings.clone();
        wings_sorted.sort_unstable();
        let mut expected = vec![e24, e25];
        expected.sort_unstable();
        assert_eq!(wings_sorted, expected);
    }

    #[test]
    fn bending_points_match_figure6_narrative() {
        // "With respect to nodes 3 and 9, the bending points of the demand
        // ⟨4, 13⟩ are 2 and 5."
        let tree = figure6();
        let rooted = RootedTree::new(&tree, VertexId(0));
        let path = rooted.path(VertexId(3), VertexId(12));
        assert_eq!(bending_point(&rooted, &path, VertexId(2)), VertexId(1)); // node 3 → 2
        assert_eq!(bending_point(&rooted, &path, VertexId(8)), VertexId(4)); // node 9 → 5
    }

    #[test]
    fn bending_point_of_path_vertex_is_itself() {
        let tree = figure6();
        let rooted = RootedTree::new(&tree, VertexId(0));
        let path = rooted.path(VertexId(3), VertexId(12));
        for &v in path.vertices() {
            assert_eq!(bending_point(&rooted, &path, v), v);
        }
    }

    #[test]
    fn critical_edges_bounded_by_two_theta_plus_one() {
        let tree = figure6();
        let rooted = RootedTree::new(&tree, VertexId(0));
        let h = ideal(&tree);
        let theta = h.pivot_size();
        assert!(theta <= 2);
        for u in tree.vertices() {
            for v in tree.vertices() {
                if u >= v {
                    continue;
                }
                let path = rooted.path(u, v);
                let pi = critical_edges(&h, &rooted, &path);
                assert!(
                    pi.len() <= 2 * (theta + 1),
                    "π({u},{v}) has {} edges",
                    pi.len()
                );
                // Critical edges lie on the path.
                for e in &pi {
                    assert!(path.contains_edge(*e));
                }
                // The wings of the capture node are always included.
                let mu = capture_node(&h, &path);
                for w in path.wings(mu) {
                    assert!(pi.contains(&w));
                }
            }
        }
    }

    #[test]
    fn single_edge_path_critical_edges() {
        let tree = Tree::line(4);
        let rooted = RootedTree::new(&tree, VertexId(0));
        let h = ideal(&tree);
        let path = rooted.path(VertexId(1), VertexId(2));
        let pi = critical_edges(&h, &rooted, &path);
        assert_eq!(pi, vec![EdgeId(1)]);
    }
}

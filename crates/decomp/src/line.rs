//! The line-network layered decomposition (Section 7): length classes with
//! `Δ = 3`.
//!
//! Demand instances on a canonical line are intervals of timeslots. They
//! are grouped by length class — group `i` holds instances with
//! `2^(i-1)·Lmin ≤ len < 2^i·Lmin` — and the critical slots of an instance
//! are its start, mid-point and end: `π(d) = {s(d), mid(d), e(d)}`.
//!
//! Why this works (implicit in Panconesi–Sozio and re-proved in our tests):
//! if `d₂` overlaps `d₁` and sits in the same or a later class, then
//! `len(d₂) > len(d₁)/2`, and a contiguous interval that long cannot fit
//! strictly inside either open half `(s, mid)` or `(mid, e)` of `d₁` — so
//! it must cover `s`, `mid` or `e`.

use crate::LayeredDecomposition;
use treenet_graph::EdgeId;
use treenet_model::Problem;

/// The public minimum instance length `Lmin` a line-network layered
/// decomposition is keyed on. The paper assumes every processor knows it;
/// the message-passing runner in `treenet-dist` reads it from the same
/// definition so both sides classify instances identically.
pub fn line_lmin(problem: &Problem) -> f64 {
    let (lmin, _) = problem.length_bounds();
    lmin.max(1) as f64
}

/// The length-class group index and critical slots of one line instance
/// given its path edges (in path order) and the public `Lmin`:
/// group `⌊log₂(len/Lmin)⌋ + 1`, critical slots start/mid/end (`Δ ≤ 3`).
///
/// This is the single per-instance definition shared by [`line_layers`]
/// and the distributed processors in `treenet-dist`, which derive each
/// neighbor's layer from its demand descriptor — both sides must compute
/// identically for the executions to stay bit-identical.
///
/// # Panics
///
/// Panics if `edges` is empty.
pub fn line_instance_layer(lmin: f64, edges: &[EdgeId]) -> (u32, Vec<EdgeId>) {
    let len = edges.len();
    assert!(len >= 1, "demand instances use at least one timeslot");
    // Class index: ⌊log₂(len / Lmin)⌋ + 1, computed from the exact length
    // ratio to avoid floating-point edge cases at powers of two.
    let ratio = (len as f64 / lmin).log2().floor() as u32;
    // Slots are edge indices on the canonical line.
    let s = edges[0];
    let e = edges[len - 1];
    let mid = EdgeId((s.0 + e.0) / 2);
    let mut pi = vec![s, mid, e];
    pi.sort_unstable();
    pi.dedup();
    (ratio + 1, pi)
}

/// Builds the length-class layered decomposition for a line-network
/// problem (every network must be a canonical line).
///
/// Groups: `⌊log₂(len/Lmin)⌋ + 1`, so `⌈log₂(Lmax/Lmin)⌉ + 1` groups in
/// total; critical edges: start/mid/end timeslots (`Δ ≤ 3`).
///
/// # Panics
///
/// Panics if some network is not a canonical line (window problems built
/// through [`treenet_model::ProblemBuilder`] guarantee this) or if some
/// instance has an empty path.
pub fn line_layers(problem: &Problem) -> LayeredDecomposition {
    for t in problem.networks() {
        assert!(
            problem.network(t).is_canonical_line(),
            "line layered decomposition requires canonical line networks"
        );
    }
    let lmin = line_lmin(problem);
    let mut group = vec![0u32; problem.instance_count()];
    let mut critical = vec![Vec::new(); problem.instance_count()];
    for inst in problem.instances() {
        let (g, pi) = line_instance_layer(lmin, inst.path.edges());
        group[inst.id.index()] = g;
        critical[inst.id.index()] = pi;
    }
    LayeredDecomposition::from_parts(group, critical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_graph::{Tree, VertexId};
    use treenet_model::workload::LineWorkload;
    use treenet_model::{Demand, ProblemBuilder};

    #[test]
    fn delta_is_at_most_three() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let p = LineWorkload::new(60, 40)
                .with_resources(3)
                .with_window_slack(3)
                .with_len_range(1, 15)
                .generate(&mut rng);
            let layers = line_layers(&p);
            assert!(layers.delta() <= 3, "Δ = {}", layers.delta());
            assert!(layers.verify(&p).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn group_count_is_log_length_ratio() {
        let mut rng = SmallRng::seed_from_u64(42);
        let p = LineWorkload::new(128, 60)
            .with_len_range(1, 64)
            .generate(&mut rng);
        let layers = line_layers(&p);
        let (lmin, lmax) = p.length_bounds();
        let bound = ((lmax as f64 / lmin as f64).log2().floor() as usize) + 1;
        assert!(
            layers.num_groups() <= bound,
            "{} > {}",
            layers.num_groups(),
            bound
        );
    }

    #[test]
    fn same_length_instances_share_group() {
        let mut b = ProblemBuilder::new();
        let t = b.add_network(Tree::line(30)).unwrap();
        b.add_demand(Demand::pair(VertexId(0), VertexId(4), 1.0), &[t])
            .unwrap();
        b.add_demand(Demand::pair(VertexId(10), VertexId(14), 1.0), &[t])
            .unwrap();
        b.add_demand(Demand::pair(VertexId(0), VertexId(20), 1.0), &[t])
            .unwrap();
        let p = b.build().unwrap();
        let layers = line_layers(&p);
        let g: Vec<u32> = p.instances().map(|d| layers.group_of(d.id)).collect();
        assert_eq!(g[0], g[1]);
        assert!(g[2] > g[0], "length 20 is in a later class than length 4");
    }

    #[test]
    fn critical_slots_are_start_mid_end() {
        let mut b = ProblemBuilder::new();
        let t = b.add_network(Tree::line(30)).unwrap();
        // Slots 4..=12 (vertices 4 ↝ 13).
        b.add_demand(Demand::pair(VertexId(4), VertexId(13), 1.0), &[t])
            .unwrap();
        let p = b.build().unwrap();
        let layers = line_layers(&p);
        assert_eq!(
            layers.critical_of(treenet_model::InstanceId(0)),
            &[EdgeId(4), EdgeId(8), EdgeId(12)]
        );
    }

    #[test]
    fn unit_length_instance_has_single_critical_slot() {
        let mut b = ProblemBuilder::new();
        let t = b.add_network(Tree::line(10)).unwrap();
        b.add_demand(Demand::pair(VertexId(3), VertexId(4), 1.0), &[t])
            .unwrap();
        let p = b.build().unwrap();
        let layers = line_layers(&p);
        assert_eq!(
            layers.critical_of(treenet_model::InstanceId(0)),
            &[EdgeId(3)]
        );
        assert_eq!(layers.group_of(treenet_model::InstanceId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "canonical line")]
    fn rejects_non_line_networks() {
        let mut b = ProblemBuilder::new();
        let star = Tree::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let t = b.add_network(star).unwrap();
        b.add_demand(Demand::pair(VertexId(1), VertexId(2), 1.0), &[t])
            .unwrap();
        let p = b.build().unwrap();
        let _ = line_layers(&p);
    }

    #[test]
    fn window_instances_of_same_demand_verify() {
        // Overlapping same-demand instances sit in the same group; the
        // property must hold between them too.
        let mut rng = SmallRng::seed_from_u64(9);
        let p = LineWorkload::new(40, 10)
            .with_resources(1)
            .with_window_slack(6)
            .with_len_range(3, 8)
            .generate(&mut rng);
        let layers = line_layers(&p);
        assert!(layers.verify(&p).is_ok());
    }
}

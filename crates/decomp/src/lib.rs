//! Tree decompositions and layered decompositions (Section 4 of the paper).
//!
//! A **tree decomposition** of a tree-network `T` is a rooted tree `H` over
//! the same vertex set such that (i) for any demand path through vertices
//! `x` and `y`, the path also visits `LCA_H(x, y)`, and (ii) for every node
//! `z`, the set `C(z)` of `z` and its `H`-descendants induces a connected
//! subtree of `T`. Its efficacy is measured by its *depth* and its *pivot
//! size* `θ = max_z |χ(z)|` where `χ(z) = Γ[C(z)]` is the set of outside
//! neighbors of `C(z)`.
//!
//! Three constructions are provided (Sections 4.2–4.3):
//!
//! | builder | depth | pivot size θ |
//! |---|---|---|
//! | [`root_fixing`] | up to `n` | 1 |
//! | [`balancing`] | `⌈log n⌉ + 1` | up to `⌈log n⌉` |
//! | [`ideal`] | `≤ 2⌈log n⌉ + 1` | **2** |
//!
//! The ideal decomposition (Lemma 4.1) is the paper's core technical
//! contribution; [`LayeredDecomposition`] then transforms any tree
//! decomposition into an ordering of demand instances plus critical-edge
//! sets `π(d)` with `Δ = 2(θ+1)` (Lemma 4.2), and a specialized
//! length-class construction gives `Δ = 3` on line-networks (Section 7).
//!
//! # Example
//!
//! ```
//! use treenet_graph::{Tree, VertexId};
//! use treenet_decomp::{ideal, Strategy};
//!
//! let tree = Tree::line(64);
//! let h = ideal(&tree);
//! assert!(h.pivot_size() <= 2);
//! assert!(h.depth() as f64 <= 2.0 * 64.0_f64.log2().ceil() + 1.0);
//! assert!(h.verify(&tree).is_ok());
//! # let _ = Strategy::Ideal;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balancing;
mod capture;
mod convergecast;
mod ideal;
mod layered;
mod line;
mod root_fixing;
mod tree_decomposition;

pub use balancing::balancing;
pub use capture::{bending_point, capture_node, critical_edges};
pub use convergecast::ConvergecastForest;
pub use ideal::{ideal, ideal_depth_bound, ideal_with_stats, IdealStats};
pub use layered::{tree_instance_layer, LayeredDecomposition, LayeredError};
pub use line::{line_instance_layer, line_layers, line_lmin};
pub use root_fixing::root_fixing;
pub use tree_decomposition::{DecompositionError, TreeDecomposition};

use treenet_graph::Tree;

/// Which tree-decomposition construction to use (Section 4).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Root the tree at vertex 0: `⟨depth ≤ n, θ = 1⟩`.
    RootFixing,
    /// Recursive balancers: `⟨depth ≤ ⌈log n⌉ + 1, θ ≤ ⌈log n⌉⟩`.
    Balancing,
    /// Balancers + junctions: `⟨depth ≤ 2⌈log n⌉ + 1, θ ≤ 2⟩` (Lemma 4.1).
    Ideal,
}

impl Strategy {
    /// All strategies in a stable order.
    pub const ALL: [Strategy; 3] = [Strategy::RootFixing, Strategy::Balancing, Strategy::Ideal];

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::RootFixing => "root-fixing",
            Strategy::Balancing => "balancing",
            Strategy::Ideal => "ideal",
        }
    }

    /// Builds the decomposition of `tree` using this strategy.
    pub fn build(self, tree: &Tree) -> TreeDecomposition {
        match self {
            Strategy::RootFixing => root_fixing(tree, treenet_graph::VertexId(0)),
            Strategy::Balancing => balancing(tree),
            Strategy::Ideal => ideal(tree),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Ideal.name(), "ideal");
        assert_eq!(Strategy::ALL.len(), 3);
    }

    #[test]
    fn strategy_build_dispatches() {
        let tree = Tree::line(8);
        for s in Strategy::ALL {
            let h = s.build(&tree);
            assert!(h.verify(&tree).is_ok(), "{}", s.name());
        }
    }
}

//! The root-fixing tree decomposition (Section 4.2): `θ = 1`, depth up to
//! `n`.

use crate::TreeDecomposition;
use treenet_graph::{RootedTree, Tree, VertexId};

/// Builds the root-fixing decomposition: `H` is simply `T` rooted at `g`.
///
/// Every component `C(z)` is the `T`-subtree below `z`, whose only outside
/// neighbor is `z`'s parent — so the pivot size is `θ = 1` — but the depth
/// can be as large as `n` (e.g. rooting a path at an end). The sequential
/// Appendix-A algorithm implicitly uses this decomposition.
///
/// # Example
///
/// ```
/// use treenet_graph::{Tree, VertexId};
/// use treenet_decomp::root_fixing;
///
/// let tree = Tree::line(10);
/// let h = root_fixing(&tree, VertexId(0));
/// assert_eq!(h.pivot_size(), 1);
/// assert_eq!(h.depth(), 10);
/// ```
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn root_fixing(tree: &Tree, root: VertexId) -> TreeDecomposition {
    let rooted = RootedTree::new(tree, root);
    let parent: Vec<Option<VertexId>> = tree.vertices().map(|v| rooted.parent(v)).collect();
    TreeDecomposition::from_parents(tree, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_graph::generators::random_tree;

    #[test]
    fn pivot_size_is_one() {
        let mut rng = SmallRng::seed_from_u64(5);
        for n in [2usize, 5, 16, 40] {
            let tree = random_tree(n, &mut rng);
            let h = root_fixing(&tree, VertexId(0));
            assert!(h.pivot_size() <= 1, "n={n}");
            assert!(h.verify(&tree).is_ok(), "n={n}");
        }
    }

    #[test]
    fn depth_of_path_rooted_at_end_is_n() {
        let tree = Tree::line(12);
        let h = root_fixing(&tree, VertexId(0));
        assert_eq!(h.depth(), 12);
        // Rooted at the middle the depth halves (+1 for the root).
        let h = root_fixing(&tree, VertexId(6));
        assert_eq!(h.depth(), 7);
    }

    #[test]
    fn single_vertex() {
        let tree = Tree::from_edges(1, &[]).unwrap();
        let h = root_fixing(&tree, VertexId(0));
        assert_eq!(h.depth(), 1);
        assert_eq!(h.pivot_size(), 0);
        assert!(h.verify(&tree).is_ok());
    }
}

//! The [`TreeDecomposition`] structure shared by all three constructions.

use std::fmt;
use treenet_graph::component::{is_component, Membership};
use treenet_graph::{RootedTree, Tree, VertexId};

/// A tree decomposition `H` of a tree-network `T` (Section 4.1): a rooted
/// tree over the same vertex set satisfying
///
/// 1. **LCA closure** — every `T`-path through `x` and `y` also passes
///    through `LCA_H(x, y)`;
/// 2. **Component property** — for every `z`, the set `C(z)` of `z` and its
///    `H`-descendants induces a connected subtree of `T`.
///
/// The struct stores, for every node `z`, its parent, 1-based depth (the
/// paper's convention: the root has depth 1), Euler intervals for `O(1)`
/// `C(z)` membership tests, and the pivot set `χ(z) = Γ[C(z)]`.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    root: VertexId,
    parent: Vec<Option<VertexId>>,
    depth: Vec<u32>,
    children: Vec<Vec<VertexId>>,
    tin: Vec<u32>,
    tout: Vec<u32>,
    pivot: Vec<Vec<VertexId>>,
}

/// Why a claimed tree decomposition is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecompositionError {
    /// The parent pointers do not form one rooted tree over all vertices.
    NotATree,
    /// `C(z)` is not connected in `T` for some `z`.
    ComponentDisconnected {
        /// The offending node.
        node: VertexId,
    },
    /// The LCA-closure property fails for a vertex pair.
    LcaViolation {
        /// First path end-point.
        x: VertexId,
        /// Second path end-point.
        y: VertexId,
        /// `LCA_H(x, y)`, which the `T`-path misses.
        lca: VertexId,
    },
    /// A stored pivot set differs from `Γ[C(z)]` recomputed from scratch.
    PivotMismatch {
        /// The offending node.
        node: VertexId,
    },
}

impl fmt::Display for DecompositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompositionError::NotATree => write!(f, "parent pointers do not form a rooted tree"),
            DecompositionError::ComponentDisconnected { node } => {
                write!(f, "C({node}) is not connected in T")
            }
            DecompositionError::LcaViolation { x, y, lca } => {
                write!(f, "path {x} ~ {y} misses LCA_H = {lca}")
            }
            DecompositionError::PivotMismatch { node } => {
                write!(f, "stored pivot set of {node} is not Γ[C({node})]")
            }
        }
    }
}

impl std::error::Error for DecompositionError {}

impl TreeDecomposition {
    /// Assembles a decomposition from parent pointers (exactly one `None`,
    /// the root) and computes depths, Euler intervals and pivot sets
    /// against the underlying tree-network `T`.
    ///
    /// # Panics
    ///
    /// Panics if the parent pointers do not describe a rooted tree over
    /// exactly the vertices of `tree`.
    pub fn from_parents(tree: &Tree, parent: Vec<Option<VertexId>>) -> Self {
        let n = tree.len();
        assert_eq!(parent.len(), n, "one parent entry per vertex");
        let mut children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut root = None;
        for (v, entry) in parent.iter().enumerate() {
            match entry {
                None => {
                    assert!(root.is_none(), "exactly one root expected");
                    root = Some(VertexId(v as u32));
                }
                Some(p) => children[p.index()].push(VertexId(v as u32)),
            }
        }
        let root = root.expect("a root is required");

        // Depth + Euler intervals by iterative DFS over H.
        let mut depth = vec![0u32; n];
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut timer = 0u32;
        let mut visited = 0usize;
        let mut stack: Vec<(VertexId, usize)> = vec![(root, 0)];
        depth[root.index()] = 1;
        tin[root.index()] = timer;
        timer += 1;
        visited += 1;
        while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
            if *cursor < children[u.index()].len() {
                let c = children[u.index()][*cursor];
                *cursor += 1;
                depth[c.index()] = depth[u.index()] + 1;
                tin[c.index()] = timer;
                timer += 1;
                visited += 1;
                stack.push((c, 0));
            } else {
                tout[u.index()] = timer;
                timer += 1;
                stack.pop();
            }
        }
        assert_eq!(
            visited, n,
            "parent pointers must reach every vertex (no cycles)"
        );

        let mut decomposition = TreeDecomposition {
            root,
            parent,
            depth,
            children,
            tin,
            tout,
            pivot: Vec::new(),
        };
        decomposition.pivot = decomposition.compute_pivots(tree);
        decomposition
    }

    /// Recomputes `χ(z) = Γ[C(z)]` for every node. `O(depth · Σ deg)`.
    fn compute_pivots(&self, tree: &Tree) -> Vec<Vec<VertexId>> {
        let n = tree.len();
        let mut pivot: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for z in tree.vertices() {
            let mut out = Vec::new();
            // Iterate over C(z) via an H-subtree walk.
            let mut stack = vec![z];
            while let Some(u) = stack.pop() {
                for &(w, _) in tree.neighbors(u) {
                    if !self.in_component(z, w) {
                        out.push(w);
                    }
                }
                stack.extend(self.children[u.index()].iter().copied());
            }
            out.sort_unstable();
            out.dedup();
            pivot[z.index()] = out;
        }
        pivot
    }

    /// The root `g` of `H`.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Always false (a decomposition covers at least one vertex).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Parent of `z` in `H`, or `None` for the root.
    #[inline]
    pub fn parent(&self, z: VertexId) -> Option<VertexId> {
        self.parent[z.index()]
    }

    /// Children of `z` in `H`.
    #[inline]
    pub fn children(&self, z: VertexId) -> &[VertexId] {
        &self.children[z.index()]
    }

    /// 1-based depth of `z` in `H` (the paper's convention; root = 1).
    #[inline]
    pub fn node_depth(&self, z: VertexId) -> u32 {
        self.depth[z.index()]
    }

    /// Depth of the decomposition: `max_z node_depth(z)`.
    pub fn depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Whether `x ∈ C(z)` (i.e. `x == z` or `x` is an `H`-descendant of
    /// `z`); `O(1)` via Euler intervals.
    #[inline]
    pub fn in_component(&self, z: VertexId, x: VertexId) -> bool {
        self.tin[z.index()] <= self.tin[x.index()] && self.tout[x.index()] <= self.tout[z.index()]
    }

    /// The members of `C(z)` (`z` first, then descendants in DFS order).
    pub fn component(&self, z: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![z];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(self.children[u.index()].iter().copied());
        }
        out
    }

    /// The pivot set `χ(z) = Γ[C(z)]`, sorted.
    #[inline]
    pub fn pivot(&self, z: VertexId) -> &[VertexId] {
        &self.pivot[z.index()]
    }

    /// The pivot size `θ = max_z |χ(z)|`.
    pub fn pivot_size(&self) -> usize {
        self.pivot.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// `LCA_H(x, y)` by depth-stepping (decomposition depths are small —
    /// `O(log n)` for balancing/ideal — so no lifting table is needed).
    pub fn lca(&self, x: VertexId, y: VertexId) -> VertexId {
        let mut a = x;
        let mut b = y;
        while self.depth[a.index()] > self.depth[b.index()] {
            a = self.parent[a.index()].expect("deeper node has a parent");
        }
        while self.depth[b.index()] > self.depth[a.index()] {
            b = self.parent[b.index()].expect("deeper node has a parent");
        }
        while a != b {
            a = self.parent[a.index()].expect("distinct nodes below the root");
            b = self.parent[b.index()].expect("distinct nodes below the root");
        }
        a
    }

    /// Verifies both defining properties plus stored pivot sets against
    /// `tree`. `O(n²)` in the worst case — intended for tests and
    /// small-instance verification, not hot paths.
    ///
    /// # Errors
    ///
    /// Returns the first violated property.
    pub fn verify(&self, tree: &Tree) -> Result<(), DecompositionError> {
        let n = tree.len();
        if self.parent.iter().filter(|p| p.is_none()).count() != 1 {
            return Err(DecompositionError::NotATree);
        }
        // Property (ii): C(z) connected, and stored pivots correct.
        let mut membership = Membership::new(n);
        for z in tree.vertices() {
            let comp = self.component(z);
            membership.mark(&comp);
            if !is_component(tree, &comp, &membership) {
                membership.clear(&comp);
                return Err(DecompositionError::ComponentDisconnected { node: z });
            }
            let expected = treenet_graph::component::neighborhood(tree, &comp, &membership);
            membership.clear(&comp);
            if expected != self.pivot[z.index()] {
                return Err(DecompositionError::PivotMismatch { node: z });
            }
        }
        // Property (i): LCA closure for all vertex pairs. A demand through
        // x and y follows the unique T-path, so it suffices that the T-path
        // visits LCA_H(x, y).
        let rooted = RootedTree::new(tree, self.root);
        for x in tree.vertices() {
            for y in tree.vertices() {
                if x >= y {
                    continue;
                }
                let l = self.lca(x, y);
                if !rooted.path(x, y).contains_vertex(l) {
                    return Err(DecompositionError::LcaViolation { x, y, lca: l });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built decomposition of the path 0-1-2-3-4: root 2 with
    /// children 1 and 3, child 0 under 1, child 4 under 3.
    fn path_decomposition() -> (Tree, TreeDecomposition) {
        let tree = Tree::line(5);
        let parent = vec![
            Some(VertexId(1)),
            Some(VertexId(2)),
            None,
            Some(VertexId(2)),
            Some(VertexId(3)),
        ];
        let h = TreeDecomposition::from_parents(&tree, parent);
        (tree, h)
    }

    #[test]
    fn structure_accessors() {
        let (_, h) = path_decomposition();
        assert_eq!(h.root(), VertexId(2));
        assert_eq!(h.len(), 5);
        assert!(!h.is_empty());
        assert_eq!(h.node_depth(VertexId(2)), 1);
        assert_eq!(h.node_depth(VertexId(0)), 3);
        assert_eq!(h.depth(), 3);
        assert_eq!(h.parent(VertexId(4)), Some(VertexId(3)));
        assert_eq!(h.children(VertexId(2)), &[VertexId(1), VertexId(3)]);
    }

    #[test]
    fn component_membership() {
        let (_, h) = path_decomposition();
        assert!(h.in_component(VertexId(1), VertexId(0)));
        assert!(h.in_component(VertexId(1), VertexId(1)));
        assert!(!h.in_component(VertexId(1), VertexId(3)));
        assert!(h.in_component(VertexId(2), VertexId(4)));
        let mut c = h.component(VertexId(3));
        c.sort_unstable();
        assert_eq!(c, vec![VertexId(3), VertexId(4)]);
    }

    #[test]
    fn pivots_are_outside_neighbors() {
        let (_, h) = path_decomposition();
        // C(1) = {0, 1}: neighbor outside is 2.
        assert_eq!(h.pivot(VertexId(1)), &[VertexId(2)]);
        // C(2) = everything: no outside neighbors.
        assert!(h.pivot(VertexId(2)).is_empty());
        // C(4) = {4}: neighbor 3.
        assert_eq!(h.pivot(VertexId(4)), &[VertexId(3)]);
        assert_eq!(h.pivot_size(), 1);
    }

    #[test]
    fn lca_in_h() {
        let (_, h) = path_decomposition();
        assert_eq!(h.lca(VertexId(0), VertexId(4)), VertexId(2));
        assert_eq!(h.lca(VertexId(0), VertexId(1)), VertexId(1));
        assert_eq!(h.lca(VertexId(3), VertexId(3)), VertexId(3));
    }

    #[test]
    fn verify_accepts_valid() {
        let (tree, h) = path_decomposition();
        assert!(h.verify(&tree).is_ok());
    }

    #[test]
    fn verify_rejects_lca_violation() {
        // Root the path at an end but parent 4 under 0: C(z) stays fine for
        // leaves, but LCA fails. Build: root 0; 1<-0, 2<-1, 3<-2, 4<-0.
        let tree = Tree::line(5);
        let parent = vec![
            None,
            Some(VertexId(0)),
            Some(VertexId(1)),
            Some(VertexId(2)),
            Some(VertexId(0)),
        ];
        let h = TreeDecomposition::from_parents(&tree, parent);
        // C(4) = {4} is connected; but path 3~4 misses LCA_H(3,4) = 0? The
        // T-path 3-4 does not visit 0, so LCA closure fails.
        assert!(matches!(
            h.verify(&tree),
            Err(DecompositionError::LcaViolation { .. })
                | Err(DecompositionError::ComponentDisconnected { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn from_parents_rejects_two_roots() {
        let tree = Tree::line(3);
        let _ = TreeDecomposition::from_parents(&tree, vec![None, None, Some(VertexId(1))]);
    }

    #[test]
    fn error_display() {
        let e = DecompositionError::ComponentDisconnected { node: VertexId(3) };
        assert!(e.to_string().contains("v3"));
        assert!(DecompositionError::NotATree
            .to_string()
            .contains("rooted tree"));
    }
}

//! The ideal tree decomposition (Section 4.3, Lemma 4.1): depth
//! `O(log n)`, pivot size `θ ≤ 2`.
//!
//! The construction (`BuildIdealTD` in the paper) recursively picks a
//! balancer `z` of the current component `C` (which has at most two
//! outside neighbors `u₁, u₂` as a precondition). If some split piece ends
//! up with three neighbors `{z, u₁, u₂}` — i.e. the attachments of `u₁`
//! and `u₂` fall into the same piece (Case 2(b), Figure 5) — a *junction*
//! `j = median_T(u₁, u₂, z)` is introduced above `z` and that piece is
//! split again at `j`. Every recursive input then has at most two outside
//! neighbors, at most two `H`-levels are added per size-halving, and every
//! `C(x)` keeps at most two outside neighbors, giving
//! `⟨depth ≤ 2⌈log n⌉ + 1, θ ≤ 2⟩`.

use crate::TreeDecomposition;
use treenet_graph::component::{find_balancer, neighborhood, split_at, Membership};
use treenet_graph::{RootedTree, Tree, VertexId};

/// Builds the ideal tree decomposition of `tree` (Lemma 4.1).
///
/// # Example
///
/// ```
/// use treenet_graph::Tree;
/// use treenet_decomp::ideal;
///
/// let tree = Tree::line(128);
/// let h = ideal(&tree);
/// assert!(h.pivot_size() <= 2);
/// assert!(h.depth() <= 2 * 7 + 1); // 2⌈log₂ 128⌉ + 1
/// assert!(h.verify(&tree).is_ok());
/// ```
pub fn ideal(tree: &Tree) -> TreeDecomposition {
    ideal_with_stats(tree).0
}

/// Construction statistics of an [`ideal`] build, for diagnostics and
/// experiments.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IdealStats {
    /// Number of times Case 2(b) fired (a junction node was introduced).
    pub junctions: usize,
    /// Number of balancer (centroid) selections.
    pub balancers: usize,
}

/// Like [`ideal`], additionally returning construction statistics.
pub fn ideal_with_stats(tree: &Tree) -> (TreeDecomposition, IdealStats) {
    let n = tree.len();
    let rooted = RootedTree::new(tree, VertexId(0));
    let mut builder = IdealBuilder {
        tree,
        rooted: &rooted,
        parent: vec![None; n],
        membership: Membership::new(n),
        stats: IdealStats::default(),
    };
    // Top level: a balancer g of the whole vertex set becomes the root;
    // every split piece has Γ = {g} ⊆ two neighbors, satisfying the
    // recursion's precondition.
    let all: Vec<VertexId> = tree.vertices().collect();
    builder.membership.mark(&all);
    let g = find_balancer(tree, &all, &builder.membership);
    let parts = split_at(tree, &all, &builder.membership, g);
    builder.membership.clear(&all);
    builder.stats.balancers += 1;
    for part in parts {
        let root = builder.build(part);
        builder.parent[root.index()] = Some(g);
    }
    let stats = builder.stats;
    (TreeDecomposition::from_parents(tree, builder.parent), stats)
}

struct IdealBuilder<'t> {
    tree: &'t Tree,
    rooted: &'t RootedTree,
    parent: Vec<Option<VertexId>>,
    membership: Membership,
    stats: IdealStats,
}

impl IdealBuilder<'_> {
    /// `BuildIdealTD(C)`: returns the root of the subtree built for `comp`.
    ///
    /// Precondition: `comp` is a component of the tree with at most two
    /// outside neighbors (checked with `debug_assert`).
    fn build(&mut self, comp: Vec<VertexId>) -> VertexId {
        if comp.len() == 1 {
            return comp[0];
        }
        self.membership.mark(&comp);
        let gamma = neighborhood(self.tree, &comp, &self.membership);
        debug_assert!(
            gamma.len() <= 2,
            "precondition: component has at most two neighbors, got {gamma:?}"
        );
        // Attachment u' of each outside neighbor u: the unique comp vertex
        // adjacent to u (two attachments would close a cycle).
        let attachments: Vec<(VertexId, VertexId)> = gamma
            .iter()
            .map(|&u| {
                let uprime = self
                    .tree
                    .neighbors(u)
                    .iter()
                    .map(|&(w, _)| w)
                    .find(|&w| self.membership.contains(w))
                    .expect("neighbor of the component attaches somewhere inside");
                (u, uprime)
            })
            .collect();
        let z = find_balancer(self.tree, &comp, &self.membership);
        let parts = split_at(self.tree, &comp, &self.membership, z);
        self.membership.clear(&comp);
        self.stats.balancers += 1;

        // Locate each attachment: the part containing it, or `z` itself.
        let part_of = |parts: &[Vec<VertexId>], x: VertexId| -> Option<usize> {
            parts.iter().position(|p| p.contains(&x))
        };
        let mut per_part_attachments = vec![0usize; parts.len()];
        for &(_, uprime) in &attachments {
            if uprime != z {
                let idx = part_of(&parts, uprime).expect("attachment lies in some part");
                per_part_attachments[idx] += 1;
            }
        }

        match per_part_attachments.iter().position(|&c| c >= 2) {
            None => {
                // Cases 1 / 2(a): every part keeps ≤ 2 neighbors ({z} plus
                // at most one of u₁/u₂); z roots them all.
                for part in parts {
                    let root = self.build(part);
                    self.parent[root.index()] = Some(z);
                }
                z
            }
            Some(pi) => {
                // Case 2(b): both attachments u₁', u₂' fall in parts[pi],
                // which would have the three neighbors {z, u₁, u₂}.
                self.stats.junctions += 1;
                debug_assert_eq!(gamma.len(), 2);
                let (u1, _) = attachments[0];
                let (u2, _) = attachments[1];
                let junction = self.rooted.median(u1, u2, z);
                let p1 = parts[pi].clone();
                debug_assert!(
                    p1.contains(&junction),
                    "junction {junction} must lie in the three-neighbor part"
                );
                // The attachment of z into p1 (w): the unique p1 vertex
                // adjacent to z; `w == junction` is possible.
                self.membership.mark(&p1);
                let w = self
                    .tree
                    .neighbors(z)
                    .iter()
                    .map(|&(x, _)| x)
                    .find(|&x| self.membership.contains(x))
                    .expect("z is adjacent to every split piece");
                let subparts = split_at(self.tree, &p1, &self.membership, junction);
                self.membership.clear(&p1);

                // j is the root; z hangs below j; the subpart containing w
                // (C'₁, if any) hangs below z; remaining subparts below j;
                // the other parts of comp \ {z} below z.
                self.parent[z.index()] = Some(junction);
                for subpart in subparts {
                    let is_c1 = w != junction && subpart.contains(&w);
                    let root = self.build(subpart);
                    self.parent[root.index()] = Some(if is_c1 { z } else { junction });
                }
                for (i, part) in parts.into_iter().enumerate() {
                    if i == pi {
                        continue;
                    }
                    let root = self.build(part);
                    self.parent[root.index()] = Some(z);
                }
                junction
            }
        }
    }
}

/// The paper's depth bound for the ideal decomposition:
/// `2⌈log₂ n⌉ + 1` (two levels per size-halving plus the top balancer).
pub fn ideal_depth_bound(n: usize) -> u32 {
    let ceil_log2 = (usize::BITS - (n.max(1) - 1).leading_zeros()).max(1);
    2 * ceil_log2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use treenet_graph::generators::{random_tree, TreeFamily};

    #[test]
    fn pivot_size_at_most_two_everywhere() {
        let mut rng = SmallRng::seed_from_u64(21);
        for family in TreeFamily::ALL {
            for n in [2usize, 3, 7, 20, 65, 128] {
                let tree = family.generate(n, &mut rng);
                let h = ideal(&tree);
                assert!(
                    h.pivot_size() <= 2,
                    "{} n={n}: pivot {}",
                    family.name(),
                    h.pivot_size()
                );
            }
        }
    }

    #[test]
    fn depth_within_paper_bound() {
        let mut rng = SmallRng::seed_from_u64(22);
        for family in TreeFamily::ALL {
            for n in [2usize, 5, 16, 50, 127, 256, 513] {
                let tree = family.generate(n, &mut rng);
                let h = ideal(&tree);
                let bound = ideal_depth_bound(n);
                assert!(
                    h.depth() <= bound,
                    "{} n={n}: depth {} > bound {bound}",
                    family.name(),
                    h.depth()
                );
            }
        }
    }

    #[test]
    fn decomposition_properties_verified() {
        let mut rng = SmallRng::seed_from_u64(23);
        for n in [2usize, 3, 4, 9, 17, 40] {
            for seed in 0..5u64 {
                let tree = random_tree(n, &mut SmallRng::seed_from_u64(seed * 1000 + n as u64));
                let h = ideal(&tree);
                assert!(h.verify(&tree).is_ok(), "n={n} seed={seed}");
            }
            let tree = random_tree(n, &mut rng);
            let h = ideal(&tree);
            assert!(h.verify(&tree).is_ok());
        }
    }

    #[test]
    fn junction_case_fires_on_branching_trees() {
        // On a line the two attachments always fall into different split
        // pieces, so Case 2(b) never fires...
        let line = Tree::line(65);
        let (h, stats) = ideal_with_stats(&line);
        assert!(h.verify(&line).is_ok());
        assert_eq!(stats.junctions, 0);
        // ...but on branching trees it does, and exactly there the
        // balancing decomposition needs pivot ≥ 3 while ideal stays ≤ 2
        // (uniform tree n=63 seed=0: balancing pivot is 4).
        let tree = random_tree(63, &mut SmallRng::seed_from_u64(0));
        let (h, stats) = ideal_with_stats(&tree);
        assert!(h.verify(&tree).is_ok());
        assert!(h.pivot_size() <= 2);
        assert!(stats.junctions > 0, "expected Case 2(b) to fire");
        assert!(stats.balancers > 0);
        let bal = crate::balancing(&tree);
        assert!(bal.pivot_size() > 2);
    }

    #[test]
    fn tiny_trees() {
        for n in 1..=4usize {
            let tree = Tree::line(n);
            let h = ideal(&tree);
            assert!(h.verify(&tree).is_ok(), "n={n}");
            assert!(h.pivot_size() <= 2);
        }
    }

    #[test]
    fn figure6_tree_decomposes() {
        // The paper's example tree (via the model fixture shape).
        let tree = Tree::from_edges(
            14,
            &[
                (0, 1),
                (1, 3),
                (1, 4),
                (4, 7),
                (4, 8),
                (7, 12),
                (7, 11),
                (0, 5),
                (5, 2),
                (2, 6),
                (0, 13),
                (13, 9),
                (13, 10),
            ],
        )
        .unwrap();
        let h = ideal(&tree);
        assert!(h.verify(&tree).is_ok());
        assert!(h.pivot_size() <= 2);
        assert!(h.depth() <= ideal_depth_bound(14));
    }
}

//! Property-based tests for tree and layered decompositions.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_decomp::{
    capture_node, ideal_depth_bound, ideal_with_stats, LayeredDecomposition, Strategy,
};
use treenet_graph::generators::{random_tree, TreeFamily};
use treenet_model::workload::{LineWorkload, TreeWorkload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Lemma 4.1: the ideal decomposition always has pivot ≤ 2 and depth
    /// ≤ 2⌈log n⌉ + 1, and satisfies both defining properties.
    #[test]
    fn ideal_parameters_hold(seed in 0u64..3000, n in 2usize..60) {
        let tree = random_tree(n, &mut SmallRng::seed_from_u64(seed));
        let (h, _) = ideal_with_stats(&tree);
        prop_assert!(h.pivot_size() <= 2);
        prop_assert!(h.depth() <= ideal_depth_bound(n));
        prop_assert!(h.verify(&tree).is_ok());
    }

    /// All strategies produce valid tree decompositions on all families.
    #[test]
    fn all_strategies_valid(seed in 0u64..500, n in 2usize..40, fam in 0usize..7) {
        let family = TreeFamily::ALL[fam];
        let tree = family.generate(n, &mut SmallRng::seed_from_u64(seed));
        for strategy in Strategy::ALL {
            let h = strategy.build(&tree);
            prop_assert!(h.verify(&tree).is_ok(), "{} on {}", strategy.name(), family.name());
        }
    }

    /// Lemma 4.3: tree layered decompositions from the ideal strategy have
    /// Δ ≤ 6 and satisfy the layered property; the capture node lies on
    /// every instance's path.
    #[test]
    fn tree_layers_sound(seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = TreeWorkload::new(18, 16).with_networks(2).generate(&mut rng);
        let layers = LayeredDecomposition::for_trees(&p, Strategy::Ideal);
        prop_assert!(layers.delta() <= 6);
        prop_assert!(layers.verify(&p).is_ok());
        for t in p.networks() {
            let h = Strategy::Ideal.build(p.network(t));
            for &d in p.instances_on(t) {
                let inst = p.instance(d);
                let mu = capture_node(&h, &inst.path);
                prop_assert!(inst.path.contains_vertex(mu));
            }
        }
    }

    /// Section 7: line layered decompositions have Δ ≤ 3 and satisfy the
    /// layered property, windows included.
    #[test]
    fn line_layers_sound(seed in 0u64..1000, slack in 0u32..5) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = LineWorkload::new(48, 24)
            .with_resources(2)
            .with_window_slack(slack)
            .with_len_range(1, 12)
            .generate(&mut rng);
        let layers = LayeredDecomposition::for_lines(&p);
        prop_assert!(layers.delta() <= 3);
        prop_assert!(layers.verify(&p).is_ok());
    }

    /// Group indexes are 1-based, bounded by the group count, and the
    /// critical sets are non-empty path edges.
    #[test]
    fn layer_indexes_consistent(seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = TreeWorkload::new(14, 10).generate(&mut rng);
        for strategy in Strategy::ALL {
            let layers = LayeredDecomposition::for_trees(&p, strategy);
            for inst in p.instances() {
                let g = layers.group_of(inst.id);
                prop_assert!(g >= 1);
                prop_assert!(g as usize <= layers.num_groups());
                let pi = layers.critical_of(inst.id);
                prop_assert!(!pi.is_empty());
                prop_assert!(pi.iter().all(|&e| inst.path.contains_edge(e)));
            }
        }
    }
}

//! Exhaustive verification of the paper's core contribution on *every*
//! labeled tree with up to 7 vertices (via Prüfer enumeration: `n^(n-2)`
//! trees per size, 16,807 at n = 7): the ideal decomposition always has
//! pivot ≤ 2, depth within the Lemma 4.1 bound, and satisfies both
//! defining properties — no sampling gaps on small cases.

use treenet_decomp::{ideal_depth_bound, ideal_with_stats, Strategy};
use treenet_graph::generators::prufer_to_tree;

/// Iterates all Prüfer sequences of length `n - 2` over `n` labels.
fn for_all_trees(n: usize, mut f: impl FnMut(treenet_graph::Tree)) {
    assert!(n >= 3);
    let len = n - 2;
    let mut seq = vec![0u32; len];
    loop {
        f(prufer_to_tree(n, &seq));
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == len {
                return;
            }
            seq[i] += 1;
            if (seq[i] as usize) < n {
                break;
            }
            seq[i] = 0;
            i += 1;
        }
    }
}

#[test]
fn ideal_decomposition_on_all_trees_up_to_six() {
    for n in 3..=6usize {
        let mut count = 0usize;
        for_all_trees(n, |tree| {
            let (h, _) = ideal_with_stats(&tree);
            assert!(
                h.pivot_size() <= 2,
                "n={n} tree #{count}: pivot {}",
                h.pivot_size()
            );
            assert!(h.depth() <= ideal_depth_bound(n), "n={n} tree #{count}");
            h.verify(&tree)
                .unwrap_or_else(|e| panic!("n={n} tree #{count}: {e}"));
            count += 1;
        });
        assert_eq!(count, n.pow(n as u32 - 2), "all labeled trees enumerated");
    }
}

#[test]
fn ideal_decomposition_on_all_trees_of_seven() {
    // 16,807 trees; structural checks only (full verify() is O(n²) and
    // already exhaustive up to n = 6).
    let n = 7usize;
    let mut count = 0usize;
    let mut junctions_seen = 0usize;
    for_all_trees(n, |tree| {
        let (h, stats) = ideal_with_stats(&tree);
        assert!(h.pivot_size() <= 2);
        assert!(h.depth() <= ideal_depth_bound(n));
        junctions_seen += stats.junctions;
        count += 1;
    });
    assert_eq!(count, 16_807);
    // At n = 7 the recursion bottoms out before two boundary attachments
    // can share a split piece, so Case 2(b) never fires — the junction
    // logic is exercised at larger sizes instead (see
    // `junction_case_fires_on_branching_trees` in the ideal module).
    assert_eq!(
        junctions_seen, 0,
        "junction at n = 7 would contradict the size analysis"
    );
}

#[test]
fn all_strategies_verified_on_all_trees_of_five() {
    for strategy in Strategy::ALL {
        for_all_trees(5, |tree| {
            let h = strategy.build(&tree);
            h.verify(&tree)
                .unwrap_or_else(|e| panic!("{} failed: {e}", strategy.name()));
        });
    }
}

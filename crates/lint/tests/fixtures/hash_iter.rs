// lint-fixture: path = crates/dist/src/fixture.rs
// treenet-lint: allow(hash-state, reason = "fixture: keyed-only map, the iteration below is the hazard under test")
use std::collections::HashMap;

pub fn order(map: &HashMap<u32, u32>) -> Vec<u32> {
    map.keys().copied().collect()
}

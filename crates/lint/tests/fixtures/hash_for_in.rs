// lint-fixture: path = crates/netsim/src/fixture.rs
pub struct State {
    // treenet-lint: allow(hash-state, reason = "fixture: the for-in below is the hazard under test")
    links: std::collections::HashSet<u32>,
}

impl State {
    pub fn touch(&self) -> u32 {
        let mut sum = 0;
        for link in &self.links {
            sum += *link;
        }
        sum
    }
}

// lint-fixture: path = crates/graph/src/lib.rs
//! A crate root that forgot its `#![forbid(unsafe_code)]`.

pub fn id(x: u32) -> u32 {
    x
}

// lint-fixture: path = crates/dist/src/fixture.rs
pub enum DistMsg {
    Ping(u32),
    Pong,
    Extra,
}

impl MessageSize for DistMsg {
    fn size_bits(&self) -> u64 {
        match self {
            DistMsg::Ping(_) => 32,
            DistMsg::Pong => 16,
            _ => 0,
        }
    }

    fn traffic_class(&self) -> usize {
        match self {
            DistMsg::Ping(_) => 1,
            DistMsg::Pong => 2,
            DistMsg::Extra => 3,
        }
    }
}

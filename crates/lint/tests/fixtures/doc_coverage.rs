// lint-fixture: path = crates/graph/src/fixture.rs
//! Doc-coverage fixture: exactly two undocumented public items — the
//! bare `pub fn` and the `b` field. Everything else is documented,
//! non-public, re-exported, macro-generated or test-only.

/// Documented.
pub fn documented() {}

pub fn bare() {}

pub(crate) fn internal() {}

pub use std::cmp::Ordering;

/// A documented struct (the doc sits above the attribute chain).
#[derive(Clone)]
pub struct S {
    /// Documented field.
    pub a: u32,
    pub b: u32,
}

#[doc = "attribute docs count too"]
pub fn attr_documented() {}

macro_rules! emit {
    () => {
        pub fn generated() {}
    };
}
emit!();

#[cfg(test)]
mod tests {
    pub fn helper() {}
}

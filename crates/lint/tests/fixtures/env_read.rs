// lint-fixture: path = crates/dist/src/fixture.rs
pub fn seed() -> Option<String> {
    std::env::var("TREENET_SEED").ok()
}

// lint-fixture: path = crates/dist/src/fixture.rs
// treenet-lint: allow(hash-order, reason = "no such rule")
use std::collections::HashMap;

pub fn lookup(map: &HashMap<u32, u32>, key: u32) -> Option<u32> {
    map.get(&key).copied()
}

// lint-fixture: path = crates/core/src/fixture.rs
use std::collections::HashMap;

pub fn lookup(map: &HashMap<u32, u32>, key: u32) -> Option<u32> {
    map.get(&key).copied()
}

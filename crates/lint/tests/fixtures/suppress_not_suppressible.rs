// lint-fixture: path = crates/graph/src/fixture.rs
// treenet-lint: allow(unwrap-ratchet, reason = "corpus-level rules cannot be silenced inline")
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

// lint-fixture: path = crates/graph/src/fixture.rs
pub fn id(x: u32) -> u32 {
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_and_unwraps_freely() {
        println!("{}", Some(1).unwrap());
    }
}

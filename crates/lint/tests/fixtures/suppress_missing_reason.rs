// lint-fixture: path = crates/dist/src/fixture.rs
use std::collections::HashMap; // treenet-lint: allow(hash-state)

pub fn lookup(map: &HashMap<u32, u32>, key: u32) -> Option<u32> {
    map.get(&key).copied()
}

// lint-fixture: path = crates/decomp/src/fixture.rs
pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

// lint-fixture: path = crates/dist/src/fixture.rs
pub enum DistMsg {
    Ping(u32),
    Beat { mask: u64 },
}

impl MessageSize for DistMsg {
    fn size_bits(&self, networks: usize) -> u64 {
        match self {
            DistMsg::Ping(_) => 32,
            DistMsg::Beat { .. } => descriptor_bits(networks),
        }
    }

    fn traffic_class(&self, run: Run) -> usize {
        match self {
            DistMsg::Ping(_) => 3,
            DistMsg::Beat { .. } => 1 + run.index(),
        }
    }
}

// lint-fixture: path = crates/graph/src/fixture.rs
pub fn report(x: u32) -> u32 {
    println!("x = {x}");
    x
}

//! The linter's own acceptance bar: the real workspace must lint clean.
//! This runs the same corpus walk as the CI `lint` job, so `cargo test`
//! alone catches a new finding (or a registry drift) before CI does.

use std::path::Path;

use treenet_lint::engine::{lint_tree, Options};
use treenet_lint::{Registry, REGISTRY_REL_PATH};

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let registry = Registry::load(&root.join(REGISTRY_REL_PATH)).expect("registry parses");
    let opts = Options {
        only: None,
        registry_rel: REGISTRY_REL_PATH.to_string(),
    };
    let report = lint_tree(&root, &registry, &opts).expect("corpus walk succeeds");
    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean:\n{}",
        report.render_human()
    );
    // The walk actually covered the workspace — a path-layout change
    // that silently skipped every crate would otherwise pass vacuously.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — did the corpus walk break?",
        report.files_scanned
    );
}

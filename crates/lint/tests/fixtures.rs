//! The known-bad corpus: every rule must fire — exactly where expected
//! and exactly once — on its fixture, and every suppression form must
//! round-trip through the JSON report.
//!
//! Each fixture under `tests/fixtures/` carries a header comment
//! `// lint-fixture: path = <workspace-relative path>` giving the
//! synthetic location it is linted under (the path decides the crate,
//! protocol membership and bin/lib classification). Fixtures are never
//! compiled — they only need to lex.

use std::path::Path;

use treenet_lint::engine::{lint_sources, Options, SourceFile};
use treenet_lint::{json, Registry, Report, Rule};

/// Reads a fixture and its synthetic workspace path from the header.
fn fixture(name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {name}: {e}"));
    let rel = source
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("// lint-fixture: path = "))
        .unwrap_or_else(|| panic!("{name} is missing its `// lint-fixture: path = …` header"))
        .trim()
        .to_string();
    SourceFile { rel, source }
}

fn lint_fixture(name: &str, registry_text: &str) -> Report {
    let registry = Registry::parse(registry_text).expect("fixture registry parses");
    let opts = Options {
        only: None,
        registry_rel: "crates/lint/protocol_registry.toml".to_string(),
    };
    lint_sources(&[fixture(name)], &registry, &opts)
}

fn rule_names(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule.name()).collect()
}

// The fixtures deliberately leave their pub items undocumented (docs
// would shift the line numbers the tests assert on), so each "clean"
// registry carries a matching [budget.doc] entry.
const DIST_CLEAN: &str = "[budget.unwrap]\ntreenet-dist = 0\n[budget.doc]\ntreenet-dist = 1\n";
const GRAPH_CLEAN: &str = "[budget.unwrap]\ntreenet-graph = 0\n[budget.doc]\ntreenet-graph = 1\n";

#[test]
fn hash_iter_fires_once_and_the_suppression_round_trips() {
    let report = lint_fixture("hash_iter.rs", DIST_CLEAN);
    assert_eq!(rule_names(&report), ["hash-iter"], "{report:?}");
    let f = &report.findings[0];
    assert_eq!((f.file.as_str(), f.line), ("crates/dist/src/fixture.rs", 6));
    // The import on the next line after the directive was silenced,
    // with its reason kept auditable.
    assert_eq!(report.suppressed.len(), 1);
    let s = &report.suppressed[0];
    assert_eq!((s.rule, s.line), (Rule::HashState, 3));
    assert!(s.reason.contains("keyed-only"));
}

#[test]
fn hash_for_in_fires_on_field_iteration() {
    let report = lint_fixture(
        "hash_for_in.rs",
        "[budget.unwrap]\ntreenet-netsim = 0\n[budget.doc]\ntreenet-netsim = 2\n",
    );
    assert_eq!(rule_names(&report), ["hash-iter"], "{report:?}");
    assert!(report.findings[0].message.contains("for … in"));
    // The std::collections-qualified field type was suppressed.
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, Rule::HashState);
}

#[test]
fn hash_state_fires_once_on_the_import() {
    let report = lint_fixture(
        "hash_state.rs",
        "[budget.unwrap]\ntreenet-core = 0\n[budget.doc]\ntreenet-core = 1\n",
    );
    assert_eq!(rule_names(&report), ["hash-state"], "{report:?}");
    assert_eq!(report.findings[0].line, 2);
    assert!(report.suppressed.is_empty());
}

#[test]
fn wall_clock_fires_once_despite_two_matching_patterns() {
    // `std::time::Instant::now()` is both a `std::time` path and an
    // `Instant::now` call — the (rule, line) dedup keeps one finding.
    let report = lint_fixture(
        "wall_clock.rs",
        "[budget.unwrap]\ntreenet-mis = 0\n[budget.doc]\ntreenet-mis = 1\n",
    );
    assert_eq!(rule_names(&report), ["wall-clock"], "{report:?}");
    assert_eq!(report.findings[0].line, 3);
}

#[test]
fn ambient_rng_fires_once() {
    let report = lint_fixture(
        "ambient_rng.rs",
        "[budget.unwrap]\ntreenet-decomp = 0\n[budget.doc]\ntreenet-decomp = 1\n",
    );
    assert_eq!(rule_names(&report), ["ambient-rng"], "{report:?}");
    assert!(report.findings[0].message.contains("thread_rng"));
}

#[test]
fn env_read_fires_once() {
    let report = lint_fixture("env_read.rs", DIST_CLEAN);
    assert_eq!(rule_names(&report), ["env-read"], "{report:?}");
}

#[test]
fn no_print_fires_in_lib_code_but_not_in_bins() {
    let report = lint_fixture("no_print.rs", GRAPH_CLEAN);
    assert_eq!(rule_names(&report), ["no-print"], "{report:?}");

    // The same source under a bin path is output-exempt — from
    // `no-print` and from both ratchet counts (hence the doc budget
    // drops to 0 here).
    let mut as_bin = fixture("no_print.rs");
    as_bin.rel = "crates/graph/src/bin/fixture.rs".to_string();
    let registry =
        Registry::parse("[budget.unwrap]\ntreenet-graph = 0\n[budget.doc]\ntreenet-graph = 0\n")
            .unwrap();
    let report = lint_sources(&[as_bin], &registry, &Options::default());
    assert!(rule_names(&report).is_empty(), "{report:?}");
}

#[test]
fn forbid_unsafe_fires_on_a_bare_crate_root() {
    let report = lint_fixture("forbid_unsafe.rs", GRAPH_CLEAN);
    assert_eq!(rule_names(&report), ["forbid-unsafe"], "{report:?}");
}

#[test]
fn unwrap_ratchet_rejects_over_and_under_budget() {
    // The fixture has exactly one unwrap; a budget of 0 is exceeded …
    let report = lint_fixture("unwrap_ratchet.rs", GRAPH_CLEAN);
    assert_eq!(rule_names(&report), ["unwrap-ratchet"], "{report:?}");
    assert!(report.findings[0]
        .message
        .contains("over the ratcheted budget"));

    // … a budget of 5 must be ratcheted down …
    let report = lint_fixture(
        "unwrap_ratchet.rs",
        "[budget.unwrap]\ntreenet-graph = 5\n[budget.doc]\ntreenet-graph = 1\n",
    );
    assert_eq!(rule_names(&report), ["unwrap-ratchet"]);
    assert!(report.findings[0].message.contains("ratchet the budget"));

    // … a budget of 1 is exact, and a stale entry is flagged.
    let report = lint_fixture(
        "unwrap_ratchet.rs",
        "[budget.unwrap]\ntreenet-graph = 1\ntreenet-gone = 2\n[budget.doc]\ntreenet-graph = 1\n",
    );
    assert_eq!(rule_names(&report), ["unwrap-ratchet"]);
    assert!(report.findings[0].message.contains("stale"));
}

#[test]
fn doc_coverage_counts_and_ratchets() {
    // The fixture has exactly two undocumented public items (a bare fn
    // and a struct field); `pub(crate)`, `pub use`, `#[doc …]`,
    // macro_rules templates and test code are all exempt. Over a budget
    // of 1 …
    let report = lint_fixture(
        "doc_coverage.rs",
        "[budget.unwrap]\ntreenet-graph = 0\n[budget.doc]\ntreenet-graph = 1\n",
    );
    assert_eq!(rule_names(&report), ["doc-coverage"], "{report:?}");
    assert!(report.findings[0]
        .message
        .contains("2 undocumented public items"));
    assert!(report.findings[0]
        .message
        .contains("over the ratcheted budget"));
    assert!(report.findings[0].message.contains("add doc comments"));

    // … exact at 2 …
    let report = lint_fixture(
        "doc_coverage.rs",
        "[budget.unwrap]\ntreenet-graph = 0\n[budget.doc]\ntreenet-graph = 2\n",
    );
    assert!(rule_names(&report).is_empty(), "{report:?}");

    // … and a generous budget must be ratcheted down.
    let report = lint_fixture(
        "doc_coverage.rs",
        "[budget.unwrap]\ntreenet-graph = 0\n[budget.doc]\ntreenet-graph = 3\n",
    );
    assert_eq!(rule_names(&report), ["doc-coverage"]);
    assert!(report.findings[0].message.contains("ratchet the budget"));

    // A missing table entry and a stale one are both findings.
    let report = lint_fixture(
        "doc_coverage.rs",
        "[budget.unwrap]\ntreenet-graph = 0\n[budget.doc]\ntreenet-gone = 2\n",
    );
    assert_eq!(rule_names(&report), ["doc-coverage"; 2], "{report:?}");
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("no doc budget")));
    assert!(report.findings.iter().any(|f| f.message.contains("stale")));
}

#[test]
fn test_regions_are_exempt_from_policy_rules() {
    let report = lint_fixture("test_exempt.rs", GRAPH_CLEAN);
    assert!(rule_names(&report).is_empty(), "{report:?}");
}

#[test]
fn protocol_cross_check_passes_a_consistent_pair() {
    let registry = "[message.Ping]\nbits = 32\nclass = 3\n\
                    [message.Beat]\nbits = \"descriptor_bits\"\nclass = \"run\"\n\
                    [budget.unwrap]\ntreenet-dist = 0\n\
                    [budget.doc]\ntreenet-dist = 1\n";
    let report = lint_fixture("protocol_ok.rs", registry);
    assert!(rule_names(&report).is_empty(), "{report:?}");
}

#[test]
fn protocol_cross_check_catches_every_drift_direction() {
    // Ping's width disagrees (32 in code, 64 declared), size_bits has a
    // wildcard arm, Extra has no registry entry, Stale has no variant.
    let registry = "[message.Ping]\nbits = 64\nclass = 1\n\
                    [message.Pong]\nbits = 16\nclass = 2\n\
                    [message.Stale]\nbits = 8\nclass = 0\n\
                    [budget.unwrap]\ntreenet-dist = 0\n\
                    [budget.doc]\ntreenet-dist = 1\n";
    let report = lint_fixture("protocol_mismatch.rs", registry);
    assert_eq!(rule_names(&report), ["protocol-registry"; 4], "{report:?}");
    let messages: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages
        .iter()
        .any(|m| m.contains("wildcard arm in `size_bits`")));
    assert!(messages
        .iter()
        .any(|m| m.contains("disagrees with") && m.contains("bits = 64")));
    assert!(messages
        .iter()
        .any(|m| m.contains("`DistMsg::Extra` has no [message.Extra]")));
    assert!(messages
        .iter()
        .any(|m| m.contains("[message.Stale] has no matching")));
}

#[test]
fn missing_reason_still_suppresses_but_is_itself_a_finding() {
    let report = lint_fixture("suppress_missing_reason.rs", DIST_CLEAN);
    assert_eq!(rule_names(&report), ["bad-suppression"], "{report:?}");
    assert!(report.findings[0].message.contains("missing its reason"));
    // The target was still silenced — the fix is writing the reason,
    // not re-litigating the suppression.
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, Rule::HashState);
    assert!(report.suppressed[0].reason.is_empty());
}

#[test]
fn unknown_rule_suppresses_nothing() {
    let report = lint_fixture("suppress_unknown_rule.rs", DIST_CLEAN);
    assert_eq!(
        rule_names(&report),
        ["bad-suppression", "hash-state"],
        "{report:?}"
    );
    assert!(report.findings[0]
        .message
        .contains("unknown rule `hash-order`"));
    assert!(report.suppressed.is_empty());
}

#[test]
fn corpus_level_rules_cannot_be_suppressed_inline() {
    let report = lint_fixture("suppress_not_suppressible.rs", GRAPH_CLEAN);
    let mut names = rule_names(&report);
    names.sort_unstable();
    assert_eq!(names, ["bad-suppression", "unwrap-ratchet"], "{report:?}");
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("cannot be suppressed inline")));
}

#[test]
fn only_filter_restricts_the_run() {
    let registry = Registry::parse(GRAPH_CLEAN).unwrap();
    let opts = Options {
        only: Some([Rule::NoPrint].into_iter().collect()),
        registry_rel: "registry.toml".to_string(),
    };
    let report = lint_sources(&[fixture("unwrap_ratchet.rs")], &registry, &opts);
    assert!(rule_names(&report).is_empty(), "{report:?}");

    let opts = Options {
        only: Some([Rule::UnwrapRatchet].into_iter().collect()),
        registry_rel: "registry.toml".to_string(),
    };
    let report = lint_sources(&[fixture("unwrap_ratchet.rs")], &registry, &opts);
    assert_eq!(rule_names(&report), ["unwrap-ratchet"]);
}

#[test]
fn the_json_report_round_trips() {
    let report = lint_fixture("hash_iter.rs", DIST_CLEAN);
    let doc = json::parse(&report.render_json()).expect("report parses back");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("treenet-lint/v1")
    );
    assert_eq!(doc.get("files_scanned").and_then(|v| v.as_num()), Some(1.0));
    let findings = doc.get("findings").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(findings.len(), 1);
    assert_eq!(
        findings[0].get("rule").and_then(|v| v.as_str()),
        Some("hash-iter")
    );
    assert_eq!(
        findings[0].get("file").and_then(|v| v.as_str()),
        Some("crates/dist/src/fixture.rs")
    );
    assert_eq!(findings[0].get("line").and_then(|v| v.as_num()), Some(6.0));
    let suppressed = doc.get("suppressed").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(
        suppressed[0].get("rule").and_then(|v| v.as_str()),
        Some("hash-state")
    );
    assert!(suppressed[0]
        .get("reason")
        .and_then(|v| v.as_str())
        .unwrap()
        .contains("keyed-only"));
}

#[test]
fn every_fixture_header_names_a_classifiable_path() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert!(!names.is_empty());
    for name in names {
        let f = fixture(&name);
        assert!(
            treenet_lint::rules::classify(&f.rel).is_some(),
            "{name}: header path {} is outside the lint's scope",
            f.rel
        );
    }
}

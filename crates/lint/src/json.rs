//! A minimal JSON value with a writer and a parser — just enough for
//! the `--json` report to be emitted and round-tripped in tests without
//! pulling any dependency into the lint. Objects preserve insertion
//! order so reports are byte-stable.

/// A JSON value. Numbers are `f64` (the report only carries small
/// integers); object keys keep their insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor from `&str` keys.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element slice, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Strict enough for round-tripping the lint's
/// own reports; errors carry a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => {
            let start = *pos;
            if bytes.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while matches!(
                bytes.get(*pos),
                Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| format!("bad number at byte {start}"))?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
        _ => Err(format!("unexpected byte at {}", *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit} at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "bad utf-8 in string".to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        let c = char::from_u32(code).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let doc = Json::object(vec![
            ("schema", Json::Str("treenet-lint/v1".to_string())),
            ("count", Json::Num(3.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![
                    Json::Str("a \"quoted\" str\nwith newline".to_string()),
                    Json::Num(-1.5),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_render_without_a_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
    }

    #[test]
    fn escapes_decode() {
        let back = parse(r#""tab\there A slash\/ quote\"""#).unwrap();
        assert_eq!(back.as_str(), Some("tab\there A slash/ quote\""));
    }

    #[test]
    fn errors_name_the_offset() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").unwrap_err().contains("trailing"));
    }
}

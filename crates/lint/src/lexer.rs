//! A small hand-rolled Rust token scanner — `syn` is not vendored, and
//! the lint rules only need identifiers, punctuation and literals with
//! accurate positions. The scanner is comment-, string-, raw-string- and
//! char-literal-aware (so a `HashMap` inside a doc comment or a string
//! literal never fires a rule) and distinguishes lifetimes from char
//! literals. Comments are not discarded: line comments are kept for the
//! suppression-directive layer.

/// One lexical token with its 1-based source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Lexical category.
    pub kind: TokenKind,
    /// The token's text. For string/char literals this is the raw slice
    /// including quotes; rules never need the decoded value.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// Lexical category of a [`Token`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers are stored without `r#`).
    Ident,
    /// `'a` — never confused with a char literal.
    Lifetime,
    /// `'x'`, `'\n'`, `'\u{1F600}'`.
    CharLit,
    /// `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`.
    StrLit,
    /// Integer or float literal, suffix included (`1_000u64`, `0.5f64`).
    Number,
    /// A single punctuation character (`:` `.` `(` …). Multi-character
    /// operators arrive as consecutive tokens; the rules match on runs.
    Punct,
}

/// A `//` comment, kept separately for the suppression layer.
#[derive(Clone, Debug, PartialEq)]
pub struct LineComment {
    /// Text after the leading `//` (doc-comment markers included).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Column of the first `/`.
    pub col: u32,
}

/// Lexer output: the token stream plus every line comment.
#[derive(Clone, Debug, Default)]
pub struct Scanned {
    /// Every code token, in source order.
    pub tokens: Vec<Token>,
    /// Every `//` line comment, in source order.
    pub comments: Vec<LineComment>,
}

impl Scanned {
    /// Whether any token sits on `line`.
    pub fn line_has_code(&self, line: u32) -> bool {
        self.tokens.iter().any(|t| t.line == line)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line/col. Multi-byte UTF-8
    /// continuation bytes do not advance the column, so columns count
    /// characters, matching rustc's diagnostics closely enough for
    /// clickable `file:line:col` output.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Scans `src` into tokens and line comments. The scanner never fails:
/// unterminated literals simply run to end-of-input (the real compiler
/// rejects such files long before the lint matters).
pub fn scan(src: &str) -> Scanned {
    let mut cur = Cursor::new(src);
    let mut out = Scanned::default();
    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos + 2;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                out.comments.push(LineComment { text, line, col });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                // Block comments nest in Rust.
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'r' | b'b' if starts_raw_or_byte_string(&cur) => {
                let start = cur.pos;
                scan_raw_or_byte_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::StrLit,
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                    col,
                });
            }
            b'"' => {
                let start = cur.pos;
                scan_quoted(&mut cur, b'"');
                out.tokens.push(Token {
                    kind: TokenKind::StrLit,
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                    col,
                });
            }
            b'\'' => {
                let start = cur.pos;
                let kind = scan_quote_or_lifetime(&mut cur);
                out.tokens.push(Token {
                    kind,
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                let mut start = cur.pos;
                // Raw identifier `r#ident`: store without the prefix.
                if b == b'r'
                    && cur.peek_at(1) == Some(b'#')
                    && cur.peek_at(2).is_some_and(is_ident_start)
                {
                    cur.bump();
                    cur.bump();
                    start = cur.pos;
                }
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                let start = cur.pos;
                scan_number(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Whether the cursor sits on `r"`, `r#`, `b"`, `b'`, `br"` or `br#` —
/// i.e. a raw string, byte string or byte char, not an identifier.
fn starts_raw_or_byte_string(cur: &Cursor<'_>) -> bool {
    match (cur.peek(), cur.peek_at(1), cur.peek_at(2)) {
        (Some(b'r'), Some(b'"'), _) => true,
        (Some(b'r'), Some(b'#'), Some(n)) => n == b'"' || n == b'#',
        (Some(b'b'), Some(b'"'), _) | (Some(b'b'), Some(b'\''), _) => true,
        (Some(b'b'), Some(b'r'), Some(b'"')) | (Some(b'b'), Some(b'r'), Some(b'#')) => true,
        _ => false,
    }
}

fn scan_raw_or_byte_string(cur: &mut Cursor<'_>) {
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    match cur.peek() {
        Some(b'\'') => {
            // Byte char `b'x'`.
            scan_quoted(cur, b'\'');
        }
        Some(b'"') => {
            // Cooked (byte) string.
            scan_quoted(cur, b'"');
        }
        Some(b'r') => {
            cur.bump();
            // Raw string: count `#`s, then run to `"` followed by that
            // many `#`s. No escapes inside.
            let mut hashes = 0usize;
            while cur.peek() == Some(b'#') {
                cur.bump();
                hashes += 1;
            }
            if cur.peek() == Some(b'"') {
                cur.bump();
                'body: while let Some(c) = cur.bump() {
                    if c == b'"' {
                        let mut seen = 0usize;
                        while seen < hashes {
                            if cur.peek() == Some(b'#') {
                                cur.bump();
                                seen += 1;
                            } else {
                                continue 'body;
                            }
                        }
                        break;
                    }
                }
            }
        }
        _ => {}
    }
}

/// Scans a cooked string or char literal body, honoring `\` escapes.
/// Assumes the cursor sits on the opening quote.
fn scan_quoted(cur: &mut Cursor<'_>, quote: u8) {
    cur.bump();
    while let Some(c) = cur.bump() {
        if c == b'\\' {
            cur.bump();
        } else if c == quote {
            break;
        }
    }
}

/// Disambiguates `'a` (lifetime) from `'a'` (char literal). The cursor
/// sits on the `'`. Rule: an identifier run after the quote that is NOT
/// followed by a closing `'` is a lifetime; everything else is a char
/// literal.
fn scan_quote_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    // Look ahead without consuming: `'` ident-run `'` → char literal.
    if cur.peek_at(1).is_some_and(is_ident_start) && cur.peek_at(1) != Some(b'\\') {
        let mut k = 2;
        while cur.peek_at(k).is_some_and(is_ident_continue) {
            k += 1;
        }
        if cur.peek_at(k) != Some(b'\'') {
            // Lifetime: consume `'` + the identifier run.
            cur.bump();
            for _ in 1..k {
                cur.bump();
            }
            return TokenKind::Lifetime;
        }
    }
    scan_quoted(cur, b'\'');
    TokenKind::CharLit
}

/// Consumes a numeric literal: digits, `_`, radix prefixes, a fractional
/// part (but not `..` ranges or method calls like `1.max(2)`), exponents
/// and type suffixes.
fn scan_number(cur: &mut Cursor<'_>) {
    cur.bump();
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == b'_' {
            // `1e5`/`2E-3` exponent signs.
            if (c == b'e' || c == b'E') && matches!(cur.peek_at(1), Some(b'+') | Some(b'-')) {
                cur.bump();
            }
            cur.bump();
        } else if c == b'.' && cur.peek_at(1).is_some_and(|n| n.is_ascii_digit()) {
            cur.bump();
        } else {
            break;
        }
    }
}

/// Parses the numeric value of an integer `Number` token (`1_000u64` →
/// 1000). Returns `None` for floats, radix-prefixed or overflowing
/// literals — the registry cross-check only needs small decimal widths.
pub fn int_value(text: &str) -> Option<u64> {
    let digits: String = text
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .filter(|c| c.is_ascii_digit())
        .collect();
    let rest = &text[text
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit() && *c != '_')
        .map(|(i, _)| i)
        .unwrap_or(text.len())..];
    // A `.` or radix letter right after the digits means float/hex/etc.
    if rest.starts_with('.')
        || rest.starts_with('x')
        || rest.starts_with('o')
        || rest.starts_with('b')
    {
        return None;
    }
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts_of(src: &str, kind: TokenKind) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == kind)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let s = scan("a /* x /* y */ still comment */ b");
        let idents: Vec<&str> = s.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn unterminated_block_comment_runs_to_eof() {
        let s = scan("a /* never closed\nmore");
        let idents: Vec<&str> = s.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, ["a"]);
    }

    #[test]
    fn line_comments_are_kept_for_the_suppression_layer() {
        let s = scan("let x = 1; // treenet-lint: allow(no-print, reason = \"t\")\ny");
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("treenet-lint:"));
        assert_eq!(s.comments[0].line, 1);
        // The comment ends at the newline; the next token is code again.
        assert!(s.tokens.iter().any(|t| t.text == "y" && t.line == 2));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let s = scan(r###"let s = r#"HashMap // "quoted" inside"#;"###);
        assert!(
            s.comments.is_empty(),
            "// inside a raw string is not a comment"
        );
        assert!(!s
            .tokens
            .iter()
            .any(|t| t.text.contains("HashMap") && t.kind == TokenKind::Ident));
        let lit = &texts_of(
            r###"let s = r#"HashMap // "quoted" inside"#;"###,
            TokenKind::StrLit,
        )[0];
        assert!(lit.starts_with("r#\"") && lit.ends_with("\"#"), "{lit}");
    }

    #[test]
    fn multi_hash_raw_strings_balance_their_guards() {
        let src = r####"let s = r##"ends with "# not here"##; after"####;
        let s = scan(src);
        assert!(
            s.tokens.iter().any(|t| t.text == "after"),
            "scanning resumed after the literal"
        );
        assert_eq!(texts_of(src, TokenKind::StrLit).len(), 1);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r##"let a = b"x"; let b = br#"y"#; let c = b'z';"##;
        assert_eq!(
            texts_of(src, TokenKind::StrLit),
            ["b\"x\"", "br#\"y\"#", "b'z'"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<&Token> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        let chars: Vec<&Token> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'a'");
    }

    #[test]
    fn escaped_char_literals() {
        let src = r"let c = '\n'; let q = '\''; let s = 'x';";
        assert_eq!(texts_of(src, TokenKind::CharLit), [r"'\n'", r"'\''", "'x'"]);
    }

    #[test]
    fn raw_identifiers_drop_the_prefix() {
        let s = scan("let r#type = 1;");
        assert!(s
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "type"));
    }

    #[test]
    fn positions_are_one_based_and_utf8_aware() {
        let s = scan("let α = 1;\n  x");
        // α is a 2-byte char but one column wide.
        let alpha = s.tokens.iter().find(|t| t.text == "α").unwrap();
        assert_eq!((alpha.line, alpha.col), (1, 5));
        let one = s.tokens.iter().find(|t| t.text == "1").unwrap();
        assert_eq!((one.line, one.col), (1, 9));
        let x = s.tokens.iter().find(|t| t.text == "x").unwrap();
        assert_eq!((x.line, x.col), (2, 3));
    }

    #[test]
    fn numbers_stop_before_method_calls_and_keep_suffixes() {
        let src = "let a = 1_000u64; let b = 0.5f64; let c = 1.max(2); let d = 2e-3;";
        assert_eq!(
            texts_of(src, TokenKind::Number),
            ["1_000u64", "0.5f64", "1", "2", "2e-3"]
        );
    }

    #[test]
    fn multi_char_operators_arrive_as_single_puncts() {
        let s = scan("a::b => c");
        let puncts: Vec<&str> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, [":", ":", "=", ">"]);
    }

    #[test]
    fn int_value_parses_decimal_only() {
        assert_eq!(int_value("42"), Some(42));
        assert_eq!(int_value("1_000u64"), Some(1000));
        assert_eq!(int_value("0x10"), None);
        assert_eq!(int_value("1.5"), None);
        assert_eq!(int_value("u64"), None);
    }
}

//! Inline suppression directives.
//!
//! Syntax (inside a `//` comment, doc comments excluded):
//!
//! ```text
//! // treenet-lint: allow(<rule>, reason = "why this occurrence is sound")
//! ```
//!
//! A directive on a line of its own applies to the **next** line that
//! carries code; a trailing directive applies to **its own** line. The
//! reason is mandatory: a directive without one still suppresses its
//! target (so the fix is always "write the reason", never "also fix the
//! finding you were suppressing") but raises a `bad-suppression`
//! finding of its own. Unknown rule names and malformed directives
//! raise `bad-suppression` and suppress nothing.

use crate::diag::Rule;
use crate::lexer::{LineComment, Scanned};

/// One parsed (or rejected) directive.
#[derive(Clone, Debug)]
pub struct Directive {
    /// Line the comment sits on.
    pub line: u32,
    /// Column of the comment's first `/`.
    pub col: u32,
    /// The rule this directive silences (`None` when rejected).
    pub rule: Option<Rule>,
    /// The declared reason, if present and non-empty.
    pub reason: Option<String>,
    /// Why the directive itself is a finding (`None` when well-formed).
    pub problem: Option<String>,
    /// The source line the suppression applies to.
    pub target_line: u32,
}

/// Extracts every directive from a file's comments. `scanned` provides
/// the token stream used to resolve each directive's target line.
pub fn directives(scanned: &Scanned) -> Vec<Directive> {
    scanned
        .comments
        .iter()
        .filter_map(|c| parse_comment(c, scanned))
        .collect()
}

const MARKER: &str = "treenet-lint:";

fn parse_comment(comment: &LineComment, scanned: &Scanned) -> Option<Directive> {
    // Doc comments (`/// …`, `//! …`) never carry directives — prose
    // about the lint must not accidentally suppress it.
    let body = comment.text.trim_start();
    if body.starts_with('/') || body.starts_with('!') {
        return None;
    }
    let rest = body.strip_prefix(MARKER)?.trim();
    let target_line = if scanned.line_has_code(comment.line) {
        comment.line
    } else {
        scanned
            .tokens
            .iter()
            .map(|t| t.line)
            .find(|&l| l > comment.line)
            .unwrap_or(comment.line)
    };
    let mut directive = Directive {
        line: comment.line,
        col: comment.col,
        rule: None,
        reason: None,
        problem: None,
        target_line,
    };
    let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.trim_end().strip_suffix(')'))
    else {
        directive.problem = Some(format!(
            "malformed directive `{MARKER} {rest}` — expected \
             `{MARKER} allow(<rule>, reason = \"…\")`"
        ));
        return Some(directive);
    };
    let (rule_name, reason_part) = match args.split_once(',') {
        Some((rule, rest)) => (rule.trim(), Some(rest.trim())),
        None => (args.trim(), None),
    };
    let Some(rule) = Rule::from_name(rule_name) else {
        directive.problem = Some(format!(
            "unknown rule `{rule_name}` in suppression (see --list-rules)"
        ));
        return Some(directive);
    };
    if !rule.suppressible() {
        directive.problem = Some(format!(
            "rule `{rule_name}` cannot be suppressed inline — it is a file- or \
             corpus-level check"
        ));
        return Some(directive);
    }
    directive.rule = Some(rule);
    match reason_part {
        Some(rest) => match parse_reason(rest) {
            Some(reason) if !reason.trim().is_empty() => {
                directive.reason = Some(reason);
            }
            _ => {
                directive.problem = Some(format!(
                    "suppression of `{rule_name}` is missing its reason — write \
                     `reason = \"…\"` (non-empty)"
                ));
            }
        },
        None => {
            directive.problem = Some(format!(
                "suppression of `{rule_name}` is missing its reason — write \
                 `allow({rule_name}, reason = \"…\")`"
            ));
        }
    }
    Some(directive)
}

/// Parses `reason = "…"`, returning the quoted text.
fn parse_reason(text: &str) -> Option<String> {
    let rest = text.strip_prefix("reason")?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.rfind('"')?;
    Some(rest[..end].to_string())
}

//! The corpus engine: file discovery, per-file rules, suppression
//! application, and the corpus-level rules (the protocol registry
//! cross-check, the unwrap ratchet and the doc-coverage ratchet).

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::diag::{Finding, Report, Rule, Suppressed};
use crate::protocol;
use crate::registry::Registry;
use crate::rules::{self, FileClass};

/// One source file handed to [`lint_sources`].
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Full file contents.
    pub source: String,
}

/// Engine options.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Restrict to these rules (`--only`); `None` runs everything.
    pub only: Option<BTreeSet<Rule>>,
    /// Path of the registry file, as reported in diagnostics.
    pub registry_rel: String,
}

impl Options {
    fn selected(&self, rule: Rule) -> bool {
        self.only.as_ref().is_none_or(|set| set.contains(&rule))
    }
}

/// Walks `crates/*/src` and `src/` under `root`, reads every `.rs`
/// file, and lints the corpus.
pub fn lint_tree(root: &Path, registry: &Registry, opts: &Options) -> Result<Report, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir)? {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut files)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, root, &mut files)?;
    }
    Ok(lint_sources(&files, registry, opts))
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("while walking {}: {e}", dir.display()))?;
        if entry.path().is_dir() {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let mut paths = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("while walking {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the root", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            out.push(SourceFile { rel, source });
        }
    }
    Ok(())
}

/// Lints an in-memory corpus — the testable core behind [`lint_tree`].
pub fn lint_sources(files: &[SourceFile], registry: &Registry, opts: &Options) -> Report {
    let mut report = Report::default();
    // crate name → (unwrap count, anchor file for ratchet findings).
    let mut unwraps: BTreeMap<String, (u64, String)> = BTreeMap::new();
    // crate name → (undocumented-pub count, anchor file).
    let mut undocumented: BTreeMap<String, (u64, String)> = BTreeMap::new();
    // Files declaring `enum DistMsg`.
    let mut msg_models = Vec::new();

    for file in files {
        let Some(class) = rules::classify(&file.rel) else {
            continue;
        };
        report.files_scanned += 1;
        let analysis = rules::analyze(&class, &file.source);
        apply_suppressions(&class, &analysis, opts, &mut report);

        for (counts, n) in [
            (&mut unwraps, analysis.unwrap_count),
            (&mut undocumented, analysis.undocumented_pub),
        ] {
            let entry = counts
                .entry(class.crate_name.clone())
                .or_insert_with(|| (0, anchor_for(&class)));
            entry.0 += n;
            if class.is_crate_root {
                entry.1 = anchor_for(&class);
            }
        }

        if opts.selected(Rule::ProtocolRegistry) {
            if let Some(model) = protocol::extract(&analysis.scanned) {
                msg_models.push((file.rel.clone(), model));
            }
        }
    }

    if opts.selected(Rule::ProtocolRegistry) {
        protocol_rule(&msg_models, registry, opts, &mut report);
    }
    if opts.selected(Rule::UnwrapRatchet) {
        ratchet_rule(
            &unwraps,
            &registry.unwrap_budget,
            UNWRAP_RATCHET,
            opts,
            &mut report,
        );
    }
    if opts.selected(Rule::DocCoverage) {
        ratchet_rule(
            &undocumented,
            &registry.doc_budget,
            DOC_RATCHET,
            opts,
            &mut report,
        );
    }

    report.sort();
    report
}

fn anchor_for(class: &FileClass) -> String {
    class.rel.clone()
}

/// Applies the file's directives to its findings, moving silenced ones
/// into the suppressed list and raising `bad-suppression` where the
/// directives themselves are defective.
fn apply_suppressions(
    class: &FileClass,
    analysis: &rules::FileAnalysis,
    opts: &Options,
    report: &mut Report,
) {
    for directive in &analysis.directives {
        if let Some(problem) = &directive.problem {
            if opts.selected(Rule::BadSuppression) {
                report.findings.push(Finding {
                    rule: Rule::BadSuppression,
                    file: class.rel.clone(),
                    line: directive.line,
                    col: directive.col,
                    message: problem.clone(),
                });
            }
        }
    }
    'findings: for finding in &analysis.findings {
        if !opts.selected(finding.rule) {
            continue;
        }
        for directive in &analysis.directives {
            // A reason-less directive still targets its rule (its
            // defect is reported separately above); unknown-rule and
            // malformed directives have `rule: None` and target
            // nothing.
            if directive.rule == Some(finding.rule) && directive.target_line == finding.line {
                report.suppressed.push(Suppressed {
                    rule: finding.rule,
                    file: finding.file.clone(),
                    line: finding.line,
                    reason: directive.reason.clone().unwrap_or_default(),
                });
                continue 'findings;
            }
        }
        report.findings.push(finding.clone());
    }
}

fn protocol_rule(
    models: &[(String, protocol::MsgModel)],
    registry: &Registry,
    opts: &Options,
    report: &mut Report,
) {
    match models {
        [] => {
            if !registry.messages.is_empty() {
                report.findings.push(Finding {
                    rule: Rule::ProtocolRegistry,
                    file: opts.registry_rel.clone(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "registry declares {} message(s) but no scanned file defines \
                         `enum {}`",
                        registry.messages.len(),
                        protocol::ENUM_NAME
                    ),
                });
            }
        }
        [(file, model)] => {
            report.findings.extend(protocol::cross_check(
                model,
                registry,
                file,
                &opts.registry_rel,
            ));
        }
        many => {
            for (file, _) in many {
                report.findings.push(Finding {
                    rule: Rule::ProtocolRegistry,
                    file: file.clone(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "`enum {}` is defined in {} scanned files — the registry \
                         cross-check needs exactly one",
                        protocol::ENUM_NAME,
                        many.len()
                    ),
                });
            }
        }
    }
}

/// The wording slots that distinguish one ratchet family from another;
/// the equal-or-fail mechanics in [`ratchet_rule`] are shared.
struct RatchetSpec {
    rule: Rule,
    /// Budget noun, e.g. `unwrap` — names the table in messages.
    noun: &'static str,
    /// Registry section, e.g. `budget.unwrap`.
    section: &'static str,
    /// What is being counted, e.g. `unwrap()/expect() calls`.
    what: &'static str,
    /// How to fix an over-budget count.
    advice: &'static str,
}

const UNWRAP_RATCHET: RatchetSpec = RatchetSpec {
    rule: Rule::UnwrapRatchet,
    noun: "unwrap",
    section: "budget.unwrap",
    what: "unwrap()/expect() calls",
    advice: "handle the error instead",
};

const DOC_RATCHET: RatchetSpec = RatchetSpec {
    rule: Rule::DocCoverage,
    noun: "doc",
    section: "budget.doc",
    what: "undocumented public items",
    advice: "add doc comments",
};

fn ratchet_rule(
    counts: &BTreeMap<String, (u64, String)>,
    budgets: &BTreeMap<String, (u64, u32)>,
    spec: RatchetSpec,
    opts: &Options,
    report: &mut Report,
) {
    for (crate_name, &(count, ref anchor)) in counts {
        match budgets.get(crate_name) {
            None => report.findings.push(Finding {
                rule: spec.rule,
                file: anchor.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{crate_name}` has no {} budget in {} — add \
                     `{crate_name} = {count}` under [{}]",
                    spec.noun, opts.registry_rel, spec.section
                ),
            }),
            Some(&(budget, line)) if count > budget => report.findings.push(Finding {
                rule: spec.rule,
                file: anchor.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{crate_name}` has {count} {} in non-test \
                     library code, over the ratcheted budget of {budget} \
                     ({}:{line}) — {}",
                    spec.what, opts.registry_rel, spec.advice
                ),
            }),
            Some(&(budget, line)) if count < budget => report.findings.push(Finding {
                rule: spec.rule,
                file: opts.registry_rel.clone(),
                line,
                col: 1,
                message: format!(
                    "crate `{crate_name}` is down to {count} {} — \
                     ratchet the budget in {} down from {budget} so it cannot creep back",
                    spec.what, opts.registry_rel
                ),
            }),
            Some(_) => {}
        }
    }
    // Budgets for crates that no longer exist go stale silently
    // otherwise.
    for (crate_name, &(_, line)) in budgets {
        if !counts.contains_key(crate_name) {
            report.findings.push(Finding {
                rule: spec.rule,
                file: opts.registry_rel.clone(),
                line,
                col: 1,
                message: format!(
                    "{} budget for `{crate_name}` matches no scanned crate — remove \
                     the stale entry",
                    spec.noun
                ),
            });
        }
    }
}

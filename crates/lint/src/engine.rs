//! The corpus engine: file discovery, per-file rules, suppression
//! application, and the two corpus-level rules (the protocol registry
//! cross-check and the unwrap ratchet).

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::diag::{Finding, Report, Rule, Suppressed};
use crate::protocol;
use crate::registry::Registry;
use crate::rules::{self, FileClass};

/// One source file handed to [`lint_sources`].
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    pub source: String,
}

/// Engine options.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Restrict to these rules (`--only`); `None` runs everything.
    pub only: Option<BTreeSet<Rule>>,
    /// Path of the registry file, as reported in diagnostics.
    pub registry_rel: String,
}

impl Options {
    fn selected(&self, rule: Rule) -> bool {
        self.only.as_ref().is_none_or(|set| set.contains(&rule))
    }
}

/// Walks `crates/*/src` and `src/` under `root`, reads every `.rs`
/// file, and lints the corpus.
pub fn lint_tree(root: &Path, registry: &Registry, opts: &Options) -> Result<Report, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir)? {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut files)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, root, &mut files)?;
    }
    Ok(lint_sources(&files, registry, opts))
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("while walking {}: {e}", dir.display()))?;
        if entry.path().is_dir() {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let mut paths = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("while walking {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the root", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            out.push(SourceFile { rel, source });
        }
    }
    Ok(())
}

/// Lints an in-memory corpus — the testable core behind [`lint_tree`].
pub fn lint_sources(files: &[SourceFile], registry: &Registry, opts: &Options) -> Report {
    let mut report = Report::default();
    // crate name → (unwrap count, anchor file for ratchet findings).
    let mut unwraps: BTreeMap<String, (u64, String)> = BTreeMap::new();
    // Files declaring `enum DistMsg`.
    let mut msg_models = Vec::new();

    for file in files {
        let Some(class) = rules::classify(&file.rel) else {
            continue;
        };
        report.files_scanned += 1;
        let analysis = rules::analyze(&class, &file.source);
        apply_suppressions(&class, &analysis, opts, &mut report);

        let entry = unwraps
            .entry(class.crate_name.clone())
            .or_insert_with(|| (0, anchor_for(&class)));
        entry.0 += analysis.unwrap_count;
        if class.is_crate_root {
            entry.1 = anchor_for(&class);
        }

        if opts.selected(Rule::ProtocolRegistry) {
            if let Some(model) = protocol::extract(&analysis.scanned) {
                msg_models.push((file.rel.clone(), model));
            }
        }
    }

    if opts.selected(Rule::ProtocolRegistry) {
        protocol_rule(&msg_models, registry, opts, &mut report);
    }
    if opts.selected(Rule::UnwrapRatchet) {
        ratchet_rule(&unwraps, registry, opts, &mut report);
    }

    report.sort();
    report
}

fn anchor_for(class: &FileClass) -> String {
    class.rel.clone()
}

/// Applies the file's directives to its findings, moving silenced ones
/// into the suppressed list and raising `bad-suppression` where the
/// directives themselves are defective.
fn apply_suppressions(
    class: &FileClass,
    analysis: &rules::FileAnalysis,
    opts: &Options,
    report: &mut Report,
) {
    for directive in &analysis.directives {
        if let Some(problem) = &directive.problem {
            if opts.selected(Rule::BadSuppression) {
                report.findings.push(Finding {
                    rule: Rule::BadSuppression,
                    file: class.rel.clone(),
                    line: directive.line,
                    col: directive.col,
                    message: problem.clone(),
                });
            }
        }
    }
    'findings: for finding in &analysis.findings {
        if !opts.selected(finding.rule) {
            continue;
        }
        for directive in &analysis.directives {
            // A reason-less directive still targets its rule (its
            // defect is reported separately above); unknown-rule and
            // malformed directives have `rule: None` and target
            // nothing.
            if directive.rule == Some(finding.rule) && directive.target_line == finding.line {
                report.suppressed.push(Suppressed {
                    rule: finding.rule,
                    file: finding.file.clone(),
                    line: finding.line,
                    reason: directive.reason.clone().unwrap_or_default(),
                });
                continue 'findings;
            }
        }
        report.findings.push(finding.clone());
    }
}

fn protocol_rule(
    models: &[(String, protocol::MsgModel)],
    registry: &Registry,
    opts: &Options,
    report: &mut Report,
) {
    match models {
        [] => {
            if !registry.messages.is_empty() {
                report.findings.push(Finding {
                    rule: Rule::ProtocolRegistry,
                    file: opts.registry_rel.clone(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "registry declares {} message(s) but no scanned file defines \
                         `enum {}`",
                        registry.messages.len(),
                        protocol::ENUM_NAME
                    ),
                });
            }
        }
        [(file, model)] => {
            report.findings.extend(protocol::cross_check(
                model,
                registry,
                file,
                &opts.registry_rel,
            ));
        }
        many => {
            for (file, _) in many {
                report.findings.push(Finding {
                    rule: Rule::ProtocolRegistry,
                    file: file.clone(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "`enum {}` is defined in {} scanned files — the registry \
                         cross-check needs exactly one",
                        protocol::ENUM_NAME,
                        many.len()
                    ),
                });
            }
        }
    }
}

fn ratchet_rule(
    unwraps: &BTreeMap<String, (u64, String)>,
    registry: &Registry,
    opts: &Options,
    report: &mut Report,
) {
    for (crate_name, &(count, ref anchor)) in unwraps {
        match registry.unwrap_budget.get(crate_name) {
            None => report.findings.push(Finding {
                rule: Rule::UnwrapRatchet,
                file: anchor.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{crate_name}` has no unwrap budget in {} — add \
                     `{crate_name} = {count}` under [budget.unwrap]",
                    opts.registry_rel
                ),
            }),
            Some(&(budget, line)) if count > budget => report.findings.push(Finding {
                rule: Rule::UnwrapRatchet,
                file: anchor.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{crate_name}` has {count} unwrap()/expect() calls in non-test \
                     library code, over the ratcheted budget of {budget} \
                     ({}:{line}) — handle the error instead",
                    opts.registry_rel
                ),
            }),
            Some(&(budget, line)) if count < budget => report.findings.push(Finding {
                rule: Rule::UnwrapRatchet,
                file: opts.registry_rel.clone(),
                line,
                col: 1,
                message: format!(
                    "crate `{crate_name}` is down to {count} unwrap()/expect() calls — \
                     ratchet the budget in {} down from {budget} so it cannot creep back",
                    opts.registry_rel
                ),
            }),
            Some(_) => {}
        }
    }
    // Budgets for crates that no longer exist go stale silently
    // otherwise.
    for (crate_name, &(_, line)) in &registry.unwrap_budget {
        if !unwraps.contains_key(crate_name) {
            report.findings.push(Finding {
                rule: Rule::UnwrapRatchet,
                file: opts.registry_rel.clone(),
                line,
                col: 1,
                message: format!(
                    "unwrap budget for `{crate_name}` matches no scanned crate — remove \
                     the stale entry"
                ),
            });
        }
    }
}

//! Per-file rules: file classification, `#[cfg(test)]` region
//! detection, the determinism family and the policy family.
//!
//! Everything here is token-sequence matching over [`crate::lexer`]
//! output — deliberately heuristic (no type information), tuned to the
//! idioms this workspace actually uses. The taint pass that feeds
//! `hash-iter` tracks bindings whose declared type or initializer names
//! a hash container *within the same file*; a map smuggled across a
//! file boundary under a type alias is out of scope (and `hash-state`
//! catches the import that would make one possible).

use std::collections::BTreeSet;

use crate::diag::{Finding, Rule};
use crate::lexer::{scan, Scanned, Token, TokenKind};
use crate::suppress::{self, Directive};

/// The crates whose sources must be replay-deterministic: every value
/// they compute feeds bit-identical schedules, duals and λ.
pub const PROTOCOL_CRATES: [&str; 5] = ["dist", "netsim", "core", "mis", "decomp"];

/// How a scanned file participates in the rule families.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileClass {
    /// Package name, e.g. `treenet-dist` (`treenet` for the umbrella
    /// crate's `src/`).
    pub crate_name: String,
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Whether the determinism family applies.
    pub is_protocol: bool,
    /// Binary / bench-harness code: exempt from `no-print` and the
    /// unwrap ratchet.
    pub output_exempt: bool,
    /// A library crate root (`lib.rs`) — must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// Classifies a workspace-relative `.rs` path, or `None` when the file
/// is outside the lint's scope (`crates/*/src/**` and `src/**`).
pub fn classify(rel: &str) -> Option<FileClass> {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_dir, under_src): (&str, &[&str]) = match parts.as_slice() {
        ["crates", crate_dir, "src", rest @ ..] if !rest.is_empty() => (crate_dir, rest),
        ["src", rest @ ..] if !rest.is_empty() => ("", rest),
        _ => return None,
    };
    let crate_name = if crate_dir.is_empty() {
        "treenet".to_string()
    } else {
        format!("treenet-{crate_dir}")
    };
    let is_protocol = PROTOCOL_CRATES.contains(&crate_dir);
    let output_exempt =
        under_src.contains(&"bin") || under_src.last() == Some(&"main.rs") || crate_dir == "bench";
    let is_crate_root = under_src == ["lib.rs"];
    Some(FileClass {
        crate_name,
        rel: rel.to_string(),
        is_protocol,
        output_exempt,
        is_crate_root,
    })
}

/// Everything the engine needs from one file pass.
pub struct FileAnalysis {
    /// Raw findings, before suppression.
    pub findings: Vec<Finding>,
    /// Suppression directives found in the file.
    pub directives: Vec<Directive>,
    /// `unwrap()`/`expect()` calls in non-test code (0 for
    /// output-exempt files — bins may unwrap freely).
    pub unwrap_count: u64,
    /// Public items without a doc comment in non-test code (0 for
    /// output-exempt files — bins have no API surface).
    pub undocumented_pub: u64,
    /// The token stream, reused by the protocol cross-check.
    pub scanned: Scanned,
}

/// Runs every per-file rule over one source file.
pub fn analyze(class: &FileClass, src: &str) -> FileAnalysis {
    let scanned = scan(src);
    let test_regions = test_regions(&scanned.tokens);
    let in_test = |line: u32| {
        test_regions
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    };
    let mut findings = Vec::new();

    if class.is_protocol {
        determinism_rules(class, &scanned.tokens, &in_test, &mut findings);
    }
    if !class.output_exempt {
        no_print_rule(class, &scanned.tokens, &in_test, &mut findings);
    }
    if class.is_crate_root {
        forbid_unsafe_rule(class, &scanned.tokens, &mut findings);
    }

    let (unwrap_count, undocumented_pub) = if class.output_exempt {
        (0, 0)
    } else {
        (
            unwrap_count(&scanned.tokens, &in_test),
            undocumented_pub_count(&scanned, &in_test),
        )
    };
    let directives = suppress::directives(&scanned);

    // One finding per (rule, line): path rules often hit the same
    // construct twice (`std::time::Instant::now()` is both a
    // `std::time` path and an `Instant::now` call).
    findings.sort_by_key(|f| (f.rule, f.line, f.col));
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);

    FileAnalysis {
        findings,
        directives,
        unwrap_count,
        undocumented_pub,
        scanned,
    }
}

fn ident(t: &Token, name: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == name
}

fn is_ident_any(t: &Token) -> bool {
    t.kind == TokenKind::Ident
}

fn punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

/// `#[cfg(test)] mod …` and `#[test] fn …` brace regions, as inclusive
/// line ranges. Dynamic checks already cover test code; the lint's
/// determinism and policy rules only guard shipped library paths.
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_cfg_test = tokens.len() > i + 6
            && punct(&tokens[i], "#")
            && punct(&tokens[i + 1], "[")
            && ident(&tokens[i + 2], "cfg")
            && punct(&tokens[i + 3], "(")
            && ident(&tokens[i + 4], "test")
            && punct(&tokens[i + 5], ")")
            && punct(&tokens[i + 6], "]");
        let is_test_attr = tokens.len() > i + 3
            && punct(&tokens[i], "#")
            && punct(&tokens[i + 1], "[")
            && ident(&tokens[i + 2], "test")
            && punct(&tokens[i + 3], "]");
        if !(is_cfg_test || is_test_attr) {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + if is_cfg_test { 7 } else { 4 };
        // Find the body the attribute gates. A `;` before any `{`
        // means it gated an item without a body (`#[cfg(test)] use …`).
        while j < tokens.len() && !punct(&tokens[j], "{") && !punct(&tokens[j], ";") {
            j += 1;
        }
        if j >= tokens.len() || punct(&tokens[j], ";") {
            i = j;
            continue;
        }
        let mut depth = 0i32;
        let mut end_line = tokens[j].line;
        while j < tokens.len() {
            if punct(&tokens[j], "{") {
                depth += 1;
            } else if punct(&tokens[j], "}") {
                depth -= 1;
                if depth == 0 {
                    end_line = tokens[j].line;
                    break;
                }
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

/// Counts `.unwrap()` / `.expect(` outside test regions.
fn unwrap_count(tokens: &[Token], in_test: &dyn Fn(u32) -> bool) -> u64 {
    tokens
        .windows(3)
        .filter(|w| {
            punct(&w[0], ".")
                && (ident(&w[1], "unwrap") || ident(&w[1], "expect"))
                && punct(&w[2], "(")
                && !in_test(w[1].line)
        })
        .count() as u64
}

/// Item keywords that can follow a `pub` visibility (the qualifier
/// keywords `async`/`unsafe`/`const`/`extern` all lead to an item too).
const ITEM_KEYWORDS: [&str; 12] = [
    "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union", "async", "unsafe",
    "extern",
];

/// `macro_rules! name { … }` brace regions, as inclusive line ranges.
/// Tokens inside are patterns and expansion templates — a literal `pub`
/// there is not an item of this file.
fn macro_rules_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if !(ident(&tokens[i], "macro_rules") && punct(&tokens[i + 1], "!")) {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + 2;
        while j < tokens.len() && !punct(&tokens[j], "{") {
            j += 1;
        }
        let mut depth = 0i32;
        let mut end_line = start_line;
        while j < tokens.len() {
            if punct(&tokens[j], "{") {
                depth += 1;
            } else if punct(&tokens[j], "}") {
                depth -= 1;
                if depth == 0 {
                    end_line = tokens[j].line;
                    break;
                }
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

/// Whether the `pub` at `pub_idx` carries a doc comment: a `///` line
/// (or a `#[doc…]`/`#[cfg_attr(…, doc…)]` attribute) between the
/// previous item's last token and the `pub`, with any attribute chain
/// in between walked over.
fn has_doc(tokens: &[Token], pub_idx: usize, doc_lines: &BTreeSet<u32>) -> bool {
    let mut p = pub_idx as isize - 1;
    while p >= 0 && punct(&tokens[p as usize], "]") {
        // Walk back over one `#[…]` attribute to its opening bracket.
        let mut depth = 0i32;
        let mut q = p;
        while q >= 0 {
            if punct(&tokens[q as usize], "]") {
                depth += 1;
            } else if punct(&tokens[q as usize], "[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            q -= 1;
        }
        if q < 0 {
            break;
        }
        if tokens[q as usize..=p as usize]
            .iter()
            .any(|t| ident(t, "doc"))
        {
            return true;
        }
        if q >= 1 && punct(&tokens[q as usize - 1], "#") {
            p = q - 2;
        } else {
            // Not an attribute (an array/index expression) — the `]`
            // itself is the previous item's last token.
            break;
        }
    }
    let pub_line = tokens[pub_idx].line;
    let lower = if p >= 0 { tokens[p as usize].line } else { 0 };
    doc_lines.iter().any(|&l| l > lower && l < pub_line)
}

/// Counts public items without a doc comment, outside test and
/// `macro_rules!` regions.
///
/// A public item is a `pub` visibility (not `pub(crate)`/`pub(super)`,
/// which is not public API, and not `pub use`, whose target carries the
/// docs) followed by an item keyword or a struct-field `name: Type`
/// ascription. A doc comment is a `///` line kept by the lexer
/// ([`crate::lexer::LineComment`] text starting with `/`); `/** … */`
/// block docs are not recognized — this workspace does not use them.
fn undocumented_pub_count(scanned: &Scanned, in_test: &dyn Fn(u32) -> bool) -> u64 {
    let doc_lines: BTreeSet<u32> = scanned
        .comments
        .iter()
        .filter(|c| c.text.starts_with('/'))
        .map(|c| c.line)
        .collect();
    let tokens = &scanned.tokens;
    let macro_regions = macro_rules_regions(tokens);
    let in_macro = |line: u32| {
        macro_regions
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    };
    let mut count = 0u64;
    for i in 0..tokens.len() {
        if !ident(&tokens[i], "pub") || in_test(tokens[i].line) || in_macro(tokens[i].line) {
            continue;
        }
        let Some(next) = tokens.get(i + 1) else {
            continue;
        };
        if punct(next, "(") || ident(next, "use") {
            continue;
        }
        let is_item = next.kind == TokenKind::Ident && ITEM_KEYWORDS.contains(&next.text.as_str());
        // `pub name: Type` (a field) — but not `pub name::…` (a path).
        let is_field = is_ident_any(next)
            && tokens.get(i + 2).is_some_and(|t| punct(t, ":"))
            && !tokens.get(i + 3).is_some_and(|t| punct(t, ":"));
        if (is_item || is_field) && !has_doc(tokens, i, &doc_lines) {
            count += 1;
        }
    }
    count
}

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn determinism_rules(
    class: &FileClass,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    let tainted = hash_tainted_names(tokens);
    let mut push = |rule: Rule, t: &Token, message: String| {
        if !in_test(t.line) {
            findings.push(Finding {
                rule,
                file: class.rel.clone(),
                line: t.line,
                col: t.col,
                message,
            });
        }
    };

    let mut in_use = false;
    for (i, t) in tokens.iter().enumerate() {
        if ident(t, "use") {
            in_use = true;
        } else if punct(t, ";") {
            in_use = false;
        }

        // hash-state: imports and fully-qualified paths of hash
        // containers anywhere in a protocol crate.
        if is_ident_any(t) && HASH_TYPES.contains(&t.text.as_str()) {
            let qualified = i >= 3
                && punct(&tokens[i - 1], ":")
                && punct(&tokens[i - 2], ":")
                && ident(&tokens[i - 3], "collections");
            // Heuristic: inside a `use …;` item, or spelled through
            // `std::collections::`. Bare `HashMap<…>` type positions are
            // covered transitively — they are unusable without one of
            // the two.
            if in_use || qualified {
                push(
                    Rule::HashState,
                    t,
                    format!(
                        "`{}` in protocol crate `{}`: iteration order depends on hasher \
                         state; use BTreeMap/BTreeSet or an index-keyed Vec (or suppress \
                         with a reason proving keyed-only access)",
                        t.text, class.crate_name
                    ),
                );
            }
        }

        // hash-iter: ordered operations on a tainted binding.
        if is_ident_any(t)
            && tainted.contains(t.text.as_str())
            && i + 3 < tokens.len()
            && punct(&tokens[i + 1], ".")
            && is_ident_any(&tokens[i + 2])
            && ITER_METHODS.contains(&tokens[i + 2].text.as_str())
            && punct(&tokens[i + 3], "(")
        {
            push(
                Rule::HashIter,
                &tokens[i + 2],
                format!(
                    "`.{}()` on hash container `{}`: iteration order is \
                     hasher-dependent and breaks replay determinism",
                    tokens[i + 2].text,
                    t.text
                ),
            );
        }

        // hash-iter: `for … in [&][mut][self.]<tainted> {`.
        if ident(t, "in") {
            let mut j = i + 1;
            while j < tokens.len()
                && (punct(&tokens[j], "&")
                    || punct(&tokens[j], ".")
                    || ident(&tokens[j], "mut")
                    || ident(&tokens[j], "self"))
            {
                j += 1;
            }
            if j + 1 < tokens.len()
                && is_ident_any(&tokens[j])
                && tainted.contains(tokens[j].text.as_str())
                && punct(&tokens[j + 1], "{")
            {
                push(
                    Rule::HashIter,
                    &tokens[j],
                    format!(
                        "`for … in` over hash container `{}`: iteration order is \
                         hasher-dependent and breaks replay determinism",
                        tokens[j].text
                    ),
                );
            }
        }

        // wall-clock: std::time, Instant::now, SystemTime.
        if path2(tokens, i, "std", "time") {
            push(
                Rule::WallClock,
                t,
                "`std::time` in a protocol crate: wall-clock reads break replay \
                 determinism (timing belongs in treenet-bench)"
                    .to_string(),
            );
        }
        if path2(tokens, i, "Instant", "now") || ident(t, "SystemTime") {
            push(
                Rule::WallClock,
                t,
                format!(
                    "`{}` in a protocol crate: wall-clock reads break replay determinism",
                    t.text
                ),
            );
        }

        // ambient-rng.
        if ident(t, "thread_rng") || ident(t, "from_entropy") || ident(t, "OsRng") {
            push(
                Rule::AmbientRng,
                t,
                format!(
                    "`{}` in a protocol crate: all randomness must derive from the seeded \
                     config RNG so runs replay bit-identically",
                    t.text
                ),
            );
        }

        // env-read.
        if path2(tokens, i, "std", "env") {
            push(
                Rule::EnvRead,
                t,
                "`std::env` in a protocol crate: environment reads make behavior \
                 host-dependent"
                    .to_string(),
            );
        }
    }
}

/// Whether tokens at `i` spell `a::b`.
fn path2(tokens: &[Token], i: usize, a: &str, b: &str) -> bool {
    i + 3 < tokens.len()
        && ident(&tokens[i], a)
        && punct(&tokens[i + 1], ":")
        && punct(&tokens[i + 2], ":")
        && ident(&tokens[i + 3], b)
}

/// Names bound to `HashMap`/`HashSet` in this file, via a type
/// ascription (`name: [&][mut][std::collections::]HashMap<…>` — struct
/// fields, lets, fn params alike) or an initializer
/// (`name = HashMap::new()`).
fn hash_tainted_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut tainted = BTreeSet::new();
    for i in 0..tokens.len() {
        if !is_ident_any(&tokens[i]) {
            continue;
        }
        // `name :` but not `name ::`.
        let ascription =
            i + 2 < tokens.len() && punct(&tokens[i + 1], ":") && !punct(&tokens[i + 2], ":");
        if ascription {
            let mut j = i + 2;
            while j < tokens.len()
                && (punct(&tokens[j], "&")
                    || punct(&tokens[j], ":")
                    || ident(&tokens[j], "mut")
                    || ident(&tokens[j], "std")
                    || ident(&tokens[j], "collections"))
            {
                j += 1;
            }
            if j < tokens.len() && HASH_TYPES.contains(&tokens[j].text.as_str()) {
                tainted.insert(tokens[i].text.clone());
            }
        }
        if i + 2 < tokens.len()
            && punct(&tokens[i + 1], "=")
            && HASH_TYPES.contains(&tokens[i + 2].text.as_str())
        {
            tainted.insert(tokens[i].text.clone());
        }
    }
    tainted
}

const PRINT_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];

fn no_print_rule(
    class: &FileClass,
    tokens: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    for w in tokens.windows(2) {
        if is_ident_any(&w[0])
            && PRINT_MACROS.contains(&w[0].text.as_str())
            && punct(&w[1], "!")
            && !in_test(w[0].line)
        {
            findings.push(Finding {
                rule: Rule::NoPrint,
                file: class.rel.clone(),
                line: w[0].line,
                col: w[0].col,
                message: format!(
                    "`{}!` in library code of `{}`: return data or use the bench \
                     reporting layer (bin/test/bench paths are exempt)",
                    w[0].text, class.crate_name
                ),
            });
        }
    }
}

fn forbid_unsafe_rule(class: &FileClass, tokens: &[Token], findings: &mut Vec<Finding>) {
    let has_attr = tokens.windows(8).any(|w| {
        punct(&w[0], "#")
            && punct(&w[1], "!")
            && punct(&w[2], "[")
            && ident(&w[3], "forbid")
            && punct(&w[4], "(")
            && ident(&w[5], "unsafe_code")
            && punct(&w[6], ")")
            && punct(&w[7], "]")
    });
    if !has_attr {
        findings.push(Finding {
            rule: Rule::ForbidUnsafe,
            file: class.rel.clone(),
            line: 1,
            col: 1,
            message: format!(
                "library crate root of `{}` is missing `#![forbid(unsafe_code)]`",
                class.crate_name
            ),
        });
    }
}

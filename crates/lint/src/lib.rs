//! `treenet-lint` — a repo-native static-analysis pass for determinism
//! and protocol-bit invariants.
//!
//! Every guarantee the workspace ships — bit-identical schedules and λ
//! at any thread count, loss rate, ARQ window and sweep cadence, plus
//! the paper's `O(M)`-bit message bound — is enforced dynamically by
//! proptests and CI byte-diffs. This crate enforces the *source-level*
//! invariants behind those guarantees, so a hazard is rejected at lint
//! time instead of waiting for the right seed to expose it:
//!
//! * **determinism** — no iteration-order-dependent constructs
//!   (`HashMap`/`HashSet` iteration), no wall-clock reads, no ambient
//!   randomness and no environment reads inside the protocol crates
//!   (`dist`, `netsim`, `core`, `mis`, `decomp`);
//! * **protocol bit-accounting** — the `DistMsg` enum and its
//!   `MessageSize::size_bits`/`traffic_class` impls are cross-checked
//!   against the committed registry
//!   (`crates/lint/protocol_registry.toml`): every variant has a
//!   declared bit width and traffic class, the match arms are
//!   exhaustive (no wildcard), and adding a message without updating
//!   the registry fails the build;
//! * **policy** — every library crate root carries
//!   `#![forbid(unsafe_code)]`, no `println!`-family output in library
//!   code, and two per-crate ratcheted counts stored in the registry so
//!   the numbers can only go down: the `unwrap()`/`expect()` budget
//!   (`[budget.unwrap]`) and the undocumented-public-item budget
//!   (`[budget.doc]`, the `doc-coverage` rule).
//!
//! The analysis is a hand-rolled token scanner ([`lexer`]) — `syn` is
//! not vendored and the rules only need identifiers, punctuation and
//! literals with accurate positions — plus a rule engine ([`engine`])
//! that walks every `crates/*/src` and `src/` file. Findings are
//! rustc-style `file:line:col` diagnostics with a machine-readable
//! `--json` report; inline suppression uses
//! `// treenet-lint: allow(<rule>, reason = "...")`, where a missing
//! reason is itself an error.
//!
//! The registry module is also consumed by `treenet-bench`'s
//! `exp_f_dist_budget` gate, so the static bit table and the runtime
//! `O(M)`-bound check can never drift apart.

#![forbid(unsafe_code)]

/// Rule identities, findings and report rendering.
pub mod diag;
/// Corpus walk, suppression application and corpus-level rules.
pub mod engine;
/// Minimal JSON tree used by the report round-trip.
pub mod json;
/// The hand-rolled Rust token scanner.
pub mod lexer;
/// `DistMsg` ↔ registry cross-check.
pub mod protocol;
/// The committed registry and its TOML-subset parser.
pub mod registry;
/// Per-file rules and file classification.
pub mod rules;
/// Inline `allow(...)` suppression directives.
pub mod suppress;

pub use diag::{Finding, Report, Rule, Suppressed};
pub use engine::{lint_sources, lint_tree, Options, SourceFile};
pub use registry::Registry;

/// Workspace-relative path of the protocol registry — the single
/// committed source of truth for message bit widths, traffic classes
/// and the per-crate unwrap budgets.
pub const REGISTRY_REL_PATH: &str = "crates/lint/protocol_registry.toml";

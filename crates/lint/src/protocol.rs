//! The protocol bit-accounting cross-check.
//!
//! Parses the `DistMsg` enum and its `MessageSize` impl out of the
//! token stream and verifies them against the committed registry:
//!
//! * every enum variant has a `[message.<Variant>]` entry, and every
//!   entry has a variant (adding a message without updating the
//!   registry — or leaving a stale entry behind — fails the build);
//! * the `size_bits` arm of each variant matches the declared width
//!   (a fixed integer literal, or a call to the declared dynamic
//!   sizing function);
//! * the `traffic_class` arm matches the declared class (a fixed
//!   integer, or the `1 + run.index()` sub-run form declared as
//!   `"run"`);
//! * both matches are exhaustive **without a wildcard arm** — a `_ =>`
//!   would let a new variant slip past rustc's exhaustiveness check
//!   and therefore past the registry.

use std::collections::BTreeMap;

use crate::diag::{Finding, Rule};
use crate::lexer::{int_value, Scanned, Token, TokenKind};
use crate::registry::{BitSpec, ClassSpec, Registry};

/// The enum the cross-check anchors on.
pub const ENUM_NAME: &str = "DistMsg";
/// The size trait whose impl carries the accounting.
pub const TRAIT_NAME: &str = "MessageSize";

/// What one match arm declares for a variant.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ArmSpec {
    Fixed(u64),
    /// RHS calls the named function (dynamic width).
    Call(String),
    /// RHS is the `1 + run.index()` traffic-class form.
    RunIndexed,
    /// RHS the parser cannot map onto a registry spec.
    Opaque,
}

/// The parsed shape of the enum + impl.
#[derive(Debug, Default)]
pub struct MsgModel {
    /// Variant name → (line, col) of its declaration.
    variants: BTreeMap<String, (u32, u32)>,
    /// Declaration line of the enum itself.
    enum_line: u32,
    size_arms: BTreeMap<String, (ArmSpec, u32)>,
    class_arms: BTreeMap<String, (ArmSpec, u32)>,
    /// Lines of wildcard (`_`) arms, per function.
    wildcards: Vec<(&'static str, u32)>,
    /// Whether both accounting fns were found.
    size_fn_found: bool,
    class_fn_found: bool,
}

fn ident(t: &Token, name: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == name
}

fn punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

fn open_of(close: &str) -> &'static str {
    match close {
        ")" => "(",
        "]" => "[",
        _ => "{",
    }
}

/// Extracts the model from a scanned file, or `None` when the file does
/// not declare `enum DistMsg`.
pub fn extract(scanned: &Scanned) -> Option<MsgModel> {
    let tokens = &scanned.tokens;
    let enum_at = tokens
        .windows(2)
        .position(|w| ident(&w[0], "enum") && ident(&w[1], ENUM_NAME))?;
    let mut model = MsgModel {
        enum_line: tokens[enum_at].line,
        ..MsgModel::default()
    };
    parse_enum(tokens, enum_at + 2, &mut model);

    // `impl MessageSize for DistMsg {`
    if let Some(impl_at) = tokens.windows(4).position(|w| {
        ident(&w[0], "impl")
            && ident(&w[1], TRAIT_NAME)
            && ident(&w[2], "for")
            && ident(&w[3], ENUM_NAME)
    }) {
        let body = block_after(tokens, impl_at + 4)?;
        if let Some(fn_body) = fn_block(tokens, body.clone(), "size_bits") {
            model.size_fn_found = true;
            parse_match_arms(tokens, fn_body, "size_bits", &mut model);
        }
        if let Some(fn_body) = fn_block(tokens, body, "traffic_class") {
            model.class_fn_found = true;
            parse_match_arms(tokens, fn_body, "traffic_class", &mut model);
        }
    }
    Some(model)
}

/// Finds the token range of the `{ … }` block starting at or after
/// `from` (exclusive of the braces).
fn block_after(tokens: &[Token], from: usize) -> Option<std::ops::Range<usize>> {
    let mut i = from;
    while i < tokens.len() && !punct(&tokens[i], "{") {
        i += 1;
    }
    let open = i;
    let mut depth = 0i32;
    while i < tokens.len() {
        if punct(&tokens[i], "{") {
            depth += 1;
        } else if punct(&tokens[i], "}") {
            depth -= 1;
            if depth == 0 {
                return Some(open + 1..i);
            }
        }
        i += 1;
    }
    None
}

/// The body range of `fn <name>` inside `range`.
fn fn_block(
    tokens: &[Token],
    range: std::ops::Range<usize>,
    name: &str,
) -> Option<std::ops::Range<usize>> {
    let mut i = range.start;
    while i + 1 < range.end {
        if ident(&tokens[i], "fn") && ident(&tokens[i + 1], name) {
            let body = block_after(tokens, i + 2)?;
            return (body.end <= range.end).then_some(body);
        }
        i += 1;
    }
    None
}

/// Collects the variant names of the enum whose `{` follows `from`.
fn parse_enum(tokens: &[Token], from: usize, model: &mut MsgModel) {
    let Some(body) = block_after(tokens, from) else {
        return;
    };
    let mut i = body.start;
    while i < body.end {
        let t = &tokens[i];
        if punct(t, "#") {
            // Attribute: skip the bracket group.
            if let Some(j) = skip_group(tokens, i + 1, "]") {
                i = j;
                continue;
            }
        }
        if t.kind == TokenKind::Ident {
            model.variants.insert(t.text.clone(), (t.line, t.col));
            i += 1;
            // Skip the payload `{…}` / `(…)` if present.
            if i < body.end && (punct(&tokens[i], "{") || punct(&tokens[i], "(")) {
                let close = if punct(&tokens[i], "{") { "}" } else { ")" };
                if let Some(j) = skip_group(tokens, i, close) {
                    i = j;
                }
            }
            // Skip to past the separating comma.
            while i < body.end && !punct(&tokens[i], ",") {
                i += 1;
            }
        }
        i += 1;
    }
}

/// With `tokens[at]` at (or before) the opening delimiter, returns the
/// index just past the matching `close`.
fn skip_group(tokens: &[Token], at: usize, close: &str) -> Option<usize> {
    let open = open_of(close);
    let mut i = at;
    while i < tokens.len() && !punct(&tokens[i], open) {
        i += 1;
    }
    let mut depth = 0i32;
    while i < tokens.len() {
        if punct(&tokens[i], open) {
            depth += 1;
        } else if punct(&tokens[i], close) {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

/// Parses the arms of the `match` inside one accounting fn.
fn parse_match_arms(
    tokens: &[Token],
    fn_body: std::ops::Range<usize>,
    which: &'static str,
    model: &mut MsgModel,
) {
    let Some(match_at) = (fn_body.start..fn_body.end).find(|&i| ident(&tokens[i], "match")) else {
        return;
    };
    let Some(arms) = block_after(tokens, match_at) else {
        return;
    };
    let mut i = arms.start;
    while i < arms.end {
        // Pattern: tokens until `=>` at depth 0.
        let pat_start = i;
        let mut depth = 0i32;
        while i < arms.end {
            let t = &tokens[i];
            if punct(t, "{") || punct(t, "(") || punct(t, "[") {
                depth += 1;
            } else if punct(t, "}") || punct(t, ")") || punct(t, "]") {
                depth -= 1;
            } else if depth == 0 && punct(t, "=") && i + 1 < arms.end && punct(&tokens[i + 1], ">")
            {
                break;
            }
            i += 1;
        }
        if i >= arms.end {
            break;
        }
        let pat = &tokens[pat_start..i];
        i += 2; // past `=>`
                // RHS: tokens until `,` at depth 0 (or the end of the match).
        let rhs_start = i;
        depth = 0;
        while i < arms.end {
            let t = &tokens[i];
            if punct(t, "{") || punct(t, "(") || punct(t, "[") {
                depth += 1;
            } else if punct(t, "}") || punct(t, ")") || punct(t, "]") {
                depth -= 1;
            } else if depth == 0 && punct(t, ",") {
                break;
            }
            i += 1;
        }
        let rhs = &tokens[rhs_start..i];
        i += 1; // past `,`

        record_arm(pat, rhs, which, model);
    }
}

fn record_arm(pat: &[Token], rhs: &[Token], which: &'static str, model: &mut MsgModel) {
    if pat.is_empty() {
        return;
    }
    // Wildcard: a top-level `_` pattern (payload `..` sits inside
    // groups and never reaches depth 0 here).
    let mut depth = 0i32;
    for t in pat {
        if punct(t, "{") || punct(t, "(") || punct(t, "[") {
            depth += 1;
        } else if punct(t, "}") || punct(t, ")") || punct(t, "]") {
            depth -= 1;
        } else if depth == 0 && ident(t, "_") {
            model.wildcards.push((which, t.line));
            return;
        }
    }
    // Variants: every ident preceded by `DistMsg::` at depth 0.
    let mut variants = Vec::new();
    for k in 3..pat.len() {
        if pat[k].kind == TokenKind::Ident
            && punct(&pat[k - 1], ":")
            && punct(&pat[k - 2], ":")
            && ident(&pat[k - 3], ENUM_NAME)
        {
            variants.push((pat[k].text.clone(), pat[k].line));
        }
    }
    let spec = classify_rhs(rhs, which);
    let arms = if which == "size_bits" {
        &mut model.size_arms
    } else {
        &mut model.class_arms
    };
    for (name, line) in variants {
        arms.insert(name, (spec.clone(), line));
    }
}

fn classify_rhs(rhs: &[Token], which: &'static str) -> ArmSpec {
    if rhs.len() == 1 && rhs[0].kind == TokenKind::Number {
        if let Some(v) = int_value(&rhs[0].text) {
            return ArmSpec::Fixed(v);
        }
    }
    if which == "size_bits" {
        // A call expression: first ident followed by `(`.
        for (k, t) in rhs.iter().enumerate() {
            if t.kind == TokenKind::Ident && rhs.get(k + 1).is_some_and(|n| punct(n, "(")) {
                return ArmSpec::Call(t.text.clone());
            }
        }
    } else {
        // `1 + run.index()` (any spelling mentioning run + index).
        let has_run = rhs.iter().any(|t| ident(t, "run"));
        let has_index = rhs.iter().any(|t| ident(t, "index"));
        if has_run && has_index {
            return ArmSpec::RunIndexed;
        }
    }
    ArmSpec::Opaque
}

/// Cross-checks the model against the registry. `file` is the path of
/// the file declaring the enum; `registry_file` is the registry's path
/// (for findings anchored on registry lines).
pub fn cross_check(
    model: &MsgModel,
    registry: &Registry,
    file: &str,
    registry_file: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |file: &str, line: u32, col: u32, message: String| {
        findings.push(Finding {
            rule: Rule::ProtocolRegistry,
            file: file.to_string(),
            line,
            col,
            message,
        });
    };

    if !model.size_fn_found || !model.class_fn_found {
        push(
            file,
            model.enum_line,
            1,
            format!(
                "`impl {TRAIT_NAME} for {ENUM_NAME}` with `size_bits` and `traffic_class` \
                 not found in the file declaring the enum"
            ),
        );
        return findings;
    }

    for (which, line) in &model.wildcards {
        push(
            file,
            *line,
            1,
            format!(
                "wildcard arm in `{which}`: every `{ENUM_NAME}` variant must be matched \
                 explicitly so a new message cannot bypass the registry"
            ),
        );
    }

    for (name, &(line, col)) in &model.variants {
        let Some(spec) = registry.messages.get(name) else {
            push(
                file,
                line,
                col,
                format!(
                    "`{ENUM_NAME}::{name}` has no [message.{name}] entry in {registry_file}: \
                     declare its bit width and traffic class"
                ),
            );
            continue;
        };
        match model.size_arms.get(name) {
            None => push(
                file,
                line,
                col,
                format!("`{ENUM_NAME}::{name}` has no `size_bits` arm"),
            ),
            Some((arm, arm_line)) => {
                let matches = match (&spec.bits, arm) {
                    (BitSpec::Fixed(want), ArmSpec::Fixed(got)) => want == got,
                    (BitSpec::Dynamic(want), ArmSpec::Call(got)) => want == got,
                    _ => false,
                };
                if !matches {
                    push(
                        file,
                        *arm_line,
                        1,
                        format!(
                            "`size_bits` arm of `{ENUM_NAME}::{name}` ({}) disagrees with \
                             bits = {} declared at {registry_file}:{}",
                            describe(arm),
                            spec.bits,
                            spec.line
                        ),
                    );
                }
            }
        }
        match model.class_arms.get(name) {
            None => push(
                file,
                line,
                col,
                format!("`{ENUM_NAME}::{name}` has no `traffic_class` arm"),
            ),
            Some((arm, arm_line)) => {
                let matches = match (&spec.class, arm) {
                    (ClassSpec::Fixed(want), ArmSpec::Fixed(got)) => want == got,
                    (ClassSpec::RunIndexed, ArmSpec::RunIndexed) => true,
                    _ => false,
                };
                if !matches {
                    push(
                        file,
                        *arm_line,
                        1,
                        format!(
                            "`traffic_class` arm of `{ENUM_NAME}::{name}` ({}) disagrees \
                             with class = {} declared at {registry_file}:{}",
                            describe(arm),
                            spec.class,
                            spec.line
                        ),
                    );
                }
            }
        }
    }

    for (name, spec) in &registry.messages {
        if !model.variants.contains_key(name) {
            push(
                registry_file,
                spec.line,
                1,
                format!(
                    "[message.{name}] has no matching `{ENUM_NAME}` variant — remove the \
                     stale registry entry"
                ),
            );
        }
    }

    findings
}

fn describe(arm: &ArmSpec) -> String {
    match arm {
        ArmSpec::Fixed(v) => format!("literal {v}"),
        ArmSpec::Call(f) => format!("call to `{f}`"),
        ArmSpec::RunIndexed => "run-indexed `1 + run.index()`".to_string(),
        ArmSpec::Opaque => "an expression the lint cannot classify".to_string(),
    }
}

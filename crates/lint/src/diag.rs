//! Rule identities and diagnostic types.
//!
//! Rendering lives here too — both the human rustc-style form and the
//! machine-readable JSON report — so `main.rs` only decides *where*
//! output goes, never *what* it looks like.

use crate::json::Json;

/// Every rule the engine knows, in stable display order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration-order-dependent operation on a `HashMap`/`HashSet`
    /// binding in a protocol crate.
    HashIter,
    /// A `HashMap`/`HashSet` import or fully-qualified use in a
    /// protocol crate (even keyed-only access is one refactor away
    /// from an iteration hazard).
    HashState,
    /// Wall-clock read (`Instant::now`, `SystemTime`, `std::time`) in a
    /// protocol crate.
    WallClock,
    /// Ambient randomness (`thread_rng`, `from_entropy`, `OsRng`) in a
    /// protocol crate.
    AmbientRng,
    /// Environment read (`std::env`) in a protocol crate.
    EnvRead,
    /// `DistMsg` ↔ `protocol_registry.toml` cross-check failure.
    ProtocolRegistry,
    /// Library crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in library code.
    NoPrint,
    /// Per-crate `unwrap()`/`expect()` count differs from the ratcheted
    /// budget in the registry.
    UnwrapRatchet,
    /// Per-crate undocumented-public-item count differs from the
    /// ratcheted budget in the registry.
    DocCoverage,
    /// Malformed suppression directive (missing reason, unknown rule).
    BadSuppression,
}

impl Rule {
    /// Every rule, in stable display order.
    pub const ALL: [Rule; 11] = [
        Rule::HashIter,
        Rule::HashState,
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::EnvRead,
        Rule::ProtocolRegistry,
        Rule::ForbidUnsafe,
        Rule::NoPrint,
        Rule::UnwrapRatchet,
        Rule::DocCoverage,
        Rule::BadSuppression,
    ];

    /// The kebab-case name used in diagnostics, `--only` and
    /// suppression directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::HashState => "hash-state",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::EnvRead => "env-read",
            Rule::ProtocolRegistry => "protocol-registry",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::NoPrint => "no-print",
            Rule::UnwrapRatchet => "unwrap-ratchet",
            Rule::DocCoverage => "doc-coverage",
            Rule::BadSuppression => "bad-suppression",
        }
    }

    /// Looks a rule up by its kebab-case [`Rule::name`].
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line description for `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::HashIter => {
                "iteration-order-dependent op (.iter/.keys/.values/.drain/for-in) on a \
                 HashMap/HashSet binding in a protocol crate"
            }
            Rule::HashState => {
                "HashMap/HashSet imported or used fully-qualified in a protocol crate; \
                 use BTreeMap/BTreeSet or an index-keyed Vec"
            }
            Rule::WallClock => {
                "wall-clock read (Instant::now, SystemTime, std::time) in a protocol crate"
            }
            Rule::AmbientRng => {
                "ambient randomness (thread_rng, from_entropy, OsRng) in a protocol crate; \
                 all randomness must come from the seeded config RNG"
            }
            Rule::EnvRead => "std::env read in a protocol crate",
            Rule::ProtocolRegistry => {
                "DistMsg variants, bit widths and traffic classes must match \
                 crates/lint/protocol_registry.toml exactly, with exhaustive match arms"
            }
            Rule::ForbidUnsafe => "library crate root must start with #![forbid(unsafe_code)]",
            Rule::NoPrint => {
                "println!/eprintln!/print!/eprint!/dbg! in library code \
                 (bin/test/bench paths are exempt)"
            }
            Rule::UnwrapRatchet => {
                "per-crate unwrap()/expect() count must equal the ratcheted budget in the \
                 registry (only decreases are accepted, by lowering the budget)"
            }
            Rule::DocCoverage => {
                "per-crate count of undocumented public items must equal the ratcheted \
                 budget in the registry (only decreases are accepted, by lowering the \
                 budget)"
            }
            Rule::BadSuppression => {
                "suppression directive is malformed, names an unknown rule, or is missing \
                 its reason"
            }
        }
    }

    /// Whether an inline `allow` directive can silence this rule.
    /// File- and corpus-level rules (and the directive checker itself)
    /// are deliberately not suppressible.
    pub fn suppressible(self) -> bool {
        matches!(
            self,
            Rule::HashIter
                | Rule::HashState
                | Rule::WallClock
                | Rule::AmbientRng
                | Rule::EnvRead
                | Rule::NoPrint
        )
    }
}

/// One unsuppressed finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// One finding silenced by a well-formed `allow` directive. Kept in the
/// report so suppressions round-trip through `--json` and stay
/// auditable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppressed {
    /// The rule that would have fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the silenced finding.
    pub line: u32,
    /// The directive's reason text (empty when the reason is missing —
    /// which is itself a `bad-suppression` finding).
    pub reason: String,
}

/// The engine's output: what fired and what was suppressed.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Unsuppressed findings in stable order.
    pub findings: Vec<Finding>,
    /// Findings silenced by well-formed directives.
    pub suppressed: Vec<Suppressed>,
    /// Number of files scanned, for the summary line.
    pub files_scanned: usize,
}

/// Schema tag of the JSON report.
pub const JSON_SCHEMA: &str = "treenet-lint/v1";

impl Report {
    /// Sorts diagnostics into the stable (file, line, col, rule) order
    /// every output mode uses.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// rustc-style human rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "error[{}]: {}\n  --> {}:{}:{}\n",
                f.rule.name(),
                f.message,
                f.file,
                f.line,
                f.col
            ));
        }
        out.push_str(&format!(
            "treenet-lint: {} finding(s), {} suppressed, {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed.len(),
            self.files_scanned
        ));
        out
    }

    /// Machine-readable report. Parse it back with
    /// [`crate::json::parse`]; the layout is stable under
    /// [`JSON_SCHEMA`].
    pub fn render_json(&self) -> String {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Json::object(vec![
                    ("rule", Json::Str(f.rule.name().to_string())),
                    ("file", Json::Str(f.file.clone())),
                    ("line", Json::Num(f.line as f64)),
                    ("col", Json::Num(f.col as f64)),
                    ("message", Json::Str(f.message.clone())),
                ])
            })
            .collect();
        let suppressed = self
            .suppressed
            .iter()
            .map(|s| {
                Json::object(vec![
                    ("rule", Json::Str(s.rule.name().to_string())),
                    ("file", Json::Str(s.file.clone())),
                    ("line", Json::Num(s.line as f64)),
                    ("reason", Json::Str(s.reason.clone())),
                ])
            })
            .collect();
        let root = Json::object(vec![
            ("schema", Json::Str(JSON_SCHEMA.to_string())),
            ("files_scanned", Json::Num(self.files_scanned as f64)),
            ("findings", Json::Arr(findings)),
            ("suppressed", Json::Arr(suppressed)),
        ]);
        let mut text = root.render();
        text.push('\n');
        text
    }
}

//! The committed protocol registry (`crates/lint/protocol_registry.toml`)
//! and its TOML-subset parser.
//!
//! The registry is the single source of truth for
//!
//! * every `DistMsg` variant's **bit width** (a fixed integer, or the
//!   name of the dynamic sizing function for descriptor-bounded
//!   payloads) and **traffic class** (a fixed integer, or `"run"` for
//!   the `1 + run.index()` sub-run classes), cross-checked at lint time
//!   against the enum and its `MessageSize` impl; and
//! * the per-crate ratcheted **unwrap budgets** — the exact number of
//!   `unwrap()`/`expect()` calls allowed in each crate's non-test
//!   library code. The count must *equal* the budget: a new unwrap
//!   fails the lint, and removing one fails it too until the budget is
//!   ratcheted down, so the number can only decrease; and
//! * the per-crate ratcheted **doc budgets** (`[budget.doc]`) — the
//!   exact number of undocumented public items tolerated in each
//!   crate's non-test library code, with the same equal-or-fail
//!   ratchet, so documentation coverage can only improve.
//!
//! `treenet-bench`'s `exp_f_dist_budget` reads the same file to derive
//! its runtime `O(M)`-bound gate, so the static table and the runtime
//! check cannot drift apart.
//!
//! The parser supports exactly the subset the registry uses: `[a]` /
//! `[a.b]` section headers, `key = <integer|"string">` pairs, `#`
//! comments and blank lines. Keys record their line number so registry
//! mismatches get clickable diagnostics.

use std::collections::BTreeMap;

/// A variant's declared bit width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BitSpec {
    /// A fixed width in bits.
    Fixed(u64),
    /// A dynamic width computed by the named function (today always
    /// `descriptor_bits` — the paper's `O(M)` descriptor payload).
    Dynamic(String),
}

impl std::fmt::Display for BitSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitSpec::Fixed(bits) => write!(f, "{bits}"),
            BitSpec::Dynamic(name) => write!(f, "\"{name}\""),
        }
    }
}

/// A variant's declared traffic class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClassSpec {
    /// A fixed engine traffic class.
    Fixed(u64),
    /// `1 + run.index()` — class 1 for the Primary sub-run, 2 for the
    /// Narrow sub-run. Spelled `class = "run"` in the registry.
    RunIndexed,
}

impl std::fmt::Display for ClassSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassSpec::Fixed(class) => write!(f, "{class}"),
            ClassSpec::RunIndexed => write!(f, "\"run\""),
        }
    }
}

/// One `[message.<Variant>]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageSpec {
    /// Declared bit width.
    pub bits: BitSpec,
    /// Declared traffic class.
    pub class: ClassSpec,
    /// Line of the section header, for diagnostics.
    pub line: u32,
}

/// The parsed registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    /// `DistMsg` variant name → declared width and class.
    pub messages: BTreeMap<String, MessageSpec>,
    /// Crate name → (allowed unwrap/expect count, header line).
    pub unwrap_budget: BTreeMap<String, (u64, u32)>,
    /// Crate name → (allowed undocumented-public-item count, header
    /// line).
    pub doc_budget: BTreeMap<String, (u64, u32)>,
}

impl Registry {
    /// Parses the registry text. Errors carry `line N:` prefixes.
    pub fn parse(text: &str) -> Result<Registry, String> {
        let mut registry = Registry::default();
        // Section state: a message entry being accumulated, or one of
        // the ratchet-budget tables.
        enum Section {
            None,
            Message { name: String, line: u32 },
            UnwrapBudget,
            DocBudget,
        }
        let mut section = Section::None;
        let mut bits: Option<BitSpec> = None;
        let mut class: Option<ClassSpec> = None;

        let flush = |registry: &mut Registry,
                     section: &Section,
                     bits: &mut Option<BitSpec>,
                     class: &mut Option<ClassSpec>|
         -> Result<(), String> {
            if let Section::Message { name, line } = section {
                let spec = MessageSpec {
                    bits: bits.take().ok_or_else(|| {
                        format!("line {line}: [message.{name}] is missing `bits`")
                    })?,
                    class: class.take().ok_or_else(|| {
                        format!("line {line}: [message.{name}] is missing `class`")
                    })?,
                    line: *line,
                };
                if registry.messages.insert(name.clone(), spec).is_some() {
                    return Err(format!("line {line}: duplicate [message.{name}]"));
                }
            }
            Ok(())
        };

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated section header"))?
                    .trim();
                flush(&mut registry, &section, &mut bits, &mut class)?;
                section = if let Some(name) = header.strip_prefix("message.") {
                    Section::Message {
                        name: name.trim().to_string(),
                        line: lineno,
                    }
                } else if header == "budget.unwrap" {
                    Section::UnwrapBudget
                } else if header == "budget.doc" {
                    Section::DocBudget
                } else {
                    return Err(format!("line {lineno}: unknown section [{header}]"));
                };
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            let (key, value) = (key.trim(), parse_value(value.trim(), lineno)?);
            match &section {
                Section::None => {
                    return Err(format!("line {lineno}: `{key}` outside any section"));
                }
                Section::Message { name, .. } => match (key, value) {
                    ("bits", Value::Int(n)) => bits = Some(BitSpec::Fixed(n)),
                    ("bits", Value::Str(s)) => bits = Some(BitSpec::Dynamic(s)),
                    ("class", Value::Int(n)) => class = Some(ClassSpec::Fixed(n)),
                    ("class", Value::Str(s)) if s == "run" => class = Some(ClassSpec::RunIndexed),
                    ("class", Value::Str(s)) => {
                        return Err(format!(
                            "line {lineno}: unknown class \"{s}\" in [message.{name}] \
                             (use an integer or \"run\")"
                        ));
                    }
                    (other, _) => {
                        return Err(format!(
                            "line {lineno}: unknown key `{other}` in [message.{name}]"
                        ));
                    }
                },
                Section::UnwrapBudget | Section::DocBudget => {
                    let (table, noun) = match &section {
                        Section::UnwrapBudget => (&mut registry.unwrap_budget, "unwrap"),
                        _ => (&mut registry.doc_budget, "doc"),
                    };
                    match value {
                        Value::Int(n) => {
                            if table.insert(key.to_string(), (n, lineno)).is_some() {
                                return Err(format!("line {lineno}: duplicate budget for `{key}`"));
                            }
                        }
                        Value::Str(_) => {
                            return Err(format!(
                                "line {lineno}: {noun} budget for `{key}` must be an integer"
                            ));
                        }
                    }
                }
            }
        }
        flush(&mut registry, &section, &mut bits, &mut class)?;
        Ok(registry)
    }

    /// Reads and parses the registry at `path`.
    pub fn load(path: &std::path::Path) -> Result<Registry, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Registry::parse(&text)
    }

    /// The largest message the registry permits, with every dynamic
    /// entry priced at `dynamic_bits` (the caller's `O(M)` descriptor
    /// bound for its problem). This is what `exp_f_dist_budget` uses as
    /// its runtime gate bound, so a variant added to the registry
    /// automatically widens (or a removed one narrows) the runtime
    /// check.
    pub fn max_message_bits(&self, dynamic_bits: u64) -> u64 {
        self.messages
            .values()
            .map(|spec| match &spec.bits {
                BitSpec::Fixed(bits) => *bits,
                BitSpec::Dynamic(_) => dynamic_bits,
            })
            .max()
            .unwrap_or(0)
    }
}

enum Value {
    Int(u64),
    Str(String),
}

fn parse_value(text: &str, lineno: u32) -> Result<Value, String> {
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| format!("line {lineno}: unterminated string"))?;
        return Ok(Value::Str(inner.to_string()));
    }
    text.replace('_', "")
        .parse::<u64>()
        .map(Value::Int)
        .map_err(|_| format!("line {lineno}: `{text}` is neither an integer nor a string"))
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# leading comment
[message.Ping]
bits = 32 # trailing comment
class = "run"

[message.Desc]
bits = "descriptor_bits"
class = 0

[budget.unwrap]
treenet-dist = 3

[budget.doc]
treenet-dist = 2
"#;

    #[test]
    fn parses_the_full_subset() {
        let r = Registry::parse(GOOD).unwrap();
        assert_eq!(r.messages["Ping"].bits, BitSpec::Fixed(32));
        assert_eq!(r.messages["Ping"].class, ClassSpec::RunIndexed);
        assert_eq!(
            r.messages["Desc"].bits,
            BitSpec::Dynamic("descriptor_bits".to_string())
        );
        assert_eq!(r.messages["Desc"].class, ClassSpec::Fixed(0));
        assert_eq!(r.unwrap_budget["treenet-dist"].0, 3);
        assert_eq!(r.doc_budget["treenet-dist"].0, 2);
        // Section-header lines are recorded for diagnostics.
        assert_eq!(r.messages["Ping"].line, 3);
    }

    #[test]
    fn the_two_budget_tables_are_independent() {
        let r = Registry::parse("[budget.doc]\ntreenet-core = 4\n").unwrap();
        assert_eq!(r.doc_budget["treenet-core"].0, 4);
        assert!(r.unwrap_budget.is_empty());
        assert!(Registry::parse("[budget.doc]\na = \"all\"\n")
            .unwrap_err()
            .contains("doc budget"));
        // The same crate may appear in both tables; duplicates within
        // one table are still rejected.
        assert!(Registry::parse("[budget.doc]\na = 1\na = 2\n")
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn max_message_bits_prices_dynamic_entries() {
        let r = Registry::parse(GOOD).unwrap();
        assert_eq!(r.max_message_bits(224), 224);
        // When the descriptor bound is tiny, a fixed width can dominate.
        assert_eq!(r.max_message_bits(16), 32);
        assert_eq!(Registry::default().max_message_bits(100), 0);
    }

    #[test]
    fn missing_fields_are_rejected() {
        let err = Registry::parse("[message.P]\nbits = 1\n").unwrap_err();
        assert!(err.contains("missing `class`"), "{err}");
        let err = Registry::parse("[message.P]\nclass = 1\n").unwrap_err();
        assert!(err.contains("missing `bits`"), "{err}");
    }

    #[test]
    fn duplicates_are_rejected() {
        let doubled = "[message.P]\nbits = 1\nclass = 0\n[message.P]\nbits = 1\nclass = 0\n";
        assert!(Registry::parse(doubled).unwrap_err().contains("duplicate"));
        let doubled = "[budget.unwrap]\na = 1\na = 2\n";
        assert!(Registry::parse(doubled).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn unknown_sections_keys_and_classes_are_rejected() {
        assert!(Registry::parse("[frobnicate]\n").is_err());
        assert!(Registry::parse("[message.P]\nwidth = 1\n").is_err());
        assert!(Registry::parse("x = 1\n").is_err());
        assert!(Registry::parse("[message.P]\nbits = 1\nclass = \"echo\"\n").is_err());
        assert!(Registry::parse("[budget.unwrap]\na = \"lots\"\n").is_err());
    }
}

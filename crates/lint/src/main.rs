//! The `treenet-lint` binary. Run from anywhere inside the workspace:
//!
//! ```text
//! cargo run -p treenet-lint --              # human diagnostics
//! cargo run -p treenet-lint -- --json       # JSON report on stdout
//! cargo run -p treenet-lint -- --list-rules # rule table
//! cargo run -p treenet-lint -- --only hash-iter,no-print
//! cargo run -p treenet-lint -- --out /tmp/lint.json
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.

use std::collections::BTreeSet;
use std::path::PathBuf;

use treenet_lint::{lint_tree, Options, Registry, Rule, REGISTRY_REL_PATH};

struct Args {
    json: bool,
    list_rules: bool,
    only: Option<BTreeSet<Rule>>,
    out: Option<PathBuf>,
    root: Option<PathBuf>,
}

const USAGE: &str = "usage: treenet-lint [--json] [--out <path>] [--only <rule,...>] \
                     [--root <dir>] [--list-rules]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        list_rules: false,
        only: None,
        out: None,
        root: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--only" => {
                let value = argv.next().ok_or("--only needs a rule list")?;
                let mut set = BTreeSet::new();
                for name in value.split(',') {
                    let rule = Rule::from_name(name.trim())
                        .ok_or_else(|| format!("unknown rule `{name}` (see --list-rules)"))?;
                    set.insert(rule);
                }
                args.only = Some(set);
            }
            "--out" => args.out = Some(PathBuf::from(argv.next().ok_or("--out needs a path")?)),
            "--root" => args.root = Some(PathBuf::from(argv.next().ok_or("--root needs a dir")?)),
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Finds the workspace root: `--root`, or the nearest ancestor of the
/// current directory containing the registry file.
fn find_root(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(root) = explicit {
        return if root.join(REGISTRY_REL_PATH).is_file() {
            Ok(root)
        } else {
            Err(format!("{} has no {REGISTRY_REL_PATH}", root.display()))
        };
    }
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        if dir.join(REGISTRY_REL_PATH).is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(format!(
                "no {REGISTRY_REL_PATH} in the current directory or any ancestor \
                 (run from inside the workspace or pass --root)"
            ));
        }
    }
}

fn list_rules() {
    let width = Rule::ALL.iter().map(|r| r.name().len()).max().unwrap_or(0);
    println!("treenet-lint rules:");
    for rule in Rule::ALL {
        println!(
            "  {:width$}  {}{}",
            rule.name(),
            rule.summary(),
            if rule.suppressible() {
                ""
            } else {
                " [not inline-suppressible]"
            },
        );
    }
    println!(
        "\nsuppress with: // treenet-lint: allow(<rule>, reason = \"…\")  \
         (a missing reason is itself an error)"
    );
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;
    if args.list_rules {
        list_rules();
        return Ok(0);
    }
    let root = find_root(args.root)?;
    let registry = Registry::load(&root.join(REGISTRY_REL_PATH))
        .map_err(|e| format!("{REGISTRY_REL_PATH}: {e}"))?;
    let opts = Options {
        only: args.only,
        registry_rel: REGISTRY_REL_PATH.to_string(),
    };
    let report = lint_tree(&root, &registry, &opts)?;

    let json = report.render_json();
    if let Some(out) = &args.out {
        std::fs::write(out, &json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    }
    if args.json {
        print!("{json}");
    } else {
        print!("{}", report.render_human());
    }
    Ok(if report.findings.is_empty() { 0 } else { 1 })
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("treenet-lint: {message}");
            std::process::exit(2);
        }
    }
}

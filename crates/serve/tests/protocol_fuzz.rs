//! Serve-protocol fuzz: random valid, malformed, and out-of-order
//! NDJSON request streams against [`Server`].
//!
//! Invariants under fuzz:
//!
//! * `handle_line` never panics — malformed JSON, unknown ops, mistyped
//!   fields, oversized payloads, duplicate ids, and withdraw/resolve/
//!   check in any order all come back as parseable one-line responses;
//! * every failure is in-band (`{"ok":false,…}` with an `error`
//!   string), never a dropped or empty response;
//! * after *any* accepted prefix of operations, `check` still reports
//!   `"identical":true` — the warm engine never silently diverges from
//!   the from-scratch reference, no matter what garbage was interleaved.
//!
//! Both server modes are fuzzed: unit-height and capacitated
//! (`hmin = 0.25`), the latter with random `height` fields above and
//! below the floor.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use treenet_core::SolverConfig;
use treenet_graph::Tree;
use treenet_model::ProblemBuilder;
use treenet_serve::Server;

const VERTICES: u32 = 10;

/// Two line networks so both pair and window submits are shape-valid.
fn server(hmin: Option<f64>) -> Server {
    let mut b = ProblemBuilder::new();
    b.add_network(Tree::line(VERTICES as usize)).unwrap();
    b.add_network(Tree::line(VERTICES as usize)).unwrap();
    let mut config = SolverConfig::default();
    if let Some(h) = hmin {
        config = config.with_hmin(h);
    }
    Server::new(b.build().unwrap(), &config).unwrap()
}

/// A pool of deliberately malformed lines: bad JSON, wrong types,
/// unknown ops, out-of-range ids, and an oversized payload.
fn malformed_line(rng: &mut SmallRng) -> String {
    match rng.gen_range(0..9u32) {
        0 => "garbage".to_string(),
        1 => "{}".to_string(),
        2 => r#"{"op":"fly"}"#.to_string(),
        3 => r#"{"op":"submit","id":1,"profit":1.0}"#.to_string(),
        4 => r#"{"op":"submit","id":-3,"u":0,"v":1,"profit":1.0}"#.to_string(),
        5 => r#"{"op":"submit","id":1,"u":0,"v":1,"profit":1.0,"height":"tall"}"#.to_string(),
        6 => r#"{"op":"submit","id":1,"u":0,"v":1,"profit":1.0,"networks":"all"}"#.to_string(),
        // Truncated mid-object.
        7 => r#"{"op":"submit","id":4,"u":0,"#.to_string(),
        // Oversized payload: a ~256 KiB junk field the parser must chew
        // through (or reject) without falling over.
        _ => format!(
            r#"{{"op":"submit","id":9,"u":0,"v":1,"profit":1.0,"pad":"{}"}}"#,
            "x".repeat(256 * 1024)
        ),
    }
}

/// A structurally valid (though not necessarily accepted) request line:
/// duplicate ids, unknown networks, heights below the floor, and
/// degenerate windows are all fair game — they must error in-band.
fn request_line(rng: &mut SmallRng, next_id: &mut u64, capacitated: bool) -> String {
    match rng.gen_range(0..10u32) {
        0..=4 => {
            // Submit; 1-in-4 reuses an id already burned.
            let id = if rng.gen_range(0..4u32) == 0 && *next_id > 0 {
                rng.gen_range(0..*next_id)
            } else {
                *next_id += 1;
                *next_id - 1
            };
            let height = if capacitated && rng.gen_range(0..2u32) == 0 {
                // Mostly above the 0.25 floor, sometimes below it.
                format!(
                    r#","height":{}"#,
                    [0.3, 0.5, 0.8, 1.0, 0.1][rng.gen_range(0..5usize)]
                )
            } else {
                String::new()
            };
            let networks = match rng.gen_range(0..3u32) {
                0 => String::new(),
                1 => format!(r#","networks":[{}]"#, rng.gen_range(0..2u32)),
                // Unknown network index: must be rejected in-band.
                _ => r#","networks":[7]"#.to_string(),
            };
            if rng.gen_range(0..3u32) == 0 {
                let release = rng.gen_range(0..6u32);
                let deadline = rng.gen_range(release..=9);
                let processing = rng.gen_range(0..6u32);
                format!(
                    r#"{{"op":"submit","id":{id},"release":{release},"deadline":{deadline},"processing":{processing},"profit":2.0{height}{networks}}}"#
                )
            } else {
                let u = rng.gen_range(0..VERTICES);
                let v = rng.gen_range(0..VERTICES);
                format!(
                    r#"{{"op":"submit","id":{id},"u":{u},"v":{v},"profit":1.5{height}{networks}}}"#
                )
            }
        }
        // Withdraw a random id — admitted, withdrawn, or never seen.
        5..=6 => {
            let bound = (*next_id).max(1) + 3;
            format!(r#"{{"op":"withdraw","id":{}}}"#, rng.gen_range(0..bound))
        }
        7 => r#"{"op":"resolve"}"#.to_string(),
        8 => [
            r#"{"op":"query"}"#,
            r#"{"op":"snapshot"}"#,
            r#"{"op":"stats"}"#,
        ][rng.gen_range(0..3usize)]
        .to_string(),
        _ => r#"{"op":"check"}"#.to_string(),
    }
}

/// Drives one fuzz script and checks every response invariant. Returns
/// the number of successful `check` responses observed.
fn drive(seed: u64, len: usize, capacitated: bool) -> Result<u32, TestCaseError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut server = server(capacitated.then_some(0.25));
    let mut next_id = 0u64;
    let mut checks_ok = 0u32;
    for i in 0..len {
        let line = if rng.gen_range(0..4u32) == 0 {
            malformed_line(&mut rng)
        } else {
            request_line(&mut rng, &mut next_id, capacitated)
        };
        let response = server.handle_line(&line);
        let value: Value = serde_json::from_str(&response)
            .map_err(|e| TestCaseError::Fail(format!("op {i}: unparseable response: {e}")))?;
        let ok = match value.field("ok") {
            Ok(Value::Bool(ok)) => ok,
            other => {
                return Err(TestCaseError::Fail(format!(
                    "op {i}: response without boolean `ok`: {other:?} in {response}"
                )))
            }
        };
        if !ok {
            // Every failure must carry an in-band error string.
            prop_assert!(
                matches!(value.field("error"), Ok(Value::Str(_))),
                "op {i}: failed response without `error`: {response}"
            );
        } else if matches!(value.field("op"), Ok(Value::Str(op)) if op == "check") {
            // An accepted check must certify bitwise identity, whatever
            // prefix of valid and invalid traffic came before it.
            prop_assert!(
                response.contains(r#""identical":true"#),
                "op {i}: warm state diverged after accepted prefix: {response}"
            );
            checks_ok += 1;
        }
    }
    // Final check: still identical after the whole script.
    let response = server.handle_line(r#"{"op":"check"}"#);
    prop_assert!(
        response.contains(r#""identical":true"#),
        "final check diverged: {response}"
    );
    Ok(checks_ok + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Unit-mode server under mixed valid/malformed/interleaved traffic.
    #[test]
    fn unit_server_survives_fuzzed_streams(seed in 0u64..400) {
        let checks = drive(seed, 48, false)?;
        prop_assert!(checks >= 1);
    }

    /// Capacitated server (hmin = 0.25) under the same fuzz, with
    /// height-carrying submits above and below the floor.
    #[test]
    fn capacitated_server_survives_fuzzed_streams(seed in 1000u64..1400) {
        let checks = drive(seed, 48, true)?;
        prop_assert!(checks >= 1);
    }
}

/// A deterministic worst-case interleaving: duplicate ids, withdraw
/// before admit, double withdraw, resolve/check spam, oversized junk —
/// the connection stays usable throughout.
#[test]
fn hostile_interleaving_keeps_the_connection_usable() {
    let mut s = server(None);
    let big = format!(
        r#"{{"op":"submit","id":2,"u":0,"v":3,"profit":1.0,"pad":"{}"}}"#,
        "y".repeat(512 * 1024)
    );
    let lines = [
        r#"{"op":"withdraw","id":0}"#,
        r#"{"op":"check"}"#,
        r#"{"op":"submit","id":0,"u":0,"v":4,"profit":2.0}"#,
        r#"{"op":"submit","id":0,"u":1,"v":5,"profit":2.0}"#,
        big.as_str(),
        r#"{"op":"withdraw","id":0}"#,
        r#"{"op":"withdraw","id":0}"#,
        "not even json",
        r#"{"op":"resolve"}"#,
        r#"{"op":"check"}"#,
    ];
    for line in lines {
        let response = s.handle_line(line);
        assert!(
            response.contains(r#""ok":true"#) || response.contains(r#""error":"#),
            "{response}"
        );
    }
    let response = s.handle_line(r#"{"op":"check"}"#);
    assert!(response.contains(r#""identical":true"#), "{response}");
}

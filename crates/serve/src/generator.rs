//! Seeded open-loop workload generator: an unbounded, reproducible
//! stream of submit/withdraw requests for smoke runs and the
//! `exp_serve_throughput` bench.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{Request, Shape};

/// An open-loop arrival/departure process.
///
/// "Open loop" in the queueing sense: the generator emits requests at
/// its own pace without waiting on responses. Every stream is fully
/// determined by the seed; ids are unique for the generator's lifetime
/// and start at a configurable floor (set it above the server's
/// bootstrap demand count).
///
/// In pod-local mode demand `id` is confined to network `id % networks`,
/// which keeps conflict components small and independent — the regime
/// where warm re-solves shine.
#[derive(Clone, Debug)]
pub struct OpenLoop {
    rng: SmallRng,
    vertices: u32,
    networks: u32,
    depart_percent: u32,
    pod_local: bool,
    /// `Some((hmin, narrow_percent))` emits capacitated submits: with
    /// probability `narrow_percent` a narrow height in `[hmin, 1/2]`,
    /// otherwise a wide height in `(1/2, 1]`. `None` emits unit-height
    /// submits (no `height` field on the wire).
    heights: Option<(f64, u32)>,
    next_id: u64,
    live: Vec<u64>,
}

impl OpenLoop {
    /// A generator over `networks` tree-networks on `vertices` vertices.
    /// Defaults: 30% departures, pod-local routing, ids from 0.
    pub fn new(seed: u64, vertices: u32, networks: u32) -> OpenLoop {
        assert!(vertices >= 2, "need at least one edge to route over");
        assert!(networks >= 1, "need at least one network");
        OpenLoop {
            rng: SmallRng::seed_from_u64(seed ^ 0x5e7e),
            vertices,
            networks,
            depart_percent: 30,
            pod_local: true,
            heights: None,
            next_id: 0,
            live: Vec::new(),
        }
    }

    /// Emits capacitated submits: with probability `narrow_percent` a
    /// narrow height in `[hmin, 1/2]`, otherwise a wide height in
    /// `(1/2, 1]`. The serving engine must run with the same (or lower)
    /// `hmin` floor to admit the stream.
    #[must_use]
    pub fn with_heights(mut self, hmin: f64, narrow_percent: u32) -> OpenLoop {
        assert!(
            hmin > 0.0 && hmin <= 0.5,
            "hmin must be in (0, 1/2] for narrow heights to exist"
        );
        self.heights = Some((hmin, narrow_percent.min(100)));
        self
    }

    /// Sets the percentage of requests that withdraw (when anything is
    /// live to withdraw).
    #[must_use]
    pub fn with_depart_percent(mut self, percent: u32) -> OpenLoop {
        self.depart_percent = percent.min(100);
        self
    }

    /// Routes demands over a random network instead of pod-locally.
    #[must_use]
    pub fn with_pod_local(mut self, pod_local: bool) -> OpenLoop {
        self.pod_local = pod_local;
        self
    }

    /// Starts client ids at `floor` (use the server's bootstrap demand
    /// count to avoid colliding with pre-registered ids).
    #[must_use]
    pub fn with_id_floor(mut self, floor: u64) -> OpenLoop {
        self.next_id = floor;
        self
    }

    /// Demands currently live according to the generator's own ledger.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The next request in the stream: a withdraw of a random live demand
    /// with probability `depart_percent`, else a fresh submit.
    pub fn next_request(&mut self) -> Request {
        let depart = !self.live.is_empty() && self.rng.gen_range(0..100u32) < self.depart_percent;
        if depart {
            let i = self.rng.gen_range(0..self.live.len());
            let id = self.live.swap_remove(i);
            return Request::Withdraw { id };
        }
        let id = self.next_id;
        self.next_id += 1;
        self.live.push(id);
        let u = self.rng.gen_range(0..self.vertices);
        let mut v = self.rng.gen_range(0..self.vertices);
        if v == u {
            v = (v + 1) % self.vertices;
        }
        let network = if self.pod_local {
            (id % u64::from(self.networks)) as u32
        } else {
            self.rng.gen_range(0..self.networks)
        };
        let height = self.heights.map(|(hmin, narrow_percent)| {
            if self.rng.gen_range(0..100u32) < narrow_percent {
                hmin + (0.5 - hmin) * self.rng.gen::<f64>()
            } else {
                (0.5 + 0.5 * self.rng.gen::<f64>()).clamp(0.5000001, 1.0)
            }
        });
        Request::Submit {
            id,
            shape: Shape::Pair { u, v },
            profit: 1.0 + f64::from(self.rng.gen_range(0..16u32)) / 4.0,
            height,
            networks: Some(vec![network]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn streams_are_reproducible_and_ids_unique() {
        let mut a = OpenLoop::new(9, 12, 3);
        let mut b = OpenLoop::new(9, 12, 3);
        let mut submitted = BTreeSet::new();
        for _ in 0..500 {
            let req = a.next_request();
            assert_eq!(req, b.next_request());
            if let Request::Submit { id, networks, .. } = &req {
                assert!(submitted.insert(*id), "duplicate id {id}");
                assert_eq!(networks.as_deref(), Some(&[(*id % 3) as u32][..]));
            }
        }
        assert!(a.live_count() > 0);
    }

    #[test]
    fn withdraws_only_name_live_demands() {
        let mut g = OpenLoop::new(3, 8, 2).with_depart_percent(60);
        let mut live = BTreeSet::new();
        for _ in 0..300 {
            match g.next_request() {
                Request::Submit { id, .. } => {
                    live.insert(id);
                }
                Request::Withdraw { id } => {
                    assert!(live.remove(&id), "withdrew dead id {id}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(live.len(), g.live_count());
    }

    #[test]
    fn height_streams_respect_the_floor_and_mix_classes() {
        let mut g = OpenLoop::new(5, 10, 2)
            .with_depart_percent(0)
            .with_heights(0.25, 50);
        let (mut narrow, mut wide) = (0u32, 0u32);
        for _ in 0..200 {
            match g.next_request() {
                Request::Submit {
                    height: Some(h), ..
                } => {
                    assert!((0.25..=1.0).contains(&h), "height {h} out of range");
                    if h <= 0.5 {
                        narrow += 1;
                    } else {
                        wide += 1;
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(narrow > 0 && wide > 0, "narrow {narrow}, wide {wide}");
    }

    #[test]
    fn id_floor_offsets_the_stream() {
        let mut g = OpenLoop::new(1, 6, 1)
            .with_id_floor(100)
            .with_depart_percent(0);
        for expect in 100..110u64 {
            match g.next_request() {
                Request::Submit { id, .. } => assert_eq!(id, expect),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}

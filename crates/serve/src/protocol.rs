//! Wire format of the admission protocol: request parsing and rendering.

use serde_json::Value;

/// The route shape of a submitted demand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// A pair demand between two vertices (tree networks).
    Pair {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// A time-window demand (canonical line networks).
    Window {
        /// Earliest start slot.
        release: u32,
        /// Latest finish slot (inclusive).
        deadline: u32,
        /// Processing length in slots.
        processing: u32,
    },
}

/// One protocol request, as parsed from a line of JSON.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Admit a demand under a client-chosen id.
    Submit {
        /// Client-chosen demand id (unique for the server's lifetime).
        id: u64,
        /// Route shape.
        shape: Shape,
        /// Demand profit (must be positive).
        profit: f64,
        /// Demand height in `(0, 1]`; `None` means unit height. Non-unit
        /// heights need a server running with an `hmin` floor.
        height: Option<f64>,
        /// Accessible networks; `None` means all of them.
        networks: Option<Vec<u32>>,
    },
    /// Withdraw a previously admitted demand.
    Withdraw {
        /// The client id given at submit time.
        id: u64,
    },
    /// Warm re-solve over the dirty components.
    Resolve,
    /// Re-solve if needed and report the full schedule.
    Query,
    /// Compare the warm state against the from-scratch oracle, bitwise.
    Check,
    /// Dump every demand ever admitted with its live flag.
    Snapshot,
    /// Lifetime engine and server counters.
    Stats,
    /// Final resolve, then close the connection.
    Drain,
}

/// Largest client id representable exactly in the JSON number model.
const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53

fn num_field(v: &Value, key: &str) -> Result<f64, String> {
    match v.field(key) {
        Ok(Value::Num(n)) => Ok(*n),
        Ok(other) => Err(format!("field `{key}` must be a number, got {other:?}")),
        Err(e) => Err(e.to_string()),
    }
}

fn uint_field(v: &Value, key: &str) -> Result<u64, String> {
    let n = num_field(v, key)?;
    if !(0.0..=MAX_EXACT).contains(&n) || n.fract() != 0.0 {
        return Err(format!(
            "field `{key}` must be a non-negative integer, got {n}"
        ));
    }
    Ok(n as u64)
}

fn u32_field(v: &Value, key: &str) -> Result<u32, String> {
    let n = uint_field(v, key)?;
    u32::try_from(n).map_err(|_| format!("field `{key}` out of range: {n}"))
}

impl Request {
    /// Parses one line of the wire format.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, a missing or
    /// mistyped field, or an unknown `op`.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
        let op = match value.field("op") {
            Ok(Value::Str(op)) => op.clone(),
            Ok(other) => return Err(format!("field `op` must be a string, got {other:?}")),
            Err(e) => return Err(e.to_string()),
        };
        match op.as_str() {
            "submit" => {
                let id = uint_field(&value, "id")?;
                let profit = num_field(&value, "profit")?;
                let shape = if value.field("u").is_ok() {
                    Shape::Pair {
                        u: u32_field(&value, "u")?,
                        v: u32_field(&value, "v")?,
                    }
                } else if value.field("release").is_ok() {
                    Shape::Window {
                        release: u32_field(&value, "release")?,
                        deadline: u32_field(&value, "deadline")?,
                        processing: u32_field(&value, "processing")?,
                    }
                } else {
                    return Err(
                        "submit needs either `u`/`v` (pair) or `release`/`deadline`/`processing` \
                         (window)"
                            .to_string(),
                    );
                };
                let height = match value.field("height") {
                    Err(_) => None,
                    Ok(Value::Num(h)) => Some(*h),
                    Ok(other) => {
                        return Err(format!("field `height` must be a number, got {other:?}"))
                    }
                };
                let networks = match value.field("networks") {
                    Err(_) => None,
                    Ok(Value::Array(items)) => {
                        let mut nets = Vec::with_capacity(items.len());
                        for (i, item) in items.iter().enumerate() {
                            match item {
                                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => {
                                    nets.push(*n as u32)
                                }
                                other => {
                                    return Err(format!(
                                        "networks[{i}] must be a network index, got {other:?}"
                                    ))
                                }
                            }
                        }
                        Some(nets)
                    }
                    Ok(other) => {
                        return Err(format!("field `networks` must be an array, got {other:?}"))
                    }
                };
                Ok(Request::Submit {
                    id,
                    shape,
                    profit,
                    height,
                    networks,
                })
            }
            "withdraw" => Ok(Request::Withdraw {
                id: uint_field(&value, "id")?,
            }),
            "resolve" => Ok(Request::Resolve),
            "query" => Ok(Request::Query),
            "check" => Ok(Request::Check),
            "snapshot" => Ok(Request::Snapshot),
            "stats" => Ok(Request::Stats),
            "drain" => Ok(Request::Drain),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// The request's `op` name as it appears on the wire.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Submit { .. } => "submit",
            Request::Withdraw { .. } => "withdraw",
            Request::Resolve => "resolve",
            Request::Query => "query",
            Request::Check => "check",
            Request::Snapshot => "snapshot",
            Request::Stats => "stats",
            Request::Drain => "drain",
        }
    }

    /// Renders the request back to one line of the wire format.
    pub fn to_json(&self) -> String {
        let mut pairs: Vec<(String, Value)> =
            vec![("op".to_string(), Value::Str(self.op().to_string()))];
        match self {
            Request::Submit {
                id,
                shape,
                profit,
                height,
                networks,
            } => {
                pairs.push(("id".to_string(), Value::Num(*id as f64)));
                match shape {
                    Shape::Pair { u, v } => {
                        pairs.push(("u".to_string(), Value::Num(f64::from(*u))));
                        pairs.push(("v".to_string(), Value::Num(f64::from(*v))));
                    }
                    Shape::Window {
                        release,
                        deadline,
                        processing,
                    } => {
                        pairs.push(("release".to_string(), Value::Num(f64::from(*release))));
                        pairs.push(("deadline".to_string(), Value::Num(f64::from(*deadline))));
                        pairs.push(("processing".to_string(), Value::Num(f64::from(*processing))));
                    }
                }
                pairs.push(("profit".to_string(), Value::Num(*profit)));
                if let Some(h) = height {
                    pairs.push(("height".to_string(), Value::Num(*h)));
                }
                if let Some(nets) = networks {
                    pairs.push((
                        "networks".to_string(),
                        Value::Array(nets.iter().map(|t| Value::Num(f64::from(*t))).collect()),
                    ));
                }
            }
            Request::Withdraw { id } => {
                pairs.push(("id".to_string(), Value::Num(*id as f64)));
            }
            _ => {}
        }
        serde_json::to_string(&Value::Object(pairs)).expect("requests serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_the_wire_format() {
        let requests = [
            Request::Submit {
                id: 12,
                shape: Shape::Pair { u: 3, v: 9 },
                profit: 2.25,
                height: None,
                networks: Some(vec![0, 2]),
            },
            Request::Submit {
                id: 13,
                shape: Shape::Window {
                    release: 0,
                    deadline: 9,
                    processing: 3,
                },
                profit: 1.0,
                height: Some(0.25),
                networks: None,
            },
            Request::Withdraw { id: 12 },
            Request::Resolve,
            Request::Query,
            Request::Check,
            Request::Snapshot,
            Request::Stats,
            Request::Drain,
        ];
        for req in requests {
            let line = req.to_json();
            assert_eq!(Request::parse(&line).as_ref(), Ok(&req), "line: {line}");
        }
    }

    #[test]
    fn malformed_requests_produce_readable_errors() {
        for (line, needle) in [
            ("not json", "bad JSON"),
            ("{}", "missing field `op`"),
            (r#"{"op":"fly"}"#, "unknown op"),
            (r#"{"op":"submit","id":1,"profit":1.0}"#, "submit needs"),
            (
                r#"{"op":"submit","id":-1,"u":0,"v":1,"profit":1.0}"#,
                "non-negative",
            ),
            (
                r#"{"op":"submit","id":1.5,"u":0,"v":1,"profit":1.0}"#,
                "non-negative",
            ),
            (r#"{"op":"withdraw"}"#, "missing field `id`"),
            (
                r#"{"op":"submit","id":1,"u":0,"v":1,"profit":1.0,"height":"tall"}"#,
                "must be a number",
            ),
            (
                r#"{"op":"submit","id":1,"u":0,"v":1,"profit":1.0,"networks":3}"#,
                "must be an array",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "line {line}: {err}");
        }
    }
}

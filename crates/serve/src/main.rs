//! `treenet-serve` — the online scheduling service.
//!
//! ```text
//! treenet-serve [--spec FILE | --networks K --n V --m M --seed S]
//!               [--epsilon E] [--solver-seed S] [--hmin H]
//!               [--tcp ADDR] [--gen N [--gen-seed S]]
//! ```
//!
//! Bootstraps a problem (from a `ProblemSpec` JSON file, or a seeded
//! random tree workload, default two 32-vertex trees with no demands),
//! then serves the line-delimited JSON admission protocol:
//!
//! * default — blocking loop over stdin/stdout;
//! * `--tcp ADDR` — listen on `ADDR` (e.g. `127.0.0.1:7401`), serving
//!   one connection at a time; a `drain` ends the connection, not the
//!   process;
//! * `--gen N` — self-drive: feed `N` seeded open-loop requests through
//!   the server, then a `check` and a `drain`, printing every response.
//!   Exits non-zero if the final check is not bit-identical.

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use treenet_core::SolverConfig;
use treenet_model::spec::ProblemSpec;
use treenet_model::workload::TreeWorkload;
use treenet_model::Problem;
use treenet_serve::{OpenLoop, Server};

const USAGE: &str = "usage:
  treenet-serve [--spec FILE | --networks K --n V --m M --seed S]
                [--epsilon E] [--solver-seed S] [--hmin H]
                [--tcp ADDR] [--gen N [--gen-seed S]]

  --hmin H  serve capacitated demands: admit any height >= H (H in
            (0, 1]); submits may then carry a `height` field, and
            `--gen` streams mixed narrow/wide heights";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], key: &str) -> Result<Option<String>, String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == key {
            return match it.next() {
                Some(value) => Ok(Some(value.clone())),
                None => Err(format!("flag {key} needs a value")),
            };
        }
    }
    Ok(None)
}

fn parsed<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match flag(args, key)? {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("bad value for {key}: {raw}")),
    }
}

fn bootstrap(args: &[String]) -> Result<Problem, String> {
    if let Some(path) = flag(args, "--spec")? {
        let raw = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        let spec: ProblemSpec =
            serde_json::from_str(&raw).map_err(|e| format!("parsing {path}: {e}"))?;
        return spec.build().map_err(|e| format!("building problem: {e}"));
    }
    let networks: usize = parsed(args, "--networks", 2)?;
    let n: usize = parsed(args, "--n", 32)?;
    let m: usize = parsed(args, "--m", 0)?;
    let seed: u64 = parsed(args, "--seed", 7)?;
    Ok(TreeWorkload::new(n, m)
        .with_networks(networks)
        .generate(&mut SmallRng::seed_from_u64(seed)))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    for arg in args {
        if arg.starts_with("--")
            && ![
                "--spec",
                "--networks",
                "--n",
                "--m",
                "--seed",
                "--epsilon",
                "--solver-seed",
                "--hmin",
                "--tcp",
                "--gen",
                "--gen-seed",
            ]
            .contains(&arg.as_str())
        {
            return Err(format!("unknown flag {arg}"));
        }
    }
    let problem = bootstrap(args)?;
    let hmin: Option<f64> = match flag(args, "--hmin")? {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("bad value for --hmin: {raw}"))?,
        ),
    };
    let mut config = SolverConfig::default()
        .with_epsilon(parsed(args, "--epsilon", 0.1)?)
        .with_seed(parsed(args, "--solver-seed", 0x7ee5)?);
    if let Some(h) = hmin {
        config = config.with_hmin(h);
    }
    let vertices = problem.vertex_count() as u32;
    let networks = problem.network_count() as u32;
    let bootstrap_demands = problem.demand_count() as u64;
    let mut server = Server::new(problem, &config).map_err(|e| e.to_string())?;

    if let Some(count) = flag(args, "--gen")? {
        let count: u64 = count
            .parse()
            .map_err(|_| format!("bad value for --gen: {count}"))?;
        let gen_seed: u64 = parsed(args, "--gen-seed", 11)?;
        let mut generator =
            OpenLoop::new(gen_seed, vertices, networks).with_id_floor(bootstrap_demands);
        if let Some(h) = hmin {
            // Capacitated self-drive: mixed narrow/wide heights above
            // the served floor (capped at 1/2 so narrow heights exist).
            generator = generator.with_heights(h.min(0.5), 50);
        }
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for _ in 0..count {
            let request = generator.next_request();
            let response = server.handle_line(&request.to_json());
            writeln!(out, "{response}").map_err(|e| e.to_string())?;
        }
        let check = server.handle_line(r#"{"op":"check"}"#);
        writeln!(out, "{check}").map_err(|e| e.to_string())?;
        let drain = server.handle_line(r#"{"op":"drain"}"#);
        writeln!(out, "{drain}").map_err(|e| e.to_string())?;
        return Ok(if check.contains(r#""identical":true"#) {
            ExitCode::SUCCESS
        } else {
            eprintln!("check failed: warm state diverged from the reference solve");
            ExitCode::FAILURE
        });
    }

    if let Some(addr) = flag(args, "--tcp")? {
        let listener =
            std::net::TcpListener::bind(&addr).map_err(|e| format!("binding {addr}: {e}"))?;
        eprintln!("treenet-serve listening on {addr}");
        for stream in listener.incoming() {
            let stream = stream.map_err(|e| format!("accepting: {e}"))?;
            let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
            serve_connection(&mut server, reader, stream)?;
        }
        return Ok(ExitCode::SUCCESS);
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_connection(&mut server, stdin.lock(), stdout.lock())?;
    Ok(ExitCode::SUCCESS)
}

fn serve_connection<R: BufRead, W: Write>(
    server: &mut Server,
    reader: R,
    writer: W,
) -> Result<(), String> {
    server.run(reader, writer).map_err(|e| e.to_string())
}

//! `treenet serve` — an online scheduling service over the warm-started
//! [`DeltaEngine`](treenet_core::DeltaEngine).
//!
//! The service speaks a **line-delimited JSON** admission protocol: one
//! request object per line in, one response object per line out, over
//! stdin/stdout or a TCP socket (see the `treenet-serve` binary). Clients
//! submit and withdraw demands under their own `u64` ids; the server maps
//! them onto the engine's dense internal ids, invalidates only the
//! conflict component a delta touches, and re-solves warm.
//!
//! # Protocol
//!
//! | op | request fields | response (beyond `ok`, `op`) |
//! |---|---|---|
//! | `submit` | `id`, `u`, `v` *or* `release`/`deadline`/`processing`, `profit`, optional `networks` | `instances` admitted |
//! | `withdraw` | `id` | `id` echoed |
//! | `resolve` | — | `lambda`, `selected`, `components_resolved`, `instances_resolved`, `live_instances` |
//! | `query` | — | `lambda` plus the full schedule (client ids) |
//! | `check` | — | `identical` — warm vs from-scratch oracle, bitwise |
//! | `snapshot` | — | every demand with its live flag |
//! | `stats` | — | lifetime engine and server counters |
//! | `drain` | — | final `lambda`/`selected`; the connection then closes |
//!
//! Every error — malformed JSON, duplicate id, withdraw-before-admit,
//! double withdraw, non-unit height — is an in-band
//! `{"ok":false,"op":…,"error":…}` response; the server never tears down
//! a connection on bad input.
//!
//! # Examples
//!
//! Submitting a demand and resolving (the exact wire format):
//!
//! ```
//! use treenet_core::SolverConfig;
//! use treenet_graph::Tree;
//! use treenet_model::ProblemBuilder;
//! use treenet_serve::Server;
//!
//! let mut b = ProblemBuilder::new();
//! b.add_network(Tree::line(8)).unwrap();
//! let mut server = Server::new(b.build().unwrap(), &SolverConfig::default()).unwrap();
//!
//! let resp = server.handle_line(r#"{"op":"submit","id":7,"u":1,"v":5,"profit":2.5}"#);
//! assert_eq!(resp, r#"{"ok":true,"op":"submit","id":7,"instances":1}"#);
//!
//! let resp = server.handle_line(r#"{"op":"resolve"}"#);
//! assert!(resp.starts_with(r#"{"ok":true,"op":"resolve","lambda":"#));
//! ```
//!
//! Withdraw-before-admit and duplicate ids come back as in-band errors:
//!
//! ```
//! # use treenet_core::SolverConfig;
//! # use treenet_graph::Tree;
//! # use treenet_model::ProblemBuilder;
//! # use treenet_serve::Server;
//! # let mut b = ProblemBuilder::new();
//! # b.add_network(Tree::line(8)).unwrap();
//! # let mut server = Server::new(b.build().unwrap(), &SolverConfig::default()).unwrap();
//! let resp = server.handle_line(r#"{"op":"withdraw","id":99}"#);
//! assert_eq!(
//!     resp,
//!     r#"{"ok":false,"op":"withdraw","error":"demand id 99 was never admitted"}"#
//! );
//!
//! server.handle_line(r#"{"op":"submit","id":1,"u":0,"v":3,"profit":1.0}"#);
//! let resp = server.handle_line(r#"{"op":"submit","id":1,"u":2,"v":4,"profit":1.0}"#);
//! assert_eq!(
//!     resp,
//!     r#"{"ok":false,"op":"submit","error":"demand id 1 already admitted"}"#
//! );
//! ```
//!
//! The `check` op runs the from-scratch oracle in-process and reports
//! whether the warm state matches it bit-for-bit — the invariant CI's
//! serve smoke greps for:
//!
//! ```
//! # use treenet_core::SolverConfig;
//! # use treenet_graph::Tree;
//! # use treenet_model::ProblemBuilder;
//! # use treenet_serve::Server;
//! # let mut b = ProblemBuilder::new();
//! # b.add_network(Tree::line(8)).unwrap();
//! # let mut server = Server::new(b.build().unwrap(), &SolverConfig::default()).unwrap();
//! server.handle_line(r#"{"op":"submit","id":1,"u":0,"v":4,"profit":2.0}"#);
//! server.handle_line(r#"{"op":"submit","id":2,"u":3,"v":7,"profit":1.0}"#);
//! let resp = server.handle_line(r#"{"op":"check"}"#);
//! assert!(resp.contains(r#""identical":true"#));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod protocol;
mod server;

pub use generator::OpenLoop;
pub use protocol::{Request, Shape};
pub use server::Server;

//! The server: client-id bookkeeping over a [`DeltaEngine`], request
//! dispatch, and the blocking line-protocol loop.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

use serde_json::Value;
use treenet_core::{DeltaEngine, DeltaEngineError, SolverConfig};
use treenet_graph::VertexId;
use treenet_model::{Demand, DemandId, NetworkId, Problem, ProblemDelta};

use crate::protocol::{Request, Shape};

/// The online scheduling server.
///
/// Wraps a [`DeltaEngine`] with the client-facing id space: demands are
/// submitted under client-chosen `u64` ids, mapped to the engine's dense
/// internal ids. Demands present in the bootstrap problem are registered
/// under client ids `0..demand_count` — pick fresh ids above that.
pub struct Server {
    engine: DeltaEngine,
    /// Client id → internal demand id, for every demand ever admitted
    /// (withdrawn demands stay mapped so a second withdraw reports
    /// "already departed", not "never admitted").
    ids: BTreeMap<u64, DemandId>,
    /// Internal demand index → client id, for schedule reporting.
    names: BTreeMap<u32, u64>,
    requests: u64,
    draining: bool,
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn ok_response(op: &str, mut rest: Vec<(&str, Value)>) -> Value {
    let mut pairs = vec![
        ("ok", Value::Bool(true)),
        ("op", Value::Str(op.to_string())),
    ];
    pairs.append(&mut rest);
    obj(pairs)
}

fn err_response(op: &str, error: impl Into<String>) -> Value {
    obj(vec![
        ("ok", Value::Bool(false)),
        ("op", Value::Str(op.to_string())),
        ("error", Value::Str(error.into())),
    ])
}

fn num(n: impl Into<f64>) -> Value {
    Value::Num(n.into())
}

impl Server {
    /// Builds a server over a bootstrap problem (possibly demand-free).
    ///
    /// # Errors
    ///
    /// [`DeltaEngineError::NonUnitHeight`] if the bootstrap problem holds
    /// a non-unit-height demand and the config fixes no `hmin` floor, or
    /// any other [`DeltaEngineError`] the engine raises at construction
    /// (bad floor, heights below it, instances shorter than `Lmin`).
    pub fn new(problem: Problem, config: &SolverConfig) -> Result<Server, DeltaEngineError> {
        let seeded: Vec<DemandId> = problem.demands().collect();
        let engine = DeltaEngine::new(problem, config)?;
        let mut ids = BTreeMap::new();
        let mut names = BTreeMap::new();
        for a in seeded {
            ids.insert(u64::from(a.0), a);
            names.insert(a.0, u64::from(a.0));
        }
        Ok(Server {
            engine,
            ids,
            names,
            requests: 0,
            draining: false,
        })
    }

    /// The wrapped engine (read-only; the bench reads its stats).
    pub fn engine(&self) -> &DeltaEngine {
        &self.engine
    }

    /// Whether a `drain` request has been answered; the serve loop stops
    /// reading once this turns true.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Handles one line of the wire protocol. Never panics: every failure
    /// is an in-band `{"ok":false,…}` response.
    pub fn handle_line(&mut self, line: &str) -> String {
        let response = match Request::parse(line) {
            Ok(request) => self.apply(&request),
            Err(message) => err_response("?", message),
        };
        serde_json::to_string(&response).expect("responses serialize")
    }

    /// Handles one parsed request (what [`Server::handle_line`] dispatches
    /// to; the bench calls it directly to keep JSON parsing out of the
    /// latency path).
    pub fn apply(&mut self, request: &Request) -> Value {
        self.requests += 1;
        let op = request.op();
        match request {
            Request::Submit {
                id,
                shape,
                profit,
                height,
                networks,
            } => self.submit(*id, *shape, *profit, *height, networks.as_deref()),
            Request::Withdraw { id } => self.withdraw(*id),
            Request::Resolve => self.resolve(op),
            Request::Query => self.query(),
            Request::Check => self.check(),
            Request::Snapshot => self.snapshot(),
            Request::Stats => self.stats(),
            Request::Drain => {
                let response = self.resolve(op);
                self.draining = true;
                response
            }
        }
    }

    fn submit(
        &mut self,
        id: u64,
        shape: Shape,
        profit: f64,
        height: Option<f64>,
        networks: Option<&[u32]>,
    ) -> Value {
        if self.ids.contains_key(&id) {
            return err_response("submit", format!("demand id {id} already admitted"));
        }
        let mut demand = match shape {
            Shape::Pair { u, v } => Demand::pair(VertexId(u), VertexId(v), profit),
            Shape::Window {
                release,
                deadline,
                processing,
            } => Demand::window(release, deadline, processing, profit),
        };
        if let Some(h) = height {
            demand = demand.with_height(h);
        }
        let access: Vec<NetworkId> = match networks {
            Some(nets) => nets.iter().map(|&t| NetworkId(t)).collect(),
            None => self.engine.problem().networks().collect(),
        };
        match self.engine.apply(ProblemDelta::Arrival { demand, access }) {
            Ok(effect) => {
                self.ids.insert(id, effect.demand);
                self.names.insert(effect.demand.0, id);
                ok_response(
                    "submit",
                    vec![
                        ("id", num(id as f64)),
                        ("instances", num(effect.new_instances.len() as f64)),
                    ],
                )
            }
            Err(e) => err_response("submit", e.to_string()),
        }
    }

    fn withdraw(&mut self, id: u64) -> Value {
        let Some(&internal) = self.ids.get(&id) else {
            return err_response("withdraw", format!("demand id {id} was never admitted"));
        };
        match self
            .engine
            .apply(ProblemDelta::Departure { demand: internal })
        {
            Ok(_) => ok_response("withdraw", vec![("id", num(id as f64))]),
            Err(e) => err_response("withdraw", e.to_string()),
        }
    }

    fn resolve(&mut self, op: &str) -> Value {
        match self.engine.resolve() {
            Ok(out) => ok_response(
                op,
                vec![
                    ("lambda", num(out.lambda)),
                    ("selected", num(out.solution.len() as f64)),
                    ("components_resolved", num(out.components_resolved as f64)),
                    ("instances_resolved", num(out.instances_resolved as f64)),
                    ("live_instances", num(out.live_instances as f64)),
                ],
            ),
            Err(e) => err_response(op, e.to_string()),
        }
    }

    fn query(&mut self) -> Value {
        if let Err(e) = self.engine.resolve() {
            return err_response("query", e.to_string());
        }
        let solution = self.engine.solution();
        let schedule: Vec<Value> = solution
            .selected()
            .iter()
            .map(|&d| {
                let inst = self.engine.problem().instance(d);
                let client = self.names.get(&inst.demand.0).copied().unwrap_or(u64::MAX);
                obj(vec![
                    ("id", num(client as f64)),
                    ("network", num(f64::from(inst.network.0))),
                    ("instance", num(f64::from(d.0))),
                ])
            })
            .collect();
        ok_response(
            "query",
            vec![
                ("lambda", num(self.engine.lambda())),
                (
                    "live_demands",
                    num(self.engine.problem().live_demand_count() as f64),
                ),
                ("schedule", Value::Array(schedule)),
            ],
        )
    }

    fn check(&mut self) -> Value {
        if let Err(e) = self.engine.resolve() {
            return err_response("check", e.to_string());
        }
        let reference = match self.engine.reference_solve() {
            Ok(solve) => solve,
            Err(e) => return err_response("check", e.to_string()),
        };
        let identical = self.engine.lambda().to_bits() == reference.lambda.to_bits()
            && self.engine.solution().selected() == reference.solution.selected();
        ok_response(
            "check",
            vec![
                ("identical", Value::Bool(identical)),
                ("lambda", num(self.engine.lambda())),
                (
                    "live_instances",
                    num(self.engine.problem().live_instances().len() as f64),
                ),
                ("components", num(self.engine.component_count() as f64)),
            ],
        )
    }

    fn snapshot(&mut self) -> Value {
        let problem = self.engine.problem();
        let demands: Vec<Value> = self
            .names
            .iter()
            .map(|(&internal, &client)| {
                let a = DemandId(internal);
                obj(vec![
                    ("id", num(client as f64)),
                    ("live", Value::Bool(!problem.is_departed(a))),
                    ("profit", num(problem.demand(a).profit)),
                    ("instances", num(problem.instances_of(a).len() as f64)),
                ])
            })
            .collect();
        ok_response(
            "snapshot",
            vec![
                ("networks", num(problem.network_count() as f64)),
                ("vertices", num(problem.vertex_count() as f64)),
                ("live_demands", num(problem.live_demand_count() as f64)),
                ("demands", Value::Array(demands)),
            ],
        )
    }

    fn stats(&mut self) -> Value {
        let stats = self.engine.stats();
        ok_response(
            "stats",
            vec![
                ("requests", num(self.requests as f64)),
                ("deltas_applied", num(stats.deltas_applied as f64)),
                ("resolves", num(stats.resolves as f64)),
                ("components_resolved", num(stats.components_resolved as f64)),
                ("instances_resolved", num(stats.instances_resolved as f64)),
                ("components", num(self.engine.component_count() as f64)),
                (
                    "live_demands",
                    num(self.engine.problem().live_demand_count() as f64),
                ),
                (
                    "live_instances",
                    num(self.engine.problem().live_instances().len() as f64),
                ),
            ],
        )
    }

    /// Serves the blocking line protocol until EOF or a `drain` request.
    ///
    /// # Errors
    ///
    /// Propagates transport I/O failures (never protocol-level ones).
    pub fn run<R: BufRead, W: Write>(&mut self, reader: R, mut writer: W) -> std::io::Result<()> {
        // A drain ends one connection, not the server: re-arm on entry.
        self.draining = false;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle_line(&line);
            writeln!(writer, "{response}")?;
            writer.flush()?;
            if self.draining {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treenet_graph::Tree;
    use treenet_model::ProblemBuilder;

    fn server() -> Server {
        let mut b = ProblemBuilder::new();
        b.add_network(Tree::line(10)).unwrap();
        b.add_network(Tree::line(10)).unwrap();
        Server::new(b.build().unwrap(), &SolverConfig::default()).unwrap()
    }

    fn field_f64(response: &str, key: &str) -> f64 {
        let value: Value = serde_json::from_str(response).unwrap();
        match value.field(key) {
            Ok(Value::Num(n)) => *n,
            other => panic!("field {key} of {response}: {other:?}"),
        }
    }

    #[test]
    fn submit_resolve_withdraw_lifecycle() {
        let mut s = server();
        let r = s.handle_line(r#"{"op":"submit","id":5,"u":0,"v":4,"profit":2.0}"#);
        assert!(r.contains(r#""ok":true"#), "{r}");
        // Default access = both networks, so two instances materialize.
        assert_eq!(field_f64(&r, "instances"), 2.0);
        let r = s.handle_line(r#"{"op":"resolve"}"#);
        assert_eq!(field_f64(&r, "live_instances"), 2.0);
        assert_eq!(field_f64(&r, "selected"), 1.0);
        let r = s.handle_line(r#"{"op":"withdraw","id":5}"#);
        assert!(r.contains(r#""ok":true"#), "{r}");
        let r = s.handle_line(r#"{"op":"resolve"}"#);
        assert_eq!(field_f64(&r, "selected"), 0.0);
    }

    #[test]
    fn admission_errors_are_in_band() {
        let mut s = server();
        // Withdraw before admit.
        let r = s.handle_line(r#"{"op":"withdraw","id":1}"#);
        assert!(r.contains("never admitted"), "{r}");
        // Duplicate id.
        s.handle_line(r#"{"op":"submit","id":1,"u":0,"v":2,"profit":1.0}"#);
        let r = s.handle_line(r#"{"op":"submit","id":1,"u":3,"v":5,"profit":1.0}"#);
        assert!(r.contains("already admitted"), "{r}");
        // Double withdraw.
        s.handle_line(r#"{"op":"withdraw","id":1}"#);
        let r = s.handle_line(r#"{"op":"withdraw","id":1}"#);
        assert!(r.contains("already departed"), "{r}");
        // Model rejections pass through: unknown network.
        let r = s.handle_line(r#"{"op":"submit","id":2,"u":0,"v":2,"profit":1.0,"networks":[9]}"#);
        assert!(r.contains(r#""ok":false"#), "{r}");
        // A non-unit height on a unit-mode server is rejected in-band.
        let r = s.handle_line(r#"{"op":"submit","id":3,"u":0,"v":2,"profit":1.0,"height":0.5}"#);
        assert!(r.contains("hmin"), "{r}");
        // Malformed JSON keeps the connection usable.
        let r = s.handle_line("garbage");
        assert!(r.contains("bad JSON"), "{r}");
        let r = s.handle_line(r#"{"op":"stats"}"#);
        assert!(r.contains(r#""ok":true"#), "{r}");
    }

    #[test]
    fn check_reports_bitwise_identity() {
        let mut s = server();
        for (id, (u, v)) in [(1, (0, 3)), (2, (2, 6)), (3, (5, 9))] {
            let line = format!(r#"{{"op":"submit","id":{id},"u":{u},"v":{v},"profit":2.0}}"#);
            assert!(s.handle_line(&line).contains(r#""ok":true"#));
        }
        s.handle_line(r#"{"op":"withdraw","id":2}"#);
        let r = s.handle_line(r#"{"op":"check"}"#);
        assert!(r.contains(r#""identical":true"#), "{r}");
    }

    #[test]
    fn capacitated_server_accepts_heights_and_stays_identical() {
        let mut b = ProblemBuilder::new();
        b.add_network(Tree::line(10)).unwrap();
        b.add_network(Tree::line(10)).unwrap();
        let config = SolverConfig::default().with_hmin(0.25);
        let mut s = Server::new(b.build().unwrap(), &config).unwrap();
        // Mixed narrow and wide submits, windows included.
        for line in [
            r#"{"op":"submit","id":1,"u":0,"v":4,"profit":2.0,"height":0.3}"#,
            r#"{"op":"submit","id":2,"u":2,"v":7,"profit":3.0}"#,
            r#"{"op":"submit","id":3,"release":0,"deadline":8,"processing":3,"profit":1.5,"height":0.5,"networks":[1]}"#,
        ] {
            let r = s.handle_line(line);
            assert!(r.contains(r#""ok":true"#), "{r}");
        }
        // A height below the floor is rejected in-band.
        let r = s.handle_line(r#"{"op":"submit","id":4,"u":1,"v":3,"profit":1.0,"height":0.1}"#);
        assert!(r.contains("hmin"), "{r}");
        s.handle_line(r#"{"op":"withdraw","id":2}"#);
        let r = s.handle_line(r#"{"op":"check"}"#);
        assert!(r.contains(r#""identical":true"#), "{r}");
    }

    #[test]
    fn query_names_client_ids_in_the_schedule() {
        let mut s = server();
        s.handle_line(r#"{"op":"submit","id":41,"u":0,"v":3,"profit":2.0,"networks":[0]}"#);
        s.handle_line(r#"{"op":"submit","id":42,"u":5,"v":9,"profit":1.0,"networks":[1]}"#);
        let r = s.handle_line(r#"{"op":"query"}"#);
        let value: Value = serde_json::from_str(&r).unwrap();
        let Value::Array(schedule) = &value["schedule"] else {
            panic!("no schedule in {r}");
        };
        let mut ids: Vec<f64> = schedule
            .iter()
            .map(|entry| match &entry["id"] {
                Value::Num(n) => *n,
                other => panic!("bad id {other:?}"),
            })
            .collect();
        ids.sort_by(f64::total_cmp);
        assert_eq!(ids, vec![41.0, 42.0], "{r}");
    }

    #[test]
    fn run_loop_stops_on_drain() {
        let mut s = server();
        let input = concat!(
            r#"{"op":"submit","id":1,"u":0,"v":4,"profit":2.0}"#,
            "\n",
            "\n", // blank lines are skipped
            r#"{"op":"drain"}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n", // never reached
        );
        let mut out = Vec::new();
        s.run(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[1].contains(r#""op":"drain""#), "{text}");
        assert!(s.is_draining());
    }

    #[test]
    fn bootstrap_demands_are_addressable_by_index() {
        let mut b = ProblemBuilder::new();
        let t = b.add_network(Tree::line(6)).unwrap();
        b.add_demand(Demand::pair(VertexId(0), VertexId(3), 1.5), &[t])
            .unwrap();
        let mut s = Server::new(b.build().unwrap(), &SolverConfig::default()).unwrap();
        let r = s.handle_line(r#"{"op":"withdraw","id":0}"#);
        assert!(r.contains(r#""ok":true"#), "{r}");
        let r = s.handle_line(r#"{"op":"check"}"#);
        assert!(r.contains(r#""identical":true"#), "{r}");
    }

    #[test]
    fn snapshot_tracks_live_flags() {
        let mut s = server();
        s.handle_line(r#"{"op":"submit","id":7,"u":0,"v":2,"profit":1.0}"#);
        s.handle_line(r#"{"op":"submit","id":8,"u":4,"v":6,"profit":1.0}"#);
        s.handle_line(r#"{"op":"withdraw","id":7}"#);
        let r = s.handle_line(r#"{"op":"snapshot"}"#);
        assert!(r.contains(r#""live":false"#), "{r}");
        assert!(r.contains(r#""live":true"#), "{r}");
        assert_eq!(field_f64(&r, "live_demands"), 1.0);
    }
}
